// Span correctness (ISSUE 4): nesting and parenting under re-entrant event
// dispatch, cross-process context propagation over UdpTransport (including
// dropped-then-retransmitted and duplicated packets), budget exhaustion,
// clear() reset, the disabled path, and Perfetto-export escaping.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "core/config_builder.h"
#include "core/scenario.h"
#include "net/sim_transport.h"
#include "net/udp_transport.h"
#include "obs/perfetto.h"
#include "obs/trace.h"
#include "runtime/framework.h"

namespace ugrpc {
namespace {

using obs::SpanCtx;
using obs::SpanKind;
using obs::SpanRecord;

// ---- helpers ----

std::vector<SpanRecord> run_traced_call(obs::Tracer& tracer, core::Config config,
                                        net::FaultSpec faults = {}) {
  core::ScenarioParams p;
  p.num_servers = 3;
  p.config = std::move(config);
  p.faults = faults;
  p.tracer = &tracer;
  core::Scenario s(std::move(p));
  s.run_client(0, [&](core::Client& c) -> sim::Task<> {
    const core::CallResult r = co_await c.call(s.group(), OpId{1}, Buffer{});
    EXPECT_TRUE(r.ok());
  });
  // Drain in-flight traffic (e.g. a duplicated reply whose original is still
  // in transit when the call completes) so the span set is complete.
  s.run_until_quiescent();
  return tracer.merged_spans();
}

const SpanRecord* find_by_id(const std::vector<SpanRecord>& spans, std::uint64_t id) {
  for (const SpanRecord& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const SpanRecord*> of_kind(const std::vector<SpanRecord>& spans, SpanKind kind) {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& s : spans) {
    if (s.kind == kind) out.push_back(&s);
  }
  return out;
}

// ---- call-trace structure in the simulator ----

TEST(Span, CallSpanRootsItsOwnTrace) {
  obs::Tracer tracer;
  const auto spans = run_traced_call(tracer, core::ConfigBuilder::exactly_once().build());
  const auto calls = of_kind(spans, SpanKind::kCall);
  ASSERT_EQ(calls.size(), 1u);
  const SpanRecord& call = *calls.front();
  EXPECT_EQ(call.trace, call.a) << "trace id must be the call id";
  EXPECT_NE(call.trace, 0u);
  EXPECT_FALSE(call.open()) << "completion must close the root span";
  EXPECT_GE(call.wall_ns(), 1u);
}

TEST(Span, HandlerSpansParentToTheirEventChain) {
  obs::Tracer tracer;
  const auto spans = run_traced_call(tracer, core::ConfigBuilder::exactly_once().build());
  const auto handlers = of_kind(spans, SpanKind::kHandler);
  ASSERT_FALSE(handlers.empty());
  for (const SpanRecord* h : handlers) {
    ASSERT_NE(h->parent, 0u);
    const SpanRecord* parent = find_by_id(spans, h->parent);
    ASSERT_NE(parent, nullptr) << "handler parent must be recorded";
    EXPECT_EQ(parent->kind, SpanKind::kEventChain);
    EXPECT_EQ(parent->site, h->site) << "a handler runs on its chain's site";
    EXPECT_EQ(parent->trace, h->trace);
  }
}

TEST(Span, DeliverSpansParentToSendSpansAcrossSites) {
  obs::Tracer tracer;
  const auto spans = run_traced_call(tracer, core::ConfigBuilder::exactly_once().build());
  const auto delivers = of_kind(spans, SpanKind::kDeliver);
  ASSERT_FALSE(delivers.empty());
  int cross_site = 0;
  for (const SpanRecord* d : delivers) {
    if (d->parent == 0) continue;  // untraced background traffic
    const SpanRecord* parent = find_by_id(spans, d->parent);
    ASSERT_NE(parent, nullptr) << "deliver parent (the send span) must be recorded";
    EXPECT_EQ(parent->kind, SpanKind::kSend);
    EXPECT_EQ(parent->trace, d->trace) << "the send's context travels with the packet";
    if (parent->site != d->site) ++cross_site;
  }
  EXPECT_GT(cross_site, 0) << "client->server hops must link across sites";
}

TEST(Span, EveryParentLinkResolvesAndNests) {
  obs::Tracer tracer;
  const auto spans = run_traced_call(tracer, core::ConfigBuilder::at_most_once().build());
  ASSERT_FALSE(spans.empty());
  int resolved = 0;
  for (const SpanRecord& s : spans) {
    if (s.parent == 0) continue;
    const SpanRecord* parent = find_by_id(spans, s.parent);
    ASSERT_NE(parent, nullptr) << "dangling parent id " << s.parent;
    EXPECT_NE(parent->id, s.id);
    EXPECT_LE(parent->ns_begin, s.ns_begin) << "a child cannot begin before its parent";
    ++resolved;
  }
  EXPECT_GT(resolved, 0);
}

// ---- re-entrant dispatch ----

TEST(Span, ReentrantTriggerNestsInnerChainUnderOuterHandler) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  runtime::Framework fw{transport, DomainId{1}};
  obs::Tracer tracer;
  fw.set_site_trace(&tracer.site(ProcessId{1}));
  constexpr runtime::EventId kOuter{1};
  constexpr runtime::EventId kInner{2};
  fw.define_event(kOuter, "OUTER");
  fw.define_event(kInner, "INNER");
  fw.register_handler(kInner, "Inner.h", [](runtime::EventContext&) -> sim::Task<> { co_return; });
  fw.register_handler(kOuter, "Outer.h", [&fw](runtime::EventContext&) -> sim::Task<> {
    int x = 0;
    co_await fw.trigger(kInner, runtime::EventArg::ref(x));
  });
  int arg = 0;
  sched.spawn([](runtime::Framework& f, int& a) -> sim::Task<> {
    co_await f.trigger(runtime::EventId{1}, runtime::EventArg::ref(a));
  }(fw, arg));
  sched.run();

  const auto spans = tracer.merged_spans();
  const SpanRecord* outer_chain = nullptr;
  const SpanRecord* inner_chain = nullptr;
  const SpanRecord* outer_handler = nullptr;
  const SpanRecord* inner_handler = nullptr;
  for (const SpanRecord& s : spans) {
    const std::string& name = tracer.name(s.name);
    if (s.kind == SpanKind::kEventChain && name == "OUTER") outer_chain = &s;
    if (s.kind == SpanKind::kEventChain && name == "INNER") inner_chain = &s;
    if (s.kind == SpanKind::kHandler && name == "Outer.h") outer_handler = &s;
    if (s.kind == SpanKind::kHandler && name == "Inner.h") inner_handler = &s;
  }
  ASSERT_NE(outer_chain, nullptr);
  ASSERT_NE(inner_chain, nullptr);
  ASSERT_NE(outer_handler, nullptr);
  ASSERT_NE(inner_handler, nullptr);
  EXPECT_EQ(outer_handler->parent, outer_chain->id);
  EXPECT_EQ(inner_chain->parent, outer_handler->id)
      << "a trigger from inside a handler must nest under that handler";
  EXPECT_EQ(inner_handler->parent, inner_chain->id);
  EXPECT_FALSE(outer_chain->open());
  EXPECT_FALSE(inner_chain->open());
}

// ---- faults: duplicates and retransmissions stay on the original trace ----

TEST(Span, DuplicatedPacketsAreFlaggedAndKeepTheOriginalContext) {
  obs::Tracer tracer;
  net::FaultSpec faults;
  faults.dup_prob = 1.0;  // every delivery happens twice
  const auto spans = run_traced_call(tracer, core::ConfigBuilder::exactly_once().build(), faults);
  const auto delivers = of_kind(spans, SpanKind::kDeliver);
  std::vector<const SpanRecord*> flagged;
  for (const SpanRecord* d : delivers) {
    if (d->flagged) flagged.push_back(d);
  }
  ASSERT_FALSE(flagged.empty()) << "dup_prob=1 must flag duplicate deliveries";
  for (const SpanRecord* dup : flagged) {
    // The duplicate carries the same wire context as the original delivery:
    // same trace, same send-span parent -- and the original is not flagged.
    const auto twin = std::find_if(delivers.begin(), delivers.end(), [&](const SpanRecord* d) {
      return !d->flagged && d->parent == dup->parent && d->site == dup->site;
    });
    if (twin == delivers.end()) {
      std::string diag = "dup id=" + std::to_string(dup->id) + " parent=" +
                         std::to_string(dup->parent) + " site=" + std::to_string(dup->site.value()) +
                         " trace=" + std::to_string(dup->trace) + "\nall delivers:\n";
      for (const SpanRecord* d : delivers) {
        diag += "  id=" + std::to_string(d->id) + " parent=" + std::to_string(d->parent) +
                " site=" + std::to_string(d->site.value()) + " trace=" + std::to_string(d->trace) +
                " flagged=" + std::to_string(d->flagged) + " open=" + std::to_string(d->open()) +
                "\n";
      }
      ADD_FAILURE() << "duplicate without an original delivery\n" << diag;
      continue;
    }
    EXPECT_EQ((*twin)->trace, dup->trace);
  }
}

TEST(Span, RetransmissionsJoinTheOriginalCallTrace) {
  obs::Tracer tracer;
  // Deterministic retransmission without loss: every link delay exceeds the
  // 50 ms retransmission timeout, so Reliable Communication always re-sends
  // before the first acknowledgement can arrive.
  net::FaultSpec faults;
  faults.min_delay = sim::msec(60);
  faults.max_delay = sim::msec(60);
  const auto spans = run_traced_call(tracer, core::ConfigBuilder::exactly_once().build(), faults);
  const auto calls = of_kind(spans, SpanKind::kCall);
  ASSERT_EQ(calls.size(), 1u);
  const SpanRecord& call = *calls.front();
  // Retransmitted datagrams re-enter the call's context from the timer
  // fiber, so like the initial multicast they parent directly to the root
  // call span.  The initial multicast accounts for exactly 3 such sends
  // (one per server); anything beyond that is a retransmission.
  int call_rooted_sends = 0;
  for (const SpanRecord* s : of_kind(spans, SpanKind::kSend)) {
    if (s->parent == call.id && s->trace == call.trace) ++call_rooted_sends;
  }
  EXPECT_GT(call_rooted_sends, 3) << "delay > retrans timeout must force a retransmission";
  // And a timer span fired on the client on some trace-carrying context.
  EXPECT_FALSE(of_kind(spans, SpanKind::kTimer).empty());
}

// ---- UDP propagation ----

/// Two UDP transports ("hosts") sharing one collector, cross-introduced.
struct UdpPair {
  obs::Tracer tracer;
  net::UdpTransport ta;
  net::UdpTransport tb;
  net::Endpoint& a;
  net::Endpoint& b;
  std::vector<net::Packet> received;

  static constexpr ProcessId kA{1};
  static constexpr ProcessId kB{2};
  static constexpr ProtocolId kProto{7};

  UdpPair() : a(ta.attach(kA, DomainId{1})), b(tb.attach(kB, DomainId{2})) {
    ta.set_tracer(&tracer);
    tb.set_tracer(&tracer);
    ta.add_peer(kB, "127.0.0.1", tb.local_port(kB));
    tb.add_peer(kA, "127.0.0.1", ta.local_port(kA));
    b.set_handler(kProto, [this](net::Packet p) -> sim::Task<> {
      received.push_back(std::move(p));
      co_return;
    });
  }

  bool drive_until_received(std::size_t n) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (received.size() < n) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      ta.poll_once(sim::usec(500));
      tb.poll_once(0);
    }
    return true;
  }
};

TEST(Span, UdpCarriesContextAcrossTheWire) {
  UdpPair pair;
  // The sending "fiber" (the test thread, fiber 0) works on trace 77.
  pair.tracer.site(UdpPair::kA).set_current(0, SpanCtx{77, 5});
  Buffer payload;
  Writer(payload).u32(0xabcd);
  pair.a.send(UdpPair::kB, UdpPair::kProto, payload);
  ASSERT_TRUE(pair.drive_until_received(1));

  // The receiver's packet metadata carries {trace, send-span} -- not the
  // sender's own parent: the wire context is re-rooted at the send span.
  const auto spans = pair.tracer.merged_spans();
  const auto sends = of_kind(spans, SpanKind::kSend);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0]->trace, 77u);
  EXPECT_EQ(sends[0]->parent, 5u);
  EXPECT_EQ(pair.received.at(0).ctx.trace, 77u);
  EXPECT_EQ(pair.received.at(0).ctx.parent, sends[0]->id);

  const auto delivers = of_kind(spans, SpanKind::kDeliver);
  ASSERT_EQ(delivers.size(), 1u);
  EXPECT_EQ(delivers[0]->trace, 77u);
  EXPECT_EQ(delivers[0]->parent, sends[0]->id);
  EXPECT_EQ(delivers[0]->site, UdpPair::kB);
}

TEST(Span, UdpDroppedSendIsFlaggedAndRetransmitJoinsTrace) {
  UdpPair pair;
  int drops_left = 1;
  pair.ta.set_send_fault([&drops_left](ProcessId, ProcessId, ProtocolId) {
    return drops_left-- > 0;  // swallow exactly the first datagram
  });
  pair.tracer.site(UdpPair::kA).set_current(0, SpanCtx{99, 0});
  Buffer payload;
  Writer(payload).u32(1);
  pair.a.send(UdpPair::kB, UdpPair::kProto, payload);  // dropped
  pair.a.send(UdpPair::kB, UdpPair::kProto, payload);  // "retransmission"
  ASSERT_TRUE(pair.drive_until_received(1));
  EXPECT_EQ(pair.ta.stats().dropped, 1u);

  const auto spans = pair.tracer.merged_spans();
  const auto sends = of_kind(spans, SpanKind::kSend);
  ASSERT_EQ(sends.size(), 2u);
  const SpanRecord* dropped = sends[0]->flagged ? sends[0] : sends[1];
  const SpanRecord* resent = sends[0]->flagged ? sends[1] : sends[0];
  EXPECT_TRUE(dropped->flagged) << "the swallowed datagram's send span must be flagged";
  EXPECT_FALSE(resent->flagged);
  EXPECT_EQ(dropped->trace, 99u);
  EXPECT_EQ(resent->trace, 99u) << "the retransmission stays on the original trace";
  const auto delivers = of_kind(spans, SpanKind::kDeliver);
  ASSERT_EQ(delivers.size(), 1u);
  EXPECT_EQ(delivers[0]->trace, 99u);
  EXPECT_EQ(delivers[0]->parent, resent->id);
}

// ---- lifecycle: budget, clear, disabled path ----

TEST(Span, BudgetExhaustionDropsNewSpansGracefully) {
  obs::Tracer tracer(/*per_site_capacity=*/4);
  obs::SiteTrace& st = tracer.site(ProcessId{9});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t id = st.span_open(sim::Time{i}, SpanKind::kHandler, 0, SpanCtx{1, 0});
    EXPECT_NE(id, 0u);
    ids.push_back(id);
  }
  const std::uint64_t overflow = st.span_open(sim::Time{5}, SpanKind::kHandler, 0, SpanCtx{1, 0});
  EXPECT_EQ(overflow, 0u);
  EXPECT_EQ(st.spans_dropped(), 1u);
  st.span_close(0, sim::Time{6});  // no-op by contract: callers never branch
  st.span_flag(0);
  for (const std::uint64_t id : ids) st.span_close(id, sim::Time{7});
  EXPECT_EQ(st.spans().size(), 4u);
  for (const SpanRecord& s : st.spans()) EXPECT_FALSE(s.open());
}

TEST(Span, ClearResetsSpansAndAmbientContexts) {
  obs::Tracer tracer;
  (void)run_traced_call(tracer, core::ConfigBuilder::at_least_once().build());
  ASSERT_FALSE(tracer.merged_spans().empty());
  obs::SiteTrace& client = tracer.site(ProcessId{4});
  client.set_current(123, SpanCtx{1, 2});
  tracer.clear();
  EXPECT_TRUE(tracer.merged_spans().empty());
  EXPECT_EQ(tracer.total_spans_dropped(), 0u);
  EXPECT_FALSE(client.current(123).active()) << "clear() must wipe fiber contexts";
  // The collector is reusable after clear(): ids restart from a fresh seq.
  const std::uint64_t id = client.span_open(sim::Time{1}, SpanKind::kSend, 0, SpanCtx{1, 0});
  EXPECT_NE(id, 0u);
  client.span_close(id, sim::Time{2});
  EXPECT_EQ(client.spans().size(), 1u);
}

TEST(Span, DisabledPathRecordsNothingAndPreservesBehaviour) {
  // Identical workload with and without a tracer: same result, and the
  // traced run's spans do not alter scheduling (same completion status).
  core::ScenarioParams p1;
  p1.config = core::ConfigBuilder::exactly_once().build();
  core::Scenario untraced(std::move(p1));
  core::CallResult r1;
  untraced.run_client(0, [&](core::Client& c) -> sim::Task<> {
    r1 = co_await c.call(untraced.group(), OpId{1}, Buffer{});
  });

  obs::Tracer tracer;
  core::ScenarioParams p2;
  p2.config = core::ConfigBuilder::exactly_once().build();
  p2.tracer = &tracer;
  core::Scenario traced(std::move(p2));
  core::CallResult r2;
  traced.run_client(0, [&](core::Client& c) -> sim::Task<> {
    r2 = co_await c.call(traced.group(), OpId{1}, Buffer{});
  });

  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_FALSE(tracer.merged_spans().empty());
}

// ---- export escaping ----

TEST(Span, PerfettoExportEscapesHostileNames) {
  obs::Tracer tracer;
  obs::SiteTrace& st = tracer.site(ProcessId{1});
  const std::uint32_t evil = st.intern("evil\"name\\with\nnewline");
  const std::uint64_t id = st.span_open(sim::Time{1}, SpanKind::kHandler, evil, SpanCtx{1, 0});
  st.span_close(id, sim::Time{2});
  const std::string json = obs::export_perfetto(tracer);
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline"), std::string::npos)
      << "quotes, backslashes and control characters must be escaped";
  // No raw control characters may survive inside the document.
  for (const char c : json) EXPECT_NE(c, '\r');
  EXPECT_EQ(json.find("evil\"name"), std::string::npos) << "unescaped quote leaked";
}

}  // namespace
}  // namespace ugrpc
