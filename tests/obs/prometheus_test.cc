// Unit tests for the Prometheus text exposition (obs/live/prometheus.h).
//
// Three contracts pinned here: hostile Registry names survive sanitization
// via the raw="..." label instead of colliding silently; histograms render
// as coherent cumulative native histograms over the power-of-two buckets;
// and a scrape taken from a timer callback under the cooperative executor
// is a consistent point-in-time snapshot of a registry a fiber is mutating.
#include "obs/live/prometheus.h"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace ugrpc::obs::live {
namespace {

bool has_line(const std::string& text, const std::string& line) {
  return text.find(line + "\n") != std::string::npos;
}

/// Value of the single sample line starting with `name` + ' '.
std::optional<std::uint64_t> sample_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  std::size_t pos = text.rfind(needle);
  if (pos == std::string::npos) {
    if (text.rfind(name + " ", 0) == 0) {
      pos = 0;
    } else {
      return std::nullopt;
    }
  } else {
    pos += 1;  // skip the leading newline
  }
  return std::stoull(text.substr(pos + name.size() + 1));
}

TEST(PromName, DotsBecomeUnderscores) {
  EXPECT_EQ(prom_metric_name("net.bytes_sent"), "net_bytes_sent");
}

TEST(PromName, HostileBytesBecomeUnderscores) {
  EXPECT_EQ(prom_metric_name("a b\"c\\d\ne"), "a_b_c_d_e");
}

TEST(PromName, NeverEmptyAndNeverLeadsWithDigit) {
  EXPECT_EQ(prom_metric_name(""), "_");
  EXPECT_EQ(prom_metric_name("9lives"), "_9lives");
}

TEST(PromEscape, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(prom_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(PromRender, CounterAndGaugeWithPrefix) {
  Registry reg;
  reg.counter("calls.started").add(7);
  reg.gauge("queue.depth", [] { return std::uint64_t{3}; });
  const std::string out = render_prometheus(reg);
  EXPECT_TRUE(has_line(out, "# TYPE ugrpc_calls_started counter")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_calls_started 7")) << out;
  EXPECT_TRUE(has_line(out, "# TYPE ugrpc_queue_depth gauge")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_queue_depth 3")) << out;
}

TEST(PromRender, ConstLabelsAttachToEverySample) {
  Registry reg;
  reg.counter("c").add(1);
  PromOptions opts;
  opts.const_labels = "site=\"3\"";
  EXPECT_TRUE(has_line(render_prometheus(reg, opts), "ugrpc_c{site=\"3\"} 1"));
}

TEST(PromRender, LossyNameKeepsOriginalInRawLabel) {
  Registry reg;
  // A group label with quote, backslash and newline -- the worst a
  // user-provided name can carry.
  reg.counter("calls[\"evil\\name\n\"]").add(2);
  const std::string out = render_prometheus(reg);
  EXPECT_TRUE(has_line(out, "ugrpc_calls__evil_name___{raw=\"calls[\\\"evil\\\\name\\n\\\"]\"} 2"))
      << out;
}

TEST(PromRender, LosslessNameGetsNoRawLabel) {
  Registry reg;
  reg.counter("net.sent").add(1);
  const std::string out = render_prometheus(reg);
  EXPECT_EQ(out.find("raw="), std::string::npos) << out;
}

TEST(PromRender, HistogramIsCumulativeWithPowerOfTwoBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("lat_us");
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1000);
  const std::string out = render_prometheus(reg);
  EXPECT_TRUE(has_line(out, "# TYPE ugrpc_lat_us histogram")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_bucket{le=\"1\"} 1")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_bucket{le=\"3\"} 3")) << out;
  // Intermediate empty buckets still render (cumulative stays flat)...
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_bucket{le=\"511\"} 3")) << out;
  // ...up to the bucket containing the max, then straight to +Inf.
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_bucket{le=\"1023\"} 4")) << out;
  EXPECT_EQ(out.find("le=\"2047\""), std::string::npos) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_bucket{le=\"+Inf\"} 4")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_sum 1006")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_count 4")) << out;
}

TEST(PromRender, EmptyHistogramStillCompleteFamily) {
  Registry reg;
  (void)reg.histogram("lat_us");
  const std::string out = render_prometheus(reg);
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_bucket{le=\"+Inf\"} 0")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_sum 0")) << out;
  EXPECT_TRUE(has_line(out, "ugrpc_lat_us_count 0")) << out;
}

TEST(PromRender, ScrapeBetweenFibersIsConsistentSnapshot) {
  // A fiber bumps two counters together (no suspension point between the
  // increments) and yields; scrapes run from timer callbacks, which the
  // cooperative executor only fires between fiber steps.  Every scrape must
  // therefore observe the pair in lockstep -- the structural property that
  // makes the live telemetry plane lock-free.
  sim::Scheduler sched;
  Registry reg;
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");

  sched.spawn([](sim::Scheduler& s, Counter& a, Counter& b) -> sim::Task<> {
    for (int i = 0; i < 200; ++i) {
      ++a;
      ++b;
      co_await s.sleep_for(sim::usec(7));
    }
  }(sched, a, b));

  int scrapes = 0;
  std::function<void()> scrape = [&] {
    const std::string out = render_prometheus(reg);
    const auto va = sample_value(out, "ugrpc_a");
    const auto vb = sample_value(out, "ugrpc_b");
    ASSERT_TRUE(va.has_value() && vb.has_value()) << out;
    EXPECT_EQ(*va, *vb) << "scrape observed a half-applied update";
    ++scrapes;
    (void)sched.schedule_after(sim::usec(13), scrape);  // deliberately co-prime with 7
  };
  (void)sched.schedule_after(sim::usec(13), scrape);

  sched.run_for(sim::msec(1));
  EXPECT_GT(scrapes, 50);
  EXPECT_EQ(a.value(), 143u) << "1 ms / 7 us per iteration, first increment at t=0";
}

}  // namespace
}  // namespace ugrpc::obs::live
