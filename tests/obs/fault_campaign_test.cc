// Randomized fault campaigns validated by the trace checker (tentpole of
// ISSUE 3): each of the three Fig. 1 failure-semantics presets runs a lossy
// duplicating schedule with a mid-run server crash + recovery, under a
// sweep of fixed seeds, and the merged trace must satisfy exactly the
// invariants expectations_from(config) derives -- zero violations, with a
// complete trace (no ring overwrites).  Additional campaigns cover the
// ordering and orphan configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "core/config_builder.h"
#include "core/micro/acceptance.h"
#include "core/observe.h"
#include "core/scenario.h"
#include "obs/checker.h"
#include "obs/trace.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

struct Campaign {
  const char* name;
  Config config;
};

Campaign preset(int which) {
  switch (which) {
    case 0: return {"at_least_once", ConfigBuilder::at_least_once().build()};
    case 1: return {"exactly_once", ConfigBuilder::exactly_once().build()};
    default: return {"at_most_once", ConfigBuilder::at_most_once().build()};
  }
}

/// Runs `calls` echo calls under duplication+loss with one crash+recovery
/// cycle of server 0 mid-run, then checks the merged trace.
obs::Report run_campaign(Config config, std::uint64_t seed, obs::Tracer& tracer,
                         int num_servers = 1, int calls = 20) {
  config.retrans_timeout = sim::msec(25);
  ScenarioParams p;
  p.num_servers = num_servers;
  p.config = config;
  p.faults.dup_prob = 0.3;
  p.faults.drop_prob = 0.15;
  p.seed = seed;
  p.tracer = &tracer;
  Scenario s(std::move(p));
  s.scheduler().schedule_after(sim::msec(40), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(120), [&] { s.server(0).recover(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  s.run_for(sim::seconds(2));  // drain stragglers and retransmissions
  EXPECT_EQ(tracer.total_dropped(), 0u)
      << "ring overwrote events; the checker verdict would be unreliable";
  return obs::check(tracer.merged(), expectations_from(s.server(0).grpc().config()));
}

class Fig1Campaign : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Fig1Campaign, NoInvariantViolationsUnderFaultsAndCrash) {
  const Campaign c = preset(std::get<0>(GetParam()));
  const std::uint64_t seed = std::get<1>(GetParam());
  obs::Tracer tracer;
  const obs::Report report = run_campaign(c.config, seed, tracer);
  EXPECT_TRUE(report.ok()) << c.name << " seed " << seed << ": " << report.brief() << " -- "
                           << (report.violations.empty() ? ""
                                                         : report.violations.front().detail);
  // The campaign actually exercised something: calls ran, the server
  // crashed and recovered, and the adversarial schedule bit.
  EXPECT_GT(report.summary.calls_issued, 0u);
  EXPECT_GT(report.summary.execs_committed, 0u);
  EXPECT_EQ(report.summary.crashes, 1u);
  EXPECT_EQ(report.summary.recoveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(PresetsBySeed, Fig1Campaign,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(7u, 21u, 101u)),
                         [](const auto& info) {
                           return std::string(preset(std::get<0>(info.param)).name) + "_seed" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Fig1Campaign, AtLeastOnceShowsDuplicatesTheCheckerTolerates) {
  // The evidence counters must show why at-least-once is the weak row of
  // Fig. 1: duplicates commit, yet its (empty) invariant set is satisfied.
  obs::Tracer tracer;
  const obs::Report report =
      run_campaign(ConfigBuilder::at_least_once().build(), /*seed=*/21, tracer);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.summary.duplicate_commits, 0u)
      << "dup_prob=0.3 without Unique Execution should re-execute something";
}

TEST(Fig1Campaign, ExactlyOnceSuppressesDuplicatesWhileUp) {
  obs::Tracer tracer;
  const obs::Report report =
      run_campaign(ConfigBuilder::exactly_once().build(), /*seed=*/21, tracer);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.summary.duplicates_suppressed, 0u)
      << "Unique Execution should have answered retransmissions from the store";
}

TEST(OrderingCampaign, FifoStackSatisfiesFifoInvariant) {
  Config config = ConfigBuilder::exactly_once().ordering(Ordering::kFifo).build();
  for (const std::uint64_t seed : {7u, 21u, 101u}) {
    obs::Tracer tracer;
    const obs::Report report = run_campaign(config, seed, tracer);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.brief();
  }
}

TEST(OrderingCampaign, TotalOrderStackAgreesAcrossReplicas) {
  // Three replicas, every one must execute the calls in the same order.
  // Total order excludes Bounded Termination (Fig. 4), so no bound here.
  // The crashed member can only rejoin the sequence because Atomic
  // Execution checkpoints the protocol state (see ordering_recovery_test);
  // without it a recovered replica is stuck behind entries it missed, and
  // acceptance_limit=kAll would hang the client.
  Config config = ConfigBuilder::exactly_once()
                      .ordering(Ordering::kTotal)
                      .execution(ExecutionMode::kSerialAtomic)
                      .acceptance_limit(kAll)
                      .build();
  for (const std::uint64_t seed : {7u, 21u}) {
    // Three fault-ridden replicas trace far more events than one (per-handler
    // dispatch records, retransmissions, order announcements): size the rings
    // for the experiment, as trace.h prescribes.
    obs::Tracer tracer(1 << 19);
    const obs::Report report =
        run_campaign(config, seed, tracer, /*num_servers=*/3, /*calls=*/10);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.brief();
    EXPECT_EQ(report.summary.calls_issued, 10u);
    EXPECT_EQ(report.summary.calls_completed, 10u);
    EXPECT_GT(report.summary.execs_committed, 0u);
  }
}

TEST(OrphanCampaign, TerminateOrphansLeavesNoInterferingCommit) {
  Config config = ConfigBuilder::exactly_once()
                      .orphan_handling(OrphanHandling::kTerminateOrphans)
                      .build();
  for (const std::uint64_t seed : {7u, 101u}) {
    obs::Tracer tracer;
    ScenarioParams p;
    p.num_servers = 1;
    p.config = config;
    p.config.retrans_timeout = sim::msec(25);
    p.faults.dup_prob = 0.2;
    p.faults.drop_prob = 0.1;
    p.seed = seed;
    p.tracer = &tracer;
    Scenario s(std::move(p));
    // The client crashes mid-call (orphaning it) and comes back as a new
    // incarnation that issues more calls.
    s.scheduler().schedule_after(sim::msec(5), [&] { s.client_site(0).crash(); });
    s.scheduler().schedule_after(sim::msec(50), [&] { s.client_site(0).recover(); });
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      (void)co_await c.call(s.group(), kOp, Buffer{});
    });
    s.run_for(sim::msec(100));
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      for (int i = 0; i < 5; ++i) (void)co_await c.call(s.group(), kOp, Buffer{});
    });
    s.run_for(sim::seconds(2));
    EXPECT_EQ(tracer.total_dropped(), 0u);
    const obs::Report report =
        obs::check(tracer.merged(), expectations_from(s.server(0).grpc().config()));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.brief() << " -- "
                             << (report.violations.empty() ? ""
                                                           : report.violations.front().detail);
  }
}

TEST(CampaignEvidence, BoundedTerminationIsCheckedWhenConfigured) {
  Config config = ConfigBuilder::read_optimized().build();  // 1s bound
  obs::Tracer tracer;
  const obs::Report report = run_campaign(config, /*seed=*/7, tracer);
  EXPECT_TRUE(report.ok()) << report.brief();
  bool bounded_checked = false;
  for (obs::Invariant inv : report.checked) {
    if (inv == obs::Invariant::kBoundedTermination) bounded_checked = true;
  }
  EXPECT_TRUE(bounded_checked);
}

}  // namespace
}  // namespace ugrpc::core
