// obs::Profile: self-time vs children-time accounting, exact percentiles,
// component grouping by handler-name prefix, kind grouping, JSON emission,
// and Registry export -- all on hand-built span sets with known timestamps.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ugrpc::obs {
namespace {

SpanRecord make_span(std::uint64_t id, std::uint64_t parent, std::uint64_t ns_begin,
                     std::uint64_t ns_end, SpanKind kind, std::uint32_t name = 0) {
  SpanRecord s;
  s.id = id;
  s.trace = 1;
  s.parent = parent;
  s.ns_begin = ns_begin;
  s.ns_end = ns_end;
  s.site = ProcessId{1};
  s.kind = kind;
  s.name = name;
  return s;
}

TEST(Profile, SelfTimeExcludesDirectChildren) {
  Tracer names;
  const std::uint32_t handler = names.site(ProcessId{1}).intern("Comp.handler");
  std::vector<SpanRecord> spans;
  // Parent [0, 1000] with two direct children [100, 400] and [500, 600]:
  // wall 1000, children 400, self 600.
  spans.push_back(make_span(10, 0, 0, 1000, SpanKind::kHandler, handler));
  spans.push_back(make_span(11, 10, 100, 400, SpanKind::kSend));
  spans.push_back(make_span(12, 10, 500, 600, SpanKind::kSend));
  Profile prof;
  prof.add_spans(spans, names);

  const auto comp = prof.by_component();
  ASSERT_EQ(comp.count("Comp"), 1u);
  const Profile::Stats& st = comp.at("Comp");
  EXPECT_EQ(st.count, 1u);
  EXPECT_EQ(st.wall_total, 1000u);
  EXPECT_EQ(st.self_total, 600u);
  EXPECT_EQ(st.children_total(), 400u);

  const auto kinds = prof.by_kind();
  ASSERT_EQ(kinds.count("send"), 1u);
  EXPECT_EQ(kinds.at("send").count, 2u);
  EXPECT_EQ(kinds.at("send").wall_total, 400u);
  // Leaf spans have no children: self == wall.
  EXPECT_EQ(kinds.at("send").self_total, 400u);
}

TEST(Profile, SelfTimeClampsAtZeroWhenChildrenOverlap) {
  // Two "children" each as long as the parent (concurrent fibers charged to
  // the same parent): children sum beyond wall must clamp self at 0, not
  // wrap around.
  Tracer names;
  const std::uint32_t handler = names.site(ProcessId{1}).intern("Comp.h");
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(10, 0, 0, 100, SpanKind::kHandler, handler));
  spans.push_back(make_span(11, 10, 0, 100, SpanKind::kSend));
  spans.push_back(make_span(12, 10, 0, 100, SpanKind::kSend));
  Profile prof;
  prof.add_spans(spans, names);
  EXPECT_EQ(prof.by_component().at("Comp").self_total, 0u);
}

TEST(Profile, OpenSpansAreSkipped) {
  Tracer names;
  const std::uint32_t handler = names.site(ProcessId{1}).intern("Comp.h");
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(10, 0, 0, 0, SpanKind::kHandler, handler));  // still open
  Profile prof;
  prof.add_spans(spans, names);
  EXPECT_TRUE(prof.empty());
  EXPECT_EQ(prof.by_component().count("Comp"), 0u);
}

TEST(Profile, PercentilesAreExactOnKnownSamples) {
  Tracer names;
  const std::uint32_t handler = names.site(ProcessId{1}).intern("C.h");
  std::vector<SpanRecord> spans;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    spans.push_back(make_span(100 + i, 0, 0, i, SpanKind::kHandler, handler));
  }
  Profile prof;
  prof.add_spans(spans, names);
  const Profile::Stats st = prof.by_component().at("C");
  EXPECT_EQ(st.count, 100u);
  // rank = round(q * (n-1)) on the sorted samples 1..100.
  EXPECT_EQ(st.wall_p50, 51u);
  EXPECT_EQ(st.wall_p95, 95u);
  EXPECT_EQ(st.wall_p99, 99u);
  EXPECT_EQ(st.wall_max, 100u);
  EXPECT_EQ(st.wall_total, 5050u);
}

TEST(Profile, ComponentIsPrefixBeforeFirstDot) {
  Tracer names;
  SiteTrace& st = names.site(ProcessId{1});
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, 0, 10, SpanKind::kHandler, st.intern("Acceptance.msg")));
  spans.push_back(make_span(2, 0, 0, 20, SpanKind::kHandler, st.intern("Acceptance.new_call")));
  spans.push_back(make_span(3, 0, 0, 30, SpanKind::kTimer, st.intern("ReliableComm.timeout")));
  spans.push_back(make_span(4, 0, 0, 40, SpanKind::kHandler, st.intern("nodot")));
  Profile prof;
  prof.add_spans(spans, names);
  const auto comp = prof.by_component();
  ASSERT_EQ(comp.size(), 3u);
  EXPECT_EQ(comp.at("Acceptance").count, 2u);
  EXPECT_EQ(comp.at("ReliableComm").count, 1u) << "timer spans attribute to their component";
  EXPECT_EQ(comp.at("nodot").count, 1u);
  EXPECT_EQ(prof.by_handler().at("Acceptance.msg").count, 1u);
}

TEST(Profile, ToJsonEscapesKeysAndContainsEveryField) {
  Tracer names;
  const std::uint32_t evil = names.site(ProcessId{1}).intern("Evil\"Comp.h");
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, 0, 10, SpanKind::kHandler, evil));
  Profile prof;
  prof.add_spans(spans, names);
  const std::string json = prof.to_json();
  EXPECT_NE(json.find("\"by_component\""), std::string::npos);
  EXPECT_NE(json.find("\"by_kind\""), std::string::npos);
  EXPECT_NE(json.find("\"by_handler\""), std::string::npos);
  EXPECT_NE(json.find("Evil\\\"Comp"), std::string::npos) << "keys must be JSON-escaped";
  for (const char* field : {"\"count\":", "\"wall_total_ns\":", "\"wall_p50_ns\":",
                            "\"wall_p99_ns\":", "\"self_total_ns\":", "\"self_p50_ns\":",
                            "\"self_p99_ns\":", "\"children_total_ns\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(Profile, ExportToRegistryAddsHistograms) {
  Tracer names;
  const std::uint32_t handler = names.site(ProcessId{1}).intern("Comp.h");
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, 0, 100, SpanKind::kHandler, handler));
  spans.push_back(make_span(2, 1, 0, 40, SpanKind::kSend));
  Profile prof;
  prof.add_spans(spans, names);
  Registry reg;
  prof.export_to(reg);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("span.Comp.self_ns"), std::string::npos);
  EXPECT_NE(json.find("span.kind.send.wall_ns"), std::string::npos);
}

TEST(Profile, AddFoldsTracerSpansDirectly) {
  Tracer tracer;
  SiteTrace& st = tracer.site(ProcessId{3});
  const std::uint64_t id =
      st.span_open(sim::Time{1}, SpanKind::kHandler, st.intern("X.h"), SpanCtx{1, 0});
  st.span_close(id, sim::Time{2});
  Profile prof;
  prof.add(tracer);
  EXPECT_EQ(prof.by_component().at("X").count, 1u);
}

}  // namespace
}  // namespace ugrpc::obs
