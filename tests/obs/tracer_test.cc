// Unit tests for the obs::Tracer / obs::SiteTrace ring recorder: ring-wrap
// retention, global sequence ordering across sites, string interning,
// exact per-kind counters, and the JSON dump shape.
#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"

namespace ugrpc::obs {
namespace {

constexpr ProcessId kSiteA{1};
constexpr ProcessId kSiteB{2};

TEST(SiteTrace, RecordsInOrderWithGlobalSequence) {
  Tracer tracer;
  SiteTrace& a = tracer.site(kSiteA);
  SiteTrace& b = tracer.site(kSiteB);
  a.record(sim::usec(10), Kind::kCallIssued, /*call=*/7);
  b.record(sim::usec(11), Kind::kExecStarted, /*call=*/7);
  a.record(sim::usec(20), Kind::kCallCompleted, /*call=*/7);

  const auto merged = tracer.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].kind, Kind::kCallIssued);
  EXPECT_EQ(merged[1].kind, Kind::kExecStarted);
  EXPECT_EQ(merged[2].kind, Kind::kCallCompleted);
  EXPECT_EQ(merged[0].site, kSiteA);
  EXPECT_EQ(merged[1].site, kSiteB);
  // Sequence numbers are strictly increasing across sites.
  EXPECT_LT(merged[0].seq, merged[1].seq);
  EXPECT_LT(merged[1].seq, merged[2].seq);
}

TEST(SiteTrace, SiteReferenceIsStable) {
  Tracer tracer;
  SiteTrace& first = tracer.site(kSiteA);
  // Creating many other sites must not invalidate the first reference.
  for (std::uint32_t i = 10; i < 60; ++i) (void)tracer.site(ProcessId{i});
  EXPECT_EQ(&first, &tracer.site(kSiteA));
}

TEST(SiteTrace, RingWrapKeepsNewestAndCountsDropped) {
  Tracer tracer(/*per_site_capacity=*/4);
  SiteTrace& s = tracer.site(kSiteA);
  for (std::uint64_t i = 1; i <= 10; ++i) s.record(sim::usec(static_cast<sim::Time>(i)), Kind::kMsgSent, /*call=*/i);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.dropped(), 6u);
  EXPECT_EQ(tracer.total_dropped(), 6u);
  const auto events = s.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(events[0].call, 7u);
  EXPECT_EQ(events[3].call, 10u);
  for (std::size_t i = 1; i < events.size(); ++i) EXPECT_LT(events[i - 1].seq, events[i].seq);
}

TEST(SiteTrace, PerKindCountersAreExactDespiteWrap) {
  Tracer tracer(/*per_site_capacity=*/2);
  SiteTrace& s = tracer.site(kSiteA);
  for (int i = 0; i < 9; ++i) s.record(0, Kind::kMsgDelivered);
  s.record(0, Kind::kMsgDropped);
  // The ring only holds 2 events but the counters saw all 10.
  EXPECT_EQ(tracer.count(Kind::kMsgDelivered), 9u);
  EXPECT_EQ(tracer.count(Kind::kMsgDropped), 1u);
  EXPECT_EQ(tracer.count(Kind::kMsgSent), 0u);
}

TEST(Tracer, InternDeduplicatesAndResolves) {
  Tracer tracer;
  const std::uint32_t a = tracer.intern("RPCMain.msg_from_user");
  const std::uint32_t b = tracer.intern("Acceptance.handle_new_call");
  const std::uint32_t a2 = tracer.intern("RPCMain.msg_from_user");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(tracer.name(a), "RPCMain.msg_from_user");
  EXPECT_EQ(tracer.name(0), "");
  EXPECT_EQ(tracer.name(9999), "");
  // SiteTrace::intern goes through the shared table.
  EXPECT_EQ(tracer.site(kSiteA).intern("RPCMain.msg_from_user"), a);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tracer(/*per_site_capacity=*/2);
  SiteTrace& s = tracer.site(kSiteA);
  for (int i = 0; i < 5; ++i) s.record(0, Kind::kCallIssued);
  tracer.clear();
  EXPECT_EQ(tracer.merged().size(), 0u);
  EXPECT_EQ(tracer.count(Kind::kCallIssued), 0u);
  EXPECT_EQ(tracer.total_dropped(), 0u);
  // The ring reference stays usable after clear.
  s.record(0, Kind::kCallIssued);
  EXPECT_EQ(tracer.merged().size(), 1u);
}

TEST(Tracer, DumpJsonNamesKindsAndFields) {
  Tracer tracer;
  SiteTrace& s = tracer.site(kSiteA);
  s.record(sim::usec(42), Kind::kExecCommitted, /*call=*/3, /*a=*/1, /*b=*/2,
           s.intern("two_step"));
  const std::string json = tracer.dump_json();
  EXPECT_NE(json.find("\"kind\":\"exec_committed\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"call\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"two_step\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"site\":1"), std::string::npos) << json;
}

TEST(Tracer, KindNamesCoverEveryKind) {
  for (std::size_t k = 0; k < kKindCount; ++k) {
    EXPECT_FALSE(kind_name(static_cast<Kind>(k)).empty()) << "kind " << k;
  }
}

}  // namespace
}  // namespace ugrpc::obs
