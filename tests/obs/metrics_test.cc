// Unit tests for obs::Counter / obs::Histogram / obs::Registry.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace ugrpc::obs {
namespace {

TEST(Counter, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Histogram, TracksCountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);  // empty histogram
  for (std::uint64_t v : {5u, 10u, 15u}) h.add(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 30u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, QuantileIsBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.add(3);    // bucket of 3: upper bound 3
  for (int i = 0; i < 10; ++i) h.add(1000);  // far tail
  // p50 lands in the low bucket; its upper bound must cover the value but
  // stay well below the tail.
  EXPECT_GE(h.quantile(0.5), 3u);
  EXPECT_LT(h.quantile(0.5), 1000u);
  // p99 has to reach into the tail bucket.
  EXPECT_GE(h.quantile(0.99), 1000u);
  // Degenerate quantiles.
  EXPECT_GE(h.quantile(1.0), 1000u);
}

TEST(Registry, StableReferencesAndJson) {
  Registry reg;
  Counter& sent = reg.counter("net.sent");
  Histogram& lat = reg.histogram("call.latency_us");
  std::uint64_t external = 7;
  reg.gauge("net.unroutable", [&external] { return external; });
  sent.add(3);
  lat.add(100);
  lat.add(200);
  // References survive further insertions.
  for (int i = 0; i < 20; ++i) (void)reg.counter("c" + std::to_string(i));
  EXPECT_EQ(&sent, &reg.counter("net.sent"));
  sent.add(1);
  EXPECT_EQ(reg.counter("net.sent").value(), 4u);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"net.sent\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"net.unroutable\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"call.latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
}

TEST(Registry, JsonEscapesHostileMetricNames) {
  // Metric names may embed user-provided labels (e.g. group names); a quote
  // or control character in one must not corrupt the JSON document.
  Registry reg;
  reg.counter("evil\"name\\group\n").add(1);
  reg.histogram("hist\twith\ttabs").add(5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("evil\\\"name\\\\group\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("hist\\twith\\ttabs"), std::string::npos) << json;
  EXPECT_EQ(json.find("evil\"name"), std::string::npos) << "unescaped quote leaked";
}

}  // namespace
}  // namespace ugrpc::obs
