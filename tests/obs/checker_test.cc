// Checker unit tests against hand-crafted traces (satellite of ISSUE 3):
// every invariant has at least one violating trace the checker must flag
// and a near-miss positive control it must pass.  The campaigns
// (fault_campaign_test.cc) only prove "no false positives on real runs";
// these traces prove the checker actually detects violations.
#include <gtest/gtest.h>

#include <vector>

#include "obs/checker.h"
#include "obs/trace.h"

namespace ugrpc::obs {
namespace {

constexpr ProcessId kClient{10};
constexpr ProcessId kServer{1};
constexpr ProcessId kServer2{2};

/// Builds a sequence-ordered event vector without a Tracer.
struct TraceBuilder {
  std::vector<Event> events;
  std::uint64_t seq = 1;

  TraceBuilder& add(ProcessId site, sim::Time t, Kind kind, std::uint64_t call = 0,
                    std::uint64_t a = 0, std::uint64_t b = 0) {
    Event e;
    e.seq = seq++;
    e.time = t;
    e.site = site;
    e.kind = kind;
    e.call = call;
    e.a = a;
    e.b = b;
    events.push_back(e);
    return *this;
  }
};

Expect expect_all() {
  Expect x;
  x.unique_execution = true;
  x.atomic_execution = true;
  x.termination_bound = sim::seconds(1);
  x.fifo_order = true;
  x.total_order = true;
  x.terminate_orphans = true;
  return x;
}

TEST(Checker, CleanCallPassesEveryInvariant) {
  TraceBuilder t;
  t.add(kClient, sim::usec(0), Kind::kCallIssued, 1, /*group=*/1, /*client inc=*/1)
      .add(kServer, sim::usec(10), Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, sim::usec(20), Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kClient, sim::usec(30), Kind::kCallCompleted, 1, /*status=*/0);
  const Report r = check(t.events, expect_all());
  EXPECT_TRUE(r.ok()) << r.brief();
  EXPECT_EQ(r.checked.size(), 6u);
  EXPECT_EQ(r.summary.calls_issued, 1u);
  EXPECT_EQ(r.summary.calls_ok, 1u);
  EXPECT_EQ(r.summary.execs_committed, 1u);
  EXPECT_EQ(r.summary.duplicate_commits, 0u);
  EXPECT_EQ(r.summary.max_call_latency, sim::usec(30));
}

TEST(Checker, DuplicateCommitViolatesUniqueExecution) {
  TraceBuilder t;
  t.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kServer, 30, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 40, Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kClient, 50, Kind::kCallCompleted, 1, 0);
  Expect x;
  x.unique_execution = true;
  const Report r = check(t.events, x);
  EXPECT_EQ(r.count(Invariant::kUniqueExecution), 1u);
  EXPECT_EQ(r.summary.duplicate_commits, 1u);
  // The same trace is legal for an at-least-once stack.
  EXPECT_TRUE(check(t.events, Expect{}).ok());
}

TEST(Checker, ReExecutionAcrossCrashIsLegalWithoutAtomic) {
  // Exactly-once (unique, non-atomic): duplicate tables are volatile, so a
  // crash+recovery may re-execute a call.  Unique is scoped per server
  // incarnation -- no violation.  At-most-once (atomic) checkpoints the
  // tables, so the same trace violates unique execution.
  TraceBuilder t;
  t.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kServer, 30, Kind::kSiteCrashed, 0, /*inc=*/1)
      .add(kServer, 40, Kind::kSiteRecovered, 0, /*inc=*/2)
      .add(kServer, 50, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 60, Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kClient, 70, Kind::kCallCompleted, 1, 0);
  Expect exactly_once;
  exactly_once.unique_execution = true;
  EXPECT_TRUE(check(t.events, exactly_once).ok());
  EXPECT_EQ(check(t.events, exactly_once).summary.duplicate_commits, 1u);

  Expect at_most_once = exactly_once;
  at_most_once.atomic_execution = true;
  EXPECT_EQ(check(t.events, at_most_once).count(Invariant::kUniqueExecution), 1u);
}

TEST(Checker, CommitWithoutStartViolatesAtomic) {
  // A commit in incarnation 2 for an execution started in incarnation 1:
  // the partial execution survived the crash instead of being rolled back.
  TraceBuilder t;
  t.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kSiteCrashed, 0, 1)
      .add(kServer, 30, Kind::kSiteRecovered, 0, 2)
      .add(kServer, 35, Kind::kStateRestored, 0, 1)
      .add(kServer, 40, Kind::kExecCommitted, 1, kClient.value(), 1);
  Expect x;
  x.atomic_execution = true;
  const Report r = check(t.events, x);
  EXPECT_EQ(r.count(Invariant::kAtomicExecution), 1u);
}

TEST(Checker, CommitBeforeRollbackAfterInterruptedExecutionViolatesAtomic) {
  // Crash interrupts call 1 mid-execution; the recovered incarnation must
  // restore state before committing anything else.
  TraceBuilder bad;
  bad.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kClient, 0, Kind::kCallIssued, 2)
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kSiteCrashed, 0, 1)
      .add(kServer, 30, Kind::kSiteRecovered, 0, 2)
      .add(kServer, 40, Kind::kExecStarted, 2, kClient.value(), 1)
      .add(kServer, 50, Kind::kExecCommitted, 2, kClient.value(), 1);
  Expect x;
  x.atomic_execution = true;
  EXPECT_EQ(check(bad.events, x).count(Invariant::kAtomicExecution), 1u);

  // Positive control: the same history with a rollback first is clean.
  TraceBuilder good;
  good.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kClient, 0, Kind::kCallIssued, 2)
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kSiteCrashed, 0, 1)
      .add(kServer, 30, Kind::kSiteRecovered, 0, 2)
      .add(kServer, 35, Kind::kStateRestored, 0, 1)
      .add(kServer, 40, Kind::kExecStarted, 2, kClient.value(), 1)
      .add(kServer, 50, Kind::kExecCommitted, 2, kClient.value(), 1);
  EXPECT_TRUE(check(good.events, x).ok());
}

TEST(Checker, OrphanKillIsNotACrashInterruptedExecution) {
  // Terminate Orphans deliberately abandons an execution; a later crash
  // must not demand a rollback for it.
  TraceBuilder t;
  t.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kOrphanKilled, 0, kClient.value(), /*fiber=*/7)
      .add(kServer, 30, Kind::kSiteCrashed, 0, 1)
      .add(kServer, 40, Kind::kSiteRecovered, 0, 2)
      .add(kServer, 50, Kind::kExecStarted, 1, kClient.value(), 2)
      .add(kServer, 60, Kind::kExecCommitted, 1, kClient.value(), 2);
  Expect x;
  x.atomic_execution = true;
  EXPECT_TRUE(check(t.events, x).ok());
  EXPECT_EQ(check(t.events, x).summary.orphans_killed, 1u);
}

TEST(Checker, LateCompletionViolatesBoundedTermination) {
  TraceBuilder t;
  t.add(kClient, sim::usec(0), Kind::kCallIssued, 1)
      .add(kClient, sim::msec(500), Kind::kCallCompleted, 1, /*status=*/2);
  Expect x;
  x.termination_bound = sim::msec(100);
  const Report r = check(t.events, x);
  EXPECT_EQ(r.count(Invariant::kBoundedTermination), 1u);
  // Within the bound (plus slack) is fine.
  x.termination_bound = sim::msec(500);
  EXPECT_TRUE(check(t.events, x).ok());
}

TEST(Checker, NeverCompletedCallViolatesBoundedTermination) {
  TraceBuilder t;
  t.add(kClient, sim::usec(0), Kind::kCallIssued, 1)
      .add(kServer, sim::seconds(10), Kind::kMsgDelivered);  // trace extends past the deadline
  Expect x;
  x.termination_bound = sim::msec(100);
  EXPECT_EQ(check(t.events, x).count(Invariant::kBoundedTermination), 1u);
}

TEST(Checker, BoundedTerminationExemptions) {
  Expect x;
  x.termination_bound = sim::msec(100);
  // Exemption 1: the trace ends before the deadline -- no verdict possible.
  TraceBuilder truncated;
  truncated.add(kClient, sim::usec(0), Kind::kCallIssued, 1)
      .add(kClient, sim::msec(50), Kind::kMsgSent);
  EXPECT_TRUE(check(truncated.events, x).ok());
  // Exemption 2: the client crashed after issuing -- nobody is waiting.
  TraceBuilder crashed;
  crashed.add(kClient, sim::usec(0), Kind::kCallIssued, 1)
      .add(kClient, sim::msec(10), Kind::kSiteCrashed, 0, 1)
      .add(kServer, sim::seconds(10), Kind::kMsgDelivered);
  EXPECT_TRUE(check(crashed.events, x).ok());
}

TEST(Checker, OutOfOrderStartViolatesFifo) {
  // Same client incarnation, same server incarnation: call 5 starts before
  // call 3 of the same stream.
  TraceBuilder t;
  t.add(kServer, 10, Kind::kExecStarted, 5, kClient.value(), /*client inc=*/1)
      .add(kServer, 20, Kind::kExecStarted, 3, kClient.value(), 1);
  Expect x;
  x.fifo_order = true;
  EXPECT_EQ(check(t.events, x).count(Invariant::kFifoOrder), 1u);

  // A new client incarnation restarts the stream: not a violation.
  TraceBuilder restart;
  restart.add(kServer, 10, Kind::kExecStarted, 5, kClient.value(), 1)
      .add(kServer, 20, Kind::kExecStarted, 3, kClient.value(), /*client inc=*/2);
  EXPECT_TRUE(check(restart.events, x).ok());
}

TEST(Checker, OppositeExecutionOrdersViolateTotalOrder) {
  TraceBuilder t;
  t.add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kExecStarted, 2, kClient.value(), 1)
      .add(kServer2, 30, Kind::kExecStarted, 2, kClient.value(), 1)
      .add(kServer2, 40, Kind::kExecStarted, 1, kClient.value(), 1);
  Expect x;
  x.total_order = true;
  EXPECT_EQ(check(t.events, x).count(Invariant::kTotalOrder), 1u);

  // Same order at both sites: clean (restarts by retransmission dedup'd).
  TraceBuilder same;
  same.add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kExecStarted, 2, kClient.value(), 1)
      .add(kServer2, 30, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer2, 35, Kind::kExecStarted, 1, kClient.value(), 1)  // re-delivery
      .add(kServer2, 40, Kind::kExecStarted, 2, kClient.value(), 1);
  EXPECT_TRUE(check(same.events, x).ok());
}

TEST(Checker, SurvivingOrphanCommitViolatesOrphanTermination) {
  // Client incarnation 2 already started executing at the site; a leftover
  // execution of incarnation 1 then commits -- the orphan interfered.
  TraceBuilder t;
  t.add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), /*client inc=*/1)
      .add(kServer, 20, Kind::kExecStarted, 2, kClient.value(), /*client inc=*/2)
      .add(kServer, 30, Kind::kExecCommitted, 2, kClient.value(), 2)
      .add(kServer, 40, Kind::kExecCommitted, 1, kClient.value(), 1);
  Expect x;
  x.terminate_orphans = true;
  EXPECT_EQ(check(t.events, x).count(Invariant::kOrphanTermination), 1u);

  // Committing before the new incarnation appears is fine.
  TraceBuilder good;
  good.add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 20, Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kServer, 30, Kind::kExecStarted, 2, kClient.value(), 2)
      .add(kServer, 40, Kind::kExecCommitted, 2, kClient.value(), 2);
  EXPECT_TRUE(check(good.events, x).ok());
}

TEST(Checker, SummaryCountsEvidence) {
  TraceBuilder t;
  t.add(kClient, 0, Kind::kCallIssued, 1)
      .add(kClient, 5, Kind::kRetransmit, 1, kServer.value())
      .add(kServer, 10, Kind::kExecStarted, 1, kClient.value(), 1)
      .add(kServer, 15, Kind::kDupSuppressed, 1)
      .add(kServer, 20, Kind::kExecCommitted, 1, kClient.value(), 1)
      .add(kServer, 25, Kind::kCheckpoint, 0, 3)
      .add(kClient, 30, Kind::kCallCompleted, 1, 0)
      .add(kServer, 40, Kind::kSiteCrashed, 0, 1)
      .add(kServer, 50, Kind::kSiteRecovered, 0, 2);
  const Summary s = summarize(t.events);
  EXPECT_EQ(s.calls_issued, 1u);
  EXPECT_EQ(s.calls_completed, 1u);
  EXPECT_EQ(s.retransmissions, 1u);
  EXPECT_EQ(s.duplicates_suppressed, 1u);
  EXPECT_EQ(s.checkpoints, 1u);
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.recoveries, 1u);
}

TEST(Checker, BriefNamesCheckedInvariants) {
  Expect x;
  x.unique_execution = true;
  const Report r = check({}, x);
  EXPECT_EQ(r.brief(), "0 violations (unique-execution checked)");
  EXPECT_EQ(check({}, Expect{}).brief(), "0 violations (nothing checked)");
}

}  // namespace
}  // namespace ugrpc::obs
