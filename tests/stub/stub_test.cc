// Integration tests of the typed stubs over a live scenario.
#include "stub/stub.h"

#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::stub {
namespace {

using core::Scenario;
using core::ScenarioParams;

constexpr Operation<std::uint64_t, std::uint64_t> kSquare{OpId{1}, "square"};
constexpr Operation<std::string, std::string> kGreet{OpId{2}, "greet"};
constexpr Operation<std::vector<std::uint64_t>, std::uint64_t> kSum{OpId{3}, "sum"};

/// Each server site builds a Dispatcher with its volatile stack; the user
/// protocol's procedure closure co-owns it.
core::Site::AppSetup math_service() {
  return [](core::UserProtocol& user, core::Site&) {
    auto dispatcher = std::make_shared<Dispatcher>();
    dispatcher->handle<std::uint64_t, std::uint64_t>(
        kSquare, [](std::uint64_t v) -> sim::Task<std::uint64_t> { co_return v * v; });
    dispatcher->handle<std::string, std::string>(
        kGreet, [](std::string name) -> sim::Task<std::string> { co_return "hello " + name; });
    dispatcher->handle<std::vector<std::uint64_t>, std::uint64_t>(
        kSum, [](std::vector<std::uint64_t> values) -> sim::Task<std::uint64_t> {
          std::uint64_t total = 0;
          for (std::uint64_t v : values) total += v;
          co_return total;
        });
    Dispatcher::install_owned(std::move(dispatcher), user);
  };
}

ScenarioParams typed_params() {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = core::kAll;
  p.server_app = math_service();
  return p;
}

TEST(Stub, TypedInvocationRoundTrips) {
  Scenario s(typed_params());
  TypedResult<std::uint64_t> squared;
  TypedResult<std::string> greeting;
  s.run_client(0, [&](core::Client& c) -> sim::Task<> {
    squared = co_await invoke(c, s.group(), kSquare, std::uint64_t{12});
    greeting = co_await invoke(c, s.group(), kGreet, std::string("world"));
  });
  EXPECT_TRUE(squared.ok());
  EXPECT_EQ(squared.value, 144u);
  EXPECT_TRUE(greeting.ok());
  EXPECT_EQ(greeting.value, "hello world");
}

TEST(Stub, ContainerArgumentsMarshalCorrectly) {
  Scenario s(typed_params());
  TypedResult<std::uint64_t> sum;
  s.run_client(0, [&](core::Client& c) -> sim::Task<> {
    // Built outside the co_await: GCC 12 miscompiles initializer_list
    // temporaries in coroutine await expressions ("array used as
    // initializer").
    std::vector<std::uint64_t> values{1, 2, 3, 4, 5};
    sum = co_await invoke(c, s.group(), kSum, std::move(values));
  });
  EXPECT_TRUE(sum.ok());
  EXPECT_EQ(sum.value, 15u);
}

TEST(Stub, TypedCollationFoldsAcrossGroup) {
  // Servers return v + server_id; fold with max: the collated result is the
  // largest group member's answer.
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = core::kAll;
  p.server_app = [](core::UserProtocol& user, core::Site& site) {
    auto dispatcher = std::make_shared<Dispatcher>();
    dispatcher->handle<std::uint64_t, std::uint64_t>(
        kSquare, [&site](std::uint64_t v) -> sim::Task<std::uint64_t> {
          co_return v + site.id().value();
        });
    Dispatcher::install_owned(std::move(dispatcher), user);
  };
  auto [fold, init] = typed_collation<std::uint64_t>(
      [](std::uint64_t acc, std::uint64_t reply) { return std::max(acc, reply); }, 0);
  p.config.collation = std::move(fold);
  p.config.collation_init = std::move(init);
  Scenario s(std::move(p));
  TypedResult<std::uint64_t> result;
  s.run_client(0, [&](core::Client& c) -> sim::Task<> {
    result = co_await invoke(c, s.group(), kSquare, std::uint64_t{100});
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.value, 103u) << "max over 101,102,103";
}

TEST(Stub, TimeoutSurfacesInTypedResult) {
  ScenarioParams p = typed_params();
  p.config.termination_bound = sim::msec(100);
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  TypedResult<std::uint64_t> result;
  s.run_client(0, [&](core::Client& c) -> sim::Task<> {
    result = co_await invoke(c, s.group(), kSquare, std::uint64_t{5});
  });
  EXPECT_EQ(result.status, Status::kTimeout);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace ugrpc::stub
