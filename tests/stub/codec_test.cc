// Unit tests for the typed serialization layer.
#include "stub/codec.h"

#include <gtest/gtest.h>

namespace ugrpc::stub {
namespace {

template <typename T>
void expect_round_trip(const T& value) {
  EXPECT_EQ(unmarshal<T>(marshal<T>(value)), value);
}

TEST(Codec, IntegralRoundTrips) {
  expect_round_trip<std::uint8_t>(255);
  expect_round_trip<std::uint16_t>(65535);
  expect_round_trip<std::uint32_t>(4000000000u);
  expect_round_trip<std::uint64_t>(~0ULL);
  expect_round_trip<std::int32_t>(-2000000000);
  expect_round_trip<std::int64_t>(std::numeric_limits<std::int64_t>::min());
}

TEST(Codec, BoolDoubleString) {
  expect_round_trip(true);
  expect_round_trip(false);
  expect_round_trip(3.14159);
  expect_round_trip(std::string("hello world"));
  expect_round_trip(std::string());
}

TEST(Codec, VectorRoundTrips) {
  expect_round_trip(std::vector<std::uint32_t>{1, 2, 3});
  expect_round_trip(std::vector<std::string>{"a", "", "ccc"});
  expect_round_trip(std::vector<std::uint32_t>{});
  expect_round_trip(std::vector<std::vector<std::uint32_t>>{{1}, {}, {2, 3}});
}

TEST(Codec, PairOptionalMap) {
  expect_round_trip(std::pair<std::string, std::uint64_t>{"key", 42});
  expect_round_trip(std::optional<std::string>{"present"});
  expect_round_trip(std::optional<std::string>{});
  expect_round_trip(std::map<std::string, std::uint64_t>{{"a", 1}, {"b", 2}});
}

TEST(Codec, UnmarshalOfGarbageThrows) {
  Buffer junk;
  Writer(junk).u8(1);
  EXPECT_THROW((void)unmarshal<std::string>(junk), CodecError);
}

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

}  // namespace

// User-defined type support via specialization.
template <>
struct Codec<Point> {
  static void encode(Writer& w, const Point& p) {
    w.i64(p.x);
    w.i64(p.y);
  }
  static Point decode(Reader& r) {
    Point p;
    p.x = r.i64();
    p.y = r.i64();
    return p;
  }
};

namespace {

TEST(Codec, UserDefinedTypeRoundTrips) {
  expect_round_trip(Point{-5, 77});
  expect_round_trip(std::vector<Point>{{1, 2}, {3, 4}});
}

}  // namespace
}  // namespace ugrpc::stub
