// Unit tests for the event framework: registration, priority order,
// blocking sequential invocation, cancel_event, deregistration, timeouts.
#include "runtime/framework.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.h"
#include "net/sim_transport.h"
#include "runtime/composite.h"
#include "runtime/micro_protocol.h"
#include "sim/sync.h"

namespace ugrpc::runtime {
namespace {

constexpr EventId kPing{1};
constexpr EventId kOther{2};

struct Fixture {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw{transport, DomainId{1}};
};

Handler appender(std::vector<int>& out, int tag) {
  return [&out, tag](EventContext&) -> sim::Task<> {
    out.push_back(tag);
    co_return;
  };
}

sim::Task<> run_trigger(Framework& fw, EventId ev, EventArg arg, bool* completed = nullptr) {
  const bool ok = co_await fw.trigger(ev, arg);
  if (completed != nullptr) *completed = ok;
}

TEST(Framework, HandlersRunInAscendingPriorityOrder) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "c", 30, appender(out, 3));
  f.fw.register_handler(kPing, "a", 10, appender(out, 1));
  f.fw.register_handler(kPing, "b", 20, appender(out, 2));
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 3}));
}

TEST(Framework, DefaultPriorityRunsLast) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "default", appender(out, 99));
  f.fw.register_handler(kPing, "late", 500, appender(out, 2));
  f.fw.register_handler(kPing, "early", 1, appender(out, 1));
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 99}));
}

TEST(Framework, EqualPriorityRunsInRegistrationOrder) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "first", 5, appender(out, 1));
  f.fw.register_handler(kPing, "second", 5, appender(out, 2));
  f.fw.register_handler(kPing, "third", 5, appender(out, 3));
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 3}));
}

TEST(Framework, TriggerOnlyRunsMatchingEvent) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "ping", appender(out, 1));
  f.fw.register_handler(kOther, "other", appender(out, 2));
  f.sched.spawn(run_trigger(f.fw, kOther, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({2}));
}

TEST(Framework, ArgumentIsSharedMutablyAcrossHandlers) {
  Fixture f;
  f.fw.register_handler(kPing, "inc1", 1, [](EventContext& ctx) -> sim::Task<> {
    ctx.arg_as<int>() += 1;
    co_return;
  });
  f.fw.register_handler(kPing, "dbl", 2, [](EventContext& ctx) -> sim::Task<> {
    ctx.arg_as<int>() *= 2;
    co_return;
  });
  int value = 10;
  f.sched.spawn(run_trigger(f.fw, kPing, EventArg::ref(value)));
  f.sched.run();
  EXPECT_EQ(value, 22);
}

TEST(Framework, CancelSkipsRemainingHandlers) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "a", 1, appender(out, 1));
  f.fw.register_handler(kPing, "cancel", 2, [](EventContext& ctx) -> sim::Task<> {
    ctx.cancel();
    co_return;
  });
  f.fw.register_handler(kPing, "never", 3, appender(out, 3));
  bool completed = true;
  f.sched.spawn(run_trigger(f.fw, kPing, {}, &completed));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1}));
  EXPECT_FALSE(completed) << "trigger must report cancellation";
}

TEST(Framework, NestedTriggerHasIndependentCancellation) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kOther, "inner-cancel", 1, [](EventContext& ctx) -> sim::Task<> {
    ctx.cancel();
    co_return;
  });
  f.fw.register_handler(kPing, "outer-a", 1, [&f, &out](EventContext&) -> sim::Task<> {
    out.push_back(1);
    co_await f.fw.trigger(kOther, {});
    co_return;
  });
  f.fw.register_handler(kPing, "outer-b", 2, appender(out, 2));
  bool completed = false;
  f.sched.spawn(run_trigger(f.fw, kPing, {}, &completed));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2})) << "inner cancel must not cancel the outer event";
  EXPECT_TRUE(completed);
}

TEST(Framework, BlockingHandlerBlocksTheChain) {
  Fixture f;
  sim::Semaphore gate(f.sched, 0);
  std::vector<int> out;
  f.fw.register_handler(kPing, "blocker", 1, [&](EventContext&) -> sim::Task<> {
    out.push_back(1);
    co_await gate.acquire();
    out.push_back(2);
  });
  f.fw.register_handler(kPing, "after", 2, appender(out, 3));
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1})) << "chain must be blocked at the semaphore";
  gate.release();
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 3}));
}

TEST(Framework, DeregisterById) {
  Fixture f;
  std::vector<int> out;
  HandlerId id = f.fw.register_handler(kPing, "a", 1, appender(out, 1));
  f.fw.register_handler(kPing, "b", 2, appender(out, 2));
  f.fw.deregister(id);
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({2}));
}

TEST(Framework, DeregisterByName) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "victim", 1, appender(out, 1));
  f.fw.register_handler(kPing, "keeper", 2, appender(out, 2));
  f.fw.deregister(kPing, "victim");
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({2}));
}

TEST(Framework, DeregisterDuringEventSkipsNotYetRunHandler) {
  Fixture f;
  std::vector<int> out;
  HandlerId later{};
  f.fw.register_handler(kPing, "remover", 1, [&](EventContext&) -> sim::Task<> {
    f.fw.deregister(later);
    out.push_back(1);
    co_return;
  });
  later = f.fw.register_handler(kPing, "removed", 2, appender(out, 2));
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1}));
}

TEST(Framework, RegistrationDuringEventDoesNotRunInSameInvocation) {
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "adder", 1, [&](EventContext&) -> sim::Task<> {
    out.push_back(1);
    f.fw.register_handler(kPing, "added", 2, appender(out, 2));
    co_return;
  });
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1}));
  // ...but it does run in the next invocation (handlers stay registered).
  // "adder" runs again and registers a second copy of "added"; only the copy
  // that existed when the second trigger snapshotted its chain runs now.
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 1, 2}));
}

TEST(Framework, TimeoutFiresOnceAfterDelay) {
  Fixture f;
  int fired = 0;
  f.fw.register_timeout("tick", sim::msec(10), [&]() -> sim::Task<> {
    ++fired;
    co_return;
  });
  f.sched.run_until(sim::msec(5));
  EXPECT_EQ(fired, 0);
  f.sched.run_until(sim::msec(50));
  EXPECT_EQ(fired, 1) << "TIMEOUT handlers run exactly once";
}

TEST(Framework, TimeoutCanReregisterItselfForPeriodicBehaviour) {
  Fixture f;
  int fired = 0;
  std::function<sim::Task<>()> tick = [&]() -> sim::Task<> {
    ++fired;
    if (fired < 3) f.fw.register_timeout("tick", sim::msec(10), tick);
    co_return;
  };
  f.fw.register_timeout("tick", sim::msec(10), tick);
  f.sched.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(f.sched.now(), sim::msec(30));
}

TEST(Framework, CancelledTimeoutNeverFires) {
  Fixture f;
  int fired = 0;
  TimerId id = f.fw.register_timeout("tick", sim::msec(10), [&]() -> sim::Task<> {
    ++fired;
    co_return;
  });
  f.fw.cancel_timeout(id);
  f.sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Framework, DestructionCancelsPendingTimeouts) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  int fired = 0;
  {
    Framework fw(transport, DomainId{1});
    fw.register_timeout("tick", sim::msec(10), [&]() -> sim::Task<> {
      ++fired;
      co_return;
    });
  }  // framework destroyed (site crash)
  sched.run();
  EXPECT_EQ(fired, 0) << "a crashed composite's timers must not fire";
}

TEST(Framework, IntrospectionListsRegistrationsInOrder) {
  Fixture f;
  f.fw.define_event(kPing, "PING");
  f.fw.register_handler(kPing, "second", 2, [](EventContext&) -> sim::Task<> { co_return; });
  f.fw.register_handler(kPing, "first", 1, [](EventContext&) -> sim::Task<> { co_return; });
  auto regs = f.fw.registrations();
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0].event, "PING");
  EXPECT_EQ(regs[0].handler, "first");
  EXPECT_EQ(regs[1].handler, "second");
  EXPECT_EQ(f.fw.handler_count(kPing), 2u);
  EXPECT_EQ(f.fw.event_name(kOther), "event#2");
}

TEST(Framework, HandlerCacheRebuildsOnlyOnMutation) {
  // Regression for the dispatch cache: repeated triggers must reuse the
  // same generation, and any register/deregister must advance it while
  // keeping the priority order intact.
  Fixture f;
  std::vector<int> out;
  f.fw.register_handler(kPing, "c", 30, appender(out, 3));
  f.fw.register_handler(kPing, "a", 10, appender(out, 1));
  const std::uint64_t g0 = f.fw.generation(kPing);
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(f.fw.generation(kPing), g0) << "triggering must not invalidate the cache";
  EXPECT_EQ(out, std::vector<int>({1, 3, 1, 3}));

  out.clear();
  const HandlerId mid = f.fw.register_handler(kPing, "b", 20, appender(out, 2));
  EXPECT_GT(f.fw.generation(kPing), g0) << "registration must bump the generation";
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 3})) << "rebuilt chain must be priority-sorted";

  out.clear();
  const std::uint64_t g1 = f.fw.generation(kPing);
  f.fw.deregister(mid);
  EXPECT_GT(f.fw.generation(kPing), g1) << "deregistration must bump the generation";
  f.sched.spawn(run_trigger(f.fw, kPing, {}));
  f.sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 3}));
  EXPECT_EQ(f.fw.generation(kOther), 0u) << "untouched events keep generation 0";
}

class CountingMp : public MicroProtocol {
 public:
  CountingMp(std::vector<std::string>& started) : MicroProtocol("Counting"), started_(started) {}
  void start(Framework&) override { started_.push_back(name()); }

 private:
  std::vector<std::string>& started_;
};

TEST(CompositeProtocol, StartStartsAllMicroProtocolsInOrder) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  CompositeProtocol comp(transport, DomainId{1});
  std::vector<std::string> started;
  comp.emplace<CountingMp>(started);
  comp.emplace<CountingMp>(started);
  EXPECT_FALSE(comp.started());
  comp.start();
  EXPECT_TRUE(comp.started());
  EXPECT_EQ(started.size(), 2u);
  EXPECT_EQ(comp.micro_protocol_names(), std::vector<std::string>({"Counting", "Counting"}));
}

}  // namespace
}  // namespace ugrpc::runtime
