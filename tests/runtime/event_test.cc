// Unit tests for EventArg / EventContext and framework edge cases not
// covered by framework_test.cc.
#include "runtime/event.h"

#include <gtest/gtest.h>

#include <string>

#include "net/network.h"
#include "net/sim_transport.h"
#include "runtime/framework.h"
#include "sim/scheduler.h"
#include "sim/sync.h"

namespace ugrpc::runtime {
namespace {

TEST(EventArg, RefRoundTripsMutableReference) {
  int value = 5;
  EventArg arg = EventArg::ref(value);
  EXPECT_FALSE(arg.empty());
  arg.as<int>() = 7;
  EXPECT_EQ(value, 7);
}

TEST(EventArg, EmptyByDefault) {
  EventArg arg;
  EXPECT_TRUE(arg.empty());
}

TEST(EventArg, TypeMismatchAborts) {
  int value = 5;
  EventArg arg = EventArg::ref(value);
  EXPECT_DEATH((void)arg.as<double>(), "type mismatch");
}

TEST(EventArg, EmptyAccessAborts) {
  EventArg arg;
  EXPECT_DEATH((void)arg.as<int>(), "no argument");
}

TEST(EventContext, CancelIsSticky) {
  int value = 0;
  EventContext ctx(EventArg::ref(value));
  EXPECT_FALSE(ctx.cancelled());
  ctx.cancel();
  EXPECT_TRUE(ctx.cancelled());
  ctx.cancel();
  EXPECT_TRUE(ctx.cancelled());
}

constexpr EventId kEv{9};

TEST(Framework, TriggerWithNoHandlersCompletes) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw(transport, DomainId{1});
  bool completed = false;
  sched.spawn([](Framework& f, bool& done) -> sim::Task<> {
    done = co_await f.trigger(kEv, {});
  }(fw, completed));
  sched.run();
  EXPECT_TRUE(completed);
}

TEST(Framework, DeregisterByNameOnlyRemovesMatchingEvent) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw(transport, DomainId{1});
  constexpr EventId kOther{10};
  fw.register_handler(kEv, "shared-name", 1, [](EventContext&) -> sim::Task<> { co_return; });
  fw.register_handler(kOther, "shared-name", 1, [](EventContext&) -> sim::Task<> { co_return; });
  fw.deregister(kEv, "shared-name");
  EXPECT_EQ(fw.handler_count(kEv), 0u);
  EXPECT_EQ(fw.handler_count(kOther), 1u);
}

TEST(Framework, DeregisterUnknownIdIsNoOp) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw(transport, DomainId{1});
  fw.deregister(HandlerId{424242});
  fw.deregister(kEv, "no-such-handler");
  SUCCEED();
}

TEST(Framework, HandlerMayDeregisterItselfDuringEvent) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw(transport, DomainId{1});
  int runs = 0;
  HandlerId self{};
  self = fw.register_handler(kEv, "once", 1, [&](EventContext&) -> sim::Task<> {
    ++runs;
    fw.deregister(self);
    co_return;
  });
  for (int i = 0; i < 3; ++i) {
    sched.spawn([](Framework& f) -> sim::Task<> { (void)co_await f.trigger(kEv, {}); }(fw));
    sched.run();
  }
  EXPECT_EQ(runs, 1) << "a self-deregistering handler runs exactly once";
}

TEST(Framework, ManyTimeoutsFireInDelayOrder) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw(transport, DomainId{1});
  std::string order;
  fw.register_timeout("c", sim::msec(30), [&]() -> sim::Task<> {
    order += 'c';
    co_return;
  });
  fw.register_timeout("a", sim::msec(10), [&]() -> sim::Task<> {
    order += 'a';
    co_return;
  });
  fw.register_timeout("b", sim::msec(20), [&]() -> sim::Task<> {
    order += 'b';
    co_return;
  });
  sched.run();
  EXPECT_EQ(order, "abc");
}

TEST(Framework, TimeoutHandlerMayBlock) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  Framework fw(transport, DomainId{1});
  sim::Semaphore gate(sched, 0);
  bool finished = false;
  fw.register_timeout("blocking", sim::msec(1), [&]() -> sim::Task<> {
    co_await gate.acquire();
    finished = true;
  });
  sched.run();
  EXPECT_FALSE(finished);
  gate.release();
  sched.run();
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace ugrpc::runtime
