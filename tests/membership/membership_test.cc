// Unit tests for the heartbeat membership monitor.
#include "membership/membership.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_transport.h"

namespace ugrpc::membership {
namespace {

struct ChangeEvent {
  ProcessId who;
  Change change;
};

struct Cluster {
  sim::Scheduler sched{7};
  net::Network net{sched};
  net::SimTransport transport{net};
  std::vector<ProcessId> procs;
  std::vector<net::Endpoint*> endpoints;
  std::vector<std::unique_ptr<MembershipMonitor>> monitors;
  Params params;

  explicit Cluster(int n, Params p = {}) : params(p) {
    for (int i = 1; i <= n; ++i) procs.push_back(ProcessId{static_cast<std::uint32_t>(i)});
    for (ProcessId pid : procs) {
      endpoints.push_back(&net.attach(pid, DomainId{pid.value()}));
      monitors.push_back(
          std::make_unique<MembershipMonitor>(transport, *endpoints.back(), procs, params, true));
    }
    for (auto& m : monitors) m->start();
  }

  void crash(int index) {
    const ProcessId pid = procs[static_cast<std::size_t>(index)];
    net.set_process_up(pid, false);
    sched.kill_domain(DomainId{pid.value()});
    monitors[static_cast<std::size_t>(index)].reset();  // volatile state gone
    endpoints[static_cast<std::size_t>(index)]->clear_all_handlers();
  }

  void recover(int index) {
    const ProcessId pid = procs[static_cast<std::size_t>(index)];
    net.set_process_up(pid, true);
    auto& slot = monitors[static_cast<std::size_t>(index)];
    slot = std::make_unique<MembershipMonitor>(
        transport, *endpoints[static_cast<std::size_t>(index)], procs, params, true);
    slot->start();
  }
};

TEST(Membership, AllAliveInitially) {
  Cluster c(3);
  c.sched.run_until(sim::msec(500));
  for (auto& m : c.monitors) {
    EXPECT_EQ(m->live_members().size(), 3u);
  }
}

TEST(Membership, SelfIsAlwaysLive) {
  Cluster c(2);
  EXPECT_TRUE(c.monitors[0]->is_live(ProcessId{1}));
}

TEST(Membership, CrashedProcessDetectedAsFailed) {
  Cluster c(3);
  std::vector<ChangeEvent> events;
  c.monitors[0]->set_listener([&](ProcessId who, Change ch) { events.push_back({who, ch}); });
  c.sched.run_until(sim::msec(200));
  c.crash(2);
  c.sched.run_until(sim::msec(600));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].who, ProcessId{3});
  EXPECT_EQ(events[0].change, Change::kFailure);
  EXPECT_FALSE(c.monitors[0]->is_live(ProcessId{3}));
  EXPECT_EQ(c.monitors[0]->live_members().size(), 2u);
}

TEST(Membership, FailureReportedByEveryLiveObserver) {
  Cluster c(4);
  std::vector<int> reporters;
  for (int i = 0; i < 3; ++i) {
    c.monitors[static_cast<std::size_t>(i)]->set_listener(
        [&reporters, i](ProcessId, Change ch) {
          if (ch == Change::kFailure) reporters.push_back(i);
        });
  }
  c.sched.run_until(sim::msec(100));
  c.crash(3);
  c.sched.run_until(sim::msec(800));
  EXPECT_EQ(reporters.size(), 3u) << "all three live observers must detect the failure";
}

TEST(Membership, RecoveryDetectedWhenHeartbeatsResume) {
  Cluster c(2);
  std::vector<ChangeEvent> events;
  c.monitors[0]->set_listener([&](ProcessId who, Change ch) { events.push_back({who, ch}); });
  c.sched.run_until(sim::msec(100));
  c.crash(1);
  c.sched.run_until(sim::msec(500));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].change, Change::kFailure);
  c.recover(1);
  c.sched.run_until(sim::msec(800));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].who, ProcessId{2});
  EXPECT_EQ(events[1].change, Change::kRecovery);
  EXPECT_TRUE(c.monitors[0]->is_live(ProcessId{2}));
}

TEST(Membership, NoFalsePositivesOnModeratelyLossyNetwork) {
  Cluster c(3, Params{.heartbeat_interval = sim::msec(10), .failure_timeout = sim::msec(150)});
  net::FaultSpec lossy;
  lossy.drop_prob = 0.2;
  c.net.set_default_faults(lossy);
  int failures = 0;
  for (auto& m : c.monitors) {
    m->set_listener([&](ProcessId, Change ch) {
      if (ch == Change::kFailure) ++failures;
    });
  }
  c.sched.run_until(sim::seconds(5));
  EXPECT_EQ(failures, 0) << "20% loss with 15x timeout margin must not trigger false failures";
}

TEST(Membership, MonitorWithoutBeatingStillObserves) {
  sim::Scheduler sched{7};
  net::Network net{sched};
  net::SimTransport transport{net};
  std::vector<ProcessId> procs{ProcessId{1}, ProcessId{2}};
  net::Endpoint& observer_ep = net.attach(ProcessId{1}, DomainId{1});
  net::Endpoint& server_ep = net.attach(ProcessId{2}, DomainId{2});
  MembershipMonitor observer(transport, observer_ep, procs, {}, /*beat=*/false);
  MembershipMonitor server(transport, server_ep, procs, {}, /*beat=*/true);
  observer.start();
  server.start();
  sched.run_until(sim::msec(300));
  EXPECT_TRUE(observer.is_live(ProcessId{2}));
  // The observer never beats, so the server cannot see it...
  EXPECT_FALSE(server.is_live(ProcessId{1}));
}

}  // namespace
}  // namespace ugrpc::membership
