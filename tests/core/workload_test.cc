// Tests for the workload driver and latency statistics.
#include "core/workload.h"

#include <gtest/gtest.h>

#include "core/micro/acceptance.h"

namespace ugrpc::core {
namespace {

TEST(LatencyRecorder, EmptyReportsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.mean_ms(), 0.0);
  EXPECT_EQ(rec.percentile_ms(0.99), 0.0);
  EXPECT_EQ(rec.max_ms(), 0.0);
}

TEST(LatencyRecorder, MeanAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(sim::msec(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.mean_ms(), 50.5, 0.01);
  EXPECT_NEAR(rec.percentile_ms(0.0), 1.0, 0.01);
  EXPECT_NEAR(rec.percentile_ms(0.5), 51.0, 1.5);
  EXPECT_NEAR(rec.percentile_ms(1.0), 100.0, 0.01);
  EXPECT_NEAR(rec.max_ms(), 100.0, 0.01);
}

TEST(LatencyRecorder, PercentileOfSingleSample) {
  LatencyRecorder rec;
  rec.record(sim::msec(7));
  EXPECT_NEAR(rec.percentile_ms(0.5), 7.0, 0.01);
  EXPECT_NEAR(rec.percentile_ms(0.99), 7.0, 0.01);
}

TEST(ClosedLoopWorkload, CompletesAllCallsAndReportsThroughput) {
  ScenarioParams p;
  p.num_servers = 3;
  p.num_clients = 4;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  WorkloadParams w;
  w.calls_per_client = 20;
  const WorkloadReport report = run_closed_loop(s, w);
  EXPECT_EQ(report.calls_ok, 80u);
  EXPECT_EQ(report.calls_failed, 0u);
  EXPECT_EQ(report.latency.count(), 80u);
  EXPECT_GT(report.throughput_per_sec(), 0.0);
  EXPECT_GT(report.latency.mean_ms(), 0.0);
}

TEST(ClosedLoopWorkload, ThinkTimeSlowsThroughput) {
  const auto run_with_think = [](sim::Duration think) {
    ScenarioParams p;
    p.num_servers = 1;
    p.config.acceptance_limit = 1;
    Scenario s(std::move(p));
    WorkloadParams w;
    w.calls_per_client = 10;
    w.think_time = think;
    return run_closed_loop(s, w).throughput_per_sec();
  };
  EXPECT_GT(run_with_think(0), run_with_think(sim::msec(10)) * 2);
}

TEST(ClosedLoopWorkload, FailedCallsAreCounted) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.termination_bound = sim::msec(50);
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  WorkloadParams w;
  w.calls_per_client = 5;
  const WorkloadReport report = run_closed_loop(s, w);
  EXPECT_EQ(report.calls_ok, 0u);
  EXPECT_EQ(report.calls_failed, 5u);
}

TEST(ClosedLoopWorkload, MakeArgsReceivesClientAndCallIndices) {
  ScenarioParams p;
  p.num_servers = 1;
  p.num_clients = 2;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  WorkloadParams w;
  w.calls_per_client = 3;
  std::set<std::pair<int, int>> seen;
  w.make_args = [&seen](int client, int call) {
    seen.insert({client, call});
    return Buffer{};
  };
  (void)run_closed_loop(s, w);
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.contains({0, 0}));
  EXPECT_TRUE(seen.contains({1, 2}));
}

}  // namespace
}  // namespace ugrpc::core
