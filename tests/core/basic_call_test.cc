// End-to-end tests of the gRPC composite on a fault-free network:
// synchronous and asynchronous calls, acceptance counting, collation.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kEcho{1};
constexpr OpId kAdd{2};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

std::uint64_t num_of(const Buffer& b) { return Reader(b).u64(); }

/// Server app: kEcho echoes; kAdd returns arg + server-id.
void arithmetic_app(UserProtocol& user, Site& site) {
  user.set_procedure([&site](OpId op, Buffer& args) -> sim::Task<> {
    if (op == kAdd) {
      const std::uint64_t v = num_of(args);
      args = num_buf(v + site.id().value());
    }
    co_return;
  });
}

TEST(BasicCall, SynchronousEchoCompletes) {
  ScenarioParams p;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kEcho, num_buf(42));
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(num_of(result.result), 42u);
}

TEST(BasicCall, ServerProcedureTransformsArgs) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.server_app = arithmetic_app;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kAdd, num_buf(100));
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(num_of(result.result), 101u);  // server id is 1
}

TEST(BasicCall, AcceptanceOneExecutesOnAllServersEventually) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
  });
  s.run_until_quiescent();
  // The multicast reaches every member regardless of the acceptance limit.
  EXPECT_EQ(s.total_server_executions(), 3u);
}

TEST(BasicCall, AcceptanceAllWaitsForEveryServer) {
  ScenarioParams p;
  p.num_servers = 5;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kEcho, num_buf(7));
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(s.total_server_executions(), 5u);
}

TEST(BasicCall, SequentialCallsAllComplete) {
  ScenarioParams p;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  int completed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 20; ++i) {
      const CallResult r = co_await c.call(s.group(), kEcho, num_buf(static_cast<unsigned>(i)));
      if (r.ok() && num_of(r.result) == static_cast<std::uint64_t>(i)) ++completed;
    }
  });
  EXPECT_EQ(completed, 20);
}

TEST(BasicCall, TwoClientsInterleave) {
  ScenarioParams p;
  p.num_clients = 2;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  int done0 = 0;
  int done1 = 0;
  auto loop = [&](Client& c, int& done) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      const CallResult r = co_await c.call(s.group(), kEcho, num_buf(static_cast<unsigned>(i)));
      if (r.ok()) ++done;
    }
  };
  s.scheduler().spawn(loop(s.client(0), done0), s.client_site(0).domain());
  s.scheduler().spawn(loop(s.client(1), done1), s.client_site(1).domain());
  s.run_until_quiescent();
  EXPECT_EQ(done0, 10);
  EXPECT_EQ(done1, 10);
  // 2 clients x 10 calls x 3 servers.
  EXPECT_EQ(s.total_server_executions(), 60u);
}

TEST(BasicCall, CollationFoldsAllReplies) {
  ScenarioParams p;
  p.num_servers = 3;
  p.server_app = arithmetic_app;
  p.config.acceptance_limit = kAll;
  // Sum all replies: acc + reply.
  p.config.collation = [](const Buffer& acc, const Buffer& reply) {
    return [&] {
      Buffer b;
      Writer(b).u64(num_of(acc) + num_of(reply));
      return b;
    }();
  };
  Buffer init;
  Writer(init).u64(0);
  p.config.collation_init = init;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kAdd, num_buf(10));
  });
  EXPECT_EQ(result.status, Status::kOk);
  // Replies are 11, 12, 13 (server ids 1..3): sum = 36.
  EXPECT_EQ(num_of(result.result), 36u);
}

TEST(BasicCall, DefaultCollationIsLastReplyWins) {
  ScenarioParams p;
  p.num_servers = 3;
  p.server_app = arithmetic_app;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kAdd, num_buf(10));
  });
  EXPECT_EQ(result.status, Status::kOk);
  const std::uint64_t v = num_of(result.result);
  EXPECT_TRUE(v == 11 || v == 12 || v == 13) << "got " << v;
}

TEST(AsyncCall, BeginReturnsImmediatelyResultBlocks) {
  ScenarioParams p;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  bool began_immediately = false;
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time before = s.scheduler().now();
    CallHandle h = co_await c.call_async(s.group(), kEcho, num_buf(5));
    began_immediately = (s.scheduler().now() == before);
    result = co_await h.get();
  });
  EXPECT_TRUE(began_immediately) << "call_async() must not wait for replies";
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(num_of(result.result), 5u);
}

TEST(AsyncCall, ResultAfterCompletionReturnsInstantly) {
  ScenarioParams p;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kEcho, num_buf(5));
    co_await s.scheduler().sleep_for(sim::seconds(1));  // let the call finish
    const sim::Time before = s.scheduler().now();
    result = co_await h.get();
    EXPECT_EQ(s.scheduler().now(), before) << "stored result must return without waiting";
  });
  EXPECT_EQ(result.status, Status::kOk);
}

TEST(AsyncCall, MultipleOutstandingCalls) {
  ScenarioParams p;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    std::vector<CallHandle> handles;
    for (int i = 0; i < 8; ++i) {
      handles.push_back(co_await c.call_async(s.group(), kEcho, num_buf(static_cast<unsigned>(i))));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const CallResult r = co_await handles[i].get();
      if (r.ok() && num_of(r.result) == i) ++ok;
    }
  });
  EXPECT_EQ(ok, 8);
}

TEST(BasicCall, SlowServerProcedureBlocksReply) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::msec(250));
    });
  };
  Scenario s(std::move(p));
  CallResult result;
  sim::Time elapsed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    result = co_await c.call(s.group(), kEcho, num_buf(1));
    elapsed = s.scheduler().now() - t0;
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_GE(elapsed, sim::msec(250));
}

}  // namespace
}  // namespace ugrpc::core
