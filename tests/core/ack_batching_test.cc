// Acknowledgement batching and piggybacking (message-path optimization):
// reply acknowledgements are queued per destination and flushed by one
// coalesced timer as batched kAck messages; semantics (server-side result
// garbage collection) must be unaffected.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/micro/unique_execution.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

TEST(AckBatching, BatchedAcksStillGarbageCollectStoredResults) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder::exactly_once().build();
  Scenario s(std::move(p));
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      const CallResult r = co_await c.call(s.group(), kOp, num_buf(static_cast<unsigned>(i)));
      if (r.ok()) ++ok;
    }
  });
  s.run_until_quiescent();
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(s.server(0).grpc().unique()->stored_results(), 0u)
      << "deferred/batched ACKs must still free every stored result";
  const auto* client_unique = s.client_site(0).grpc().unique();
  ASSERT_NE(client_unique, nullptr);
  EXPECT_EQ(client_unique->acks_queued(), 5u);
  EXPECT_GT(client_unique->ack_messages_sent(), 0u);
  EXPECT_LE(client_unique->ack_messages_sent(), client_unique->acks_queued());
}

TEST(AckBatching, SimultaneousRepliesCoalesceIntoFewerAckMessages) {
  // Fixed link delay makes the replies to a burst of async calls arrive in
  // the same instant; the single flush timer must acknowledge them with
  // fewer messages than acknowledgements.
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder::exactly_once().asynchronous().build();
  p.faults.min_delay = sim::msec(1);
  p.faults.max_delay = sim::msec(1);
  Scenario s(std::move(p));
  constexpr int kBurst = 4;
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    std::vector<CallHandle> handles;
    for (int i = 0; i < kBurst; ++i) {
      handles.push_back(co_await c.call_async(s.group(), kOp, num_buf(static_cast<unsigned>(i))));
    }
    for (CallHandle& h : handles) {
      const CallResult r = co_await h.get();
      if (r.ok()) ++ok;
    }
  });
  s.run_until_quiescent();
  EXPECT_EQ(ok, kBurst);
  const auto* client_unique = s.client_site(0).grpc().unique();
  ASSERT_NE(client_unique, nullptr);
  EXPECT_EQ(client_unique->acks_queued(), static_cast<std::uint64_t>(kBurst));
  EXPECT_LT(client_unique->ack_messages_sent(), client_unique->acks_queued())
      << "a same-instant burst of replies must be acknowledged in fewer messages";
  EXPECT_EQ(s.server(0).grpc().unique()->stored_results(), 0u);
}

}  // namespace
}  // namespace ugrpc::core
