// Tests of the Figure 2 property graph data and its consistency with the
// configurator's dependency rules (Figure 4).
#include "core/properties.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "core/config.h"

namespace ugrpc::core {
namespace {

TEST(PropertyGraph, EveryPropertyHasAName) {
  for (const PropertyEdge& e : property_edges()) {
    EXPECT_NE(to_string(e.from), "<invalid>");
    EXPECT_NE(to_string(e.to), "<invalid>");
    EXPECT_FALSE(e.reason.empty());
  }
}

TEST(PropertyGraph, ChoiceGroupsAreDisjoint) {
  std::set<Property> seen;
  for (const PropertyChoice& choice : property_choices()) {
    for (Property p : choice.alternatives) {
      EXPECT_TRUE(seen.insert(p).second)
          << to_string(p) << " appears in two choice groups";
    }
  }
}

TEST(PropertyGraph, OrderingEdgesMatchConfiguratorRules) {
  // Figure 2's FIFO->Reliable and Total->Reliable edges must be enforced by
  // the configurator.
  const auto has_edge = [](Property from, Property to) {
    for (const PropertyEdge& e : property_edges()) {
      if (e.from == from && e.to == to) return true;
    }
    return false;
  };
  ASSERT_TRUE(has_edge(Property::kFifoOrder, Property::kReliableCommunication));
  ASSERT_TRUE(has_edge(Property::kTotalOrder, Property::kReliableCommunication));

  Config fifo;
  fifo.ordering = Ordering::kFifo;
  EXPECT_FALSE(is_valid(fifo));
  Config total;
  total.ordering = Ordering::kTotal;
  EXPECT_FALSE(is_valid(total));
}

TEST(PropertyGraph, NoSelfDependencies) {
  for (const PropertyEdge& e : property_edges()) {
    EXPECT_NE(e.from, e.to);
  }
}

TEST(PropertyGraph, GraphIsAcyclic) {
  // DFS over the edge list; the dependency relation must have no cycles.
  std::set<Property> visiting;
  std::set<Property> done;
  const auto edges = property_edges();
  std::function<bool(Property)> has_cycle = [&](Property p) {
    if (done.contains(p)) return false;
    if (!visiting.insert(p).second) return true;
    for (const PropertyEdge& e : edges) {
      if (e.from == p && has_cycle(e.to)) return true;
    }
    visiting.erase(p);
    done.insert(p);
    return false;
  };
  for (const PropertyEdge& e : edges) {
    EXPECT_FALSE(has_cycle(e.from)) << "cycle through " << to_string(e.from);
  }
}

}  // namespace
}  // namespace ugrpc::core
