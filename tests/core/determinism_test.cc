// Determinism: two runs with the same seed must produce bit-for-bit
// identical behaviour -- the property that makes every failure in this
// repository reproducible.  We compare full event traces (every handler
// invocation with its virtual timestamp) and packet fates across runs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

std::string run_traced(std::uint64_t seed) {
  std::ostringstream trace;
  ScenarioParams p;
  p.num_servers = 3;
  p.num_clients = 2;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(25);
  p.faults.drop_prob = 0.2;
  p.faults.dup_prob = 0.1;
  p.seed = seed;
  Scenario s(std::move(p));
  for (int i = 0; i < 3; ++i) {
    s.server(i).grpc().framework().set_trace_observer(
        [&trace, i](sim::Time t, const std::string& event, const std::string& handler) {
          trace << "s" << i << " " << t << " " << event << "/" << handler << "\n";
        });
  }
  s.network().set_packet_tracer([&trace](const net::Packet& pkt, net::Network::PacketFate fate) {
    trace << "pkt " << pkt.src << "->" << pkt.dst << " " << static_cast<int>(fate) << "\n";
  });
  s.scheduler().schedule_after(sim::msec(120), [&] { s.server(1).crash(); });
  s.scheduler().schedule_after(sim::msec(240), [&] { s.server(1).recover(); });
  auto burst = [&s](Client& c) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 8; ++i) {
      Buffer b;
      Writer(b).u64(i);
      (void)co_await c.call(s.group(), kOp, std::move(b));
    }
  };
  s.scheduler().spawn(burst(s.client(0)), s.client_site(0).domain());
  s.scheduler().spawn(burst(s.client(1)), s.client_site(1).domain());
  s.run_for(sim::seconds(10));
  return trace.str();
}

TEST(Determinism, IdenticalSeedsProduceIdenticalTraces) {
  const std::string a = run_traced(97);
  const std::string b = run_traced(97);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "a seeded run must be exactly reproducible";
}

TEST(Determinism, DifferentSeedsDiverge) {
  const std::string a = run_traced(97);
  const std::string b = run_traced(98);
  EXPECT_NE(a, b) << "different fault schedules must differ";
}

}  // namespace
}  // namespace ugrpc::core
