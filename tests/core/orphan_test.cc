// Tests of the orphan-handling micro-protocols (paper section 4.4.7).
//
// An orphan arises when a client crashes while its call is executing: the
// server computation continues for a dead incarnation.  The recovered
// client's new calls carry a higher incarnation number, which is how the
// servers detect the orphans.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/micro/interference_avoidance.h"
#include "core/micro/terminate_orphan.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kSlowAppend{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

/// App whose procedure runs for 100ms and appends its argument to a log on
/// completion -- so we can observe whether orphans finish, interleave, or die.
struct SlowLog {
  std::vector<std::uint64_t> completed;

  Site::AppSetup app() {
    return [this](UserProtocol& user, Site& site) {
      user.set_procedure([this, &site](OpId, Buffer& args) -> sim::Task<> {
        const std::uint64_t v = Reader(args).u64();
        co_await site.scheduler().sleep_for(sim::msec(100));
        completed.push_back(v);
      });
    };
  }
};

ScenarioParams orphan_params(OrphanHandling orphan, SlowLog& log) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(50);
  p.config.orphan = orphan;
  p.config.execution = ExecutionMode::kSerial;
  p.server_app = log.app();
  return p;
}

/// Crash the client 20ms into its first call (the server is mid-execution),
/// recover it, and issue a second call from the new incarnation.
template <typename ScenarioT>
void run_orphan_scenario(ScenarioT& s, CallResult& second_result) {
  Site& client_site = s.client_site(0);
  s.scheduler().schedule_after(sim::msec(20), [&] { client_site.crash(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kSlowAppend, num_buf(1));  // killed mid-flight
  });
  client_site.recover();
  Client fresh(client_site);
  auto driver = [&](Client& c) -> sim::Task<> {
    second_result = co_await c.call(s.group(), kSlowAppend, num_buf(2));
  };
  s.scheduler().spawn(driver(fresh), client_site.domain());
  s.run_for(sim::seconds(3));
}

TEST(OrphanIgnore, OrphanRunsToCompletion) {
  SlowLog log;
  Scenario s(orphan_params(OrphanHandling::kIgnore, log));
  CallResult second;
  run_orphan_scenario(s, second);
  EXPECT_EQ(second.status, Status::kOk);
  // The orphaned call finished (1 appears) and the new call too.
  ASSERT_EQ(log.completed.size(), 2u);
  EXPECT_EQ(log.completed[0], 1u) << "ignored orphan completes first";
  EXPECT_EQ(log.completed[1], 2u);
}

TEST(InterferenceAvoidance, NewIncarnationWaitsForOrphanToDrain) {
  SlowLog log;
  Scenario s(orphan_params(OrphanHandling::kInterferenceAvoidance, log));
  CallResult second;
  run_orphan_scenario(s, second);
  EXPECT_EQ(second.status, Status::kOk);
  ASSERT_EQ(log.completed.size(), 2u);
  EXPECT_EQ(log.completed[0], 1u) << "old generation drains before the new one starts";
  EXPECT_EQ(log.completed[1], 2u);
  EXPECT_GT(s.server(0).grpc().interference()->deferred(), 0u)
      << "the new call must have been deferred at least once";
}

TEST(TerminateOrphan, OrphanIsKilledAndNewCallProceeds) {
  SlowLog log;
  Scenario s(orphan_params(OrphanHandling::kTerminateOrphans, log));
  CallResult second;
  run_orphan_scenario(s, second);
  EXPECT_EQ(second.status, Status::kOk);
  // The orphan died mid-sleep: only the new call's value is in the log.
  ASSERT_EQ(log.completed.size(), 1u);
  EXPECT_EQ(log.completed[0], 2u);
  EXPECT_EQ(s.server(0).grpc().terminator()->orphans_killed(), 1u);
}

TEST(TerminateOrphan, SerialTokenIsReleasedWhenHolderKilled) {
  // The orphan holds the serial token while executing; killing it must free
  // the token or the second call deadlocks.  The second call completing
  // (previous test) already implies this; here we additionally check the
  // holder bookkeeping is clean afterwards.
  SlowLog log;
  Scenario s(orphan_params(OrphanHandling::kTerminateOrphans, log));
  CallResult second;
  run_orphan_scenario(s, second);
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(s.server(0).grpc().state().serial_holder.has_value());
  EXPECT_EQ(s.server(0).grpc().state().serial.count(), 1) << "token fully returned";
}

TEST(OrphanIgnore, StaleIncarnationRequestsAreDropped) {
  // After the client recovers, a lingering duplicate of the OLD incarnation
  // must not execute (InterferenceAvoidance path: Cinfo.inc > msg.inc).
  SlowLog log;
  Scenario s(orphan_params(OrphanHandling::kInterferenceAvoidance, log));
  CallResult second;
  run_orphan_scenario(s, second);
  const std::size_t executed = log.completed.size();
  // Manually re-inject the first incarnation's call (a very late duplicate).
  net::NetMessage stale;
  stale.type = net::MsgType::kCall;
  stale.id = make_call_id(s.client_id(0), first_seq_of_incarnation(1));
  stale.op = kSlowAppend;
  Writer(stale.args).u64(1);
  stale.server = s.group();
  stale.sender = s.client_id(0);
  stale.inc = 1;  // dead incarnation
  s.network().attach(ProcessId{99}, DomainId{99});
  // Send it "from" the client's address via a raw endpoint injection: use
  // the client's own endpoint (sender field is what the protocol reads).
  s.client_site(0).grpc().state().net_push(Scenario::server_id(0), stale);
  s.run_for(sim::seconds(1));
  EXPECT_EQ(log.completed.size(), executed) << "stale-incarnation call must not execute";
}


TEST(TerminateOrphan, ProbingKillsOrphanOfClientThatNeverRecovers) {
  // The paper's second detection approach: the membership service's
  // heartbeats are the probe.  The client crashes mid-call and never comes
  // back; no new-incarnation message will ever arrive, yet the orphan must
  // still die once the failure detector fires.
  SlowLog log;
  ScenarioParams p = orphan_params(OrphanHandling::kTerminateOrphans, log);
  p.config.use_membership = true;
  p.config.membership_params = {sim::msec(10), sim::msec(50)};
  // A procedure slow enough that the detector fires while it runs.
  p.server_app = [&log](UserProtocol& user, Site& site) {
    user.set_procedure([&log, &site](OpId, Buffer& args) -> sim::Task<> {
      const std::uint64_t v = Reader(args).u64();
      co_await site.scheduler().sleep_for(sim::msec(400));
      log.completed.push_back(v);
    });
  };
  Scenario s(std::move(p));
  Site& client_site = s.client_site(0);
  s.scheduler().schedule_after(sim::msec(20), [&] { client_site.crash(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kSlowAppend, num_buf(1));
  });
  s.run_for(sim::seconds(2));
  EXPECT_TRUE(log.completed.empty()) << "the orphan must have been killed mid-sleep";
  EXPECT_EQ(s.server(0).grpc().terminator()->orphans_killed(), 1u);
}


TEST(InterferenceAvoidance, SurvivesMultipleGenerations) {
  // The client crashes and recovers twice while calls are in flight; each
  // generation must drain before the next starts, and the final call
  // completes from the third incarnation.
  SlowLog log;
  Scenario s(orphan_params(OrphanHandling::kInterferenceAvoidance, log));
  Site& client_site = s.client_site(0);
  // Generation 1.
  s.scheduler().schedule_after(sim::msec(20), [&] { client_site.crash(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kSlowAppend, num_buf(1));
  });
  // Generation 2: recover, issue, crash mid-flight again.
  client_site.recover();
  Client second_client(client_site);
  s.scheduler().schedule_after(sim::msec(40), [&] { client_site.crash(); });
  auto driver2 = [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kSlowAppend, num_buf(2));
  };
  s.scheduler().spawn(driver2(second_client), client_site.domain());
  s.run_for(sim::msec(60));
  // Generation 3: recover and complete a call.
  client_site.recover();
  Client third_client(client_site);
  CallResult final_result;
  auto driver3 = [&](Client& c) -> sim::Task<> {
    final_result = co_await c.call(s.group(), kSlowAppend, num_buf(3));
  };
  s.scheduler().spawn(driver3(third_client), client_site.domain());
  s.run_for(sim::seconds(5));
  EXPECT_EQ(final_result.status, Status::kOk);
  EXPECT_EQ(client_site.incarnation(), 3u);
  // All admitted executions completed in generation order.
  ASSERT_FALSE(log.completed.empty());
  for (std::size_t i = 1; i < log.completed.size(); ++i) {
    EXPECT_LE(log.completed[i - 1], log.completed[i]) << "generations must not interleave";
  }
  EXPECT_EQ(log.completed.back(), 3u);
}

}  // namespace
}  // namespace ugrpc::core
