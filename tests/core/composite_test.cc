// Tests of GrpcComposite assembly: which micro-protocols each configuration
// instantiates, typed accessors, shared-state wiring, and the
// invalid-configuration guard.
#include "core/composite.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

bool has_mp(GrpcComposite& comp, const std::string& name) {
  const auto names = comp.micro_protocol_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(Composite, MinimalConfigHasBaselineMicroProtocols) {
  ScenarioParams p;
  Scenario s(std::move(p));
  GrpcComposite& comp = s.server(0).grpc();
  EXPECT_TRUE(has_mp(comp, "RPC Main"));
  EXPECT_TRUE(has_mp(comp, "Synchronous Call"));
  EXPECT_TRUE(has_mp(comp, "Collation"));
  EXPECT_TRUE(has_mp(comp, "Acceptance"));
  EXPECT_FALSE(has_mp(comp, "Reliable Communication"));
  EXPECT_FALSE(has_mp(comp, "Unique Execution"));
  EXPECT_EQ(comp.reliable(), nullptr);
  EXPECT_EQ(comp.unique(), nullptr);
  EXPECT_EQ(comp.fifo(), nullptr);
  EXPECT_EQ(comp.total(), nullptr);
  EXPECT_EQ(comp.atomic(), nullptr);
  EXPECT_EQ(comp.bounded(), nullptr);
  EXPECT_EQ(comp.interference(), nullptr);
  EXPECT_EQ(comp.terminator(), nullptr);
}

TEST(Composite, FullyLoadedConfigInstantiatesEverything) {
  ScenarioParams p;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.orphan = OrphanHandling::kTerminateOrphans;
  p.config.execution = ExecutionMode::kSerialAtomic;
  p.config.unique_execution = true;
  p.config.reliable_communication = true;
  p.config.ordering = Ordering::kTotal;
  Scenario s(std::move(p));
  GrpcComposite& comp = s.server(0).grpc();
  EXPECT_TRUE(has_mp(comp, "Asynchronous Call"));
  EXPECT_TRUE(has_mp(comp, "Reliable Communication"));
  EXPECT_TRUE(has_mp(comp, "Unique Execution"));
  EXPECT_TRUE(has_mp(comp, "Terminate Orphan"));
  EXPECT_TRUE(has_mp(comp, "Serial Execution"));
  EXPECT_TRUE(has_mp(comp, "Atomic Execution"));
  EXPECT_TRUE(has_mp(comp, "Total Order"));
  EXPECT_NE(comp.reliable(), nullptr);
  EXPECT_NE(comp.unique(), nullptr);
  EXPECT_NE(comp.total(), nullptr);
  EXPECT_NE(comp.atomic(), nullptr);
  EXPECT_NE(comp.terminator(), nullptr);
}

TEST(Composite, HoldArrayReflectsOrderingChoice) {
  {
    ScenarioParams p;
    Scenario s(std::move(p));
    const HoldArray& hold = s.server(0).grpc().state().HOLD;
    EXPECT_TRUE(hold[kHoldMain]);
    EXPECT_FALSE(hold[kHoldFifo]);
    EXPECT_FALSE(hold[kHoldTotal]);
  }
  {
    ScenarioParams p;
    p.config.reliable_communication = true;
    p.config.ordering = Ordering::kFifo;
    Scenario s(std::move(p));
    EXPECT_TRUE(s.server(0).grpc().state().HOLD[kHoldFifo]);
  }
}

TEST(Composite, InvalidConfigurationIsRejected) {
  Config bad;
  bad.ordering = Ordering::kTotal;  // missing reliable + unique
  ScenarioParams p;
  p.config = bad;
  EXPECT_DEATH({ Scenario s(std::move(p)); }, "dependency graph");
}

TEST(Composite, UnsafeSkipValidationBuildsInvalidConfigs) {
  // Experiment-only escape hatch used by the Figure 2 harness to
  // demonstrate broken dependency edges empirically.
  Config bad;
  bad.ordering = Ordering::kFifo;  // missing Reliable Communication
  ASSERT_FALSE(is_valid(bad));
  bad.unsafe_skip_validation = true;
  ScenarioParams p;
  p.config = bad;
  Scenario s(std::move(p));  // must not abort
  EXPECT_TRUE(s.server(0).up());
}

TEST(Composite, NotifyMembershipUpdatesSharedMemberSet) {
  ScenarioParams p;
  p.num_servers = 2;
  Scenario s(std::move(p));
  GrpcComposite& comp = s.client_site(0).grpc();
  const ProcessId victim = Scenario::server_id(1);
  EXPECT_TRUE(comp.state().members.contains(victim));
  s.scheduler().spawn(comp.notify_membership(victim, membership::Change::kFailure));
  s.scheduler().run();
  EXPECT_FALSE(comp.state().members.contains(victim));
  s.scheduler().spawn(comp.notify_membership(victim, membership::Change::kRecovery));
  s.scheduler().run();
  EXPECT_TRUE(comp.state().members.contains(victim));
}

TEST(Composite, CheckpointParticipantsFollowConfiguration) {
  {
    ScenarioParams p;
    Scenario s(std::move(p));
    EXPECT_TRUE(s.server(0).grpc().state().checkpoint_participants.empty());
  }
  {
    ScenarioParams p;
    p.config.reliable_communication = true;
    p.config.unique_execution = true;
    p.config.ordering = Ordering::kTotal;
    Scenario s(std::move(p));
    // Unique Execution + Total Order both participate.
    EXPECT_EQ(s.server(0).grpc().state().checkpoint_participants.size(), 2u);
  }
}

TEST(Composite, ConfigAccessorReturnsConfiguredValues) {
  ScenarioParams p;
  p.config.acceptance_limit = 2;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(123);
  Scenario s(std::move(p));
  const Config& c = s.server(0).grpc().config();
  EXPECT_EQ(c.acceptance_limit, 2);
  EXPECT_EQ(c.retrans_timeout, sim::msec(123));
}

}  // namespace
}  // namespace ugrpc::core
