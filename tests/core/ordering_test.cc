// Tests of the ordering micro-protocols (paper section 4.4.6).
//
// FIFO Order: calls of one client execute in issue order at every server
// (each server's execution sequence is a subsequence of the issue order).
// Total Order: calls of all clients execute in one total order at all
// servers (execution logs are prefixes of each other / identical).
//
// The server application appends each executed call's (client, seq) tag to a
// per-server log; the network uses a wide random delay range so arrival
// order is thoroughly scrambled.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/micro/total_order.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kTagged{1};

struct Tag {
  std::uint32_t client;
  std::uint32_t seq;
  friend bool operator==(const Tag&, const Tag&) = default;
};

Buffer tag_buf(Tag t) {
  Buffer b;
  Writer w(b);
  w.u32(t.client);
  w.u32(t.seq);
  return b;
}

Tag tag_of(const Buffer& b) {
  Reader r(b);
  Tag t;
  t.client = r.u32();
  t.seq = r.u32();
  return t;
}

using Logs = std::map<std::uint32_t, std::vector<Tag>>;  // server id -> executed tags

Site::AppSetup logging_app(Logs& logs) {
  return [&logs](UserProtocol& user, Site& site) {
    user.set_procedure([&logs, &site](OpId, Buffer& args) -> sim::Task<> {
      logs[site.id().value()].push_back(tag_of(args));
      co_return;
    });
  };
}

net::FaultSpec scrambling_network() {
  net::FaultSpec f;
  f.min_delay = sim::usec(50);
  f.max_delay = sim::msec(40);  // heavy reordering
  return f;
}

/// True if `sub` is a subsequence of 0..n-1 in increasing seq order for each
/// client stream.
bool per_client_order_preserved(const std::vector<Tag>& log) {
  std::map<std::uint32_t, std::int64_t> last_seq;
  for (const Tag& t : log) {
    auto [it, inserted] = last_seq.try_emplace(t.client, -1);
    if (static_cast<std::int64_t>(t.seq) <= it->second) return false;
    it->second = t.seq;
  }
  return true;
}

TEST(NoOrder, ScrambledNetworkProducesOutOfOrderExecution) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 2;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;  // keep many calls in flight
  p.faults = scrambling_network();
  p.server_app = logging_app(logs);
  p.seed = 23;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::uint32_t i = 0; i < 40; ++i) {
      (void)co_await c.call_async(s.group(), kTagged, tag_buf({0, i}));
    }
  });
  s.run_for(sim::seconds(2));
  bool any_out_of_order = false;
  for (const auto& [server, log] : logs) {
    ASSERT_EQ(log.size(), 40u);
    if (!per_client_order_preserved(log)) any_out_of_order = true;
  }
  EXPECT_TRUE(any_out_of_order)
      << "without an ordering micro-protocol, heavy reordering must show up";
}

TEST(FifoOrder, PerClientOrderAtEveryServer) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(60);
  p.config.ordering = Ordering::kFifo;
  p.faults = scrambling_network();
  p.server_app = logging_app(logs);
  p.seed = 31;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::uint32_t i = 0; i < 40; ++i) {
      (void)co_await c.call_async(s.group(), kTagged, tag_buf({0, i}));
    }
  });
  s.run_for(sim::seconds(5));
  for (const auto& [server, log] : logs) {
    EXPECT_TRUE(per_client_order_preserved(log)) << "server " << server;
    // FIFO Order initializes a client's stream at the first call id the
    // server happens to see; earlier ids are dropped as stale (paper
    // behaviour).  From that point on execution is strictly consecutive, so
    // each server's log is one contiguous run of the issue stream.
    ASSERT_FALSE(log.empty());
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_EQ(log[i].seq, log[i - 1].seq + 1)
          << "server " << server << " must execute a contiguous run";
    }
    EXPECT_EQ(log.back().seq, 39u) << "the stream must catch up to the last call";
  }
}

TEST(FifoOrder, TwoClientStreamsEachStayOrdered) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 3;
  p.num_clients = 2;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(60);
  p.config.ordering = Ordering::kFifo;
  p.faults = scrambling_network();
  p.server_app = logging_app(logs);
  p.seed = 37;
  Scenario s(std::move(p));
  auto burst = [&](Client& c, std::uint32_t who) -> sim::Task<> {
    for (std::uint32_t i = 0; i < 25; ++i) {
      (void)co_await c.call_async(s.group(), kTagged, tag_buf({who, i}));
    }
  };
  s.scheduler().spawn(burst(s.client(0), 0), s.client_site(0).domain());
  s.scheduler().spawn(burst(s.client(1), 1), s.client_site(1).domain());
  s.run_for(sim::seconds(5));
  for (const auto& [server, log] : logs) {
    EXPECT_TRUE(per_client_order_preserved(log)) << "server " << server;
  }
}

TEST(TotalOrder, AllServersExecuteIdenticalSequence) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 3;
  p.num_clients = 3;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(60);
  p.config.ordering = Ordering::kTotal;
  p.faults = scrambling_network();
  p.server_app = logging_app(logs);
  p.seed = 41;
  Scenario s(std::move(p));
  auto burst = [&](Client& c, std::uint32_t who) -> sim::Task<> {
    for (std::uint32_t i = 0; i < 20; ++i) {
      (void)co_await c.call_async(s.group(), kTagged, tag_buf({who, i}));
    }
  };
  for (int i = 0; i < 3; ++i) {
    s.scheduler().spawn(burst(s.client(i), static_cast<std::uint32_t>(i)),
                        s.client_site(i).domain());
  }
  s.run_for(sim::seconds(10));
  ASSERT_EQ(logs.size(), 3u);
  const std::vector<Tag>& reference = logs.begin()->second;
  EXPECT_EQ(reference.size(), 60u) << "all 60 calls must execute";
  for (const auto& [server, log] : logs) {
    EXPECT_EQ(log, reference) << "server " << server << " diverges from the total order";
  }
}

// Note: total order does NOT imply per-client FIFO -- the leader numbers
// calls in its own arrival order, which a reordering network permutes.  The
// paper treats FIFO and Total as alternatives, not a hierarchy.  What total
// order does guarantee is identical execution sequences everywhere.
TEST(TotalOrder, ConsistentAcrossServersUnderReordering) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 2;
  p.num_clients = 2;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.ordering = Ordering::kTotal;
  p.faults = scrambling_network();
  p.server_app = logging_app(logs);
  p.seed = 43;
  Scenario s(std::move(p));
  auto burst = [&](Client& c, std::uint32_t who) -> sim::Task<> {
    for (std::uint32_t i = 0; i < 15; ++i) {
      (void)co_await c.call_async(s.group(), kTagged, tag_buf({who, i}));
    }
  };
  s.scheduler().spawn(burst(s.client(0), 0), s.client_site(0).domain());
  s.scheduler().spawn(burst(s.client(1), 1), s.client_site(1).domain());
  s.run_for(sim::seconds(10));
  ASSERT_EQ(logs.size(), 2u);
  const std::vector<Tag>& reference = logs.begin()->second;
  EXPECT_EQ(reference.size(), 30u);
  for (const auto& [server, log] : logs) {
    EXPECT_EQ(log, reference) << "server " << server;
  }
}

TEST(TotalOrder, LeaderIsLargestLiveMember) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.ordering = Ordering::kTotal;
  Scenario s(std::move(p));
  TotalOrder* to = s.server(0).grpc().total();
  ASSERT_NE(to, nullptr);
  EXPECT_EQ(to->leader(s.group()), Scenario::server_id(2)) << "largest id leads";
}

TEST(TotalOrder, SurvivesLossyNetwork) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 3;
  p.num_clients = 2;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(40);
  p.config.ordering = Ordering::kTotal;
  p.faults = scrambling_network();
  p.faults.drop_prob = 0.15;
  p.server_app = logging_app(logs);
  p.seed = 47;
  Scenario s(std::move(p));
  auto burst = [&](Client& c, std::uint32_t who) -> sim::Task<> {
    for (std::uint32_t i = 0; i < 15; ++i) {
      (void)co_await c.call_async(s.group(), kTagged, tag_buf({who, i}));
    }
  };
  s.scheduler().spawn(burst(s.client(0), 0), s.client_site(0).domain());
  s.scheduler().spawn(burst(s.client(1), 1), s.client_site(1).domain());
  s.run_for(sim::seconds(20));
  ASSERT_EQ(logs.size(), 3u);
  const std::vector<Tag>& reference = logs.begin()->second;
  EXPECT_EQ(reference.size(), 30u);
  for (const auto& [server, log] : logs) {
    EXPECT_EQ(log, reference) << "server " << server;
  }
}

}  // namespace
}  // namespace ugrpc::core
