// Crash/recovery tests: server crashes with stable state, Atomic Execution
// rollback (at-most-once of paper Figure 1), and client recovery basics.
//
// The server application used here has *stable* state: a register stored in
// the site's StableStore, updated in two steps with simulated work between
// them.  Without Atomic Execution, a crash between the steps leaves the
// register half-updated (non-atomic).  With Atomic Execution, recovery
// rolls back to the last checkpoint, so every call is all-or-nothing.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/micro/atomic_execution.h"
#include "core/micro/unique_execution.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kIncrementBoth{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

std::uint64_t read_var(storage::StableStore& store, const std::string& key) {
  auto v = store.get(key);
  if (!v.has_value()) return 0;
  return Reader(*v).u64();
}

void write_var(storage::StableStore& store, const std::string& key, std::uint64_t value) {
  store.put(key, num_buf(value));
}

/// Invariant the app maintains: a == b after every complete call.  The
/// procedure increments a, "works" for 10ms, then increments b; a crash in
/// the window breaks the invariant unless execution is atomic.
void two_register_app(UserProtocol& user, Site& site) {
  user.set_procedure([&site](OpId, Buffer& args) -> sim::Task<> {
    write_var(site.stable(), "a", read_var(site.stable(), "a") + 1);
    co_await site.scheduler().sleep_for(sim::msec(10));
    write_var(site.stable(), "b", read_var(site.stable(), "b") + 1);
    args = num_buf(read_var(site.stable(), "b"));
  });
  // Atomic Execution checkpoints whatever these hooks cover -- here, the
  // stable registers themselves.
  user.set_state_hooks(
      [&site]() {
        Buffer snap;
        Writer w(snap);
        w.u64(read_var(site.stable(), "a"));
        w.u64(read_var(site.stable(), "b"));
        return snap;
      },
      [&site](const Buffer& snap) {
        Reader r(snap);
        write_var(site.stable(), "a", r.u64());
        write_var(site.stable(), "b", r.u64());
      });
}

ScenarioParams crash_params(ExecutionMode mode) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(30);
  p.config.execution = mode;
  p.config.termination_bound = sim::seconds(2);
  p.server_app = two_register_app;
  return p;
}

TEST(CrashRecovery, WithoutAtomicExecutionCrashBreaksAtomicity) {
  Scenario s(crash_params(ExecutionMode::kSerial));
  // Crash the server in the middle of the procedure's a/b window.
  s.scheduler().schedule_after(sim::msec(305), [&] { s.server(0).crash(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    co_await s.scheduler().sleep_for(sim::msec(300));
    (void)co_await c.call(s.group(), kIncrementBoth, num_buf(0));
  });
  storage::StableStore& store = s.server(0).stable();
  EXPECT_EQ(read_var(store, "a"), 1u);
  EXPECT_EQ(read_var(store, "b"), 0u)
      << "crash mid-call must leave the partial write visible without Atomic Execution";
}

TEST(CrashRecovery, AtomicExecutionRollsBackPartialCall) {
  Scenario s(crash_params(ExecutionMode::kSerialAtomic));
  s.scheduler().schedule_after(sim::msec(305), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(400), [&] { s.server(0).recover(); });
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    co_await s.scheduler().sleep_for(sim::msec(300));
    result = co_await c.call(s.group(), kIncrementBoth, num_buf(0));
  });
  s.run_for(sim::seconds(1));
  storage::StableStore& store = s.server(0).stable();
  // The retransmitted call re-executed after recovery on the rolled-back
  // state: both registers end consistent.
  EXPECT_EQ(read_var(store, "a"), read_var(store, "b"))
      << "atomic execution must erase the partial first write";
  EXPECT_EQ(read_var(store, "b"), 1u);
  EXPECT_EQ(result.status, Status::kOk);
}

TEST(CrashRecovery, AtMostOnceAcrossCrashNoDoubleExecution) {
  // Crash AFTER a call completed (checkpoint taken, reply possibly lost).
  // The client retransmits; Unique Execution's tables were checkpointed, so
  // the recovered server answers from the stored result instead of
  // re-executing: at-most-once holds across the crash.
  Scenario s(crash_params(ExecutionMode::kSerialAtomic));
  const ProcessId server = Scenario::server_id(0);
  const ProcessId client = s.client_id(0);
  s.network().link(server, client).partitioned = true;  // lose replies+acks path
  s.scheduler().schedule_after(sim::msec(330), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(380), [&] {
    s.server(0).recover();
    s.network().link(server, client).partitioned = false;
  });
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    co_await s.scheduler().sleep_for(sim::msec(300));
    result = co_await c.call(s.group(), kIncrementBoth, num_buf(0));
  });
  s.run_for(sim::seconds(1));
  storage::StableStore& store = s.server(0).stable();
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(read_var(store, "a"), 1u) << "the retransmitted call must not re-execute";
  EXPECT_EQ(read_var(store, "b"), 1u);
}

TEST(CrashRecovery, WithoutAtomicTablesAreLostAndCallReExecutes) {
  // Same crash-after-completion scenario but only Serial (no Atomic):
  // Unique Execution's volatile tables die with the crash, so the
  // retransmitted call re-executes -- visible as a == b == 2.
  Scenario s(crash_params(ExecutionMode::kSerial));
  const ProcessId server = Scenario::server_id(0);
  const ProcessId client = s.client_id(0);
  s.network().link(server, client).partitioned = true;
  s.scheduler().schedule_after(sim::msec(330), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(380), [&] {
    s.server(0).recover();
    s.network().link(server, client).partitioned = false;
  });
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    co_await s.scheduler().sleep_for(sim::msec(300));
    result = co_await c.call(s.group(), kIncrementBoth, num_buf(0));
  });
  s.run_for(sim::seconds(1));
  storage::StableStore& store = s.server(0).stable();
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(read_var(store, "a"), 2u) << "stable state persists, tables do not: double execution";
}

TEST(CrashRecovery, CheckpointsAreTakenPerCall) {
  Scenario s(crash_params(ExecutionMode::kSerialAtomic));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) (void)co_await c.call(s.group(), kIncrementBoth, num_buf(0));
  });
  EXPECT_EQ(s.server(0).grpc().atomic()->checkpoints_taken(), 4u);
  // Old checkpoints are released: only the latest remains.
  EXPECT_EQ(s.server(0).stable().checkpoint_count(), 1u);
}

TEST(CrashRecovery, ServerGroupMasksSingleCrash) {
  // 3 servers, acceptance 1: one server crashing mid-call is invisible to
  // the client.
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  Scenario s(std::move(p));
  s.scheduler().schedule_after(sim::msec(100), [&] { s.server(0).crash(); });
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await s.scheduler().sleep_for(sim::msec(30));
      const CallResult r = co_await c.call(s.group(), OpId{1}, num_buf(1));
      if (r.ok()) ++ok;
    }
  });
  EXPECT_EQ(ok, 10);
}

TEST(CrashRecovery, ClientIncarnationIncrementsOnRecovery) {
  ScenarioParams p;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  Site& client_site = s.client_site(0);
  EXPECT_EQ(client_site.incarnation(), 1u);
  client_site.crash();
  client_site.recover();
  s.run_for(sim::msec(10));
  EXPECT_EQ(client_site.incarnation(), 2u);
  EXPECT_EQ(client_site.grpc().state().inc_number, 2u);
  // The recovered client can still make calls.
  Client fresh(client_site);
  CallResult result;
  auto driver = [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), OpId{1}, num_buf(1));
  };
  s.scheduler().spawn(driver(fresh), client_site.domain());
  s.run_until_quiescent();
  EXPECT_EQ(result.status, Status::kOk);
}

}  // namespace
}  // namespace ugrpc::core
