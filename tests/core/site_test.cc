// Unit tests for the Site lifecycle (boot/crash/recover) and its contract
// with the stable store and the network.
#include "core/site.h"

#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

TEST(Site, BootBringsSiteUpWithIncarnationOne) {
  ScenarioParams p;
  Scenario s(std::move(p));
  EXPECT_TRUE(s.server(0).up());
  EXPECT_EQ(s.server(0).incarnation(), 1u);
  EXPECT_TRUE(s.network().process_up(Scenario::server_id(0)));
}

TEST(Site, CrashTakesSiteDownAndKillsFibers) {
  ScenarioParams p;
  p.num_servers = 1;
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::seconds(100));  // effectively forever
    });
  };
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});  // cannot: sync config...
  }, sim::msec(50));
  const std::size_t fibers_before = s.scheduler().live_fiber_count();
  s.server(0).crash();
  EXPECT_FALSE(s.server(0).up());
  EXPECT_FALSE(s.network().process_up(Scenario::server_id(0)));
  EXPECT_LT(s.scheduler().live_fiber_count(), fibers_before)
      << "the server's in-flight procedure fiber must be killed";
}

TEST(Site, StableStoreSurvivesCrash) {
  ScenarioParams p;
  p.num_servers = 1;
  Scenario s(std::move(p));
  Buffer v;
  Writer(v).u64(42);
  s.server(0).stable().put("k", v);
  s.server(0).crash();
  s.server(0).recover();
  auto got = s.server(0).stable().get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(Reader(*got).u64(), 42u);
}

TEST(Site, RecoverRunsAppSetupAgain) {
  int setups = 0;
  ScenarioParams p;
  p.num_servers = 1;
  p.server_app = [&setups](UserProtocol& user, Site&) {
    ++setups;
    user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });
  };
  Scenario s(std::move(p));
  EXPECT_EQ(setups, 1);
  s.server(0).crash();
  s.server(0).recover();
  EXPECT_EQ(setups, 2) << "the application re-initializes with the volatile stack";
  EXPECT_EQ(s.server(0).incarnation(), 2u);
}

TEST(Site, TotalExecutionsAccumulatesAcrossIncarnations) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  EXPECT_EQ(s.server(0).total_executions(), 1u);
  s.server(0).crash();
  s.server(0).recover();
  s.run_for(sim::msec(10));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  EXPECT_EQ(s.server(0).total_executions(), 2u)
      << "executions from before the crash must still be counted";
}

TEST(Site, RepeatedCrashRecoverCycles) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  Scenario s(std::move(p));
  for (int cycle = 0; cycle < 5; ++cycle) {
    s.server(0).crash();
    s.run_for(sim::msec(5));
    s.server(0).recover();
    s.run_for(sim::msec(5));
  }
  EXPECT_EQ(s.server(0).incarnation(), 6u);
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kOp, Buffer{});
  });
  EXPECT_EQ(result.status, Status::kOk) << "the service works after many cycles";
}

TEST(CallIdScheme, PacksClientAndSequence) {
  const ProcessId client{77};
  const CallId id = make_call_id(client, first_seq_of_incarnation(3) + 5);
  EXPECT_EQ(call_client(id), client);
  EXPECT_EQ(call_seq(id), first_seq_of_incarnation(3) + 5);
  EXPECT_EQ(call_seq(next_call_id(id)), first_seq_of_incarnation(3) + 6);
  EXPECT_EQ(call_client(next_call_id(id)), client);
}

TEST(CallIdScheme, DifferentClientsNeverCollide) {
  const CallId a = make_call_id(ProcessId{1}, 5);
  const CallId b = make_call_id(ProcessId{2}, 5);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ugrpc::core
