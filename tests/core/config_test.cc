// Tests of the Configurator: dependency validation (paper Figure 4) and the
// configuration-space enumeration (the paper's 198 services).
#include <gtest/gtest.h>

#include <set>

#include "core/config.h"

namespace ugrpc::core {
namespace {

Config base_valid() {
  Config c;  // minimal: sync + ignore orphans + plain + nothing optional
  return c;
}

TEST(ConfigValidation, MinimalConfigIsValid) {
  EXPECT_TRUE(is_valid(base_valid()));
}

TEST(ConfigValidation, UniqueRequiresReliable) {
  Config c = base_valid();
  c.unique_execution = true;
  auto errors = validate(c);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, Rule::kUniqueRequiresReliable);
  EXPECT_EQ(errors[0].rule, "UniqueExecution->ReliableCommunication");
  c.reliable_communication = true;
  EXPECT_TRUE(is_valid(c));
}

TEST(ConfigValidation, FifoRequiresReliable) {
  Config c = base_valid();
  c.ordering = Ordering::kFifo;
  auto errors = validate(c);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, Rule::kFifoRequiresReliable);
  EXPECT_EQ(errors[0].rule, "FifoOrder->ReliableCommunication");
  c.reliable_communication = true;
  EXPECT_TRUE(is_valid(c));
}

TEST(ConfigValidation, TotalRequiresReliableUniqueAndUnbounded) {
  Config c = base_valid();
  c.ordering = Ordering::kTotal;
  c.termination_bound = sim::seconds(1);
  auto errors = validate(c);
  std::set<Rule> rules;
  for (const auto& e : errors) rules.insert(e.code);
  EXPECT_TRUE(rules.contains(Rule::kTotalRequiresReliable));
  EXPECT_TRUE(rules.contains(Rule::kTotalRequiresUnique));
  EXPECT_TRUE(rules.contains(Rule::kTotalExcludesBounded));
  c.reliable_communication = true;
  c.unique_execution = true;
  c.termination_bound.reset();
  EXPECT_TRUE(is_valid(c));
}

TEST(ConfigValidation, AcceptanceLimitMustBePositive) {
  Config c = base_valid();
  c.acceptance_limit = 0;
  auto errors = validate(c);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, Rule::kAcceptanceLimitPositive);
}

TEST(ConfigValidation, NonPositiveTimeoutsRejected) {
  Config c = base_valid();
  c.reliable_communication = true;
  c.retrans_timeout = 0;
  auto errors = validate(c);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, Rule::kRetransTimeoutPositive);
  c.retrans_timeout = sim::msec(10);
  c.termination_bound = sim::Duration{0};
  errors = validate(c);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, Rule::kTerminationBoundPositive);
}

TEST(ConfigValidation, RuleStringsMatchCodes) {
  // The string field is derived from the code, so the two can never drift.
  for (Rule r : {Rule::kUniqueRequiresReliable, Rule::kFifoRequiresReliable,
                 Rule::kTotalRequiresReliable, Rule::kTotalRequiresUnique,
                 Rule::kTotalExcludesBounded, Rule::kAcceptanceLimitPositive,
                 Rule::kRetransTimeoutPositive, Rule::kTerminationBoundPositive}) {
    EXPECT_NE(to_string(r), "<invalid>");
  }
}

TEST(ConfigSpace, PaperReports198Services) {
  const ConfigSpace space = config_space();
  EXPECT_EQ(space.call_variants, 2);
  EXPECT_EQ(space.orphan_variants, 3);
  EXPECT_EQ(space.execution_variants, 3);
  EXPECT_EQ(space.comm_combinations, 11)
      << "unique x reliable x termination x ordering prunes 24 raw combos to 11";
  EXPECT_EQ(space.total, 198) << "2 x 3 x 3 x 11 = 198 (paper section 5)";
}

TEST(ConfigSpace, EnumerationContainsOnlyValidAndDistinctConfigs) {
  const auto configs = enumerate_valid_configs();
  ASSERT_EQ(configs.size(), 198u);
  std::set<std::string> seen;
  for (const Config& c : configs) {
    EXPECT_TRUE(is_valid(c)) << c.describe();
    EXPECT_TRUE(seen.insert(c.describe()).second) << "duplicate: " << c.describe();
  }
}

TEST(ConfigSpace, ElevenCommCombinationsBreakDownAsExpected)
{
  // none: unreliable x {unique? no} x bounded? -> 2; reliable x unique x
  // bounded -> 4  => 6.  fifo: reliable, unique x bounded -> 4.  total: 1.
  const auto configs = enumerate_valid_configs();
  int none = 0;
  int fifo = 0;
  int total = 0;
  for (const Config& c : configs) {
    if (c.call != CallSemantics::kSynchronous || c.orphan != OrphanHandling::kIgnore ||
        c.execution != ExecutionMode::kPlain) {
      continue;  // fix the other dimensions
    }
    switch (c.ordering) {
      case Ordering::kNone: ++none; break;
      case Ordering::kFifo: ++fifo; break;
      case Ordering::kTotal: ++total; break;
    }
  }
  EXPECT_EQ(none, 6);
  EXPECT_EQ(fifo, 4);
  EXPECT_EQ(total, 1);
}

TEST(ConfigDescribe, SummarizesChoices) {
  Config c;
  c.call = CallSemantics::kAsynchronous;
  c.ordering = Ordering::kFifo;
  c.reliable_communication = true;
  c.termination_bound = sim::seconds(1);
  EXPECT_EQ(c.describe(),
            "async|ignore-orphans|plain|non-unique|reliable|fifo|bounded");
}

}  // namespace
}  // namespace ugrpc::core
