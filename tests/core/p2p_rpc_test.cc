// Tests for the compact point-to-point RPC fast path.
#include "core/p2p_rpc.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/sim_transport.h"

namespace ugrpc::core {
namespace {

constexpr OpId kEcho{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

struct P2pFixture {
  sim::Scheduler sched{3};
  net::Network net{sched};
  net::SimTransport transport{net};
  net::Endpoint& client_ep{net.attach(ProcessId{1}, DomainId{1})};
  net::Endpoint& server_ep{net.attach(ProcessId{2}, DomainId{2})};
  UserProtocol client_user;
  UserProtocol server_user;
  std::unique_ptr<P2pRpc> client;
  std::unique_ptr<P2pRpc> server;

  explicit P2pFixture(P2pRpc::Options options = {}) {
    server_user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });
    client = std::make_unique<P2pRpc>(transport, client_ep, ProcessId{1}, client_user, options);
    server = std::make_unique<P2pRpc>(transport, server_ep, ProcessId{2}, server_user, options);
  }

  CallResult run_one_call(std::uint64_t arg) {
    CallResult result;
    sched.spawn([](P2pRpc& c, CallResult& out, std::uint64_t v) -> sim::Task<> {
      out = co_await c.call(ProcessId{2}, kEcho, num_buf(v));
    }(*client, result, arg), DomainId{1});
    sched.run_for(sim::seconds(10));
    return result;
  }
};

TEST(P2pRpc, EchoRoundTrip) {
  P2pFixture f;
  const CallResult r = f.run_one_call(42);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(Reader(r.result).u64(), 42u);
  EXPECT_EQ(f.server_user.executions(), 1u);
}

TEST(P2pRpc, SurvivesLossWithRetransmission) {
  P2pRpc::Options opt;
  opt.retrans_timeout = sim::msec(20);
  P2pFixture f(opt);
  net::FaultSpec lossy;
  lossy.drop_prob = 0.4;
  f.net.set_default_faults(lossy);
  int ok = 0;
  f.sched.spawn([](P2pFixture& fx, int& ok_count) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 20; ++i) {
      const CallResult r = co_await fx.client->call(ProcessId{2}, kEcho, num_buf(i));
      if (r.ok()) ++ok_count;
    }
  }(f, ok), DomainId{1});
  f.sched.run_for(sim::seconds(60));
  EXPECT_EQ(ok, 20);
  EXPECT_GT(f.client->retransmissions(), 0u);
}

TEST(P2pRpc, UniqueExecutionSuppressesDuplicates) {
  P2pRpc::Options opt;
  opt.retrans_timeout = sim::msec(20);
  P2pFixture f(opt);
  net::FaultSpec dupey;
  dupey.dup_prob = 1.0;
  f.net.set_default_faults(dupey);
  const CallResult r = f.run_one_call(7);
  f.sched.run_for(sim::seconds(1));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(f.server_user.executions(), 1u);
}

TEST(P2pRpc, WithoutUniqueDuplicatesReExecute) {
  P2pRpc::Options opt;
  opt.unique_execution = false;
  P2pFixture f(opt);
  net::FaultSpec dupey;
  dupey.dup_prob = 1.0;
  f.net.set_default_faults(dupey);
  (void)f.run_one_call(7);
  f.sched.run_for(sim::seconds(1));
  EXPECT_GT(f.server_user.executions(), 1u);
}

TEST(P2pRpc, BoundedTerminationTimesOut) {
  P2pRpc::Options opt;
  opt.reliable = false;
  opt.termination_bound = sim::msec(100);
  P2pFixture f(opt);
  net::FaultSpec dead;
  dead.drop_prob = 1.0;
  f.net.set_default_faults(dead);
  CallResult r;
  sim::Time completed_at = -1;
  f.sched.spawn([](P2pFixture& fx, CallResult& out, sim::Time& at) -> sim::Task<> {
    out = co_await fx.client->call(ProcessId{2}, kEcho, num_buf(1));
    at = fx.sched.now();
  }(f, r, completed_at), DomainId{1});
  f.sched.run_for(sim::seconds(10));
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_EQ(completed_at, sim::msec(100)) << "the call must return exactly at the bound";
}

TEST(P2pRpc, AckFreesStoredResults) {
  P2pFixture f;
  (void)f.run_one_call(1);
  (void)f.run_one_call(2);
  f.sched.run_for(sim::seconds(1));
  // stored_results_ is private; observable effect: repeated calls stay
  // correct and executions count matches (no stale answers).
  EXPECT_EQ(f.server_user.executions(), 2u);
}

}  // namespace
}  // namespace ugrpc::core
