// Crash recovery of ordered configurations (extension tests).
//
// With Atomic Execution configured, the ordering micro-protocols checkpoint
// their state (CheckpointParticipant), so a crashed-and-recovered member
// resumes its position in the order.  Combined with acceptance=ALL (clients
// keep retransmitting until *every* member replies), the group fully heals:
// the recovered member catches up on the calls it missed and all members
// end with identical execution logs.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

using Logs = std::map<std::uint32_t, std::vector<std::uint64_t>>;

// The log itself must survive the crash: keep it in the test, keyed by
// incarnation-independent site id, and let the app append on execution.
Site::AppSetup logging_app(Logs& logs) {
  return [&logs](UserProtocol& user, Site& site) {
    user.set_procedure([&logs, &site](OpId, Buffer& args) -> sim::Task<> {
      logs[site.id().value()].push_back(Reader(args).u64());
      co_return;
    });
    // No user state to checkpoint; the ordering/unique tables are the state
    // under test.
    user.set_state_hooks([] { return Buffer{}; }, [](const Buffer&) {});
  };
}

TEST(OrderingRecovery, TotalOrderMemberCatchesUpAfterCrash) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 2;  // server 2 is the leader; we crash server 1
  p.config.acceptance_limit = kAll;  // no membership: clients wait for recovery
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(30);
  p.config.ordering = Ordering::kTotal;
  p.config.execution = ExecutionMode::kSerialAtomic;
  p.seed = 71;
  p.server_app = logging_app(logs);
  Scenario s(std::move(p));
  s.scheduler().schedule_after(sim::msec(150), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(400), [&] { s.server(0).recover(); });
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 12; ++i) {
      const CallResult r = co_await c.call(s.group(), kOp, num_buf(i));
      if (r.ok()) ++ok;
      co_await s.scheduler().sleep_for(sim::msec(25));
    }
  }, sim::seconds(60));
  s.run_for(sim::seconds(5));
  EXPECT_EQ(ok, 12) << "all calls complete once the member recovers";
  const auto& crashed = logs[Scenario::server_id(0).value()];
  const auto& stayed = logs[Scenario::server_id(1).value()];
  EXPECT_EQ(stayed.size(), 12u);
  EXPECT_EQ(crashed, stayed)
      << "the recovered member must execute the full sequence in the same total order";
  // And exactly once each: atomic checkpoints preserved Unique Execution's
  // tables, so nothing re-executed.
  EXPECT_EQ(s.server(0).total_executions(), 12u);
}

TEST(OrderingRecovery, FifoOrderStreamPositionSurvivesCrash) {
  Logs logs;
  ScenarioParams p;
  p.num_servers = 2;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(30);
  p.config.ordering = Ordering::kFifo;
  p.config.execution = ExecutionMode::kSerialAtomic;
  p.seed = 73;
  p.server_app = logging_app(logs);
  Scenario s(std::move(p));
  s.scheduler().schedule_after(sim::msec(150), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(400), [&] { s.server(0).recover(); });
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 12; ++i) {
      const CallResult r = co_await c.call(s.group(), kOp, num_buf(i));
      if (r.ok()) ++ok;
      co_await s.scheduler().sleep_for(sim::msec(25));
    }
  }, sim::seconds(60));
  s.run_for(sim::seconds(5));
  EXPECT_EQ(ok, 12);
  const auto& crashed = logs[Scenario::server_id(0).value()];
  EXPECT_EQ(crashed.size(), 12u)
      << "with the restored stream position, no call is dropped as stale after recovery";
  for (std::size_t i = 1; i < crashed.size(); ++i) {
    EXPECT_LT(crashed[i - 1], crashed[i]);
  }
}

}  // namespace
}  // namespace ugrpc::core
