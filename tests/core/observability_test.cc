// Tests for the trace/observability hooks: the framework's per-handler
// trace observer and the network's packet tracer, exercised through a full
// call so the recorded sequences reflect real protocol behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

TEST(TraceObserver, RecordsHandlerChainOfACall) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  std::vector<std::string> client_events;
  s.client_site(0).grpc().framework().set_trace_observer(
      [&](sim::Time, const std::string& event, const std::string& handler) {
        client_events.push_back(event + "/" + handler);
      });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  // The client-side story: user call enters, record created, call sent,
  // reply processed, acceptance completes.
  ASSERT_FALSE(client_events.empty());
  EXPECT_EQ(client_events.front(), "CALL_FROM_USER/RPCMain.msg_from_user");
  bool saw_new_call = false;
  bool saw_accept = false;
  for (const std::string& e : client_events) {
    if (e == "NEW_RPC_CALL/Acceptance.handle_new_call") saw_new_call = true;
    if (e == "MSG_FROM_NETWORK/Acceptance.msg_from_net") saw_accept = true;
  }
  EXPECT_TRUE(saw_new_call);
  EXPECT_TRUE(saw_accept);
}

TEST(TraceObserver, ObserverSeesVirtualTimeMonotonically) {
  ScenarioParams p;
  p.num_servers = 2;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  std::vector<sim::Time> times;
  s.client_site(0).grpc().framework().set_trace_observer(
      [&](sim::Time t, const std::string&, const std::string&) { times.push_back(t); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GE(times[i], times[i - 1]);
}

TEST(TraceObserver, RemovableWithNullptr) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  Scenario s(std::move(p));
  int count = 0;
  auto& fw = s.client_site(0).grpc().framework();
  fw.set_trace_observer([&](sim::Time, const std::string&, const std::string&) { ++count; });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  const int after_first = count;
  EXPECT_GT(after_first, 0);
  fw.set_trace_observer(nullptr);
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  EXPECT_EQ(count, after_first);
}

TEST(PacketTracer, ObservesDeliveriesAndDrops) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.drop_prob = 0.5;
  p.seed = 8;
  Scenario s(std::move(p));
  int delivered = 0;
  int dropped = 0;
  s.network().set_packet_tracer([&](const net::Packet&, net::Network::PacketFate fate) {
    if (fate == net::Network::PacketFate::kDropped) {
      ++dropped;
    } else if (fate == net::Network::PacketFate::kDelivered) {
      ++delivered;
    }
  });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) (void)co_await c.call(s.group(), kOp, Buffer{});
  });
  EXPECT_GT(delivered, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(dropped), s.network().stats().dropped);
}

TEST(PacketTracer, SeesProtocolDemuxKeys) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.use_membership = true;
  Scenario s(std::move(p));
  bool saw_grpc = false;
  bool saw_membership = false;
  s.network().set_packet_tracer([&](const net::Packet& pkt, net::Network::PacketFate) {
    if (pkt.proto == kGrpcProto) saw_grpc = true;
    if (pkt.proto == membership::kMembershipProto) saw_membership = true;
  });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, Buffer{});
  }, sim::msec(500));
  // Heartbeats repeat every interval; give a few periods beyond the call.
  s.run_for(sim::msec(200));
  EXPECT_TRUE(saw_grpc);
  EXPECT_TRUE(saw_membership);
}

}  // namespace
}  // namespace ugrpc::core
