// Integration of the membership service with the gRPC micro-protocols:
// Acceptance reacting to server failures, and Total Order leader failover.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/micro/total_order.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kEcho{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

membership::Params fast_membership() {
  membership::Params m;
  m.heartbeat_interval = sim::msec(10);
  m.failure_timeout = sim::msec(80);
  return m;
}

TEST(MembershipIntegration, AcceptanceAllCompletesDespiteServerCrash) {
  // acceptance=ALL with membership: when a server crashes mid-call, the
  // client settles for the replies of the survivors instead of hanging.
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.use_membership = true;
  p.config.membership_params = fast_membership();
  // Servers delay their reply so the crash lands mid-call.
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::msec(400));
    });
  };
  Scenario s(std::move(p));
  s.scheduler().schedule_after(sim::msec(100), [&] { s.server(1).crash(); });
  CallResult result;
  sim::Time elapsed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    result = co_await c.call(s.group(), kEcho, num_buf(1));
    elapsed = s.scheduler().now() - t0;
  }, sim::seconds(30));
  EXPECT_EQ(result.status, Status::kOk)
      << "the failure of one server must not block acceptance=ALL with membership";
  EXPECT_LT(elapsed, sim::seconds(2));
}

TEST(MembershipIntegration, WithoutMembershipAcceptanceAllHangsOnCrash) {
  // The same scenario without membership: "a call will only terminate when
  // Acceptance_Limit responses are received even when some servers fail".
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::msec(400));
    });
  };
  Scenario s(std::move(p));
  s.scheduler().schedule_after(sim::msec(100), [&] { s.server(1).crash(); });
  bool returned = false;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
    returned = true;
  }, sim::seconds(10));
  EXPECT_FALSE(returned);
}

TEST(MembershipIntegration, NewCallsExcludeKnownFailedServers) {
  // After the failure is detected, new calls compute nres from the live set
  // only, so they complete at full speed.
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.use_membership = true;
  p.config.membership_params = fast_membership();
  Scenario s(std::move(p));
  s.server(2).crash();
  s.run_for(sim::msec(300));  // let the detector fire
  EXPECT_FALSE(s.client_site(0).grpc().state().members.contains(Scenario::server_id(2)));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kEcho, num_buf(1));
  }, sim::seconds(5));
  EXPECT_EQ(result.status, Status::kOk);
}

TEST(MembershipIntegration, TotalOrderLeaderFailover) {
  // The leader (largest id = server 3) crashes; the next-largest member
  // takes over order assignment and calls keep completing in a consistent
  // total order at the survivors.
  std::map<std::uint32_t, std::vector<std::uint64_t>> logs;
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = 2;  // survivors can accept
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(40);
  p.config.ordering = Ordering::kTotal;
  p.config.use_membership = true;
  p.config.membership_params = fast_membership();
  p.server_app = [&logs](UserProtocol& user, Site& site) {
    user.set_procedure([&logs, &site](OpId, Buffer& args) -> sim::Task<> {
      logs[site.id().value()].push_back(Reader(args).u64());
      co_return;
    });
  };
  Scenario s(std::move(p));
  TotalOrder* view = s.server(0).grpc().total();
  ASSERT_EQ(view->leader(s.group()), Scenario::server_id(2));
  s.scheduler().schedule_after(sim::msec(500), [&] { s.server(2).crash(); });
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 20; ++i) {
      const CallResult r = co_await c.call(s.group(), kEcho, num_buf(i));
      if (r.ok()) ++ok;
      co_await s.scheduler().sleep_for(sim::msec(60));
    }
  }, sim::seconds(60));
  EXPECT_EQ(ok, 20) << "calls must keep completing across the failover";
  EXPECT_EQ(view->leader(s.group()), Scenario::server_id(1)) << "next-largest id leads";
  // The two survivors agree on the execution order.
  const auto& log0 = logs[Scenario::server_id(0).value()];
  const auto& log1 = logs[Scenario::server_id(1).value()];
  EXPECT_EQ(log0.size(), 20u);
  EXPECT_EQ(log0, log1);
}

TEST(MembershipIntegration, RecoveredServerRejoinsMemberSet) {
  ScenarioParams p;
  p.num_servers = 2;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.use_membership = true;
  p.config.membership_params = fast_membership();
  Scenario s(std::move(p));
  s.server(0).crash();
  s.run_for(sim::msec(300));
  EXPECT_FALSE(s.client_site(0).grpc().state().members.contains(Scenario::server_id(0)));
  s.server(0).recover();
  s.run_for(sim::msec(300));
  EXPECT_TRUE(s.client_site(0).grpc().state().members.contains(Scenario::server_id(0)));
}

}  // namespace
}  // namespace ugrpc::core
