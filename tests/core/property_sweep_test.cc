// Property-based sweeps: protocol invariants checked across randomized
// fault schedules (seeds x fault intensities), using parameterized gtest.
//
// Invariants:
//  * exactly-once: with Unique Execution + Reliable Communication, every
//    completed call executed exactly once per server, for any loss/dup mix.
//  * total order: execution logs of all servers are identical, for any seed.
//  * fifo order: per-client issue order is preserved at every server.
//  * acceptance: a call completes only after >= k distinct server replies.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

// ---- exactly-once under loss+duplication ----

using FaultPoint = std::tuple<std::uint64_t /*seed*/, double /*drop*/, double /*dup*/>;

class ExactlyOnceSweep : public ::testing::TestWithParam<FaultPoint> {};

TEST_P(ExactlyOnceSweep, EveryCallExecutesOncePerServer) {
  const auto [seed, drop, dup] = GetParam();
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.drop_prob = drop;
  p.faults.dup_prob = dup;
  p.seed = seed;
  Scenario s(std::move(p));
  const int calls = 12;
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) {
      const CallResult r = co_await c.call(s.group(), kOp, num_buf(static_cast<unsigned>(i)));
      if (r.ok()) ++ok;
    }
  }, sim::seconds(120));
  s.run_for(sim::seconds(2));  // drain trailing duplicates
  EXPECT_EQ(ok, calls) << "seed=" << seed << " drop=" << drop << " dup=" << dup;
  EXPECT_EQ(s.total_server_executions(), static_cast<std::uint64_t>(calls) * 3)
      << "seed=" << seed << " drop=" << drop << " dup=" << dup;
}

INSTANTIATE_TEST_SUITE_P(
    FaultGrid, ExactlyOnceSweep,
    ::testing::Combine(::testing::Values(1, 7, 42, 1234), ::testing::Values(0.0, 0.15, 0.3),
                       ::testing::Values(0.0, 0.25, 0.5)));

// ---- total order identical logs across seeds ----

class TotalOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TotalOrderSweep, AllServersShareOneExecutionSequence) {
  std::map<std::uint32_t, std::vector<std::uint64_t>> logs;
  ScenarioParams p;
  p.num_servers = 4;
  p.num_clients = 2;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(30);
  p.config.ordering = Ordering::kTotal;
  p.faults.min_delay = sim::usec(50);
  p.faults.max_delay = sim::msec(20);
  p.faults.drop_prob = 0.1;
  p.seed = GetParam();
  p.server_app = [&logs](UserProtocol& user, Site& site) {
    user.set_procedure([&logs, &site](OpId, Buffer& args) -> sim::Task<> {
      logs[site.id().value()].push_back(Reader(args).u64());
      co_return;
    });
  };
  Scenario s(std::move(p));
  auto burst = [&](Client& c, std::uint64_t base) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 12; ++i) {
      (void)co_await c.call_async(s.group(), kOp, num_buf(base + i));
    }
  };
  s.scheduler().spawn(burst(s.client(0), 100), s.client_site(0).domain());
  s.scheduler().spawn(burst(s.client(1), 200), s.client_site(1).domain());
  s.run_for(sim::seconds(30));
  ASSERT_EQ(logs.size(), 4u);
  const auto& reference = logs.begin()->second;
  EXPECT_EQ(reference.size(), 24u);
  for (const auto& [server, log] : logs) {
    EXPECT_EQ(log, reference) << "server " << server << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TotalOrderSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---- fifo order across seeds ----

class FifoOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoOrderSweep, PerClientOrderHoldsAtEveryServer) {
  std::map<std::uint32_t, std::vector<std::uint64_t>> logs;
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(30);
  p.config.ordering = Ordering::kFifo;
  p.faults.min_delay = sim::usec(50);
  p.faults.max_delay = sim::msec(15);
  p.faults.drop_prob = 0.1;
  p.seed = GetParam();
  p.server_app = [&logs](UserProtocol& user, Site& site) {
    user.set_procedure([&logs, &site](OpId, Buffer& args) -> sim::Task<> {
      logs[site.id().value()].push_back(Reader(args).u64());
      co_return;
    });
  };
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 25; ++i) {
      (void)co_await c.call_async(s.group(), kOp, num_buf(i));
    }
  });
  s.run_for(sim::seconds(30));
  for (const auto& [server, log] : logs) {
    for (std::size_t i = 1; i < log.size(); ++i) {
      ASSERT_LT(log[i - 1], log[i])
          << "server " << server << " executed out of order, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoOrderSweep, ::testing::Values(3, 11, 17, 29, 31, 47));

// ---- acceptance counting ----

class AcceptanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(AcceptanceSweep, CompletionWaitsForKDistinctReplies) {
  const int k = GetParam();
  // Server i replies after (i-1)*5ms; with acceptance k, the call's latency
  // must be >= the k-th fastest server's delay and < the (k+1)-th's.
  ScenarioParams p;
  p.num_servers = 5;
  p.config.acceptance_limit = k;
  p.server_app = [](UserProtocol& user, Site& site) {
    const sim::Duration think = sim::msec(5) * (site.id().value() - 1);
    user.set_procedure([&site, think](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(think);
    });
  };
  Scenario s(std::move(p));
  sim::Time elapsed = 0;
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    result = co_await c.call(s.group(), kOp, Buffer{});
    elapsed = s.scheduler().now() - t0;
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_GE(elapsed, sim::msec(5) * (k - 1)) << "returned before the k-th reply";
  if (k < 5) {
    EXPECT_LT(elapsed, sim::msec(5) * k + sim::msec(2)) << "waited past the k-th reply";
  }
}

INSTANTIATE_TEST_SUITE_P(Limits, AcceptanceSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ugrpc::core
