// Tests of the failure-handling micro-protocols: Reliable Communication
// under message loss, Bounded Termination, Unique Execution (exactly-once),
// and the at-least-once / exactly-once distinction of paper Figure 1.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/micro/bounded_termination.h"
#include "core/micro/reliable_communication.h"
#include "core/micro/unique_execution.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kEcho{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

TEST(ReliableCommunication, CallSurvivesHeavyMessageLoss) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.drop_prob = 0.4;
  p.seed = 11;
  Scenario s(std::move(p));
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      const CallResult r = co_await c.call(s.group(), kEcho, num_buf(static_cast<unsigned>(i)));
      if (r.ok()) ++ok;
    }
  });
  EXPECT_EQ(ok, 10) << "40% loss must be masked by retransmission";
}

TEST(ReliableCommunication, RetransmissionsHappenUnderLoss) {
  ScenarioParams p;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.drop_prob = 0.5;
  p.seed = 5;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
  });
  EXPECT_GT(s.client_site(0).grpc().reliable()->retransmissions(), 0u);
}

TEST(ReliableCommunication, NoRetransmissionOnPerfectNetwork) {
  ScenarioParams p;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(500);  // longer than a round trip
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
  });
  EXPECT_EQ(s.client_site(0).grpc().reliable()->retransmissions(), 0u);
}

TEST(UnreliableCall, LostMessagesHangWithoutReliability) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.faults.drop_prob = 1.0;  // everything lost
  Scenario s(std::move(p));
  bool returned = false;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
    returned = true;
  }, sim::seconds(10));
  EXPECT_FALSE(returned) << "without reliability or bounded termination the call blocks forever";
}

TEST(BoundedTermination, TimesOutWhenServersUnreachable) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.termination_bound = sim::msec(200);
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  CallResult result;
  sim::Time elapsed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    result = co_await c.call(s.group(), kEcho, num_buf(1));
    elapsed = s.scheduler().now() - t0;
  });
  EXPECT_EQ(result.status, Status::kTimeout);
  EXPECT_EQ(elapsed, sim::msec(200)) << "the call must return exactly at the bound";
  EXPECT_EQ(s.client_site(0).grpc().bounded()->timeouts_fired(), 1u);
}

TEST(BoundedTermination, FastCallDoesNotTimeOut) {
  ScenarioParams p;
  p.config.acceptance_limit = kAll;
  p.config.termination_bound = sim::seconds(5);
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kEcho, num_buf(1));
  });
  s.run_until_quiescent();  // let the (now irrelevant) deadline fire
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(s.client_site(0).grpc().bounded()->timeouts_fired(), 0u);
}

TEST(BoundedTermination, TimeoutCountsOnlyIncompleteCalls) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.termination_bound = sim::msec(300);
  p.config.reliable_communication = true;
  p.faults.drop_prob = 0.3;
  p.seed = 3;
  Scenario s(std::move(p));
  int ok = 0;
  int timeout = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 20; ++i) {
      const CallResult r = co_await c.call(s.group(), kEcho, num_buf(static_cast<unsigned>(i)));
      (r.ok() ? ok : timeout)++;
    }
  });
  EXPECT_EQ(ok + timeout, 20);
  EXPECT_GT(ok, 0);
}

// ---- Figure 1: failure semantics as property combinations ----

// At least once: no unique execution.  Duplicated messages cause duplicate
// executions at the server.
TEST(Figure1, AtLeastOnceExecutesDuplicatesUnderDuplication) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.dup_prob = 1.0;  // every packet delivered twice
  p.seed = 2;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
  });
  s.run_for(sim::msec(500));  // let duplicates land
  EXPECT_GT(s.total_server_executions(), 1u)
      << "without Unique Execution, duplicated calls re-execute";
}

// Exactly once: unique execution suppresses duplicates.
TEST(Figure1, ExactlyOnceSuppressesDuplicates) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.dup_prob = 1.0;
  p.seed = 2;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kEcho, num_buf(1));
  });
  s.run_for(sim::msec(500));
  EXPECT_EQ(s.total_server_executions(), 1u);
  EXPECT_GT(s.server(0).grpc().unique()->duplicates_suppressed(), 0u);
}

TEST(Figure1, ExactlyOnceUnderLossAndDuplication) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(20);
  p.faults.drop_prob = 0.3;
  p.faults.dup_prob = 0.3;
  p.seed = 17;
  Scenario s(std::move(p));
  const int calls = 15;
  int ok = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) {
      const CallResult r = co_await c.call(s.group(), kEcho, num_buf(static_cast<unsigned>(i)));
      if (r.ok()) ++ok;
    }
  });
  s.run_for(sim::seconds(1));
  EXPECT_EQ(ok, calls);
  EXPECT_EQ(s.total_server_executions(), static_cast<std::uint64_t>(calls) * 3)
      << "each call executes exactly once per server despite loss+dup";
}

TEST(UniqueExecution, StoredResultIsResentForDuplicateCall) {
  // Drop the first Reply deterministically by partitioning the reverse link
  // briefly: the client retransmits, and the server must answer from
  // OldResults without re-executing.
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(30);
  Scenario s(std::move(p));
  const ProcessId server = Scenario::server_id(0);
  const ProcessId client = s.client_id(0);
  s.network().link(server, client).partitioned = true;  // replies blocked
  s.scheduler().schedule_after(sim::msec(100), [&] {
    s.network().link(server, client).partitioned = false;
  });
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kEcho, num_buf(9));
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(s.total_server_executions(), 1u);
  EXPECT_GT(s.server(0).grpc().unique()->duplicates_suppressed(), 0u);
}

TEST(UniqueExecution, AckGarbageCollectsStoredResults) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      (void)co_await c.call(s.group(), kEcho, num_buf(static_cast<unsigned>(i)));
    }
  });
  s.run_until_quiescent();
  EXPECT_EQ(s.server(0).grpc().unique()->stored_results(), 0u)
      << "client ACKs must free all stored results on a fault-free network";
}

}  // namespace
}  // namespace ugrpc::core
