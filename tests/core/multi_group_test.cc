// A composite serves whatever group a call names: group identity travels in
// the messages (msg.server), so one set of sites can host several
// overlapping server groups simultaneously.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};
constexpr GroupId kSubGroup{2};

TEST(MultiGroup, OverlappingGroupsServeIndependently) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  // Besides the scenario's group {1,2,3}, define a subgroup {1,2}.
  s.network().define_group(kSubGroup, {Scenario::server_id(0), Scenario::server_id(1)});
  CallResult full;
  CallResult sub;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    full = co_await c.call(s.group(), kOp, Buffer{});
    sub = co_await c.call(kSubGroup, kOp, Buffer{});
  });
  s.run_until_quiescent();
  EXPECT_EQ(full.status, Status::kOk);
  EXPECT_EQ(sub.status, Status::kOk);
  // Full group executed once each (3), subgroup only on members 1 and 2.
  EXPECT_EQ(s.server(0).total_executions(), 2u);
  EXPECT_EQ(s.server(1).total_executions(), 2u);
  EXPECT_EQ(s.server(2).total_executions(), 1u);
}

TEST(MultiGroup, AcceptanceCountsPerGroupMembership) {
  // acceptance=ALL against the subgroup waits for 2 responses, not 3.
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.server_app = [](UserProtocol& user, Site& site) {
    // Server 3 would be very slow; the subgroup call must not wait for it.
    const bool slow = site.id() == Scenario::server_id(2);
    user.set_procedure([&site, slow](OpId, Buffer&) -> sim::Task<> {
      if (slow) co_await site.scheduler().sleep_for(sim::seconds(5));
    });
  };
  Scenario s(std::move(p));
  s.network().define_group(kSubGroup, {Scenario::server_id(0), Scenario::server_id(1)});
  CallResult sub;
  sim::Time elapsed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    sub = co_await c.call(kSubGroup, kOp, Buffer{});
    elapsed = s.scheduler().now() - t0;
  }, sim::seconds(30));
  EXPECT_EQ(sub.status, Status::kOk);
  EXPECT_LT(elapsed, sim::seconds(1)) << "the subgroup call must not involve the slow server";
}

TEST(MembershipFalsePositive, LateRepliesFromWronglySuspectedServerAreTolerated) {
  // An aggressive failure detector declares a slow-but-alive server failed;
  // Acceptance settles without it.  When its late reply arrives anyway, the
  // completed call ignores it and nothing corrupts later calls.
  ScenarioParams p;
  p.num_servers = 2;
  p.config.acceptance_limit = kAll;
  p.config.use_membership = true;
  p.config.membership_params = {sim::msec(10), sim::msec(60)};
  p.server_app = [](UserProtocol& user, Site& site) {
    const bool slow = site.id() == Scenario::server_id(1);
    user.set_procedure([&site, slow](OpId, Buffer&) -> sim::Task<> {
      if (slow) co_await site.scheduler().sleep_for(sim::msec(150));
    });
  };
  Scenario s(std::move(p));
  // Suppress the slow server's heartbeats toward the client only: the
  // client wrongly suspects it while it stays alive and replies late.
  s.network().link(Scenario::server_id(1), s.client_id(0)).partitioned = true;
  s.scheduler().schedule_after(sim::msec(120), [&] {
    s.network().link(Scenario::server_id(1), s.client_id(0)).partitioned = false;
  });
  CallResult first;
  CallResult second;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    co_await s.scheduler().sleep_for(sim::msec(90));  // let the suspicion form
    first = co_await c.call(s.group(), kOp, Buffer{});
    co_await s.scheduler().sleep_for(sim::msec(300));  // late reply lands here
    second = co_await c.call(s.group(), kOp, Buffer{});
  }, sim::seconds(30));
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(second.status, Status::kOk) << "the late reply must not poison later calls";
}

}  // namespace
}  // namespace ugrpc::core
