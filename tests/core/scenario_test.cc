// Tests for the Scenario testbed helper itself.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include "core/micro/acceptance.h"

namespace ugrpc::core {
namespace {

TEST(Scenario, AssignsSequentialProcessIds) {
  ScenarioParams p;
  p.num_servers = 3;
  p.num_clients = 2;
  Scenario s(std::move(p));
  EXPECT_EQ(Scenario::server_id(0), ProcessId{1});
  EXPECT_EQ(Scenario::server_id(2), ProcessId{3});
  EXPECT_EQ(s.client_id(0), ProcessId{4});
  EXPECT_EQ(s.client_id(1), ProcessId{5});
  EXPECT_EQ(s.num_servers(), 3);
  EXPECT_EQ(s.num_clients(), 2);
}

TEST(Scenario, GroupContainsExactlyTheServers) {
  ScenarioParams p;
  p.num_servers = 4;
  Scenario s(std::move(p));
  const auto& members = s.network().group_members(s.group());
  ASSERT_EQ(members.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(members[static_cast<std::size_t>(i)], Scenario::server_id(i));
  }
}

TEST(Scenario, AllSitesBootUp) {
  ScenarioParams p;
  p.num_servers = 2;
  p.num_clients = 2;
  Scenario s(std::move(p));
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(s.server(i).up());
    EXPECT_TRUE(s.client_site(i).up());
  }
}

TEST(Scenario, DefaultAppEchoesArguments) {
  ScenarioParams p;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  Buffer args;
  Writer(args).str("echo me");
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    r = co_await c.call(s.group(), OpId{1}, args);
  });
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.result, args);
}

TEST(Scenario, RunClientReturnsWhenSystemWedges) {
  // Everything dropped, no reliability: the call can never complete and no
  // timer will ever fire.  run_client must return (quiescence), leaving the
  // stuck client fiber parked rather than spinning or hanging the test.
  ScenarioParams p;
  p.num_servers = 1;
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  bool finished = false;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), OpId{1}, Buffer{});
    finished = true;
  }, sim::msec(100));
  EXPECT_FALSE(finished);
  EXPECT_EQ(s.scheduler().live_fiber_count(), 1u) << "the client fiber is parked, not dead";
}

TEST(Scenario, RunClientDeadlineBoundsBusyWorkloads) {
  // With reliability configured the retransmission timer fires forever; the
  // deadline must stop the run.
  ScenarioParams p;
  p.num_servers = 1;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(10);
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), OpId{1}, Buffer{});
  }, sim::msec(100));
  EXPECT_GE(s.scheduler().now(), sim::msec(100));
  EXPECT_LE(s.scheduler().now(), sim::msec(200)) << "must stop promptly at the deadline";
}

TEST(Scenario, SeedFlowsIntoTheScheduler) {
  ScenarioParams p1;
  p1.seed = 5;
  p1.faults.drop_prob = 0.5;
  ScenarioParams p2 = p1;
  Scenario a(std::move(p1));
  Scenario b(std::move(p2));
  // Same seed, same construction: first random decisions must agree.
  EXPECT_EQ(a.scheduler().rng().next(), b.scheduler().rng().next());
}

TEST(Scenario, TotalServerExecutionsSumsAcrossGroup) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), OpId{1}, Buffer{});
    (void)co_await c.call(s.group(), OpId{1}, Buffer{});
  });
  EXPECT_EQ(s.total_server_executions(), 6u);
}

}  // namespace
}  // namespace ugrpc::core
