// Unit tests for the UserProtocol upcall target.
#include "core/user_protocol.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace ugrpc::core {
namespace {

sim::Task<> drive_pop(UserProtocol& user, OpId op, Buffer& args) { co_await user.pop(op, args); }

TEST(UserProtocol, PopWithoutProcedureIsANoOpButCounts) {
  sim::Scheduler sched;
  UserProtocol user;
  Buffer args;
  Writer(args).u32(1);
  const Buffer before = args;
  sched.spawn(drive_pop(user, OpId{1}, args));
  sched.run();
  EXPECT_EQ(args, before);
  EXPECT_EQ(user.executions(), 1u);
}

TEST(UserProtocol, ProcedureMutatesArgsInPlace) {
  sim::Scheduler sched;
  UserProtocol user;
  user.set_procedure([](OpId op, Buffer& args) -> sim::Task<> {
    Buffer out;
    Writer(out).u32(op.value() * 2);
    args = out;
    co_return;
  });
  Buffer args;
  sched.spawn(drive_pop(user, OpId{21}, args));
  sched.run();
  EXPECT_EQ(Reader(args).u32(), 42u);
  EXPECT_EQ(user.executions(), 1u);
}

TEST(UserProtocol, ExecutionsCountEveryInvocation) {
  sim::Scheduler sched;
  UserProtocol user;
  Buffer args;
  for (int i = 0; i < 5; ++i) {
    sched.spawn(drive_pop(user, OpId{1}, args));
  }
  sched.run();
  EXPECT_EQ(user.executions(), 5u);
}

TEST(UserProtocol, StateHooksDefaultToEmpty) {
  UserProtocol user;
  EXPECT_FALSE(user.has_state_hooks());
  EXPECT_TRUE(user.snapshot_state().empty());
  user.restore_state(Buffer{});  // no hook: must be a safe no-op
}

TEST(UserProtocol, StateHooksRoundTrip) {
  UserProtocol user;
  std::uint64_t state = 7;
  user.set_state_hooks(
      [&state] {
        Buffer b;
        Writer(b).u64(state);
        return b;
      },
      [&state](const Buffer& b) { state = Reader(b).u64(); });
  EXPECT_TRUE(user.has_state_hooks());
  const Buffer snap = user.snapshot_state();
  state = 99;
  user.restore_state(snap);
  EXPECT_EQ(state, 7u);
}

}  // namespace
}  // namespace ugrpc::core
