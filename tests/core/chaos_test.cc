// Chaos test: a long randomized schedule of crashes and recoveries layered
// on a lossy, duplicating, reordering network, with global invariants
// checked at the end:
//
//  * every call the client saw complete (OK) executed at least once
//    somewhere (the result really came from an execution);
//  * with unique execution, no completed call executed more than once per
//    *server incarnation era* is hard to observe from outside, so we check
//    the stronger end-to-end property the configuration advertises: the
//    sum of executions of an echo-counter app equals the number of OK calls
//    (each execution increments exactly one stable counter, checkpointed by
//    Atomic Execution, so crash rollbacks keep it exact).
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

std::uint64_t read_counter(storage::StableStore& store) {
  auto v = store.get("count");
  return v.has_value() ? Reader(*v).u64() : 0;
}

/// Counts completed executions in stable storage; state hooks make it
/// atomic across crashes.
Site::AppSetup counter_app() {
  return [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer& args) -> sim::Task<> {
      Buffer b;
      Writer(b).u64(read_counter(site.stable()) + 1);
      site.stable().put("count", b);
      args = b;
      co_return;
    });
    user.set_state_hooks(
        [&site] {
          Buffer snap;
          Writer(snap).u64(read_counter(site.stable()));
          return snap;
        },
        [&site](const Buffer& snap) {
          Buffer b;
          Writer(b).u64(Reader(snap).u64());
          site.stable().put("count", b);
        });
  };
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, AtMostOnceCounterStaysExactThroughCrashChurn) {
  ScenarioParams p;
  p.num_servers = 1;  // one server: the counter is the single source of truth
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.execution = ExecutionMode::kSerialAtomic;
  p.config.retrans_timeout = sim::msec(25);
  p.faults.drop_prob = 0.15;
  p.faults.dup_prob = 0.15;
  p.faults.min_delay = sim::usec(100);
  p.faults.max_delay = sim::msec(5);
  p.seed = GetParam();
  p.server_app = counter_app();
  Scenario s(std::move(p));

  // Crash/recovery churn: every 80ms crash, every 160ms recover.
  sim::Rng churn_rng(GetParam() * 31 + 7);
  std::function<void()> schedule_churn = [&] {
    const auto delay = sim::msec(60 + churn_rng.uniform_int(0, 80));
    s.scheduler().schedule_after(delay, [&] {
      if (s.server(0).up()) {
        s.server(0).crash();
      } else {
        s.server(0).recover();
      }
      schedule_churn();
    });
  };
  schedule_churn();

  int ok = 0;
  const int calls = 30;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) {
      const CallResult r = co_await c.call(s.group(), kOp, Buffer{});
      if (r.ok()) ++ok;
      co_await s.scheduler().sleep_for(sim::msec(10));
    }
  }, sim::seconds(120));
  if (!s.server(0).up()) s.server(0).recover();
  s.run_for(sim::seconds(2));

  EXPECT_EQ(ok, calls) << "unbounded termination + retransmission completes every call";
  // The exactness invariant: OK calls == counter increments that survived.
  EXPECT_EQ(read_counter(s.server(0).stable()), static_cast<std::uint64_t>(ok))
      << "seed " << GetParam()
      << ": at-most-once across crash churn must keep the stable counter exact";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace ugrpc::core
