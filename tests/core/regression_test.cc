// Regression tests for composition hazards found while building the system.
// Each test pins a specific interaction between micro-protocols that the
// paper's pseudocode leaves unresolved (documented in DESIGN.md).
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/micro/unique_execution.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

// Hazard 1: Total Order's early duplicate-cancel used to run before Unique
// Execution could resend a stored result.  A client whose Reply is lost
// must recover via retransmission even for a call the server has already
// executed and advanced past in the total order.
TEST(Regression, TotalOrderDoesNotSuppressStoredResultResend) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(25);
  p.config.ordering = Ordering::kTotal;
  Scenario s(std::move(p));
  const ProcessId server = Scenario::server_id(0);
  const ProcessId client = s.client_id(0);
  // First call completes normally (advances next_entry past its order),
  // then the reverse path is cut so the second call's Reply is lost.
  CallResult first;
  CallResult second;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    first = co_await c.call(s.group(), kOp, num_buf(1));
    s.network().link(server, client).partitioned = true;
    s.scheduler().schedule_after(sim::msec(120), [&] {
      s.network().link(server, client).partitioned = false;
    });
    second = co_await c.call(s.group(), kOp, num_buf(2));
  }, sim::seconds(30));
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(second.status, Status::kOk)
      << "retransmission must obtain the stored result after the partition heals";
  EXPECT_EQ(s.total_server_executions(), 2u) << "the resend must not re-execute";
}

// Hazard 2: Interference Avoidance's deferral relies on retransmissions
// re-delivering the new incarnation's call.  If Unique Execution saw the
// call first it would eat every retransmission as a duplicate.  (Fixed by
// running orphan handling before unique execution on MSG_FROM_NETWORK.)
TEST(Regression, DeferredNewIncarnationCallIsEventuallyAdmitted) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(30);
  p.config.orphan = OrphanHandling::kInterferenceAvoidance;
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::msec(80));  // long enough to orphan
    });
  };
  Scenario s(std::move(p));
  Site& client_site = s.client_site(0);
  s.scheduler().schedule_after(sim::msec(10), [&] { client_site.crash(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, num_buf(1));
  });
  client_site.recover();
  Client fresh(client_site);
  CallResult second;
  auto driver = [&](Client& c) -> sim::Task<> {
    second = co_await c.call(s.group(), kOp, num_buf(2));
  };
  s.scheduler().spawn(driver(fresh), client_site.domain());
  s.run_for(sim::seconds(3));
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_EQ(s.total_server_executions(), 2u);
}

// Hazard 3: call-id reuse across client incarnations.  Without
// incarnation-salted ids, the recovered client's first call would collide
// with its orphaned call and be answered with the orphan's stored result.
TEST(Regression, RecoveredClientCallIdsDoNotCollideWithOrphans) {
  EXPECT_NE(first_seq_of_incarnation(1), first_seq_of_incarnation(2));
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  Scenario s(std::move(p));
  Site& client_site = s.client_site(0);
  // Issue call, crash before reply lands, recover, issue a different call.
  s.scheduler().schedule_after(sim::usec(50), [&] { client_site.crash(); });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, num_buf(111));
  });
  client_site.recover();
  Client fresh(client_site);
  CallResult result;
  auto driver = [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kOp, num_buf(222));
  };
  s.scheduler().spawn(driver(fresh), client_site.domain());
  s.run_for(sim::seconds(2));
  EXPECT_EQ(result.status, Status::kOk);
  // Echo server: the result must be the NEW call's argument, not the
  // orphan's stored result.
  EXPECT_EQ(Reader(result.result).u64(), 222u);
}

// Hazard 4: Collation folding a duplicated Reply twice.  With Collation
// running before Acceptance it must itself skip replies already counted.
TEST(Regression, DuplicatedReplyIsCollatedOnce) {
  ScenarioParams p;
  p.num_servers = 2;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  // Sum-collation makes double-folding visible.
  p.config.collation = [](const Buffer& acc, const Buffer& reply) {
    Buffer b;
    Writer(b).u64(Reader(acc).u64() + Reader(reply).u64());
    return b;
  };
  p.config.collation_init = num_buf(0);
  p.faults.dup_prob = 1.0;  // every packet (including replies) duplicated
  p.seed = 9;
  Scenario s(std::move(p));
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kOp, num_buf(10));
  });
  s.run_for(sim::seconds(1));
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(Reader(result.result).u64(), 20u) << "10+10 exactly once per server";
}

// Hazard 5: late replies after acceptance must not V the client semaphore
// again (the paper V's unconditionally).  A subsequent call on the same
// client must genuinely wait rather than consuming a stale token.
TEST(Regression, LateRepliesDoNotLeaveStaleSemaphoreTokens) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = 1;  // accepted on the first reply; 2 arrive late
  p.server_app = [](UserProtocol& user, Site& site) {
    // Heterogeneous delays so replies straggle.
    const sim::Duration think = sim::msec(3) * (site.id().value() - 1);
    user.set_procedure([&site, think](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(think);
    });
  };
  Scenario s(std::move(p));
  sim::Time second_elapsed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kOp, num_buf(1));
    co_await s.scheduler().sleep_for(sim::msec(50));  // stragglers land now
    const sim::Time t0 = s.scheduler().now();
    (void)co_await c.call(s.group(), kOp, num_buf(2));
    second_elapsed = s.scheduler().now() - t0;
  });
  EXPECT_GT(second_elapsed, sim::usec(100))
      << "the second call must actually wait for its own reply";
}

// Hazard 6: retransmissions must carry the original request bytes, not the
// collation accumulator (the paper shares one args field for both).
TEST(Regression, RetransmissionCarriesOriginalRequest) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.retrans_timeout = sim::msec(20);
  // A collation init that would be visibly wrong as a request.
  p.config.collation = last_reply_collation();
  p.config.collation_init = num_buf(999);
  p.seed = 4;
  Scenario s(std::move(p));
  const ProcessId server = Scenario::server_id(0);
  const ProcessId client = s.client_id(0);
  // Drop the first transmission deterministically: partition briefly.
  s.network().link(client, server).partitioned = true;
  s.scheduler().schedule_after(sim::msec(50), [&] {
    s.network().link(client, server).partitioned = false;
  });
  CallResult result;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    result = co_await c.call(s.group(), kOp, num_buf(77));
  });
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(Reader(result.result).u64(), 77u)
      << "the retransmitted (echoed) request must be the original argument";
}

}  // namespace
}  // namespace ugrpc::core
