// CallHandle lifecycle: the future-like façade over the paper's
// asynchronous Call/Request pair (section 4.4.1).
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

ScenarioParams async_params() {
  ScenarioParams p;
  p.config = ConfigBuilder().asynchronous().acceptance_limit(kAll).build();
  return p;
}

TEST(CallHandle, GetReturnsTheResultOnce) {
  Scenario s(async_params());
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(42));
    EXPECT_TRUE(h.pending());
    r = co_await h.get();
    EXPECT_FALSE(h.pending());
  });
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(Reader(r.result).u64(), 42u);
}

TEST(CallHandle, DoubleGetReturnsWaiting) {
  Scenario s(async_params());
  CallResult first;
  CallResult second;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(1));
    first = co_await h.get();
    second = co_await h.get();
  });
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(second.status, Status::kWaiting) << "the result record is consumed by the first get";
  EXPECT_EQ(second.id, first.id) << "the handle keeps reporting its call id";
}

TEST(CallHandle, DropWithoutGetIsSafe) {
  Scenario s(async_params());
  int completed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    {
      CallHandle dropped = co_await c.call_async(s.group(), kOp, num_buf(1));
      (void)dropped;  // destroyed without get(): must neither block nor throw
    }
    // The site keeps working afterwards.
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(2));
    const CallResult r = co_await h.get();
    if (r.ok()) ++completed;
  });
  s.run_until_quiescent();
  EXPECT_EQ(completed, 1);
}

TEST(CallHandle, TimeoutStatusPropagatesThroughGet) {
  ScenarioParams p = async_params();
  p.config.termination_bound = sim::msec(100);
  p.faults.drop_prob = 1.0;  // nothing ever arrives
  Scenario s(std::move(p));
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(1));
    r = co_await h.get();
  });
  EXPECT_EQ(r.status, Status::kTimeout);
}

TEST(CallHandle, ManyHandlesResolveIndependently) {
  Scenario s(async_params());
  std::vector<std::optional<CallResult>> results(6);
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    std::vector<CallHandle> handles;
    for (std::uint64_t i = 0; i < results.size(); ++i) {
      handles.push_back(co_await c.call_async(s.group(), kOp, num_buf(i)));
    }
    // Retrieve evens first, then odds: order must not matter.
    for (std::size_t i = 0; i < handles.size(); i += 2) results[i] = co_await handles[i].get();
    for (std::size_t i = 1; i < handles.size(); i += 2) results[i] = co_await handles[i].get();
  });
  for (std::uint64_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(results[i]->status, Status::kOk);
    EXPECT_EQ(Reader(results[i]->result).u64(), i);
  }
}

}  // namespace
}  // namespace ugrpc::core
