// Compatibility shims: the deprecated begin()/result() pair must keep its
// exact historical semantics until removal.  This is the ONLY translation
// unit allowed to exercise the deprecated API; everything else uses
// call_async()/CallHandle.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

ScenarioParams async_params() {
  ScenarioParams p;
  p.config = ConfigBuilder().asynchronous().acceptance_limit(kAll).build();
  return p;
}

TEST(DeprecatedApi, BeginThenResultRoundTrips) {
  Scenario s(async_params());
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallId id = co_await c.begin(s.group(), kOp, num_buf(5));
    r = co_await c.result(s.group(), id);
  });
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(Reader(r.result).u64(), 5u);
}

TEST(DeprecatedApi, ResultForUnknownIdReturnsImmediatelyWaiting) {
  Scenario s(async_params());
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    // Never issued: the pRPC table has no such record, so the request falls
    // through without blocking and the status stays WAITING.
    r = co_await c.result(s.group(), CallId{987654321});
  });
  EXPECT_EQ(r.status, Status::kWaiting);
}

TEST(DeprecatedApi, SecondResultForSameIdReturnsWaiting) {
  Scenario s(async_params());
  CallResult first;
  CallResult second;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallId id = co_await c.begin(s.group(), kOp, num_buf(1));
    first = co_await c.result(s.group(), id);
    second = co_await c.result(s.group(), id);
  });
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(second.status, Status::kWaiting);
}

TEST(DeprecatedApi, SyncConfigIgnoresRequestMessages) {
  ScenarioParams p;  // synchronous configuration
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallResult call = co_await c.call(s.group(), kOp, num_buf(1));
    EXPECT_EQ(call.status, Status::kOk);
    // No Asynchronous Call micro-protocol: a Request falls through without
    // any handler touching it.
    r = co_await c.result(s.group(), call.id);
  });
  EXPECT_EQ(r.status, Status::kWaiting);
}

TEST(DeprecatedApi, ShimAndHandleInteroperate) {
  // A result() issued for a call begun via call_async() consumes the same
  // record: both layers drive the identical Request path.
  Scenario s(async_params());
  CallResult via_shim;
  CallResult via_handle;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(3));
    via_shim = co_await c.result(s.group(), h.id());
    via_handle = co_await h.get();
  });
  EXPECT_EQ(via_shim.status, Status::kOk);
  EXPECT_EQ(Reader(via_shim.result).u64(), 3u);
  EXPECT_EQ(via_handle.status, Status::kWaiting) << "the shim consumed the record first";
}

}  // namespace
}  // namespace ugrpc::core

#pragma GCC diagnostic pop
