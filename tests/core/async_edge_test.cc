// Edge cases of the asynchronous call semantics and the CallHandle facade.
// (The deprecated begin()/result() shims are pinned separately in
// deprecated_api_test.cc.)
#include <gtest/gtest.h>

#include <utility>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

ScenarioParams async_params() {
  ScenarioParams p;
  p.config = ConfigBuilder().asynchronous().acceptance_limit(kAll).build();
  return p;
}

TEST(AsyncEdge, SecondGetOnSameHandleReturnsWaiting) {
  Scenario s(async_params());
  CallResult first;
  CallResult second;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(1));
    first = co_await h.get();
    // The record was consumed by the first get (paper: the record is
    // removed when the result is retrieved).
    second = co_await h.get();
  });
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(second.status, Status::kWaiting);
}

TEST(AsyncEdge, BoundedTerminationAppliesToAsyncCalls) {
  ScenarioParams p = async_params();
  p.config.termination_bound = sim::msec(150);
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(1));
    r = co_await h.get();
  });
  EXPECT_EQ(r.status, Status::kTimeout)
      << "the deadline must release a get() blocked on a dead call";
}

TEST(AsyncEdge, ResultsAreRetrievableInAnyOrder) {
  Scenario s(async_params());
  CallResult r_last;
  CallResult r_first;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle a = co_await c.call_async(s.group(), kOp, num_buf(10));
    CallHandle b = co_await c.call_async(s.group(), kOp, num_buf(20));
    r_last = co_await b.get();   // newest first
    r_first = co_await a.get();
  });
  EXPECT_EQ(r_last.status, Status::kOk);
  EXPECT_EQ(Reader(r_last.result).u64(), 20u);
  EXPECT_EQ(r_first.status, Status::kOk);
  EXPECT_EQ(Reader(r_first.result).u64(), 10u);
}

TEST(AsyncEdge, DroppedHandleNeverBlocksAndLeavesPeersIntact) {
  Scenario s(async_params());
  CallResult kept;
  CallId dropped_id;
  bool dropped_pending = false;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle keep = co_await c.call_async(s.group(), kOp, num_buf(1));
    {
      CallHandle dropped = co_await c.call_async(s.group(), kOp, num_buf(2));
      dropped_id = dropped.id();
      dropped_pending = dropped.pending();
      // `dropped` goes out of scope without get(): must not block or
      // disturb the sibling call.
    }
    kept = co_await keep.get();
  });
  EXPECT_TRUE(dropped_pending);
  EXPECT_NE(dropped_id.value(), 0u);
  EXPECT_EQ(kept.status, Status::kOk);
  EXPECT_EQ(Reader(kept.result).u64(), 1u);
}

TEST(AsyncEdge, MovedFromHandleReportsWaiting) {
  Scenario s(async_params());
  CallResult from_moved;
  CallResult from_target;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    CallHandle a = co_await c.call_async(s.group(), kOp, num_buf(7));
    CallHandle b = std::move(a);
    EXPECT_FALSE(a.pending());  // NOLINT(bugprone-use-after-move): pinned semantics
    from_moved = co_await a.get();
    from_target = co_await b.get();
  });
  EXPECT_EQ(from_moved.status, Status::kWaiting);
  EXPECT_EQ(from_target.status, Status::kOk);
  EXPECT_EQ(Reader(from_target.result).u64(), 7u);
}

TEST(AsyncEdge, AsyncConfigBlocksNobodyOnIssue) {
  ScenarioParams p = async_params();
  p.num_servers = 1;
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::seconds(1));  // very slow server
    });
  };
  Scenario s(std::move(p));
  int issued = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    for (int i = 0; i < 5; ++i) {
      (void)co_await c.call_async(s.group(), kOp, num_buf(static_cast<unsigned>(i)));
      ++issued;
    }
    EXPECT_EQ(s.scheduler().now(), t0) << "issuing must consume no virtual time";
  });
  EXPECT_EQ(issued, 5);
}

}  // namespace
}  // namespace ugrpc::core
