// Edge cases of the asynchronous call semantics and the client facade.
#include <gtest/gtest.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

ScenarioParams async_params() {
  ScenarioParams p;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.acceptance_limit = kAll;
  return p;
}

TEST(AsyncEdge, ResultForUnknownIdReturnsImmediatelyWaiting) {
  Scenario s(async_params());
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    // Never issued: the pRPC table has no such record, so the request falls
    // through without blocking and the status stays WAITING.
    r = co_await c.result(s.group(), CallId{987654321});
  });
  EXPECT_EQ(r.status, Status::kWaiting);
}

TEST(AsyncEdge, SecondResultForSameIdReturnsWaiting) {
  Scenario s(async_params());
  CallResult first;
  CallResult second;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallId id = co_await c.begin(s.group(), kOp, num_buf(1));
    first = co_await c.result(s.group(), id);
    // The record was consumed by the first request (paper: the record is
    // removed when the result is retrieved).
    second = co_await c.result(s.group(), id);
  });
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(second.status, Status::kWaiting);
}

TEST(AsyncEdge, BoundedTerminationAppliesToAsyncCalls) {
  ScenarioParams p = async_params();
  p.config.termination_bound = sim::msec(150);
  p.faults.drop_prob = 1.0;
  Scenario s(std::move(p));
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallId id = co_await c.begin(s.group(), kOp, num_buf(1));
    r = co_await c.result(s.group(), id);
  });
  EXPECT_EQ(r.status, Status::kTimeout)
      << "the deadline must release a Request blocked on a dead call";
}

TEST(AsyncEdge, ResultsAreRetrievableInAnyOrder) {
  Scenario s(async_params());
  CallResult r_last;
  CallResult r_first;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallId a = co_await c.begin(s.group(), kOp, num_buf(10));
    const CallId b = co_await c.begin(s.group(), kOp, num_buf(20));
    r_last = co_await c.result(s.group(), b);   // newest first
    r_first = co_await c.result(s.group(), a);
  });
  EXPECT_EQ(r_last.status, Status::kOk);
  EXPECT_EQ(Reader(r_last.result).u64(), 20u);
  EXPECT_EQ(r_first.status, Status::kOk);
  EXPECT_EQ(Reader(r_first.result).u64(), 10u);
}

TEST(AsyncEdge, SyncConfigIgnoresRequestMessages) {
  ScenarioParams p;  // synchronous configuration
  p.config.acceptance_limit = kAll;
  Scenario s(std::move(p));
  CallResult r;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const CallResult call = co_await c.call(s.group(), kOp, num_buf(1));
    EXPECT_EQ(call.status, Status::kOk);
    // No Asynchronous Call micro-protocol: a Request falls through without
    // any handler touching it.
    r = co_await c.result(s.group(), call.id);
  });
  EXPECT_EQ(r.status, Status::kWaiting);
}

TEST(AsyncEdge, AsyncConfigBlocksNobodyOnIssue) {
  ScenarioParams p = async_params();
  p.num_servers = 1;
  p.server_app = [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
      co_await site.scheduler().sleep_for(sim::seconds(1));  // very slow server
    });
  };
  Scenario s(std::move(p));
  int issued = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    for (int i = 0; i < 5; ++i) {
      (void)co_await c.begin(s.group(), kOp, num_buf(static_cast<unsigned>(i)));
      ++issued;
    }
    EXPECT_EQ(s.scheduler().now(), t0) << "issuing must consume no virtual time";
  });
  EXPECT_EQ(issued, 5);
}

}  // namespace
}  // namespace ugrpc::core
