// Tests of the Total Order leader-change agreement extension (the phase the
// paper omits "for brevity").  The dangerous window: the old leader's last
// Order messages reached some members but not the successor; without the
// agreement round, the new leader reassigns those order numbers to other
// calls and members execute divergent sequences.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/micro/total_order.h"
#include "core/scenario.h"

namespace ugrpc::core {
namespace {

constexpr OpId kOp{1};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

using Logs = std::map<std::uint32_t, std::vector<std::uint64_t>>;

ScenarioParams agreement_params(Logs& logs, bool agreement) {
  ScenarioParams p;
  p.num_servers = 3;  // leader = server 3
  p.num_clients = 2;
  p.config.acceptance_limit = 2;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  p.config.retrans_timeout = sim::msec(40);
  p.config.ordering = Ordering::kTotal;
  p.config.total_order_agreement = agreement;
  p.config.use_membership = true;
  p.config.membership_params = {sim::msec(10), sim::msec(80)};
  p.seed = 61;
  p.server_app = [&logs](UserProtocol& user, Site& site) {
    user.set_procedure([&logs, &site](OpId, Buffer& args) -> sim::Task<> {
      logs[site.id().value()].push_back(Reader(args).u64());
      co_return;
    });
  };
  return p;
}

/// Drives the hazardous schedule: cut the old leader's link to the
/// SUCCESSOR (server 2) so late Orders reach only server 1, then crash the
/// leader mid-burst.
void run_hazard(Scenario& s) {
  const ProcessId old_leader = Scenario::server_id(2);  // id 3
  const ProcessId successor = Scenario::server_id(1);   // id 2
  s.scheduler().schedule_after(sim::msec(120), [&s, old_leader, successor] {
    s.network().link(old_leader, successor).partitioned = true;
  });
  s.scheduler().schedule_after(sim::msec(200), [&s] { s.server(2).crash(); });
  auto burst = [&s](Client& c, std::uint64_t base, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i) {
      (void)co_await c.call_async(s.group(), kOp, num_buf(base + static_cast<std::uint64_t>(i)));
      co_await s.scheduler().sleep_for(sim::msec(15));
    }
  };
  s.scheduler().spawn(burst(s.client(0), 100, 15), s.client_site(0).domain());
  s.scheduler().spawn(burst(s.client(1), 200, 15), s.client_site(1).domain());
  s.run_for(sim::seconds(30));
}

TEST(TotalOrderAgreement, SurvivorsConvergeAcrossHazardousFailover) {
  Logs logs;
  Scenario s(agreement_params(logs, /*agreement=*/true));
  run_hazard(s);
  const auto& log1 = logs[Scenario::server_id(0).value()];
  const auto& log2 = logs[Scenario::server_id(1).value()];
  EXPECT_EQ(log1.size(), 30u) << "all calls must eventually execute at survivor 1";
  EXPECT_EQ(log1, log2) << "survivors must agree on one total order";
  // The successor must have actually run a reconciliation round.
  EXPECT_GE(s.server(1).grpc().total()->reconciliations(), 1u);
}

TEST(TotalOrderAgreement, ReconciliationAdoptsOrdersTheNewLeaderMissed) {
  // Focused variant: one call's Order reaches only server 1 before the
  // leader dies.  The new leader (server 2) must adopt server 1's
  // assignment rather than reusing the number.
  Logs logs;
  Scenario s(agreement_params(logs, /*agreement=*/true));
  const ProcessId old_leader = Scenario::server_id(2);
  const ProcessId successor = Scenario::server_id(1);
  // Cut leader->successor from the start: successor never sees any Order
  // from the old leader.
  s.network().link(old_leader, successor).partitioned = true;
  s.scheduler().schedule_after(sim::msec(100), [&] { s.server(2).crash(); });
  auto burst = [&s](Client& c) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 5; ++i) {
      (void)co_await c.call_async(s.group(), kOp, num_buf(i));
      co_await s.scheduler().sleep_for(sim::msec(10));
    }
  };
  s.scheduler().spawn(burst(s.client(0)), s.client_site(0).domain());
  s.run_for(sim::seconds(30));
  const auto& log1 = logs[Scenario::server_id(0).value()];
  const auto& log2 = logs[Scenario::server_id(1).value()];
  EXPECT_EQ(log1.size(), 5u);
  EXPECT_EQ(log1, log2);
}

TEST(TotalOrderAgreement, BootReconciliationDoesNotBlockFreshGroup) {
  // At first boot every member's table is empty; the leader's initial
  // reconciliation round must close quickly and not delay the first calls.
  Logs logs;
  ScenarioParams p = agreement_params(logs, true);
  p.num_clients = 1;
  Scenario s(std::move(p));
  CallResult result;
  sim::Time elapsed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    const sim::Time t0 = s.scheduler().now();
    CallHandle h = co_await c.call_async(s.group(), kOp, num_buf(1));
    result = co_await h.get();
    elapsed = s.scheduler().now() - t0;
  }, sim::seconds(30));
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_LT(elapsed, sim::msec(150)) << "boot reconciliation must not stall early calls";
}

TEST(TotalOrderAgreement, WithoutAgreementHazardCanDiverge) {
  // Ablation: reproduce the paper's omission.  Under the same hazardous
  // schedule the survivors may execute different sequences (divergence or
  // a permanently shorter log at one member).  We assert only that the
  // strong guarantee of the agreement variant is NOT established, to keep
  // the test robust across schedules: either the logs differ or one
  // survivor is missing calls.
  Logs logs;
  Scenario s(agreement_params(logs, /*agreement=*/false));
  run_hazard(s);
  const auto& log1 = logs[Scenario::server_id(0).value()];
  const auto& log2 = logs[Scenario::server_id(1).value()];
  const bool converged = (log1 == log2) && log1.size() == 30u;
  EXPECT_FALSE(converged)
      << "without the agreement phase this hazardous failover should not fully converge "
         "(if this ever flakes green, the schedule no longer exercises the window)";
}

}  // namespace
}  // namespace ugrpc::core
