// Integration tests for the live telemetry plane on simulated sites
// (core/telemetry.h + obs/live/*): SiteStats counters driven by a real
// workload, the stall watchdog flagging pending pRPC/sRPC records, the
// introspection snapshot, and a flight dump loadable by trace_load + the
// checker.
#include "core/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/observe.h"
#include "core/scenario.h"
#include "obs/checker.h"
#include "obs/live/json_value.h"
#include "obs/live/telemetry.h"
#include "obs/live/trace_load.h"
#include "obs/trace.h"

namespace ugrpc::core {
namespace {

namespace fs = std::filesystem;
using obs::live::json_parse;
using obs::live::JsonValue;

constexpr OpId kOp{1};

SiteTelemetry::Options tight_options() {
  SiteTelemetry::Options options;
  options.bound_override = sim::msec(10);
  options.stall_multiplier = 1.0;
  options.trip_on_stall = false;  // no flight dir in most tests
  return options;
}

/// A server application whose procedure never returns, leaving the client's
/// pRPC record Waiting and the server's sRPC record pending.
void stuck_app(UserProtocol& user, Site& site) {
  user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
    co_await site.scheduler().sleep_for(sim::seconds(1000));
  });
}

TEST(LiveTelemetry, CountersTrackCompletedCalls) {
  Scenario s(ScenarioParams{});
  obs::live::TelemetryHub hub;
  SiteTelemetry telemetry(hub, s.client_site(0));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) (void)co_await c.call_async(s.group(), kOp, Buffer{});
  });
  EXPECT_EQ(hub.stats().calls_started.value(), 3u);
  EXPECT_EQ(hub.stats().calls_completed.value(), 3u);
  EXPECT_EQ(hub.stats().calls_failed.value(), 0u);
}

TEST(LiveTelemetry, DisabledPathLeavesLivePointerNull) {
  Scenario s(ScenarioParams{});
  EXPECT_EQ(s.server(0).grpc().state().live, nullptr);
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});
  });
}

TEST(LiveTelemetry, LiveStatsRewiredAcrossCrashRecover) {
  Scenario s(ScenarioParams{});
  obs::live::TelemetryHub hub;
  SiteTelemetry telemetry(hub, s.server(0));
  EXPECT_EQ(s.server(0).grpc().state().live, &hub.stats());
  s.server(0).crash();
  s.server(0).recover();
  EXPECT_EQ(s.server(0).grpc().state().live, &hub.stats())
      << "the rebuilt stack must re-wire the long-lived counters";
}

TEST(LiveTelemetry, WatchdogFlagsStalledCallOnce) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder().asynchronous().build();
  p.server_app = stuck_app;
  Scenario s(std::move(p));

  obs::live::TelemetryHub hub;
  SiteTelemetry telemetry(hub, s.client_site(0), tight_options());
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});
  }, sim::msec(50));
  s.run_for(sim::msec(50));  // age the pending call well past the 10 ms bound

  SiteTelemetry::Sweep sweep = telemetry.scan_now();
  EXPECT_EQ(sweep.stalled, 1u);
  EXPECT_EQ(hub.stats().watchdog_stalled.value(), 1u);
  EXPECT_EQ(hub.stats().watchdog_trips.value(), 1u);

  sweep = telemetry.scan_now();
  EXPECT_EQ(sweep.stalled, 0u) << "a record is flagged once, not per sweep";
  EXPECT_EQ(hub.stats().watchdog_stalled.value(), 1u);
  EXPECT_EQ(hub.stats().watchdog_scans.value(), 2u);
}

TEST(LiveTelemetry, WatchdogFlagsOrphanedServerEntry) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder().asynchronous().build();
  p.server_app = stuck_app;
  Scenario s(std::move(p));

  obs::live::TelemetryHub hub;
  SiteTelemetry telemetry(hub, s.server(0), tight_options());
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});
  }, sim::msec(50));
  s.run_for(sim::msec(50));

  const SiteTelemetry::Sweep sweep = telemetry.scan_now();
  EXPECT_EQ(sweep.orphaned, 1u);
  EXPECT_EQ(hub.stats().watchdog_orphaned.value(), 1u);
}

TEST(LiveTelemetry, WatchdogTimerSweepsPeriodically) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder().asynchronous().build();
  p.server_app = stuck_app;
  Scenario s(std::move(p));

  obs::live::TelemetryHub hub;
  SiteTelemetry::Options options = tight_options();
  options.scan_period = sim::msec(5);
  SiteTelemetry telemetry(hub, s.client_site(0), options);
  telemetry.start_watchdog();
  EXPECT_TRUE(telemetry.watchdog_running());

  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});
  }, sim::msec(50));
  s.run_for(sim::msec(50));
  EXPECT_GE(hub.stats().watchdog_scans.value(), 5u);
  EXPECT_EQ(hub.stats().watchdog_stalled.value(), 1u);

  telemetry.stop_watchdog();
  EXPECT_FALSE(telemetry.watchdog_running());
  const std::uint64_t scans = hub.stats().watchdog_scans.value();
  s.run_for(sim::msec(50));
  EXPECT_EQ(hub.stats().watchdog_scans.value(), scans) << "stopped watchdog must not sweep";
}

TEST(LiveTelemetry, IntrospectionListsPendingCalls) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder().asynchronous().build();
  p.server_app = stuck_app;
  Scenario s(std::move(p));

  obs::live::TelemetryHub client_hub;
  obs::live::TelemetryHub server_hub;
  SiteTelemetry client_tel(client_hub, s.client_site(0));
  SiteTelemetry server_tel(server_hub, s.server(0));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});
  }, sim::msec(50));
  s.run_for(sim::msec(20));

  std::string error;
  const auto client_doc = json_parse(client_hub.introspection_json(), &error);
  ASSERT_TRUE(client_doc.has_value()) << error;
  const JsonValue& cv = *client_doc;
  EXPECT_TRUE(cv["up"].as_bool());
  EXPECT_EQ(cv["site"].as_u64(), s.client_id(0).value());
  EXPECT_EQ(cv["incarnation"].as_u64(), 1u);
  EXPECT_FALSE(cv["micro_protocols"].as_array().empty());
  EXPECT_FALSE(cv["handlers"].as_array().empty());
  ASSERT_EQ(cv["pRPC"].as_array().size(), 1u);
  const JsonValue& call = cv["pRPC"].as_array()[0];
  EXPECT_EQ(call["status"].as_string(), "WAITING");
  EXPECT_GT(call["age_us"].as_u64(), 0u);

  const auto server_doc = json_parse(server_hub.introspection_json(), &error);
  ASSERT_TRUE(server_doc.has_value()) << error;
  ASSERT_EQ((*server_doc)["sRPC"].as_array().size(), 1u);
  EXPECT_EQ((*server_doc)["sRPC"].as_array()[0]["client"].as_u64(), s.client_id(0).value());

  // A crashed site reports a minimal document instead of walking dead state.
  s.server(0).crash();
  const auto down_doc = json_parse(server_hub.introspection_json(), &error);
  ASSERT_TRUE(down_doc.has_value()) << error;
  EXPECT_FALSE((*down_doc)["up"].as_bool());
  EXPECT_TRUE((*down_doc)["sRPC"].is_null());
}

TEST(LiveTelemetry, FlightDumpRoundTripsThroughLoaderAndChecker) {
  obs::Tracer tracer;
  ScenarioParams p;
  p.num_servers = 1;
  p.tracer = &tracer;
  const Config config = p.config;
  Scenario s(std::move(p));

  obs::live::TelemetryHub hub;
  hub.set_tracer(&tracer);
  SiteTelemetry telemetry(hub, s.client_site(0));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) (void)co_await c.call_async(s.group(), kOp, Buffer{});
  });

  const fs::path dir = fs::path(testing::TempDir()) / "ugrpc_flight_test";
  fs::remove_all(dir);
  hub.set_flight_dir(dir.string());
  std::string error;
  const auto dump = hub.trip("test-reason", &error);
  ASSERT_TRUE(dump.has_value()) << error;
  EXPECT_EQ(hub.stats().flight_dumps.value(), 1u);

  const auto slurp = [](const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  // MANIFEST.json carries the reason plus the site's checker expectations.
  const auto manifest = json_parse(slurp(fs::path(*dump) / "MANIFEST.json"), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ((*manifest)["reason"].as_string(), "test-reason");
  ASSERT_TRUE((*manifest)["expect"].is_object());
  EXPECT_EQ((*manifest)["expect"]["unique_execution"].as_bool(),
            expectations_from(config).unique_execution);

  // trace.json round-trips into checker-ready events; the healthy workload
  // must replay clean under the config's own expectations.
  const auto loaded = obs::live::load_trace_json(slurp(fs::path(*dump) / "trace.json"), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->unknown_kinds, 0u);
  ASSERT_FALSE(loaded->events.empty());
  const obs::Report report = obs::check(loaded->events, expectations_from(config));
  EXPECT_TRUE(report.ok()) << report.brief();
  EXPECT_EQ(report.summary.calls_issued, 3u);
  EXPECT_EQ(report.summary.calls_ok, 3u);

  // The exposition snapshot is part of the dump and non-empty.
  EXPECT_NE(slurp(fs::path(*dump) / "metrics.prom").find("ugrpc_calls_started 3"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(LiveTelemetry, WatchdogTripWritesFlightDump) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder().asynchronous().build();
  p.server_app = stuck_app;
  Scenario s(std::move(p));

  obs::live::TelemetryHub hub;
  SiteTelemetry::Options options = tight_options();
  options.trip_on_stall = true;
  SiteTelemetry telemetry(hub, s.client_site(0), options);
  const fs::path dir = fs::path(testing::TempDir()) / "ugrpc_flight_trip";
  fs::remove_all(dir);
  hub.set_flight_dir(dir.string());

  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call_async(s.group(), kOp, Buffer{});
  }, sim::msec(50));
  s.run_for(sim::msec(50));

  const SiteTelemetry::Sweep sweep = telemetry.scan_now();
  EXPECT_EQ(sweep.stalled, 1u);
  ASSERT_TRUE(sweep.flight_dir.has_value());
  EXPECT_TRUE(fs::exists(fs::path(*sweep.flight_dir) / "MANIFEST.json"));
  EXPECT_EQ(hub.stats().flight_dumps.value(), 1u);

  std::string error;
  const auto manifest =
      json_parse([&] {
        std::ifstream in(fs::path(*sweep.flight_dir) / "MANIFEST.json");
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
      }(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_NE((*manifest)["reason"].as_string().find("watchdog"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ugrpc::core
