// ConfigBuilder: fluent construction, Figure 1 presets, and build()-time
// validation against the Figure 4 dependency graph.
#include <gtest/gtest.h>

#include "core/config_builder.h"
#include "core/micro/acceptance.h"

namespace ugrpc::core {
namespace {

TEST(ConfigBuilder, DefaultBuildMatchesDefaultConfig) {
  const Config built = ConfigBuilder().build();
  const Config plain;
  EXPECT_EQ(built.describe(), plain.describe());
  EXPECT_TRUE(is_valid(built));
}

TEST(ConfigBuilder, PresetsAreValidAndEncodeFigure1Rows) {
  const Config alo = ConfigBuilder::at_least_once().build();
  EXPECT_TRUE(validate(alo).empty());
  EXPECT_TRUE(alo.reliable_communication);
  EXPECT_FALSE(alo.unique_execution);

  const Config eo = ConfigBuilder::exactly_once().build();
  EXPECT_TRUE(validate(eo).empty());
  EXPECT_TRUE(eo.reliable_communication);
  EXPECT_TRUE(eo.unique_execution);

  const Config amo = ConfigBuilder::at_most_once().build();
  EXPECT_TRUE(validate(amo).empty());
  EXPECT_TRUE(amo.reliable_communication);
  EXPECT_TRUE(amo.unique_execution);
  EXPECT_EQ(amo.execution, ExecutionMode::kSerialAtomic);

  const Config ro = ConfigBuilder::read_optimized().build();
  EXPECT_TRUE(validate(ro).empty());
  EXPECT_EQ(ro.call, CallSemantics::kSynchronous);
  EXPECT_EQ(ro.acceptance_limit, 1);
  EXPECT_TRUE(ro.reliable_communication);
  EXPECT_EQ(ro.retrans_timeout, sim::msec(25));
  ASSERT_TRUE(ro.termination_bound.has_value());
  EXPECT_EQ(*ro.termination_bound, sim::seconds(1));
}

TEST(ConfigBuilder, FluentSettersCompose) {
  const Config c = ConfigBuilder()
                       .asynchronous()
                       .orphan_handling(OrphanHandling::kTerminateOrphans)
                       .execution(ExecutionMode::kSerial)
                       .reliable_communication(sim::msec(10))
                       .unique_execution()
                       .fifo_order()
                       .acceptance_limit(kAll)
                       .group(GroupId{7})
                       .build();
  EXPECT_EQ(c.call, CallSemantics::kAsynchronous);
  EXPECT_EQ(c.orphan, OrphanHandling::kTerminateOrphans);
  EXPECT_EQ(c.execution, ExecutionMode::kSerial);
  EXPECT_EQ(c.retrans_timeout, sim::msec(10));
  EXPECT_TRUE(c.unique_execution);
  EXPECT_EQ(c.ordering, Ordering::kFifo);
  EXPECT_EQ(c.acceptance_limit, kAll);
  EXPECT_EQ(c.group, GroupId{7});
}

TEST(ConfigBuilder, BuildThrowsConfigErrorWithRuleCodes) {
  // Total order without its prerequisites violates three edges at once.
  ConfigBuilder b;
  b.total_order().termination_bound(sim::seconds(1));
  try {
    (void)b.build();
    FAIL() << "build() must reject an invalid configuration";
  } catch (const ConfigError& e) {
    ASSERT_EQ(e.errors().size(), 3u);
    bool saw_unique = false;
    for (const ValidationError& err : e.errors()) {
      if (err.code == Rule::kTotalRequiresUnique) saw_unique = true;
      EXPECT_EQ(err.rule, to_string(err.code));
    }
    EXPECT_TRUE(saw_unique);
    EXPECT_NE(std::string(e.what()).find("TotalOrder->UniqueExecution"), std::string::npos)
        << "what() must name the violated edges";
  }
}

TEST(ConfigBuilder, BuildUncheckedBypassesValidation) {
  const Config c = ConfigBuilder().unique_execution().build_unchecked();
  EXPECT_TRUE(c.unique_execution);
  EXPECT_FALSE(is_valid(c)) << "unchecked build hands out the invalid config unchanged";
}

TEST(ConfigBuilder, StartsFromExistingConfig) {
  Config base = ConfigBuilder::exactly_once().build();
  const Config tweaked = ConfigBuilder(base).total_order().build();
  EXPECT_EQ(tweaked.ordering, Ordering::kTotal);
  EXPECT_TRUE(tweaked.unique_execution) << "builder must preserve the base config's choices";
}

TEST(ConfigBuilder, EveryPresetBuildsEveryEnumeratedConfigStaysValid) {
  // Round-trip: wrapping any enumerated valid config in a builder and
  // rebuilding must not throw.
  for (const Config& c : enumerate_valid_configs()) {
    EXPECT_NO_THROW((void)ConfigBuilder(c).build()) << c.describe();
  }
}

}  // namespace
}  // namespace ugrpc::core
