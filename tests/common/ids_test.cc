// Unit tests for the tagged-id types and status strings.
#include "common/ids.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

#include "common/status.h"

namespace ugrpc {
namespace {

TEST(TaggedId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ProcessId, GroupId>);
  static_assert(!std::is_same_v<CallId, OpId>);
  static_assert(!std::is_convertible_v<ProcessId, GroupId>);
  SUCCEED();
}

TEST(TaggedId, ValueRoundTrip) {
  const ProcessId p{42};
  EXPECT_EQ(p.value(), 42u);
  EXPECT_EQ(ProcessId{}.value(), 0u);
}

TEST(TaggedId, ComparisonsFollowValues) {
  EXPECT_EQ(CallId{5}, CallId{5});
  EXPECT_NE(CallId{5}, CallId{6});
  EXPECT_LT(CallId{5}, CallId{6});
  EXPECT_GT(CallId{7}, CallId{6});
}

TEST(TaggedId, HashableInUnorderedContainers) {
  std::unordered_set<ProcessId> set;
  set.insert(ProcessId{1});
  set.insert(ProcessId{2});
  set.insert(ProcessId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ProcessId{2}));
}

TEST(TaggedId, StreamsAsUnderlyingValue) {
  std::ostringstream os;
  os << GroupId{9};
  EXPECT_EQ(os.str(), "9");
}

TEST(Status, ToStringCoversAllValues) {
  EXPECT_EQ(to_string(Status::kOk), "OK");
  EXPECT_EQ(to_string(Status::kWaiting), "WAITING");
  EXPECT_EQ(to_string(Status::kTimeout), "TIMEOUT");
}

}  // namespace
}  // namespace ugrpc
