// Unit tests for the leveled logger.
#include "common/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ugrpc {
namespace {

std::vector<std::string>& captured() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_sink(LogLevel, std::string_view message) { captured().emplace_back(message); }

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured().clear();
    prev_sink_ = set_log_sink(&capture_sink);
    prev_level_ = log_level();
    set_log_level(LogLevel::kTrace);
  }
  void TearDown() override {
    set_log_sink(prev_sink_);
    set_log_level(prev_level_);
  }
  LogSink prev_sink_ = nullptr;
  LogLevel prev_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, FormatsPrintfStyle) {
  UGRPC_LOG(kInfo, "call %d to group %s", 7, "replicas");
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured()[0], "call 7 to group replicas");
}

TEST_F(LogTest, DropsBelowLevel) {
  set_log_level(LogLevel::kWarn);
  UGRPC_LOG(kDebug, "invisible");
  UGRPC_LOG(kWarn, "visible");
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured()[0], "visible");
}

TEST_F(LogTest, LongMessagesAreNotTruncated) {
  const std::string big(2000, 'x');
  UGRPC_LOG(kError, "%s", big.c_str());
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured()[0], big);
}

TEST_F(LogTest, RestoringNullSinkReturnsToDefault) {
  LogSink prev = set_log_sink(nullptr);  // back to default stderr sink
  EXPECT_EQ(prev, &capture_sink);
  set_log_sink(&capture_sink);
}

}  // namespace
}  // namespace ugrpc
