// Unit tests for the shared keyed rate limiter (common/rate_limited_log.h).
//
// The policy these tests pin is shared by every warning site that used to
// hand-roll it (net/network.cc unroutable sends, the telemetry watchdog):
// first occurrence logs immediately, then at most one summary per period
// with the EXACT suppressed count.
#include "common/rate_limited_log.h"

#include <gtest/gtest.h>

namespace ugrpc {
namespace {

TEST(RateLimitedLog, FirstOccurrenceLogsImmediately) {
  RateLimitedLog log(1000);
  EXPECT_EQ(log.occurrences_to_log(7, 0), 1u);
}

TEST(RateLimitedLog, WithinPeriodStaysSilent) {
  RateLimitedLog log(1000);
  EXPECT_EQ(log.occurrences_to_log(7, 0), 1u);
  EXPECT_EQ(log.occurrences_to_log(7, 1), 0u);
  EXPECT_EQ(log.occurrences_to_log(7, 999), 0u);
  EXPECT_EQ(log.pending(7), 2u);
}

TEST(RateLimitedLog, SummaryCarriesExactSuppressedCount) {
  RateLimitedLog log(1000);
  EXPECT_EQ(log.occurrences_to_log(7, 0), 1u);
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(log.occurrences_to_log(7, i), 0u);
  // The occurrence at t=1000 itself plus the 5 suppressed ones.
  EXPECT_EQ(log.occurrences_to_log(7, 1000), 6u);
  EXPECT_EQ(log.pending(7), 0u);
}

TEST(RateLimitedLog, KeysAreIndependent) {
  RateLimitedLog log(1000);
  EXPECT_EQ(log.occurrences_to_log(1, 0), 1u);
  EXPECT_EQ(log.occurrences_to_log(2, 0), 1u);
  EXPECT_EQ(log.occurrences_to_log(1, 10), 0u);
  EXPECT_EQ(log.occurrences_to_log(2, 1000), 1u);
  EXPECT_EQ(log.pending(1), 1u);
}

TEST(RateLimitedLog, QuietKeyLogsAgainAfterPeriod) {
  RateLimitedLog log(1000);
  EXPECT_EQ(log.occurrences_to_log(7, 0), 1u);
  // Nothing happens for a long time; the next occurrence is a fresh single.
  EXPECT_EQ(log.occurrences_to_log(7, 50000), 1u);
}

TEST(RateLimitedLog, LoggedCountsSumToTotalOccurrences) {
  // Exactness invariant: no matter how occurrences interleave with the
  // period boundary, the sum of returned counts equals the total offered.
  RateLimitedLog log(100);
  std::uint64_t offered = 0;
  std::uint64_t reported = 0;
  std::int64_t now = 0;
  for (int step = 0; step < 1000; ++step) {
    now += (step * 7919) % 37;  // deterministic irregular spacing
    ++offered;
    reported += log.occurrences_to_log(3, now);
  }
  reported += log.pending(3);
  EXPECT_EQ(reported, offered);
}

TEST(RateLimitedLog, ClearForgetsHistory) {
  RateLimitedLog log(1000);
  EXPECT_EQ(log.occurrences_to_log(7, 0), 1u);
  EXPECT_EQ(log.occurrences_to_log(7, 1), 0u);
  log.clear();
  EXPECT_EQ(log.pending(7), 0u);
  EXPECT_EQ(log.occurrences_to_log(7, 2), 1u) << "cleared key logs like a fresh one";
}

}  // namespace
}  // namespace ugrpc
