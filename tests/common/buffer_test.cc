// Unit tests for the Buffer byte container and the Writer/Reader codec.
#include "common/buffer.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace ugrpc {
namespace {

TEST(Buffer, StartsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(Codec, RoundTripsUnsignedWidths) {
  Buffer b;
  Writer w(b);
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  Reader r(b);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, RoundTripsSignedExtremes) {
  Buffer b;
  Writer w(b);
  w.i32(std::numeric_limits<std::int32_t>::min());
  w.i32(-1);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i64(std::numeric_limits<std::int64_t>::max());
  Reader r(b);
  EXPECT_EQ(r.i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(r.i32(), -1);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
}

TEST(Codec, RoundTripsDoubles) {
  Buffer b;
  Writer w(b);
  w.f64(3.14159265358979);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  Reader r(b);
  EXPECT_EQ(r.f64(), 3.14159265358979);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

TEST(Codec, RoundTripsStringsIncludingEmbeddedNul) {
  Buffer b;
  Writer w(b);
  w.str("");
  w.str("hello");
  w.str(std::string("a\0b", 3));
  Reader r(b);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("a\0b", 3));
}

TEST(Codec, RoundTripsNestedRawBuffer) {
  Buffer inner;
  Writer wi(inner);
  wi.u32(77);
  Buffer outer;
  Writer wo(outer);
  wo.str("header");
  wo.raw(inner.bytes());
  Reader r(outer);
  EXPECT_EQ(r.str(), "header");
  Buffer decoded = r.raw();
  EXPECT_EQ(decoded, inner);
  Reader ri(decoded);
  EXPECT_EQ(ri.u32(), 77u);
}

TEST(Codec, ReaderThrowsOnTruncatedInteger) {
  Buffer b;
  Writer w(b);
  w.u16(42);
  Reader r(b);
  EXPECT_THROW((void)r.u32(), CodecError);
}

TEST(Codec, ReaderThrowsOnLengthPrefixPastEnd) {
  Buffer b;
  Writer w(b);
  w.u32(1000);  // claims a 1000-byte string, no payload follows
  Reader r(b);
  EXPECT_THROW((void)r.str(), CodecError);
}

TEST(Codec, BooleanRoundTrip) {
  Buffer b;
  Writer w(b);
  w.boolean(true);
  w.boolean(false);
  Reader r(b);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
}

TEST(Codec, RemainingTracksConsumption) {
  Buffer b;
  Writer w(b);
  w.u32(1);
  w.u32(2);
  Reader r(b);
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u32();
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, EqualityComparesContents) {
  Buffer a;
  Buffer b;
  Writer(a).u32(5);
  Writer(b).u32(5);
  EXPECT_EQ(a, b);
  Writer(b).u8(1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ugrpc
