// Unit tests for the simulated stable storage.
#include "storage/stable_store.h"

#include <gtest/gtest.h>

namespace ugrpc::storage {
namespace {

Buffer make_buf(std::uint32_t v) {
  Buffer b;
  Writer(b).u32(v);
  return b;
}

TEST(StableStore, PutGetRoundTrip) {
  sim::Scheduler sched;
  StableStore store(sched);
  store.put("k", make_buf(7));
  auto v = store.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, make_buf(7));
  EXPECT_TRUE(store.contains("k"));
  EXPECT_EQ(store.key_count(), 1u);
}

TEST(StableStore, GetMissingReturnsNullopt) {
  sim::Scheduler sched;
  StableStore store(sched);
  EXPECT_FALSE(store.get("missing").has_value());
}

TEST(StableStore, EraseRemovesKey) {
  sim::Scheduler sched;
  StableStore store(sched);
  store.put("k", make_buf(1));
  store.erase("k");
  EXPECT_FALSE(store.contains("k"));
}

TEST(StableStore, OverwriteReplacesValue) {
  sim::Scheduler sched;
  StableStore store(sched);
  store.put("k", make_buf(1));
  store.put("k", make_buf(2));
  EXPECT_EQ(*store.get("k"), make_buf(2));
}

TEST(StableStore, CheckpointStoreAndLoad) {
  sim::Scheduler sched;
  StableStore store(sched);
  StableAddress a1 = store.store_checkpoint(make_buf(10));
  StableAddress a2 = store.store_checkpoint(make_buf(20));
  EXPECT_NE(a1, a2);
  EXPECT_EQ(*store.load_checkpoint(a1), make_buf(10));
  EXPECT_EQ(*store.load_checkpoint(a2), make_buf(20));
  EXPECT_EQ(store.checkpoint_count(), 2u);
}

TEST(StableStore, ReleaseCheckpointFrees) {
  sim::Scheduler sched;
  StableStore store(sched);
  StableAddress a = store.store_checkpoint(make_buf(10));
  store.release_checkpoint(a);
  EXPECT_FALSE(store.load_checkpoint(a).has_value());
  EXPECT_EQ(store.checkpoint_count(), 0u);
}

TEST(StableStore, StableVariables) {
  sim::Scheduler sched;
  StableStore store(sched);
  EXPECT_FALSE(store.var("x").has_value());
  store.set_var("x", 42);
  EXPECT_EQ(*store.var("x"), 42u);
  store.clear_var("x");
  EXPECT_FALSE(store.var("x").has_value());
}

sim::Task<> do_async_put(StableStore& store) {
  co_await store.put_async("k", Buffer{});
}

TEST(StableStore, AsyncPutChargesWriteLatency) {
  sim::Scheduler sched;
  StableStore store(sched, sim::msec(3));
  sched.spawn(do_async_put(store));
  sched.run();
  EXPECT_EQ(sched.now(), sim::msec(3));
  EXPECT_TRUE(store.contains("k"));
}

sim::Task<> do_async_checkpoint(StableStore& store, std::optional<StableAddress>& out) {
  out = co_await store.store_checkpoint_async(Buffer{});
}

TEST(StableStore, AsyncCheckpointChargesWriteLatency) {
  sim::Scheduler sched;
  StableStore store(sched, sim::msec(5));
  std::optional<StableAddress> addr;
  sched.spawn(do_async_checkpoint(store, addr));
  sched.run();
  EXPECT_EQ(sched.now(), sim::msec(5));
  ASSERT_TRUE(addr.has_value());
  EXPECT_TRUE(store.load_checkpoint(*addr).has_value());
}

}  // namespace
}  // namespace ugrpc::storage
