// Unit tests for the discrete-event scheduler: fiber lifecycle, virtual
// time, timers, kill semantics, and determinism.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/sync.h"

namespace ugrpc::sim {
namespace {

Task<> append_value(std::vector<int>& out, int value) {
  out.push_back(value);
  co_return;
}

TEST(Scheduler, SpawnedFiberRunsOnStep) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(append_value(out, 1));
  EXPECT_TRUE(out.empty()) << "spawn must not run the fiber inline";
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1}));
}

TEST(Scheduler, FibersRunInSpawnOrder) {
  Scheduler sched;
  std::vector<int> out;
  for (int i = 0; i < 5; ++i) sched.spawn(append_value(out, i));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({0, 1, 2, 3, 4}));
}

Task<> sleeper(Scheduler& sched, std::vector<Time>& out, Duration d) {
  co_await sched.sleep_for(d);
  out.push_back(sched.now());
}

TEST(Scheduler, SleepAdvancesVirtualTime) {
  Scheduler sched;
  std::vector<Time> wake_times;
  sched.spawn(sleeper(sched, wake_times, msec(5)));
  sched.spawn(sleeper(sched, wake_times, msec(2)));
  sched.run();
  ASSERT_EQ(wake_times.size(), 2u);
  EXPECT_EQ(wake_times[0], msec(2));
  EXPECT_EQ(wake_times[1], msec(5));
  EXPECT_EQ(sched.now(), msec(5));
}

TEST(Scheduler, SleepZeroDoesNotSuspend) {
  Scheduler sched;
  std::vector<Time> wake_times;
  sched.spawn(sleeper(sched, wake_times, 0));
  sched.run();
  ASSERT_EQ(wake_times.size(), 1u);
  EXPECT_EQ(wake_times[0], kTimeZero);
}

TEST(Scheduler, TimersFireInDeadlineThenRegistrationOrder) {
  Scheduler sched;
  std::vector<int> out;
  sched.schedule_after(msec(3), [&] { out.push_back(3); });
  sched.schedule_after(msec(1), [&] { out.push_back(1); });
  sched.schedule_after(msec(3), [&] { out.push_back(4); });  // same deadline, later reg
  sched.schedule_after(msec(2), [&] { out.push_back(2); });
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 3, 4}));
}

TEST(Scheduler, CancelledTimerDoesNotFire) {
  Scheduler sched;
  int fired = 0;
  TimerId id = sched.schedule_after(msec(1), [&] { ++fired; });
  sched.cancel_timer(id);
  sched.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), kTimeZero) << "cancelled timer must not advance time";
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_after(msec(10), [&] { ++fired; });
  sched.run_until(msec(4));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), msec(4));
  sched.run_until(msec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), msec(20));
}

Task<> nested_child(std::vector<int>& out) {
  out.push_back(2);
  co_return;
}

Task<int> nested_value() { co_return 42; }

Task<> nested_parent(std::vector<int>& out) {
  out.push_back(1);
  co_await nested_child(out);
  const int v = co_await nested_value();
  out.push_back(v);
}

TEST(Scheduler, NestedTaskAwaitPropagatesValues) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(nested_parent(out));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 42}));
}

Task<> thrower() {
  co_await std::suspend_never{};
  throw std::runtime_error("boom");
}

TEST(Scheduler, FiberExceptionPropagatesFromRun) {
  Scheduler sched;
  sched.spawn(thrower());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

Task<> catching_parent(std::vector<int>& out) {
  try {
    co_await thrower();
  } catch (const std::runtime_error&) {
    out.push_back(7);
  }
}

TEST(Scheduler, ChildExceptionCatchableInParent) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(catching_parent(out));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({7}));
}

struct DtorFlag {
  bool* flag;
  explicit DtorFlag(bool* f) : flag(f) {}
  ~DtorFlag() { *flag = true; }
};

Task<> sleeps_forever(Scheduler& sched, bool* destroyed) {
  DtorFlag guard(destroyed);
  co_await sched.sleep_for(seconds(3600));
}

TEST(Scheduler, KillRunsDestructorsOfSuspendedFrame) {
  Scheduler sched;
  bool destroyed = false;
  FiberId id = sched.spawn(sleeps_forever(sched, &destroyed));
  sched.run_until(msec(1));  // let it reach the sleep
  EXPECT_FALSE(destroyed);
  EXPECT_TRUE(sched.fiber_alive(id));
  sched.kill(id);
  EXPECT_TRUE(destroyed) << "kill must unwind the coroutine chain";
  EXPECT_FALSE(sched.fiber_alive(id));
  sched.run();  // the cancelled sleep timer must not fire into freed memory
}

Task<> block_on(Semaphore& sem, bool* destroyed) {
  DtorFlag guard(destroyed);
  co_await sem.acquire();
}

TEST(Scheduler, KillUnlinksFromSemaphoreWaitQueue) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  bool destroyed = false;
  FiberId id = sched.spawn(block_on(sem, &destroyed));
  sched.run();
  EXPECT_TRUE(sem.has_waiters());
  sched.kill(id);
  EXPECT_TRUE(destroyed);
  EXPECT_FALSE(sem.has_waiters()) << "killed waiter must unlink from the queue";
  sem.release();  // must not resume a destroyed coroutine
  sched.run();
}

TEST(Scheduler, KillUnknownFiberIsNoOp) {
  Scheduler sched;
  sched.kill(FiberId{9999});
}

Task<> record_domain(Scheduler& sched, std::vector<DomainId>& out) {
  out.push_back(sched.current_domain());
  co_return;
}

TEST(Scheduler, KillDomainKillsOnlyThatDomain) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  bool destroyed_a = false;
  bool destroyed_b = false;
  sched.spawn(block_on(sem, &destroyed_a), DomainId{1});
  sched.spawn(block_on(sem, &destroyed_b), DomainId{2});
  int timer_fired = 0;
  sched.schedule_after(msec(5), [&] { ++timer_fired; }, DomainId{1});
  sched.schedule_after(msec(5), [&] { ++timer_fired; }, DomainId{2});
  sched.run_until(msec(1));
  sched.kill_domain(DomainId{1});
  EXPECT_TRUE(destroyed_a);
  EXPECT_FALSE(destroyed_b);
  sched.run_until(msec(10));
  EXPECT_EQ(timer_fired, 1) << "domain 1's timer must be cancelled with the domain";
}

TEST(Scheduler, CurrentDomainVisibleInsideFiber) {
  Scheduler sched;
  std::vector<DomainId> seen;
  sched.spawn(record_domain(sched, seen), DomainId{42});
  sched.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], DomainId{42});
}

Task<> spawn_from_inside(Scheduler& sched, std::vector<int>& out) {
  out.push_back(1);
  sched.spawn(append_value(out, 2));
  co_return;
}

TEST(Scheduler, SpawnFromInsideFiber) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(spawn_from_inside(sched, out));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2}));
}

Task<> yielder(Scheduler& sched, std::vector<int>& out, int tag, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.push_back(tag);
    co_await sched.yield();
  }
}

TEST(Scheduler, YieldInterleavesFibersRoundRobin) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(yielder(sched, out, 1, 3));
  sched.spawn(yielder(sched, out, 2, 3));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2, 1, 2, 1, 2}));
}

TEST(Scheduler, LiveFiberCountTracksCompletion) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(append_value(out, 1));
  EXPECT_EQ(sched.live_fiber_count(), 1u);
  sched.run();
  EXPECT_EQ(sched.live_fiber_count(), 0u);
}

}  // namespace
}  // namespace ugrpc::sim
