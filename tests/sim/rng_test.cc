// Unit tests for the deterministic RNG.
#include "sim/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace ugrpc::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequencyRoughlyMatchesP) {
  Rng rng(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanRoughlyMatches) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_replay(42);
  (void)parent_replay.next();  // account for the draw consumed by fork()
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent_replay.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace ugrpc::sim
