// Unit tests for Semaphore and Mutex under cooperative scheduling.
#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace ugrpc::sim {
namespace {

Task<> acquire_then_record(Semaphore& sem, std::vector<int>& out, int tag) {
  co_await sem.acquire();
  out.push_back(tag);
}

TEST(Semaphore, AcquireSucceedsImmediatelyWhenPositive) {
  Scheduler sched;
  Semaphore sem(sched, 2);
  std::vector<int> out;
  sched.spawn(acquire_then_record(sem, out, 1));
  sched.spawn(acquire_then_record(sem, out, 2));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2}));
  EXPECT_EQ(sem.count(), 0);
}

TEST(Semaphore, AcquireBlocksWhenZeroAndReleaseWakesFifo) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  std::vector<int> out;
  sched.spawn(acquire_then_record(sem, out, 1));
  sched.spawn(acquire_then_record(sem, out, 2));
  sched.run();
  EXPECT_TRUE(out.empty());
  sem.release();
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1}));
  sem.release();
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 2}));
}

TEST(Semaphore, ReleaseWithoutWaitersIncrementsCount) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  sem.release();
  sem.release();
  EXPECT_EQ(sem.count(), 2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

Task<> producer(Scheduler& sched, Semaphore& items, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sched.sleep_for(msec(1));
    items.release();
  }
}

Task<> consumer(Semaphore& items, int n, int& consumed) {
  for (int i = 0; i < n; ++i) {
    co_await items.acquire();
    ++consumed;
  }
}

TEST(Semaphore, ProducerConsumerCompletes) {
  Scheduler sched;
  Semaphore items(sched, 0);
  int consumed = 0;
  sched.spawn(consumer(items, 10, consumed));
  sched.spawn(producer(sched, items, 10));
  sched.run();
  EXPECT_EQ(consumed, 10);
  EXPECT_EQ(sched.now(), msec(10));
}

Task<> critical_section(Scheduler& sched, Mutex& mu, std::vector<int>& out, int tag) {
  auto guard = co_await mu.lock();
  out.push_back(tag);
  co_await sched.sleep_for(msec(1));  // hold across a suspension point
  out.push_back(tag);
}

TEST(Mutex, CriticalSectionsDoNotInterleave) {
  Scheduler sched;
  Mutex mu(sched);
  std::vector<int> out;
  sched.spawn(critical_section(sched, mu, out, 1));
  sched.spawn(critical_section(sched, mu, out, 2));
  sched.spawn(critical_section(sched, mu, out, 3));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({1, 1, 2, 2, 3, 3}));
}

Task<> guard_early_reset(Mutex& mu, bool& entered) {
  auto guard = co_await mu.lock();
  guard.reset();  // explicit early unlock
  entered = true;
  co_return;
}

TEST(Mutex, GuardResetUnlocksEarly) {
  Scheduler sched;
  Mutex mu(sched);
  bool entered = false;
  std::vector<int> out;
  sched.spawn(guard_early_reset(mu, entered));
  sched.run();
  EXPECT_TRUE(entered);
  // The mutex must be free again.
  sched.spawn(critical_section(sched, mu, out, 9));
  sched.run();
  EXPECT_EQ(out, std::vector<int>({9, 9}));
}

Task<> abandoned_waiter(Semaphore& sem) { co_await sem.acquire(); }

TEST(Semaphore, KilledWaiterDoesNotReceiveToken) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  FiberId victim = sched.spawn(abandoned_waiter(sem));
  std::vector<int> out;
  sched.spawn(acquire_then_record(sem, out, 2));
  sched.run();
  sched.kill(victim);
  sem.release();
  sched.run();
  EXPECT_EQ(out, std::vector<int>({2})) << "token must go to the surviving waiter";
}

}  // namespace
}  // namespace ugrpc::sim
