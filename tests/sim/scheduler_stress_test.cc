// Stress tests for the scheduler: many fibers, many timers, heavy
// kill/spawn churn.  These guard against accidental O(n^2) blowups and
// bookkeeping leaks in the simulation kernel.
#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "sim/sync.h"

namespace ugrpc::sim {
namespace {

Task<> ping_pong(Semaphore& mine, Semaphore& theirs, int rounds, int& count) {
  for (int i = 0; i < rounds; ++i) {
    co_await mine.acquire();
    ++count;
    theirs.release();
  }
}

TEST(SchedulerStress, TenThousandFibersComplete) {
  Scheduler sched;
  int completed = 0;
  for (int i = 0; i < 10000; ++i) {
    sched.spawn([](Scheduler& s, int& done, int delay) -> Task<> {
      co_await s.sleep_for(usec(delay));
      ++done;
    }(sched, completed, i % 100));
  }
  sched.run();
  EXPECT_EQ(completed, 10000);
  EXPECT_EQ(sched.live_fiber_count(), 0u);
}

TEST(SchedulerStress, PingPongManyRounds) {
  Scheduler sched;
  Semaphore a(sched, 1);
  Semaphore b(sched, 0);
  int count_a = 0;
  int count_b = 0;
  const int rounds = 5000;
  sched.spawn(ping_pong(a, b, rounds, count_a));
  sched.spawn(ping_pong(b, a, rounds, count_b));
  sched.run();
  EXPECT_EQ(count_a, rounds);
  EXPECT_EQ(count_b, rounds);
}

TEST(SchedulerStress, MassTimerCancellation) {
  Scheduler sched;
  int fired = 0;
  std::vector<TimerId> timers;
  timers.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    timers.push_back(sched.schedule_after(msec(i + 1), [&] { ++fired; }));
  }
  // Cancel every other timer.
  for (std::size_t i = 0; i < timers.size(); i += 2) sched.cancel_timer(timers[i]);
  sched.run();
  EXPECT_EQ(fired, 2500);
}

TEST(SchedulerStress, KillChurn) {
  Scheduler sched;
  Semaphore never(sched, 0);
  std::vector<FiberId> victims;
  for (int round = 0; round < 50; ++round) {
    victims.clear();
    for (int i = 0; i < 100; ++i) {
      victims.push_back(sched.spawn([](Semaphore& sem) -> Task<> { co_await sem.acquire(); }(never)));
    }
    sched.run();  // all fibers park on the semaphore
    for (FiberId f : victims) sched.kill(f);
    EXPECT_EQ(sched.live_fiber_count(), 0u);
  }
  EXPECT_FALSE(never.has_waiters());
}

TEST(SchedulerStress, DomainKillWithMixedDomains) {
  Scheduler sched;
  Semaphore never(sched, 0);
  for (int i = 0; i < 1000; ++i) {
    const DomainId domain{static_cast<std::uint32_t>(i % 10 + 1)};
    sched.spawn([](Semaphore& sem) -> Task<> { co_await sem.acquire(); }(never), domain);
  }
  sched.run();
  for (std::uint32_t d = 1; d <= 5; ++d) sched.kill_domain(DomainId{d});
  EXPECT_EQ(sched.live_fiber_count(), 500u);
  for (std::uint32_t d = 6; d <= 10; ++d) sched.kill_domain(DomainId{d});
  EXPECT_EQ(sched.live_fiber_count(), 0u);
}

TEST(SchedulerStress, TimersInterleavedWithFibers) {
  Scheduler sched;
  std::uint64_t work = 0;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_after(usec(i * 7 % 997), [&] { ++work; });
    sched.spawn([](Scheduler& s, std::uint64_t& w, int n) -> Task<> {
      co_await s.sleep_for(usec(n * 13 % 991));
      ++w;
    }(sched, work, i));
  }
  sched.run();
  EXPECT_EQ(work, 2000u);
}

}  // namespace
}  // namespace ugrpc::sim
