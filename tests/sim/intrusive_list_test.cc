// Unit tests for the intrusive list underpinning the wait queues.
#include "sim/intrusive_list.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace ugrpc::sim {
namespace {

struct Node : ListNode {
  explicit Node(int v) : value(v) {}
  int value;
};

TEST(IntrusiveList, FifoOrder) {
  IntrusiveList<Node> list;
  Node a(1);
  Node b(2);
  Node c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_EQ(list.pop_front()->value, 2);
  EXPECT_EQ(list.pop_front()->value, 3);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveList, NodeDestructorUnlinks) {
  IntrusiveList<Node> list;
  Node a(1);
  list.push_back(a);
  {
    Node b(2);
    list.push_back(b);
    EXPECT_TRUE(b.linked());
  }  // b destroyed while linked: must unlink itself
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, ManualUnlinkFromMiddle) {
  IntrusiveList<Node> list;
  Node a(1);
  Node b(2);
  Node c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  b.unlink();
  EXPECT_FALSE(b.linked());
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_EQ(list.pop_front()->value, 3);
}

TEST(IntrusiveList, UnlinkIsIdempotent) {
  Node a(1);
  a.unlink();
  a.unlink();
  EXPECT_FALSE(a.linked());
}

TEST(IntrusiveList, ReinsertAfterPop) {
  IntrusiveList<Node> list;
  Node a(1);
  list.push_back(a);
  Node* popped = list.pop_front();
  EXPECT_FALSE(popped->linked());
  list.push_back(*popped);
  EXPECT_EQ(list.front()->value, 1);
}

TEST(IntrusiveList, ListDestructorUnlinksSurvivors) {
  Node a(1);
  {
    IntrusiveList<Node> list;
    list.push_back(a);
  }  // list destroyed first
  EXPECT_FALSE(a.linked()) << "destroying the list must not leave dangling sentinel links";
}

TEST(SimTime, ConversionHelpers) {
  EXPECT_EQ(usec(5), 5);
  EXPECT_EQ(msec(5), 5000);
  EXPECT_EQ(seconds(5), 5'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_msec(msec(3)), 3.0);
}

}  // namespace
}  // namespace ugrpc::sim
