// Unit tests for Task<T> value/exception propagation and move semantics.
#include "sim/task.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/scheduler.h"
#include "sim/sync.h"

namespace ugrpc::sim {
namespace {

Task<int> make_int() { co_return 41; }

Task<std::string> make_string() { co_return "value"; }

Task<std::unique_ptr<int>> make_move_only() { co_return std::make_unique<int>(9); }

Task<> consume(std::vector<std::string>& out) {
  const int i = co_await make_int();
  const std::string s = co_await make_string();
  std::unique_ptr<int> p = co_await make_move_only();
  out.push_back(std::to_string(i) + s + std::to_string(*p));
}

TEST(Task, ValueTypesPropagate) {
  Scheduler sched;
  std::vector<std::string> out;
  sched.spawn(consume(out));
  sched.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "41value9");
}

Task<int> throwing_int() {
  co_await std::suspend_never{};
  throw std::runtime_error("nope");
}

Task<> catch_from_value_task(bool& caught) {
  try {
    (void)co_await throwing_int();
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ExceptionFromValueTaskPropagates) {
  Scheduler sched;
  bool caught = false;
  sched.spawn(catch_from_value_task(caught));
  sched.run();
  EXPECT_TRUE(caught);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = make_int();
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) - asserting moved-from state
  EXPECT_TRUE(b.valid());
  Task<int> c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  // c's destructor destroys the never-started frame without leaking.
}

Task<> never_started(int& touched) {
  ++touched;
  co_return;
}

TEST(Task, DestroyingUnstartedTaskIsSafe) {
  int touched = 0;
  {
    Task<> t = never_started(touched);
    EXPECT_TRUE(t.valid());
  }  // destroyed without ever resuming: lazy start means the body never ran
  EXPECT_EQ(touched, 0);
}

Task<int> deep(int n) {
  if (n == 0) co_return 0;
  co_return 1 + co_await deep(n - 1);
}

Task<> run_deep(int& result) { result = co_await deep(200); }

TEST(Task, DeepAwaitChains) {
  Scheduler sched;
  int result = 0;
  sched.spawn(run_deep(result));
  sched.run();
  EXPECT_EQ(result, 200);
}

Task<> waits_then_returns(Scheduler& sched, int& order, int tag) {
  co_await sched.sleep_for(msec(tag));
  order = order * 10 + tag;
}

Task<> sequential_awaits(Scheduler& sched, int& order) {
  co_await waits_then_returns(sched, order, 1);
  co_await waits_then_returns(sched, order, 2);
  co_await waits_then_returns(sched, order, 3);
}

TEST(Task, SequentialAwaitsRunInOrderAcrossSuspensions) {
  Scheduler sched;
  int order = 0;
  sched.spawn(sequential_awaits(sched, order));
  sched.run();
  EXPECT_EQ(order, 123);
  EXPECT_EQ(sched.now(), msec(6));
}

// Killing a fiber blocked deep in a nested await chain must unwind every
// frame (each with RAII locals) without touching freed queues.
struct UnwindCounter {
  int* count;
  explicit UnwindCounter(int* c) : count(c) {}
  ~UnwindCounter() { ++*count; }
};

Task<> leaf(Semaphore& sem, int* unwound) {
  UnwindCounter guard(unwound);
  co_await sem.acquire();
}

Task<> mid(Semaphore& sem, int* unwound) {
  UnwindCounter guard(unwound);
  co_await leaf(sem, unwound);
}

Task<> root(Semaphore& sem, int* unwound) {
  UnwindCounter guard(unwound);
  co_await mid(sem, unwound);
}

TEST(Task, KillUnwindsNestedFrames) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  int unwound = 0;
  FiberId id = sched.spawn(root(sem, &unwound));
  sched.run();
  EXPECT_EQ(unwound, 0);
  sched.kill(id);
  EXPECT_EQ(unwound, 3) << "all three frames' locals must be destroyed";
  sem.release();
  sched.run();  // must not resume destroyed frames
}

}  // namespace
}  // namespace ugrpc::sim
