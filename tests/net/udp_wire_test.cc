// UDP datagram framing: round-trip fidelity and defensive decoding.  A UDP
// socket receives whatever the network hands it, so decode() must map every
// malformed input to nullopt -- never an exception, crash, or partial frame.
#include <gtest/gtest.h>

#include <vector>

#include "net/wire.h"

namespace ugrpc::net {
namespace {

Buffer make_payload(std::initializer_list<std::uint8_t> bytes) {
  Buffer b;
  Writer w(b);
  for (std::uint8_t x : bytes) w.u8(x);
  return b;
}

WireFrame sample_frame() {
  WireFrame f;
  f.src = ProcessId{3};
  f.dst = ProcessId{7};
  f.proto = ProtocolId{42};
  f.incarnation = 5;
  f.payload = make_payload({0xde, 0xad, 0xbe, 0xef});
  return f;
}

TEST(UdpWire, RoundTripPreservesAllFields) {
  const Buffer encoded = sample_frame().encode();
  const auto decoded = WireFrame::decode(encoded.bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src, ProcessId{3});
  EXPECT_EQ(decoded->dst, ProcessId{7});
  EXPECT_EQ(decoded->proto, ProtocolId{42});
  EXPECT_EQ(decoded->incarnation, 5u);
  ASSERT_EQ(decoded->payload.size(), 4u);
  Reader r(decoded->payload);
  EXPECT_EQ(r.u8(), 0xde);
  EXPECT_EQ(r.u8(), 0xad);
  EXPECT_EQ(r.u8(), 0xbe);
  EXPECT_EQ(r.u8(), 0xef);
}

TEST(UdpWire, EmptyPayloadRoundTrips) {
  WireFrame f = sample_frame();
  f.payload = Buffer{};
  const auto decoded = WireFrame::decode(f.encode().bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), 0u);
}

TEST(UdpWire, EncodedSizeMatchesHeaderConstant) {
  // kWireHeaderSize + payload length prefix (u32) + payload bytes.
  const WireFrame f = sample_frame();
  EXPECT_EQ(f.encode().size(), kWireHeaderSize + 4 + f.payload.size());
}

TEST(UdpWire, TraceContextRoundTrips) {
  // Wire v2: the frame carries the sender's span context so distributed
  // span trees cross the process boundary (obs/span.h).
  WireFrame f = sample_frame();
  f.trace = 0x123456789abcdef0ULL;
  f.span = 0xfedcba9876543210ULL;
  const auto decoded = WireFrame::decode(f.encode().bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->trace, 0x123456789abcdef0ULL);
  EXPECT_EQ(decoded->span, 0xfedcba9876543210ULL);
}

TEST(UdpWire, UntracedFrameCarriesZeroContext) {
  const auto decoded = WireFrame::decode(sample_frame().encode().bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->trace, 0u);
  EXPECT_EQ(decoded->span, 0u);
}

std::vector<std::byte> bytes_of(const Buffer& b) {
  const auto view = b.bytes();
  return {view.begin(), view.end()};
}

TEST(UdpWire, WrongMagicRejected) {
  std::vector<std::byte> raw = bytes_of(sample_frame().encode());
  raw[0] ^= std::byte{0xff};
  EXPECT_FALSE(WireFrame::decode(raw).has_value());
}

TEST(UdpWire, WrongVersionRejected) {
  std::vector<std::byte> raw = bytes_of(sample_frame().encode());
  raw[4] = std::byte{static_cast<unsigned char>(kWireVersion + 1)};
  EXPECT_FALSE(WireFrame::decode(raw).has_value());
}

TEST(UdpWire, EveryTruncationRejected) {
  const Buffer encoded = sample_frame().encode();
  const std::span<const std::byte> full = encoded.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(WireFrame::decode(full.subspan(0, len)).has_value())
        << "truncation to " << len << " bytes must not decode";
  }
}

TEST(UdpWire, TrailingGarbageRejected) {
  Buffer encoded = sample_frame().encode();
  Writer(encoded).u8(0x00);  // one stray byte after a valid frame
  EXPECT_FALSE(WireFrame::decode(encoded.bytes()).has_value());
}

TEST(UdpWire, EmptyInputRejected) {
  EXPECT_FALSE(WireFrame::decode({}).has_value());
}

}  // namespace
}  // namespace ugrpc::net
