// Decoder robustness: NetMessage::decode over randomized byte strings must
// either produce a message or throw CodecError -- never crash or read out
// of bounds.  A seeded pseudo-fuzz sweep (deterministic, so failures are
// reproducible by seed).
#include <gtest/gtest.h>

#include "net/message.h"
#include "sim/rng.h"

namespace ugrpc::net {
namespace {

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzz, RandomBytesNeverCrashTheDecoder) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 128));
    Buffer junk;
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
    }
    try {
      const NetMessage m = NetMessage::decode(junk);
      // If it decoded, re-encoding must be stable for the decoded view.
      const NetMessage again = NetMessage::decode(m.encode());
      EXPECT_EQ(again, m);
    } catch (const CodecError&) {
      // expected for malformed input
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(DecodeFuzz, TruncationSweepOfValidMessage) {
  NetMessage m;
  m.type = MsgType::kReply;
  m.id = CallId{77};
  Writer(m.args).str("payload");
  m.ackid = 5;
  const Buffer wire = m.encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Buffer prefix;
    prefix.append(wire.bytes().subspan(0, cut));
    EXPECT_THROW((void)NetMessage::decode(prefix), CodecError) << "cut at " << cut;
  }
  EXPECT_NO_THROW((void)NetMessage::decode(wire));
}

TEST(DecodeFuzz, BitflipSweepOfValidMessage) {
  NetMessage m;
  m.type = MsgType::kCall;
  m.id = CallId{123};
  Writer(m.args).u32(99);
  const Buffer wire = m.encode();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Buffer mutated;
      mutated.append(wire.bytes());
      // flip one bit
      std::vector<std::byte> bytes(mutated.bytes().begin(), mutated.bytes().end());
      bytes[i] ^= static_cast<std::byte>(1u << bit);
      Buffer flipped(std::move(bytes));
      try {
        (void)NetMessage::decode(flipped);
      } catch (const CodecError&) {
        // fine
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ugrpc::net
