// Pins the fabric's crash-edge semantics (documented in net/network.h):
// what happens to packets that are in flight when their destination goes
// down, when the handler that should receive them is swapped out, or when
// the attachment itself disappears.  These are deliberate contracts -- the
// recovery and membership protocols depend on them -- so changes here are
// semantic changes, not refactors.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/sim_transport.h"

namespace ugrpc::net {
namespace {

constexpr ProtocolId kProto{7};
constexpr ProcessId kA{1};
constexpr ProcessId kB{2};

struct Fixture {
  sim::Scheduler sched{42};
  Network net{sched};
};

Buffer make_payload(std::uint32_t tag) {
  Buffer b;
  Writer(b).u32(tag);
  return b;
}

PacketHandler record_into(std::vector<Packet>& sink) {
  return [&sink](Packet p) -> sim::Task<> {
    sink.push_back(std::move(p));
    co_return;
  };
}

TEST(CrashEdge, InFlightPacketDroppedWhenDestinationGoesDown) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  Endpoint& b = f.net.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  a.send(kB, kProto, make_payload(1));
  // The packet is on the wire (transmit already counted it as sent) when
  // the destination crashes: going down races ahead of delivery.
  f.net.set_process_up(kB, false);
  f.sched.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(f.net.stats().sent, 1u);
  EXPECT_EQ(f.net.stats().delivered, 0u);
  EXPECT_EQ(f.net.stats().dropped, 1u);
  EXPECT_EQ(f.net.link_stats(kA, kB).dropped, 1u);
}

TEST(CrashEdge, RecoveredDestinationReceivesPacketsSentAfterRecovery) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  Endpoint& b = f.net.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  f.net.set_process_up(kB, false);
  a.send(kB, kProto, make_payload(1));  // dropped: destination is down
  f.sched.run();
  f.net.set_process_up(kB, true);
  a.send(kB, kProto, make_payload(2));
  f.sched.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(Reader(received[0].payload).u32(), 2u);
}

TEST(CrashEdge, HandlerReplacedBetweenSendAndDeliveryGetsNewRegistration) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  Endpoint& b = f.net.attach(kB, DomainId{2});
  std::vector<Packet> old_sink;
  std::vector<Packet> new_sink;
  b.set_handler(kProto, record_into(old_sink));
  a.send(kB, kProto, make_payload(9));
  // Demux happens at delivery time, not send time: a handler swapped in
  // while the packet is in flight receives it.
  b.set_handler(kProto, record_into(new_sink));
  f.sched.run();
  EXPECT_TRUE(old_sink.empty());
  ASSERT_EQ(new_sink.size(), 1u);
  EXPECT_EQ(Reader(new_sink[0].payload).u32(), 9u);
}

TEST(CrashEdge, ExecutingHandlerCompletesOnOldClosureAfterReplacement) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  Endpoint& b = f.net.attach(kB, DomainId{2});
  int old_completed = 0;
  int new_started = 0;
  // The first handler suspends mid-execution; while it sleeps the
  // registration is replaced.  The in-progress activation must finish on
  // the closure it started with (the delivery fiber pins the old handler
  // object alive), while the next packet demuxes to the replacement.
  b.set_handler(kProto, [&](Packet) -> sim::Task<> {
    co_await f.sched.sleep_for(sim::msec(10));
    ++old_completed;
  });
  a.send(kB, kProto, make_payload(1));
  f.sched.schedule_after(sim::msec(2), [&] {
    b.set_handler(kProto, [&](Packet) -> sim::Task<> {
      ++new_started;
      co_return;
    });
    a.send(kB, kProto, make_payload(2));
  });
  f.sched.run();
  EXPECT_EQ(old_completed, 1);
  EXPECT_EQ(new_started, 1);
}

TEST(CrashEdge, DetachDropsInFlightPackets) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  Endpoint& b = f.net.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  a.send(kB, kProto, make_payload(1));
  f.net.detach(kB);  // invalidates &b; in-flight packet dies at delivery
  f.sched.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(f.net.stats().dropped, 1u);
}

TEST(CrashEdge, ReattachAfterDetachStartsWithEmptyDemuxTable) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  {
    Endpoint& b = f.net.attach(kB, DomainId{2});
    b.set_handler(kProto, [](Packet) -> sim::Task<> { co_return; });
  }
  f.net.detach(kB);
  Endpoint& b2 = f.net.attach(kB, DomainId{2});
  EXPECT_EQ(b2.handler(kProto), nullptr) << "re-attach must not inherit old handlers";
  // With no handler registered, delivery drops the packet (counted).
  a.send(kB, kProto, make_payload(1));
  f.sched.run();
  EXPECT_EQ(f.net.stats().delivered, 0u);
  EXPECT_EQ(f.net.stats().dropped, 1u);
}

TEST(CrashEdge, SendToUnattachedProcessCountsUnroutable) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  a.send(ProcessId{99}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_EQ(f.net.stats().unroutable, 1u);
  EXPECT_EQ(f.net.stats().sent, 0u) << "unroutable packets never reach the wire";
  EXPECT_EQ(f.net.stats().dropped, 0u);
}

TEST(CrashEdge, MulticastToUndefinedGroupCountsUnroutable) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  a.multicast(GroupId{9}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_EQ(f.net.stats().unroutable, 1u);
  EXPECT_EQ(f.net.stats().sent, 0u);
}

TEST(CrashEdge, ByteAndLinkCountersTrackTraffic) {
  Fixture f;
  Endpoint& a = f.net.attach(kA, DomainId{1});
  Endpoint& b = f.net.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  const Buffer payload = make_payload(5);  // 4 bytes
  a.send(kB, kProto, payload);
  a.send(kB, kProto, payload);
  f.sched.run();
  EXPECT_EQ(f.net.stats().bytes_sent, 2 * payload.size());
  EXPECT_EQ(f.net.stats().bytes_delivered, 2 * payload.size());
  const Network::LinkStats ab = f.net.link_stats(kA, kB);
  EXPECT_EQ(ab.sent, 2u);
  EXPECT_EQ(ab.delivered, 2u);
  EXPECT_EQ(ab.bytes_sent, 2 * payload.size());
  EXPECT_EQ(ab.bytes_delivered, 2 * payload.size());
  // The reverse link was never used.
  const Network::LinkStats ba = f.net.link_stats(kB, kA);
  EXPECT_EQ(ba.sent, 0u);
  EXPECT_EQ(ba.bytes_sent, 0u);
}

// The same crash edges hold when the fabric is reached through the
// Transport seam the protocol stack actually uses.
TEST(CrashEdge, SimTransportExposesIdenticalCrashSemantics) {
  Fixture f;
  SimTransport t(f.net);
  Endpoint& a = t.attach(kA, DomainId{1});
  Endpoint& b = t.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  a.send(kB, kProto, make_payload(1));
  t.set_process_up(kB, false);
  f.sched.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(t.stats().dropped, 1u);
  EXPECT_TRUE(t.supports_process_control());
}

}  // namespace
}  // namespace ugrpc::net
