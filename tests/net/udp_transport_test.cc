// UdpTransport unit tests: real loopback sockets, driven synchronously from
// the test via poll_once.  Two transports in one process model two hosts;
// each test bounds its polling with a real-time deadline so a lost datagram
// fails the test instead of hanging it (loopback does not lose datagrams in
// practice, but the bound keeps CI safe).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <vector>

#include "net/udp_transport.h"
#include "net/wire.h"

namespace ugrpc::net {
namespace {

constexpr ProtocolId kProto{7};
constexpr ProcessId kA{1};
constexpr ProcessId kB{2};
constexpr ProcessId kC{3};

Buffer make_payload(std::uint32_t tag) {
  Buffer b;
  Writer(b).u32(tag);
  return b;
}

PacketHandler record_into(std::vector<Packet>& sink) {
  return [&sink](Packet p) -> sim::Task<> {
    sink.push_back(std::move(p));
    co_return;
  };
}

/// Polls both transports until `done` or ~2s of real time passes.
template <typename Pred>
bool drive_until(UdpTransport& t1, UdpTransport& t2, Pred done) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    t1.poll_once(sim::usec(500));
    t2.poll_once(0);
  }
  return true;
}

/// Two transports ("hosts") with one attachment each, cross-introduced.
struct Pair {
  UdpTransport ta;
  UdpTransport tb;
  Endpoint& a;
  Endpoint& b;

  Pair() : a(ta.attach(kA, DomainId{1})), b(tb.attach(kB, DomainId{2})) {
    ta.add_peer(kB, "127.0.0.1", tb.local_port(kB));
    tb.add_peer(kA, "127.0.0.1", ta.local_port(kA));
  }
};

TEST(UdpTransport, DeliversAcrossRealSockets) {
  Pair p;
  std::vector<Packet> received;
  p.b.set_handler(kProto, record_into(received));
  p.a.send(kB, kProto, make_payload(99));
  ASSERT_TRUE(drive_until(p.ta, p.tb, [&] { return !received.empty(); }));
  EXPECT_EQ(received[0].src, kA);
  EXPECT_EQ(received[0].dst, kB);
  EXPECT_EQ(received[0].proto, kProto);
  EXPECT_EQ(Reader(received[0].payload).u32(), 99u);
  EXPECT_EQ(p.ta.stats().sent, 1u);
  EXPECT_GE(p.ta.stats().bytes_sent, 4u);
  EXPECT_EQ(p.tb.stats().delivered, 1u);
  EXPECT_EQ(p.tb.stats().bytes_delivered, 4u);
}

TEST(UdpTransport, TwoLocalAttachmentsTalkOverLoopback) {
  // Both processes live on one transport; datagrams still cross the kernel.
  UdpTransport t;
  Endpoint& a = t.attach(kA, DomainId{1});
  Endpoint& b = t.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  a.send(kB, kProto, make_payload(7));
  ASSERT_TRUE(drive_until(t, t, [&] { return !received.empty(); }));
  EXPECT_EQ(Reader(received[0].payload).u32(), 7u);
}

TEST(UdpTransport, MulticastFansOutToEveryGroupMember) {
  UdpTransport sender_t;
  UdpTransport receiver_t;
  Endpoint& a = sender_t.attach(kA, DomainId{1});
  Endpoint& b = receiver_t.attach(kB, DomainId{2});
  Endpoint& c = receiver_t.attach(kC, DomainId{3});
  sender_t.add_peer(kB, "127.0.0.1", receiver_t.local_port(kB));
  sender_t.add_peer(kC, "127.0.0.1", receiver_t.local_port(kC));
  sender_t.define_group(GroupId{1}, {kB, kC});
  std::vector<Packet> at_b;
  std::vector<Packet> at_c;
  b.set_handler(kProto, record_into(at_b));
  c.set_handler(kProto, record_into(at_c));
  a.multicast(GroupId{1}, kProto, make_payload(5));
  ASSERT_TRUE(
      drive_until(sender_t, receiver_t, [&] { return !at_b.empty() && !at_c.empty(); }));
  EXPECT_EQ(sender_t.stats().sent, 2u) << "sender-side fan-out: one datagram per member";
  EXPECT_EQ(Reader(at_b[0].payload).u32(), 5u);
  EXPECT_EQ(Reader(at_c[0].payload).u32(), 5u);
}

TEST(UdpTransport, SendToUnknownPeerCountsUnroutable) {
  UdpTransport t;
  Endpoint& a = t.attach(kA, DomainId{1});
  a.send(ProcessId{77}, kProto, make_payload(1));
  EXPECT_EQ(t.stats().unroutable, 1u);
  EXPECT_EQ(t.stats().sent, 0u);
}

TEST(UdpTransport, MulticastToUndefinedGroupCountsUnroutable) {
  UdpTransport t;
  Endpoint& a = t.attach(kA, DomainId{1});
  a.multicast(GroupId{9}, kProto, make_payload(1));
  EXPECT_EQ(t.stats().unroutable, 1u);
}

TEST(UdpTransport, DownLocalProcessNeitherSendsNorReceives) {
  Pair p;
  std::vector<Packet> received;
  p.b.set_handler(kProto, record_into(received));

  // Down sender: datagram is dropped before the socket.
  p.ta.set_process_up(kA, false);
  p.a.send(kB, kProto, make_payload(1));
  EXPECT_EQ(p.ta.stats().dropped, 1u);

  // Down receiver: the datagram crosses the wire but dies on arrival.
  p.ta.set_process_up(kA, true);
  p.tb.set_process_up(kB, false);
  p.a.send(kB, kProto, make_payload(2));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline && p.tb.stats().dropped == 0) {
    p.ta.poll_once(0);
    p.tb.poll_once(sim::usec(500));
  }
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(p.tb.stats().delivered, 0u);

  // Back up: traffic flows again.
  p.tb.set_process_up(kB, true);
  p.a.send(kB, kProto, make_payload(3));
  ASSERT_TRUE(drive_until(p.ta, p.tb, [&] { return !received.empty(); }));
  EXPECT_EQ(Reader(received[0].payload).u32(), 3u);
}

TEST(UdpTransport, TimersFireOnTheWheel) {
  UdpTransport t;
  int fired = 0;
  t.schedule_after(sim::msec(5), [&] { ++fired; });
  const TimerId cancelled = t.schedule_after(sim::msec(5), [&] { ++fired; });
  t.cancel_timer(cancelled);
  t.run_for(sim::msec(50));
  EXPECT_EQ(fired, 1);
}

TEST(UdpTransport, RunUntilFiberDoneHonoursTimeout) {
  UdpTransport t;
  t.attach(kA, DomainId{1});
  bool ran = false;
  const FiberId fiber = t.spawn([](bool& flag) -> sim::Task<> {
    flag = true;
    co_return;
  }(ran), DomainId{1});
  EXPECT_TRUE(t.run_until_fiber_done(fiber, sim::seconds(2)));
  EXPECT_TRUE(ran);
}

/// Sends a raw pre-encoded frame at the given port from a throwaway socket
/// (models a stale datagram still sitting in kernel buffers after its
/// sender restarted).
void send_raw(std::uint16_t port, const WireFrame& frame) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const Buffer encoded = frame.encode();
  const auto sent = ::sendto(fd, encoded.bytes().data(), encoded.size(), 0,
                             reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ::close(fd);
  ASSERT_EQ(static_cast<std::size_t>(sent), encoded.size());
}

TEST(UdpTransport, StaleIncarnationFramesAreDropped) {
  // A restarted sender re-attaches with a bumped incarnation; once the
  // receiver has heard the newer incarnation, frames tagged with an older
  // one (pre-restart datagrams lingering in kernel buffers) must die.
  UdpTransport sender_t;
  UdpTransport receiver_t;
  sender_t.attach(kA, DomainId{1});
  sender_t.detach(kA);
  Endpoint& a2 = sender_t.attach(kA, DomainId{1});  // incarnation 2
  Endpoint& b = receiver_t.attach(kB, DomainId{2});
  sender_t.add_peer(kB, "127.0.0.1", receiver_t.local_port(kB));
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));

  a2.send(kB, kProto, make_payload(2));
  ASSERT_TRUE(drive_until(sender_t, receiver_t, [&] { return !received.empty(); }));

  const auto delivered_before = receiver_t.stats().delivered;
  WireFrame stale;
  stale.src = kA;
  stale.dst = kB;
  stale.proto = kProto;
  stale.incarnation = 1;  // superseded
  stale.payload = make_payload(1);
  send_raw(receiver_t.local_port(kB), stale);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    receiver_t.poll_once(sim::usec(500));
  }
  EXPECT_EQ(receiver_t.stats().delivered, delivered_before)
      << "frame from a superseded incarnation must not be delivered";
  EXPECT_EQ(received.size(), 1u);
}

TEST(UdpTransport, StrayDatagramsAreRejected) {
  // Non-uGRP traffic arriving on the socket must be dropped, not crash the
  // decoder or reach a handler.
  UdpTransport t;
  Endpoint& b = t.attach(kB, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(t.local_port(kB));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const char junk[] = "not a uGRP frame";
  ::sendto(fd, junk, sizeof(junk), 0, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline && t.stats().dropped == 0) {
    t.poll_once(sim::usec(500));
  }
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(t.stats().dropped, 1u);
  EXPECT_EQ(t.stats().delivered, 0u);
}

}  // namespace
}  // namespace ugrpc::net
