// TimerWheel unit tests: firing order, O(1) cancellation semantics
// (including cancel-from-inside-a-callback), per-domain cancellation, and
// the next_deadline() hint the UDP poll loop sizes its timeout with.
#include <gtest/gtest.h>

#include <vector>

#include "net/timer_wheel.h"
#include "sim/scheduler.h"

namespace ugrpc::net {
namespace {

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.add(sim::msec(30), [&] { fired.push_back(3); }, sim::kGlobalDomain);
  wheel.add(sim::msec(10), [&] { fired.push_back(1); }, sim::kGlobalDomain);
  wheel.add(sim::msec(20), [&] { fired.push_back(2); }, sim::kGlobalDomain);
  wheel.advance(sim::msec(100));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, SameDeadlineFiresInRegistrationOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    wheel.add(sim::msec(5), [&fired, i] { fired.push_back(i); }, sim::kGlobalDomain);
  }
  wheel.advance(sim::msec(10));
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerWheel, DoesNotFireBeforeDeadline) {
  TimerWheel wheel;
  int fired = 0;
  wheel.add(sim::msec(50), [&] { ++fired; }, sim::kGlobalDomain);
  wheel.advance(sim::msec(49));
  EXPECT_EQ(fired, 0);
  wheel.advance(sim::msec(50));
  EXPECT_EQ(fired, 1);
  wheel.advance(sim::msec(200));  // no double-fire
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const TimerId id = wheel.add(sim::msec(10), [&] { ++fired; }, sim::kGlobalDomain);
  wheel.cancel(id);
  wheel.advance(sim::msec(100));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CancelAfterFireIsNoop) {
  TimerWheel wheel;
  const TimerId id = wheel.add(sim::msec(1), [] {}, sim::kGlobalDomain);
  wheel.advance(sim::msec(10));
  wheel.cancel(id);  // must not crash or cancel anything else
  int fired = 0;
  wheel.add(sim::msec(20), [&] { ++fired; }, sim::kGlobalDomain);
  wheel.advance(sim::msec(30));
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelDomainCancelsOnlyThatDomain) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.add(sim::msec(10), [&] { fired.push_back(1); }, DomainId{1});
  wheel.add(sim::msec(11), [&] { fired.push_back(2); }, DomainId{2});
  wheel.add(sim::msec(12), [&] { fired.push_back(1); }, DomainId{1});
  wheel.cancel_domain(DomainId{1});
  wheel.advance(sim::msec(100));
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(TimerWheel, CancelFromInsideCallbackStopsSameBatchEntry) {
  TimerWheel wheel;
  int second_fired = 0;
  TimerId second{};
  // Both timers are due in the same advance() batch; the first cancels the
  // second before the batch reaches it.
  wheel.add(sim::msec(5), [&] { wheel.cancel(second); }, sim::kGlobalDomain);
  second = wheel.add(sim::msec(6), [&] { ++second_fired; }, sim::kGlobalDomain);
  wheel.advance(sim::msec(50));
  EXPECT_EQ(second_fired, 0);
}

TEST(TimerWheel, CallbackCanArmNewTimer) {
  TimerWheel wheel;
  int chained = 0;
  wheel.add(sim::msec(5), [&] {
    wheel.add(sim::msec(100), [&] { ++chained; }, sim::kGlobalDomain);
  }, sim::kGlobalDomain);
  wheel.advance(sim::msec(10));
  EXPECT_EQ(chained, 0) << "rearmed timer must wait for its own deadline";
  wheel.advance(sim::msec(200));
  EXPECT_EQ(chained, 1);
}

TEST(TimerWheel, NextDeadlineReportsEarliestPending) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.add(sim::msec(30), [] {}, sim::kGlobalDomain);
  const TimerId early = wheel.add(sim::msec(10), [] {}, sim::kGlobalDomain);
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), sim::msec(10));
  wheel.cancel(early);
  EXPECT_EQ(*wheel.next_deadline(), sim::msec(30));
  wheel.advance(sim::msec(100));
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  wheel.advance(sim::msec(50));
  int fired = 0;
  wheel.add(sim::msec(10), [&] { ++fired; }, sim::kGlobalDomain);  // already past
  wheel.advance(sim::msec(51));
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, DeadlinesBeyondOneRotationStillFire) {
  // kSlots * granularity = 256ms with default 1ms ticks; a deadline several
  // rotations out hashes to an already-visited slot and must not fire early.
  TimerWheel wheel;
  int fired = 0;
  wheel.add(sim::msec(700), [&] { ++fired; }, sim::kGlobalDomain);
  wheel.advance(sim::msec(300));
  EXPECT_EQ(fired, 0);
  wheel.advance(sim::msec(699));
  EXPECT_EQ(fired, 0);
  wheel.advance(sim::msec(700));
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, ManyTimersAcrossSlots) {
  TimerWheel wheel;
  std::vector<int> fired;
  for (int i = 0; i < 1000; ++i) {
    wheel.add(sim::msec(i + 1), [&fired, i] { fired.push_back(i); }, sim::kGlobalDomain);
  }
  wheel.advance(sim::msec(2000));
  ASSERT_EQ(fired.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

// ---- ring-wrap regressions (audit, satellite of ISSUE 3) ----
//
// With 1ms granularity and 256 slots one rotation is 256ms.  These pin the
// wrap behaviour: a timer several rotations out must survive any pattern of
// advance() calls -- tiny steps that revisit its bucket each rotation, one
// giant leap past it, or a gap of exactly a full rotation -- and fire
// exactly once, exactly on time.

TEST(TimerWheel, FarFutureTimerSurvivesManySmallAdvancesAcrossWrap) {
  TimerWheel wheel;
  int fired = 0;
  // ~3.9 rotations out; its bucket is visited on every rotation before the
  // deadline and the entry must be skipped each time.
  wheel.add(sim::msec(1000), [&] { ++fired; }, sim::kGlobalDomain);
  for (int t = 1; t <= 999; ++t) {
    wheel.advance(sim::msec(t));
    ASSERT_EQ(fired, 0) << "fired early at t=" << t << "ms";
  }
  wheel.advance(sim::msec(1000));
  EXPECT_EQ(fired, 1);
  wheel.advance(sim::msec(2000));
  EXPECT_EQ(fired, 1) << "must not refire after the wrap";
}

TEST(TimerWheel, ExactRotationBoundaryFires) {
  TimerWheel wheel;
  int fired = 0;
  // Deadline tick 256 hashes to slot 0 -- the same slot as tick 0, where
  // the walk started.  Crossing the boundary must still fire it.
  wheel.add(sim::msec(256), [&] { ++fired; }, sim::kGlobalDomain);
  wheel.advance(sim::msec(255));
  EXPECT_EQ(fired, 0);
  wheel.advance(sim::msec(256));
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, AdvanceGapOfExactlyOneRotation) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.add(sim::msec(100), [&] { fired.push_back(1); }, sim::kGlobalDomain);
  wheel.add(sim::msec(100 + 256), [&] { fired.push_back(2); }, sim::kGlobalDomain);
  // One advance spanning exactly a full rotation: both entries share a slot
  // and both deadlines are <= now.
  wheel.advance(sim::msec(100 + 256));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, NearAndFarTimerInSameSlot) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.add(sim::msec(10), [&] { fired.push_back(1); }, sim::kGlobalDomain);
  wheel.add(sim::msec(10 + 256), [&] { fired.push_back(2); }, sim::kGlobalDomain);
  wheel.advance(sim::msec(20));
  EXPECT_EQ(fired, (std::vector<int>{1})) << "the next-rotation entry must stay armed";
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(sim::msec(10 + 256));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, NextDeadlineSeesFarFutureEntriesAfterPartialAdvance) {
  TimerWheel wheel;
  wheel.add(sim::msec(900), [] {}, sim::kGlobalDomain);
  wheel.advance(sim::msec(500));  // passes the entry's bucket twice; must not disturb it
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), sim::msec(900));
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheel, GapLargerThanOneRotationFiresOnlyDueEntries) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.add(sim::msec(50), [&] { fired.push_back(1); }, sim::kGlobalDomain);
  wheel.add(sim::msec(400), [&] { fired.push_back(2); }, sim::kGlobalDomain);
  wheel.add(sim::msec(5000), [&] { fired.push_back(3); }, sim::kGlobalDomain);
  // A single advance over >1 rotation (walk caps at kSlots buckets): the two
  // due entries fire in deadline order, the far one stays.
  wheel.advance(sim::msec(600));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(sim::msec(5000));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace ugrpc::net
