// Unit tests for the simulated network fabric: delivery, demux, faults,
// groups, and crash behaviour.
#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.h"
#include "net/message.h"

namespace ugrpc::net {
namespace {

constexpr ProtocolId kProto{7};
constexpr ProtocolId kOtherProto{8};

struct Fixture {
  sim::Scheduler sched{42};
  Network net{sched};
};

Buffer make_payload(std::uint32_t tag) {
  Buffer b;
  Writer(b).u32(tag);
  return b;
}

std::uint32_t payload_tag(const Buffer& b) { return Reader(b).u32(); }

PacketHandler record_into(std::vector<Packet>& sink) {
  return [&sink](Packet p) -> sim::Task<> {
    sink.push_back(std::move(p));
    co_return;
  };
}

TEST(Network, DeliversPointToPointWithDelay) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  Endpoint& b = f.net.attach(ProcessId{2}, DomainId{2});
  std::vector<Packet> received;
  b.set_handler(kProto, record_into(received));
  a.send(ProcessId{2}, kProto, make_payload(99));
  EXPECT_TRUE(received.empty()) << "delivery must not be synchronous";
  f.sched.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].src, ProcessId{1});
  EXPECT_EQ(received[0].dst, ProcessId{2});
  EXPECT_EQ(payload_tag(received[0].payload), 99u);
  EXPECT_GE(f.sched.now(), sim::usec(100));
  EXPECT_LE(f.sched.now(), sim::usec(500));
}

TEST(Network, DemuxesByProtocolId) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  Endpoint& b = f.net.attach(ProcessId{2}, DomainId{2});
  std::vector<Packet> proto_msgs;
  std::vector<Packet> other_msgs;
  b.set_handler(kProto, record_into(proto_msgs));
  b.set_handler(kOtherProto, record_into(other_msgs));
  a.send(ProcessId{2}, kProto, make_payload(1));
  a.send(ProcessId{2}, kOtherProto, make_payload(2));
  f.sched.run();
  ASSERT_EQ(proto_msgs.size(), 1u);
  ASSERT_EQ(other_msgs.size(), 1u);
  EXPECT_EQ(payload_tag(proto_msgs[0].payload), 1u);
  EXPECT_EQ(payload_tag(other_msgs[0].payload), 2u);
}

TEST(Network, PacketWithoutHandlerIsDropped) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  f.net.attach(ProcessId{2}, DomainId{2});
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_EQ(f.net.stats().dropped, 1u);
  EXPECT_EQ(f.net.stats().delivered, 0u);
}

TEST(Network, MulticastReachesAllGroupMembers) {
  Fixture f;
  Endpoint& client = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> r2;
  std::vector<Packet> r3;
  std::vector<Packet> r4;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(r2));
  f.net.attach(ProcessId{3}, DomainId{3}).set_handler(kProto, record_into(r3));
  f.net.attach(ProcessId{4}, DomainId{4}).set_handler(kProto, record_into(r4));
  f.net.define_group(GroupId{10}, {ProcessId{2}, ProcessId{3}, ProcessId{4}});
  client.multicast(GroupId{10}, kProto, make_payload(5));
  f.sched.run();
  EXPECT_EQ(r2.size(), 1u);
  EXPECT_EQ(r3.size(), 1u);
  EXPECT_EQ(r4.size(), 1u);
}

TEST(Network, DropProbabilityOneLosesEverything) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  FaultSpec lossy;
  lossy.drop_prob = 1.0;
  f.net.set_default_faults(lossy);
  for (int i = 0; i < 20; ++i) a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(f.net.stats().dropped, 20u);
}

TEST(Network, DropProbabilityIsRoughlyHonoured) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  FaultSpec lossy;
  lossy.drop_prob = 0.25;
  f.net.set_default_faults(lossy);
  const int n = 4000;
  for (int i = 0; i < n; ++i) a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  const double loss = 1.0 - static_cast<double>(received.size()) / n;
  EXPECT_NEAR(loss, 0.25, 0.05);
}

TEST(Network, DuplicationDeliversTwice) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  FaultSpec dupey;
  dupey.dup_prob = 1.0;
  f.net.set_default_faults(dupey);
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(f.net.stats().duplicated, 1u);
}

TEST(Network, PerLinkFaultOverridesDefault) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> r2;
  std::vector<Packet> r3;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(r2));
  f.net.attach(ProcessId{3}, DomainId{3}).set_handler(kProto, record_into(r3));
  f.net.link(ProcessId{1}, ProcessId{2}).drop_prob = 1.0;
  a.send(ProcessId{2}, kProto, make_payload(1));
  a.send(ProcessId{3}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_TRUE(r2.empty());
  EXPECT_EQ(r3.size(), 1u);
}

TEST(Network, PartitionedLinkDeliversNothingUntilHealed) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  f.net.link(ProcessId{1}, ProcessId{2}).partitioned = true;
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_TRUE(received.empty());
  f.net.link(ProcessId{1}, ProcessId{2}).partitioned = false;
  a.send(ProcessId{2}, kProto, make_payload(2));
  f.sched.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(payload_tag(received[0].payload), 2u);
}

TEST(Network, DownDestinationDropsInFlightPackets) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.net.set_process_up(ProcessId{2}, false);  // crash while packet in flight
  f.sched.run();
  EXPECT_TRUE(received.empty());
}

TEST(Network, DownSenderProducesNothing) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  f.net.set_process_up(ProcessId{1}, false);
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  EXPECT_TRUE(received.empty());
}

TEST(Network, RecoveredDestinationReceivesAgain) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  Endpoint& b = f.net.attach(ProcessId{2}, DomainId{2});
  b.set_handler(kProto, record_into(received));
  f.net.set_process_up(ProcessId{2}, false);
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.sched.run();
  f.net.set_process_up(ProcessId{2}, true);
  a.send(ProcessId{2}, kProto, make_payload(2));
  f.sched.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(payload_tag(received[0].payload), 2u);
}

TEST(Network, WideDelayRangeReordersPackets) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  std::vector<Packet> received;
  f.net.attach(ProcessId{2}, DomainId{2}).set_handler(kProto, record_into(received));
  FaultSpec jittery;
  jittery.min_delay = sim::usec(1);
  jittery.max_delay = sim::msec(50);
  f.net.set_default_faults(jittery);
  const int n = 50;
  for (std::uint32_t i = 0; i < n; ++i) a.send(ProcessId{2}, kProto, make_payload(i));
  f.sched.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(n));
  bool reordered = false;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (payload_tag(received[i].payload) < payload_tag(received[i - 1].payload)) {
      reordered = true;
      break;
    }
  }
  EXPECT_TRUE(reordered) << "wide random delays should reorder some packets";
}

TEST(NetMessage, EncodeDecodeRoundTrip) {
  NetMessage m;
  m.type = MsgType::kReply;
  m.id = CallId{123456789};
  m.op = OpId{42};
  Writer(m.args).str("result-bytes");
  m.server = GroupId{9};
  m.sender = ProcessId{3};
  m.inc = 5;
  m.ackid = 777;
  const NetMessage decoded = NetMessage::decode(m.encode());
  EXPECT_EQ(decoded, m);
}

TEST(NetMessage, DecodeRejectsBadType) {
  Buffer b;
  Writer w(b);
  w.u8(9);  // invalid MsgType
  w.u64(0);
  w.u32(0);
  w.raw({});
  w.u32(0);
  w.u32(0);
  w.u32(0);
  w.u64(0);
  EXPECT_THROW((void)NetMessage::decode(b), CodecError);
}

TEST(NetMessage, DecodeRejectsTruncated) {
  NetMessage m;
  Buffer enc = m.encode();
  Buffer cut;
  cut.append(enc.bytes().subspan(0, enc.size() - 3));
  EXPECT_THROW((void)NetMessage::decode(cut), CodecError);
}

// ---- unroutable-send warning rate limiting (satellite of ISSUE 3) ----
//
// A retransmission loop aimed at a detached process used to emit one warn
// line per send.  The warnings are now rate-limited per (src, dst) link --
// first occurrence immediately, then at most one summary per virtual second
// carrying the exact suppressed count -- while stats().unroutable keeps
// counting every occurrence.

std::vector<std::string>& captured_warnings() {
  static std::vector<std::string> lines;
  return lines;
}

void capturing_sink(LogLevel level, std::string_view message) {
  if (level >= LogLevel::kWarn) captured_warnings().emplace_back(message);
}

std::size_t unroutable_lines() {
  std::size_t n = 0;
  for (const std::string& l : captured_warnings()) {
    if (l.find("unroutable") != std::string::npos) ++n;
  }
  return n;
}

struct LogCapture {
  LogSink previous;
  LogCapture() : previous(set_log_sink(capturing_sink)) { captured_warnings().clear(); }
  ~LogCapture() { set_log_sink(previous); }
};

TEST(Network, UnroutableWarningsAreRateLimitedButCountedExactly) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  LogCapture capture;
  // A burst at t=0: one full warning, the rest suppressed.
  for (int i = 0; i < 50; ++i) a.send(ProcessId{2}, kProto, make_payload(1));
  EXPECT_EQ(unroutable_lines(), 1u);
  EXPECT_NE(captured_warnings().front().find("destination not attached"), std::string::npos);
  // After the period, the next occurrence flushes a summary with the exact
  // backlog (49 suppressed + this one).
  f.sched.run_for(sim::seconds(2));
  a.send(ProcessId{2}, kProto, make_payload(1));
  ASSERT_EQ(unroutable_lines(), 2u);
  EXPECT_NE(captured_warnings().back().find("50 more since last report"), std::string::npos)
      << captured_warnings().back();
  // The stats counter saw every single occurrence.
  EXPECT_EQ(f.net.stats().unroutable, 51u);
}

TEST(Network, UnroutableRateLimiterIsPerLink) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  Endpoint& b = f.net.attach(ProcessId{2}, DomainId{2});
  LogCapture capture;
  // Two different links: each gets its own first-occurrence line.
  a.send(ProcessId{77}, kProto, make_payload(1));
  b.send(ProcessId{78}, kProto, make_payload(1));
  a.send(ProcessId{77}, kProto, make_payload(1));  // suppressed
  EXPECT_EQ(unroutable_lines(), 2u);
  EXPECT_EQ(f.net.stats().unroutable, 3u);
}

TEST(Network, UndefinedGroupMulticastIsRateLimitedSeparately) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  LogCapture capture;
  for (int i = 0; i < 10; ++i) a.multicast(GroupId{99}, kProto, make_payload(1));
  EXPECT_EQ(unroutable_lines(), 1u);
  EXPECT_NE(captured_warnings().front().find("undefined group"), std::string::npos);
  EXPECT_EQ(f.net.stats().unroutable, 10u);
}

TEST(Network, ResetStatsClearsRateLimiterState) {
  Fixture f;
  Endpoint& a = f.net.attach(ProcessId{1}, DomainId{1});
  LogCapture capture;
  a.send(ProcessId{2}, kProto, make_payload(1));
  f.net.reset_stats();
  // A fresh epoch: the next occurrence is a "first" again.
  a.send(ProcessId{2}, kProto, make_payload(1));
  EXPECT_EQ(unroutable_lines(), 2u);
  EXPECT_NE(captured_warnings().back().find("destination not attached"), std::string::npos);
}

}  // namespace
}  // namespace ugrpc::net
