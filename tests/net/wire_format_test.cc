// Golden wire-format tests: the exact byte layout of NetMessage is a
// compatibility contract (checkpoints and any future cross-version traffic
// depend on it).  If one of these fails, the wire format changed -- bump a
// version, do not silently re-golden.
#include <gtest/gtest.h>

#include "net/message.h"

namespace ugrpc::net {
namespace {

std::vector<std::uint8_t> bytes_of(const Buffer& b) {
  std::vector<std::uint8_t> out;
  for (std::byte x : b.bytes()) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(WireFormat, EmptyCallMessageGolden) {
  NetMessage m;  // all fields zero, type kCall, empty args
  const std::vector<std::uint8_t> expected = {
      0x00,                                            // type = Call
      0, 0, 0, 0, 0, 0, 0, 0,                          // id (u64 LE)
      0, 0, 0, 0,                                      // op (u32)
      0, 0, 0, 0,                                      // args length prefix (u32) = 0
      0, 0, 0, 0,                                      // server (u32)
      0, 0, 0, 0,                                      // sender (u32)
      0, 0, 0, 0,                                      // inc (u32)
      0, 0, 0, 0, 0, 0, 0, 0,                          // ackid (u64)
  };
  EXPECT_EQ(bytes_of(m.encode()), expected);
}

TEST(WireFormat, PopulatedReplyGolden) {
  NetMessage m;
  m.type = MsgType::kReply;
  m.id = CallId{0x0102030405060708ULL};
  m.op = OpId{0xAABBCCDDu};
  Writer(m.args).u8(0x5A);
  m.server = GroupId{7};
  m.sender = ProcessId{9};
  m.inc = 3;
  m.ackid = 0x1122334455667788ULL;
  const std::vector<std::uint8_t> expected = {
      0x01,                                            // type = Reply
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // id little-endian
      0xDD, 0xCC, 0xBB, 0xAA,                          // op
      0x01, 0x00, 0x00, 0x00,                          // args length = 1
      0x5A,                                            // args payload
      0x07, 0x00, 0x00, 0x00,                          // server
      0x09, 0x00, 0x00, 0x00,                          // sender
      0x03, 0x00, 0x00, 0x00,                          // inc
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // ackid
  };
  EXPECT_EQ(bytes_of(m.encode()), expected);
}

TEST(WireFormat, MessageSizeIsHeaderPlusArgs) {
  NetMessage m;
  EXPECT_EQ(m.encode().size(), 37u);  // fixed header incl. empty-args prefix
  Writer(m.args).str("0123456789");
  EXPECT_EQ(m.encode().size(), 37u + 4u + 10u);  // + string length prefix + chars
}

TEST(WireFormat, AllMessageTypesRoundTrip) {
  for (auto t : {MsgType::kCall, MsgType::kReply, MsgType::kAck, MsgType::kOrder,
                 MsgType::kOrderQuery, MsgType::kOrderInfo}) {
    NetMessage m;
    m.type = t;
    m.id = CallId{42};
    EXPECT_EQ(NetMessage::decode(m.encode()), m) << to_string(t);
  }
}

TEST(WireFormat, DecodeIgnoresNothingRejectsTrailingGarbage) {
  // Current contract: trailing bytes after a well-formed message are
  // tolerated (the reader simply stops).  Pin that behaviour.
  NetMessage m;
  Buffer wire = m.encode();
  wire.push_back(std::byte{0xFF});
  EXPECT_EQ(NetMessage::decode(wire), m);
}

}  // namespace
}  // namespace ugrpc::net
