// Regression tests for bench argument parsing (satellite of ISSUE 3): the
// original atoi-based parser silently turned "--calls abc" into 0 calls and
// accepted negatives.  try_parse_args is the non-exiting core; these tests
// pin the reject/accept behaviour.
#include <gtest/gtest.h>

#include <climits>
#include <initializer_list>
#include <string>
#include <vector>

#include "bench_util.h"

namespace ugrpc::bench {
namespace {

ParseResult parse(std::initializer_list<const char*> argv_tail,
                  std::uint64_t default_seed = 42) {
  std::vector<const char*> argv{"bench"};
  argv.insert(argv.end(), argv_tail);
  return try_parse_args(static_cast<int>(argv.size()), argv.data(), default_seed);
}

TEST(ParseU64, AcceptsPlainDecimal) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));  // UINT64_MAX
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseU64, RejectsGarbage) {
  std::uint64_t v = 99;
  EXPECT_FALSE(parse_u64(nullptr, v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("abc", v));       // atoi would return 0
  EXPECT_FALSE(parse_u64("12abc", v));     // trailing garbage
  EXPECT_FALSE(parse_u64("-5", v));        // negative
  EXPECT_FALSE(parse_u64("+5", v));        // explicit sign
  EXPECT_FALSE(parse_u64(" 5", v));        // leading whitespace
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // UINT64_MAX + 1
  EXPECT_EQ(v, 99u) << "failed parse must not clobber the output";
}

TEST(ParseCount, RejectsValuesBeyondIntMax) {
  int v = -1;
  EXPECT_TRUE(parse_count("2147483647", v));
  EXPECT_EQ(v, INT_MAX);
  EXPECT_FALSE(parse_count("2147483648", v));
  EXPECT_FALSE(parse_count("-1", v));
}

TEST(TryParseArgs, DefaultsWhenNoArgs) {
  const ParseResult r = parse({});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.args.seed, 42u);
  EXPECT_EQ(r.args.calls, 0);
  EXPECT_EQ(r.args.out, "");
}

TEST(TryParseArgs, ParsesAllOptions) {
  const ParseResult r = parse({"--seed", "7", "--calls", "100", "--out", "results.json"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.args.seed, 7u);
  EXPECT_EQ(r.args.calls, 100);
  EXPECT_EQ(r.args.out, "results.json");
}

TEST(TryParseArgs, RejectsNonNumericCalls) {
  const ParseResult r = parse({"--calls", "abc"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--calls"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("abc"), std::string::npos) << r.error;
}

TEST(TryParseArgs, RejectsNegativeCalls) {
  EXPECT_FALSE(parse({"--calls", "-3"}).ok);
}

TEST(TryParseArgs, RejectsTrailingGarbageInSeed) {
  EXPECT_FALSE(parse({"--seed", "12x"}).ok);
}

TEST(TryParseArgs, RejectsMissingValue) {
  const ParseResult r = parse({"--seed"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing value"), std::string::npos) << r.error;
}

TEST(TryParseArgs, RejectsUnknownArgument) {
  const ParseResult r = parse({"--bogus"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--bogus"), std::string::npos) << r.error;
}

TEST(TryParseArgs, SeedAcceptsFullUint64Range) {
  const ParseResult r = parse({"--seed", "18446744073709551615"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.args.seed, UINT64_MAX);
}

}  // namespace
}  // namespace ugrpc::bench
