// ugrpcstat: command-line client for the live telemetry plane (ISSUE 5).
//
// Talks to a serving site's telemetry listener (UdpTransport::serve_telemetry)
// and to flight-recorder dumps on disk:
//
//   ugrpcstat --port P                  pretty-print one introspection snapshot
//   ugrpcstat --port P --json           raw /introspect JSON
//   ugrpcstat --port P --metrics        raw /metrics Prometheus text
//   ugrpcstat --port P --watch S        poll /metrics.json every S seconds and
//                                       print counter deltas (--count N polls)
//   ugrpcstat --check-flight DIR        load DIR/trace.json + DIR/MANIFEST.json,
//                                       rebuild the checker Expect recorded in
//                                       the manifest, and replay the dumped
//                                       trace through obs::check()
//
// Exit status: 0 on success, 1 on violations / unreadable dump, 2 on usage or
// connection errors.  The HTTP client is deliberately tiny -- blocking
// connect, one GET, read to EOF (the server closes after each response).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/checker.h"
#include "obs/live/json_value.h"
#include "obs/live/trace_load.h"
#include "sim/time.h"

namespace {

using ugrpc::obs::live::JsonValue;
using ugrpc::obs::live::json_parse;

struct Cli {
  std::string host = "127.0.0.1";
  int port = -1;
  bool json = false;
  bool metrics = false;
  double watch_sec = 0.0;
  int count = 0;  // 0 = until interrupted
  std::string check_flight;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: ugrpcstat [--host H] --port P [--json | --metrics | --watch SEC "
               "[--count N]]\n"
               "       ugrpcstat --check-flight DIR\n");
}

bool parse_cli(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return false;
      cli.host = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return false;
      cli.port = std::atoi(v);
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--metrics") {
      cli.metrics = true;
    } else if (arg == "--watch") {
      const char* v = value();
      if (v == nullptr) return false;
      cli.watch_sec = std::atof(v);
    } else if (arg == "--count") {
      const char* v = value();
      if (v == nullptr) return false;
      cli.count = std::atoi(v);
    } else if (arg == "--check-flight") {
      const char* v = value();
      if (v == nullptr) return false;
      cli.check_flight = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "ugrpcstat: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  if (!cli.check_flight.empty()) return true;
  if (cli.port <= 0 || cli.port > 65535) {
    std::fprintf(stderr, "ugrpcstat: --port required (1..65535)\n");
    return false;
  }
  if (cli.watch_sec < 0 || cli.count < 0) return false;
  return true;
}

// ---- HTTP ----

/// One blocking GET; returns the response body, nullopt on any failure.
std::optional<std::string> http_get(const std::string& host, int port, const std::string& path,
                                    std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host (numeric IPv4 expected): " + host;
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    }
    ::close(fd);
    return std::nullopt;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\nConnection: close\r\n\r\n";
  for (std::size_t off = 0; off < request.size();) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (error != nullptr) *error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  const bool ok_status = response.rfind("HTTP/1.0 200", 0) == 0 ||
                         response.rfind("HTTP/1.1 200", 0) == 0;
  if (header_end == std::string::npos || !ok_status) {
    if (error != nullptr) {
      *error = "unexpected response: " + response.substr(0, response.find("\r\n"));
    }
    return std::nullopt;
  }
  return response.substr(header_end + 4);
}

// ---- pretty-printed introspection ----

std::string format_age(std::uint64_t age_us) {
  char buf[32];
  if (age_us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(age_us) / 1e6);
  } else if (age_us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(age_us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus", static_cast<unsigned long long>(age_us));
  }
  return buf;
}

std::string hold_line(const JsonValue& hold) {
  std::string out;
  for (const char* key : {"main", "fifo", "total"}) {
    if (!hold[key].as_bool()) continue;
    if (!out.empty()) out += "+";
    out += key;
  }
  return out.empty() ? "none" : out;
}

int print_introspection(const std::string& body) {
  std::string error;
  const auto doc = json_parse(body, &error);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "ugrpcstat: bad introspection document: %s\n", error.c_str());
    return 2;
  }
  const JsonValue& v = *doc;
  std::printf("site %llu  incarnation %llu  %s  t=%s\n",
              static_cast<unsigned long long>(v["site"].as_u64()),
              static_cast<unsigned long long>(v["incarnation"].as_u64()),
              v["up"].as_bool() ? "UP" : "DOWN", format_age(v["now_us"].as_u64()).c_str());
  if (!v["up"].as_bool()) return 0;

  std::printf("config: %s\n", v["config"].as_string().c_str());
  std::string protos;
  for (const JsonValue& p : v["micro_protocols"].as_array()) {
    if (!protos.empty()) protos += " | ";
    protos += p.as_string();
  }
  std::printf("stack:  %s\n", protos.c_str());

  std::string members;
  for (const JsonValue& m : v["members"].as_array()) {
    if (!members.empty()) members += ", ";
    members += std::to_string(m.as_u64());
  }
  std::printf("members: [%s]   HOLD: %s\n", members.c_str(), hold_line(v["hold"]).c_str());

  const auto& prpc = v["pRPC"].as_array();
  std::printf("pRPC pending: %zu\n", prpc.size());
  for (const JsonValue& c : prpc) {
    std::printf("  call %llu seq=%llu op=%llu server=%llu %s nres=%llu outstanding=%llu age=%s\n",
                static_cast<unsigned long long>(c["id"].as_u64()),
                static_cast<unsigned long long>(c["seq"].as_u64()),
                static_cast<unsigned long long>(c["op"].as_u64()),
                static_cast<unsigned long long>(c["server"].as_u64()),
                c["status"].as_string().c_str(),
                static_cast<unsigned long long>(c["nres"].as_u64()),
                static_cast<unsigned long long>(c["outstanding"].as_u64()),
                format_age(c["age_us"].as_u64()).c_str());
  }
  const auto& srpc = v["sRPC"].as_array();
  std::printf("sRPC pending: %zu\n", srpc.size());
  for (const JsonValue& s : srpc) {
    std::printf("  entry %llu client=%llu/%llu op=%llu hold=%s %s age=%s\n",
                static_cast<unsigned long long>(s["id"].as_u64()),
                static_cast<unsigned long long>(s["client"].as_u64()),
                static_cast<unsigned long long>(s["client_inc"].as_u64()),
                static_cast<unsigned long long>(s["op"].as_u64()),
                hold_line(s["hold"]).c_str(), s["ready"].as_bool() ? "READY" : "held",
                format_age(s["age_us"].as_u64()).c_str());
  }
  const JsonValue& wd = v["watchdog"];
  std::printf("watchdog: %s  flagged %llu call(s) / %llu entr(ies)\n",
              wd["running"].as_bool() ? "running" : "stopped",
              static_cast<unsigned long long>(wd["flagged_calls"].as_u64()),
              static_cast<unsigned long long>(wd["flagged_entries"].as_u64()));
  return 0;
}

// ---- watch mode ----

/// Flattens numeric leaves of a metrics.json document to dotted paths.
void flatten(const JsonValue& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  if (v.is_number()) {
    out[prefix] = v.as_double();
  } else if (v.is_object()) {
    for (const auto& [key, child] : v.as_object()) {
      flatten(child, prefix.empty() ? key : prefix + "." + key, out);
    }
  }
}

int watch(const Cli& cli) {
  std::map<std::string, double> prev;
  bool have_prev = false;
  for (int poll = 0; cli.count == 0 || poll < cli.count; ++poll) {
    std::string error;
    const auto body = http_get(cli.host, cli.port, "/metrics.json", &error);
    if (!body) {
      std::fprintf(stderr, "ugrpcstat: %s\n", error.c_str());
      return 2;
    }
    const auto doc = json_parse(*body, &error);
    if (!doc) {
      std::fprintf(stderr, "ugrpcstat: bad metrics document: %s\n", error.c_str());
      return 2;
    }
    std::map<std::string, double> cur;
    flatten(*doc, "", cur);
    if (!have_prev) {
      std::printf("%-44s %14s %10s\n", "metric", "value", "delta");
      for (const auto& [name, value] : cur) std::printf("%-44s %14.0f\n", name.c_str(), value);
    } else {
      bool any = false;
      for (const auto& [name, value] : cur) {
        const auto it = prev.find(name);
        const double delta = it == prev.end() ? value : value - it->second;
        if (delta == 0) continue;
        any = true;
        std::printf("%-44s %14.0f %+10.0f\n", name.c_str(), value, delta);
      }
      if (!any) std::printf("(no change)\n");
    }
    std::printf("\n");
    std::fflush(stdout);
    prev = std::move(cur);
    have_prev = true;
    if (cli.count == 0 || poll + 1 < cli.count) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(cli.watch_sec * 1e6)));
    }
  }
  return 0;
}

// ---- flight-dump checking ----

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int check_flight(const std::string& dir) {
  const auto manifest_text = read_file(dir + "/MANIFEST.json");
  if (!manifest_text) {
    std::fprintf(stderr, "ugrpcstat: cannot read %s/MANIFEST.json\n", dir.c_str());
    return 1;
  }
  std::string error;
  const auto manifest = json_parse(*manifest_text, &error);
  if (!manifest) {
    std::fprintf(stderr, "ugrpcstat: bad MANIFEST.json: %s\n", error.c_str());
    return 1;
  }
  std::printf("flight dump %s\n", dir.c_str());
  std::printf("  reason: %s\n", (*manifest)["reason"].as_string().c_str());
  std::printf("  stamp:  %s (seq %llu)\n", (*manifest)["stamp_utc"].as_string().c_str(),
              static_cast<unsigned long long>((*manifest)["seq"].as_u64()));
  if ((*manifest)["config"].is_string()) {
    std::printf("  config: %s\n", (*manifest)["config"].as_string().c_str());
  }

  const auto trace_text = read_file(dir + "/trace.json");
  if (!trace_text) {
    std::fprintf(stderr, "ugrpcstat: cannot read %s/trace.json\n", dir.c_str());
    return 1;
  }
  const auto loaded = ugrpc::obs::live::load_trace_json(*trace_text, &error);
  if (!loaded) {
    std::fprintf(stderr, "ugrpcstat: bad trace.json: %s\n", error.c_str());
    return 1;
  }
  if (loaded->unknown_kinds > 0) {
    std::printf("  note: skipped %llu event(s) of unknown kind\n",
                static_cast<unsigned long long>(loaded->unknown_kinds));
  }

  // The manifest records the Expect derived from the dumping site's Config,
  // so the dump is checkable without access to that process.
  ugrpc::obs::Expect expect;
  const JsonValue& e = (*manifest)["expect"];
  if (e.is_object()) {
    expect.unique_execution = e["unique_execution"].as_bool();
    expect.atomic_execution = e["atomic_execution"].as_bool();
    if (e["termination_bound_us"].is_number()) {
      expect.termination_bound = e["termination_bound_us"].as_i64();
    }
    expect.termination_slack = e["termination_slack_us"].as_i64(expect.termination_slack);
    expect.fifo_order = e["fifo_order"].as_bool();
    expect.total_order = e["total_order"].as_bool();
    expect.terminate_orphans = e["terminate_orphans"].as_bool();
  } else {
    std::printf("  note: manifest has no \"expect\" -- evidence counters only\n");
  }

  const ugrpc::obs::Report report = ugrpc::obs::check(loaded->events, expect);
  const ugrpc::obs::Summary& s = report.summary;
  std::printf("  trace: %zu event(s); %llu issued, %llu completed (%llu ok / %llu timeout), "
              "%llu exec(s) committed, %llu retransmission(s)\n",
              loaded->events.size(), static_cast<unsigned long long>(s.calls_issued),
              static_cast<unsigned long long>(s.calls_completed),
              static_cast<unsigned long long>(s.calls_ok),
              static_cast<unsigned long long>(s.calls_timeout),
              static_cast<unsigned long long>(s.execs_committed),
              static_cast<unsigned long long>(s.retransmissions));
  std::printf("  check: %s\n", report.brief().c_str());
  for (const auto& violation : report.violations) {
    std::printf("    [%s] site %u call %llu t=%lld: %s\n",
                std::string(to_string(violation.invariant)).c_str(), violation.site.value(),
                static_cast<unsigned long long>(violation.call),
                static_cast<long long>(violation.time), violation.detail.c_str());
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_cli(argc, argv, cli)) {
    usage(stderr);
    return 2;
  }
  if (!cli.check_flight.empty()) return check_flight(cli.check_flight);
  if (cli.watch_sec > 0) return watch(cli);

  std::string error;
  const std::string path = cli.metrics ? "/metrics" : "/introspect";
  const auto body = http_get(cli.host, cli.port, path, &error);
  if (!body) {
    std::fprintf(stderr, "ugrpcstat: %s\n", error.c_str());
    return 2;
  }
  if (cli.metrics || cli.json) {
    std::fwrite(body->data(), 1, body->size(), stdout);
    if (body->empty() || body->back() != '\n') std::printf("\n");
    return 0;
  }
  return print_introspection(*body);
}
