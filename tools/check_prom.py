#!/usr/bin/env python3
"""Validator for Prometheus text exposition format 0.0.4.

Usage:
    check_prom.py METRICS.txt [--require NAME]... [--require-prefix P]

Validates the output of obs::live::render_prometheus / a /metrics scrape
(pass ``-`` to read stdin, so CI can pipe curl straight in):

  * every line is a comment (``# HELP``/``# TYPE``/other), a sample, or blank
  * metric and label names match the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*`` / ``[a-zA-Z_][a-zA-Z0-9_]*``)
  * label values use only the three legal escapes (``\\\\``, ``\\"``, ``\\n``)
  * sample values parse as floats (``NaN``/``+Inf``/``-Inf`` allowed)
  * at most one ``# TYPE`` per metric family, declared before its samples,
    with a known type; samples never interleave between families
  * counter and histogram samples are non-negative
  * histogram families are complete and coherent: ``_bucket`` series carry
    ``le``, bucket counts are cumulative (non-decreasing with ``le``), the
    last bucket is ``le="+Inf"``, and ``_count`` equals the +Inf bucket
  * no duplicate sample (same name + label set)

``--require NAME`` (repeatable) asserts a family is present -- the CI smoke
job requires the SiteStats counters it knows the run must have produced.
``--require-prefix P`` asserts every sample name starts with P.

Exits 0 when the exposition passes, 1 on violations, 2 on usage/file errors.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
VALUE_RE = re.compile(r"[+-]?(?:Inf|NaN|nan|[0-9.eE+-]+)$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(text, err):
    """Parses ``{name="value",...}``; returns a sorted tuple of pairs."""
    labels = []
    pos = 0
    while pos < len(text):
        m = LABEL_NAME_RE.match(text, pos)
        if not m:
            err(f"bad label name at ...{text[pos:pos + 20]!r}")
            return None
        name = m.group(0)
        pos = m.end()
        if text[pos:pos + 2] != '="':
            err(f"label {name}: expected =\"")
            return None
        pos += 2
        value = []
        while pos < len(text) and text[pos] != '"':
            ch = text[pos]
            if ch == "\\":
                esc = text[pos:pos + 2]
                if esc not in ('\\\\', '\\"', "\\n"):
                    err(f"label {name}: illegal escape {esc!r}")
                    return None
                value.append(esc)
                pos += 2
            else:
                value.append(ch)
                pos += 1
        if pos >= len(text):
            err(f"label {name}: unterminated value")
            return None
        pos += 1  # closing quote
        labels.append((name, "".join(value)))
        if pos < len(text) and text[pos] == ",":
            pos += 1
    return tuple(sorted(labels))


def parse_float(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def family_of(name):
    """Maps a sample name to its family (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics")
    parser.add_argument("--require", action="append", default=[],
                        help="metric family that must be present (repeatable)")
    parser.add_argument("--require-prefix", default=None,
                        help="every sample name must start with this")
    args = parser.parse_args()

    try:
        if args.metrics == "-":
            text = sys.stdin.read()
        else:
            with open(args.metrics) as f:
                text = f.read()
    except OSError as e:
        print(f"check_prom: {e}", file=sys.stderr)
        return 2

    errors = []

    def err(msg):
        if len(errors) < 20:
            errors.append(msg)

    types = {}            # family -> declared type
    family_done = set()   # families whose sample block has ended
    seen = set()          # (name, labels) sample identities
    samples = []          # (lineno, name, labels, value)
    current_family = None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family, mtype = parts[2], parts[3] if len(parts) > 3 else ""
                if not NAME_RE.fullmatch(family):
                    err(f"line {lineno}: bad metric name {family!r}")
                if mtype not in KNOWN_TYPES:
                    err(f"line {lineno}: unknown type {mtype!r}")
                if family in types:
                    err(f"line {lineno}: duplicate TYPE for {family}")
                if family in family_done:
                    err(f"line {lineno}: TYPE for {family} after its samples")
                types[family] = mtype
            continue
        # Sample line: name[{labels}] value [timestamp]
        m = NAME_RE.match(line)
        if not m:
            err(f"line {lineno}: bad sample name")
            continue
        name = m.group(0)
        rest = line[m.end():]
        labels = ()
        if rest.startswith("{"):
            close = rest.find("}")
            if close < 0:
                err(f"line {lineno}: unterminated label set")
                continue
            labels = parse_labels(rest[1:close],
                                  lambda msg: err(f"line {lineno}: {msg}"))
            if labels is None:
                continue
            rest = rest[close + 1:]
        fields = rest.split()
        if len(fields) not in (1, 2):
            err(f"line {lineno}: expected value [timestamp]")
            continue
        if not VALUE_RE.fullmatch(fields[0]):
            err(f"line {lineno}: bad value {fields[0]!r}")
            continue
        value = parse_float(fields[0])
        if value is None:
            err(f"line {lineno}: unparseable value {fields[0]!r}")
            continue
        if len(fields) == 2 and not re.fullmatch(r"-?[0-9]+", fields[1]):
            err(f"line {lineno}: bad timestamp {fields[1]!r}")

        family = family_of(name)
        if family not in types:
            err(f"line {lineno}: sample {name} before any TYPE for {family}")
        if family != current_family:
            if family in family_done:
                err(f"line {lineno}: samples of {family} interleaved with "
                    "another family")
            if current_family is not None:
                family_done.add(current_family)
            current_family = family
        if (name, labels) in seen:
            err(f"line {lineno}: duplicate sample {name}{dict(labels)}")
        seen.add((name, labels))
        if types.get(family) in ("counter", "histogram") and value < 0:
            err(f"line {lineno}: negative {types[family]} sample {name}")
        if args.require_prefix and not name.startswith(args.require_prefix):
            err(f"line {lineno}: {name} lacks prefix {args.require_prefix!r}")
        samples.append((lineno, name, labels, value))

    # Histogram coherence per family (+ per non-le label subset).
    for family, mtype in types.items():
        if mtype != "histogram":
            continue
        buckets = {}   # non-le labels -> [(le, value, lineno)]
        counts = {}    # non-le labels -> value
        for lineno, name, labels, value in samples:
            if family_of(name) != family:
                continue
            base = tuple(kv for kv in labels if kv[0] != "le")
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    err(f"line {lineno}: {name} without le label")
                    continue
                le_value = parse_float(le)
                if le_value is None:
                    err(f"line {lineno}: {name} bad le {le!r}")
                    continue
                buckets.setdefault(base, []).append((le_value, value, lineno))
            elif name.endswith("_count"):
                counts[base] = value
        for base, series in buckets.items():
            prev_count = -1.0
            for le_value, value, lineno in series:  # emitted in le order
                if value < prev_count:
                    err(f"line {lineno}: {family}_bucket not cumulative "
                        f"at le={le_value}")
                prev_count = value
            if series[-1][0] != float("inf"):
                err(f"{family}: last bucket is le={series[-1][0]}, "
                    "not +Inf")
            elif base in counts and counts[base] != series[-1][1]:
                err(f"{family}: _count {counts[base]} != +Inf bucket "
                    f"{series[-1][1]}")

    present = {family_of(name) for _, name, _, _ in samples}
    for family in args.require:
        if family not in present:
            err(f"required metric family {family!r} not found")

    if errors:
        for msg in errors:
            print(f"check_prom: {msg}", file=sys.stderr)
        print(f"check_prom: FAIL ({len(errors)}+ issue(s), "
              f"{len(samples)} samples)", file=sys.stderr)
        return 1
    n_hist = sum(1 for t in types.values() if t == "histogram")
    print(f"check_prom: OK -- {len(samples)} samples in {len(present)} "
          f"families ({n_hist} histogram(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
