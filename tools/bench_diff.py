#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT] [--advisory]
                  [--github-summary]

Walks both JSON trees and compares every numeric metric present in both
(matched by path).  A metric's direction is inferred from its key name:
latency-style keys (``*_ns``, ``*_us``, ``*_ms``, ``p50``/``p95``/``p99``,
``*_max``, ``*_total``) regress when they grow, throughput-style keys
(``*per_sec``) regress when they shrink.  Keys that describe the run rather
than measure it (seed, date, environment, counts -- including workload-scale
counts like ``ok`` -- span/trace ids) are ignored, so runs of different
lengths stay comparable on their rates and percentiles.

Exits 1 when any metric regressed by more than ``--threshold`` percent
(default 20), unless ``--advisory`` is given, in which case regressions are
reported but the exit status is 0.  Exits 2 on usage or file errors.

Bench numbers from shared CI runners are noisy; the default threshold is
deliberately loose, and the CI wiring runs in advisory mode.  The tool's
value is the printed table -- a reviewer sees at a glance which metric moved.
``--github-summary`` additionally appends the table as GitHub-flavored
markdown to ``$GITHUB_STEP_SUMMARY`` (stdout when unset), so the diff shows
up on the job's summary page without digging through the log.
"""

import argparse
import json
import os
import sys

# Subtrees that describe the run, not measure it.
SKIP_KEYS = {"environment", "description", "command", "date", "seed", "calls",
             "units", "bench", "config"}

LOWER_BETTER_SUFFIXES = ("_ns", "_us", "_ms", "_max", "_total", "_p50", "_p95",
                         "_p99", "p50", "p95", "p99")
HIGHER_BETTER_SUFFIXES = ("per_sec",)
HIGHER_BETTER_KEYS = {"improvement_pct"}
# "ok" is a success *count*: it scales with the workload length, so comparing
# it across runs of different --calls would always cry wolf.
IGNORED_LEAVES = {"count", "ok", "span", "parent", "trace", "host_cpus",
                  "mhz_per_cpu"}


def classify(key):
    """Returns 'lower', 'higher', or None (not a metric)."""
    if key in IGNORED_LEAVES:
        return None
    if key in HIGHER_BETTER_KEYS or key.endswith(HIGHER_BETTER_SUFFIXES):
        return "higher"
    if key.endswith(LOWER_BETTER_SUFFIXES):
        return "lower"
    return None


def walk(node, path, out):
    if isinstance(node, dict):
        for key, value in node.items():
            if key in SKIP_KEYS:
                continue
            walk(value, path + (key,), out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        direction = classify(path[-1]) if path else None
        if direction is not None:
            out[path] = (float(node), direction)


def write_github_summary(rows, threshold, advisory):
    """Appends the diff as a markdown table to $GITHUB_STEP_SUMMARY."""
    n_regressed = sum(1 for r in rows if r[4])
    lines = ["### Bench diff vs committed baseline", ""]
    if n_regressed:
        mode = "advisory" if advisory else "enforced"
        lines.append(f"**{n_regressed} metric(s) beyond {threshold:.0f}% "
                     f"({mode})**")
    else:
        lines.append(f"No regressions beyond {threshold:.0f}% "
                     f"({len(rows)} metrics compared).")
    lines += ["", "| metric | baseline | current | delta | |",
              "|---|---:|---:|---:|---|"]
    # Full tables drown the summary page: show regressions plus the biggest
    # movers, cap the row count.
    shown = sorted(rows, key=lambda r: (not r[4], -abs(r[3])))[:25]
    for name, base, cur, delta_pct, worse in sorted(shown):
        flag = ":warning:" if worse else ""
        lines.append(f"| `{name}` | {base:.1f} | {cur:.1f} "
                     f"| {delta_pct:+.1f}% | {flag} |")
    if len(rows) > len(shown):
        lines.append(f"\n({len(rows) - len(shown)} additional metric(s) "
                     "within threshold; full table in the job log.)")
    text = "\n".join(lines) + "\n"
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a") as f:
            f.write(text)
    else:
        print(text)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    parser.add_argument("--advisory", action="store_true",
                        help="report regressions but always exit 0")
    parser.add_argument("--github-summary", action="store_true",
                        help="append a markdown table to $GITHUB_STEP_SUMMARY")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    base_metrics, cur_metrics = {}, {}
    walk(baseline, (), base_metrics)
    walk(current, (), cur_metrics)

    common = sorted(set(base_metrics) & set(cur_metrics))
    if not common:
        print("bench_diff: no comparable metrics found", file=sys.stderr)
        return 2

    regressions = []
    rows = []  # (name, base, cur, delta_pct, worse)
    print(f"{'metric':60s} {'baseline':>12s} {'current':>12s} {'delta':>9s}")
    for path in common:
        base, direction = base_metrics[path]
        cur, _ = cur_metrics[path]
        if base == 0:
            delta_pct = 0.0 if cur == 0 else float("inf")
        else:
            delta_pct = (cur - base) / base * 100.0
        worse = delta_pct > args.threshold if direction == "lower" \
            else delta_pct < -args.threshold
        name = ".".join(path)
        mark = "  << REGRESSION" if worse else ""
        print(f"{name:60s} {base:12.1f} {cur:12.1f} {delta_pct:+8.1f}%{mark}")
        rows.append((name, base, cur, delta_pct, worse))
        if worse:
            regressions.append(name)

    if args.github_summary:
        write_github_summary(rows, args.threshold, advisory=args.advisory)

    only_base = set(base_metrics) - set(cur_metrics)
    only_cur = set(cur_metrics) - set(base_metrics)
    if only_base:
        print(f"note: {len(only_base)} metric(s) only in baseline")
    if only_cur:
        print(f"note: {len(only_cur)} metric(s) only in current")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%", file=sys.stderr)
        return 0 if args.advisory else 1
    print(f"\nbench_diff: no regressions beyond {args.threshold:.0f}% "
          f"({len(common)} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
