#!/usr/bin/env python3
"""Schema check for exported Perfetto/Chrome trace_event JSON.

Usage:
    check_perfetto.py TRACE.json [--min-processes N] [--require-flagged]
                      [--partial]

Validates the structural contract of obs::export_perfetto / the merged
output of examples/udp_group_call --trace-out:

  * top level is an object with a ``traceEvents`` list
  * every event has ``ph``; ``X`` events carry name/pid/tid plus numeric
    ``ts``/``dur`` and args with integer span/parent/trace ids
  * span ids are unique across the whole (merged, multi-process) trace
  * every non-zero parent id resolves to a span in the trace (a dangling
    parent means a fragment is missing from the merge)
  * flow events (``s``/``f``) carry an id; each ``f`` has bp == "e"
  * every pid with spans has an ``M`` process_name metadata record

Options assert distribution facts the CI smoke run expects:
``--min-processes N`` requires spans from at least N distinct pids and at
least one trace id whose spans cover N pids (a genuinely distributed span
tree, not N disjoint ones); ``--require-flagged`` requires at least one
flagged span (the forced-retransmission demo marks the dropped send).
``--partial`` accepts dangling parent ids: a flight-recorder dump is taken
mid-run, so a closed span's parent may still have been open (hence absent)
at dump time.

Exits 0 when the trace passes, 1 on violations, 2 on usage/file errors.
"""

import argparse
import collections
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace")
    parser.add_argument("--min-processes", type=int, default=1)
    parser.add_argument("--require-flagged", action="store_true")
    parser.add_argument("--partial", action="store_true",
                        help="tolerate parents missing from the trace "
                             "(mid-run flight dump)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perfetto: {e}", file=sys.stderr)
        return 2

    errors = []

    def err(msg):
        if len(errors) < 20:
            errors.append(msg)

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print("check_perfetto: top level must be an object with a "
              "'traceEvents' list", file=sys.stderr)
        return 1
    events = doc["traceEvents"]

    span_ids = set()
    parents = []           # (parent_id, event_name)
    pids_with_spans = set()
    pids_named = set()
    traces = collections.defaultdict(set)  # trace id -> pids
    flagged = 0

    for i, e in enumerate(events):
        if not isinstance(e, dict) or "ph" not in e:
            err(f"event {i}: not an object with 'ph'")
            continue
        ph = e["ph"]
        if ph == "M":
            if e.get("name") == "process_name":
                if not isinstance(e.get("args", {}).get("name"), str):
                    err(f"event {i}: process_name without args.name")
                pids_named.add(e.get("pid"))
        elif ph == "X":
            for field in ("name", "pid", "tid", "ts", "dur"):
                if field not in e:
                    err(f"event {i}: X event missing '{field}'")
            for field in ("ts", "dur"):
                try:
                    float(e.get(field, "x"))
                except (TypeError, ValueError):
                    err(f"event {i}: X event '{field}' not numeric")
            a = e.get("args", {})
            for field in ("span", "parent", "trace"):
                if not isinstance(a.get(field), int):
                    err(f"event {i}: X event args.{field} not an integer")
            span = a.get("span")
            if isinstance(span, int):
                if span in span_ids:
                    err(f"event {i}: duplicate span id {span}")
                span_ids.add(span)
            if isinstance(a.get("parent"), int) and a["parent"] != 0:
                parents.append((a["parent"], e.get("name")))
            if isinstance(a.get("trace"), int) and a["trace"] != 0:
                traces[a["trace"]].add(e.get("pid"))
            if a.get("flagged"):
                flagged += 1
            pids_with_spans.add(e.get("pid"))
        elif ph in ("s", "f"):
            if "id" not in e:
                err(f"event {i}: flow event missing 'id'")
            if ph == "f" and e.get("bp") != "e":
                err(f"event {i}: flow-end without bp='e'")
        # other phases are legal trace_event content; nothing to check

    dangling = 0
    for parent, name in parents:
        if parent not in span_ids:
            if args.partial:
                dangling += 1
            else:
                err(f"span '{name}': parent {parent} not in trace "
                    "(missing fragment?)")

    unnamed = pids_with_spans - pids_named
    if unnamed:
        err(f"pids without process_name metadata: {sorted(unnamed)}")

    if len(pids_with_spans) < args.min_processes:
        err(f"spans cover {len(pids_with_spans)} process(es), "
            f"need >= {args.min_processes}")
    if args.min_processes > 1:
        widest = max((len(p) for p in traces.values()), default=0)
        if widest < args.min_processes:
            err(f"widest span tree covers {widest} process(es), "
                f"need one covering >= {args.min_processes}")
    if args.require_flagged and flagged == 0:
        err("no flagged span (expected the forced-retransmission drop)")

    n_spans = sum(1 for e in events if isinstance(e, dict) and e.get("ph") == "X")
    if errors:
        for msg in errors:
            print(f"check_perfetto: {msg}", file=sys.stderr)
        print(f"check_perfetto: FAIL ({len(errors)}+ issue(s), {n_spans} spans)",
              file=sys.stderr)
        return 1
    note = f", {dangling} dangling parent(s) tolerated" if dangling else ""
    print(f"check_perfetto: OK -- {n_spans} spans across "
          f"{len(pids_with_spans)} process(es), {len(traces)} trace(s), "
          f"{flagged} flagged{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
