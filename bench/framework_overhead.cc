// Experiment B-overhead (DESIGN.md) -- the cost of the event-driven
// framework, measured with google-benchmark on real (wall-clock) time.
//
// The follow-on work to this paper (Cactus; "Experience with modularity in
// Consul") evaluates exactly this: what does decomposing a protocol into
// micro-protocols cost per event?  We measure:
//
//   * EventDispatch/N      -- triggering one event with N registered
//                             handlers (framework dispatch + priority chain)
//   * TimeoutRegistration  -- arming + cancelling a TIMEOUT registration
//   * FullCall/<config>    -- one complete simulated group RPC (client call
//                             through 3 servers to completion) for a minimal
//                             configuration vs a fully loaded one; the gap is
//                             the price of the added micro-protocols
//   * CodecNetMessage      -- encode+decode of a wire message
//   * EventDispatch_Spans/N -- the same dispatch with span tracing attached;
//                             the delta against EventDispatch/N is the
//                             enabled-path cost of the profiler itself
//
// With `--out PATH` the binary additionally runs the fully loaded
// configuration under span tracing and emits a per-handler cost breakdown
// (obs::Profile) -- the framework-level companion to modularity_tax's
// per-preset BENCH_attribution.json.
//
//   usage: framework_overhead [--seed N] [--calls N] [--out PATH]
//                             [google-benchmark flags...]
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "attribution.h"
#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "net/message.h"
#include "net/sim_transport.h"
#include "obs/trace.h"
#include "runtime/framework.h"

namespace {

using namespace ugrpc;

constexpr runtime::EventId kEvent{1};

void BM_EventDispatch(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  runtime::Framework fw(transport, DomainId{1});
  const int handlers = static_cast<int>(state.range(0));
  for (int i = 0; i < handlers; ++i) {
    fw.register_handler(kEvent, "h" + std::to_string(i), i,
                        [](runtime::EventContext&) -> sim::Task<> { co_return; });
  }
  int arg = 0;
  for (auto _ : state) {
    sched.spawn([](runtime::Framework& f, int& a) -> sim::Task<> {
      co_await f.trigger(kEvent, runtime::EventArg::ref(a));
    }(fw, arg));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * handlers);
}
BENCHMARK(BM_EventDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Same dispatch with a SiteTrace attached: every trigger opens an event-chain
// span plus one span per handler.  The ratio to BM_EventDispatch/N is the
// enabled-path cost of the profiler (the disabled path is a null check and is
// covered by BM_EventDispatch itself).
void BM_EventDispatch_Spans(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  obs::Tracer tracer(std::size_t{1} << 16);
  runtime::Framework fw(transport, DomainId{1});
  fw.set_site_trace(&tracer.site(ProcessId{1}));
  const int handlers = static_cast<int>(state.range(0));
  for (int i = 0; i < handlers; ++i) {
    fw.register_handler(kEvent, "h" + std::to_string(i), i,
                        [](runtime::EventContext&) -> sim::Task<> { co_return; });
  }
  // Drain the span buffer before the per-site budget fills, outside the
  // timed region; otherwise later iterations measure the exhausted path.
  const int drain_every = (1 << 15) / (handlers + 1);
  int since_drain = 0;
  int arg = 0;
  for (auto _ : state) {
    if (++since_drain >= drain_every) {
      state.PauseTiming();
      tracer.clear();
      since_drain = 0;
      state.ResumeTiming();
    }
    sched.spawn([](runtime::Framework& f, int& a) -> sim::Task<> {
      co_await f.trigger(kEvent, runtime::EventArg::ref(a));
    }(fw, arg));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * handlers);
}
BENCHMARK(BM_EventDispatch_Spans)->Arg(1)->Arg(4)->Arg(16);

void BM_TimeoutRegistration(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  runtime::Framework fw(transport, DomainId{1});
  for (auto _ : state) {
    TimerId id = fw.register_timeout("t", sim::seconds(10), []() -> sim::Task<> { co_return; });
    fw.cancel_timeout(id);
  }
}
BENCHMARK(BM_TimeoutRegistration);

core::Config minimal_config() {
  core::Config c;
  c.acceptance_limit = 1;
  return c;
}

core::Config loaded_config() {
  core::Config c;
  c.acceptance_limit = core::kAll;
  c.reliable_communication = true;
  c.unique_execution = true;
  c.ordering = core::Ordering::kTotal;
  c.execution = core::ExecutionMode::kSerial;
  c.orphan = core::OrphanHandling::kInterferenceAvoidance;
  return c;
}

void run_full_call(benchmark::State& state, core::Config config) {
  core::ScenarioParams p;
  p.num_servers = 3;
  p.config = std::move(config);
  core::Scenario s(std::move(p));
  for (auto _ : state) {
    core::CallResult result;
    s.run_client(0, [&](core::Client& c) -> sim::Task<> {
      result = co_await c.call(s.group(), OpId{1}, Buffer{});
    });
    benchmark::DoNotOptimize(result.status);
  }
}

void BM_FullCall_Minimal(benchmark::State& state) { run_full_call(state, minimal_config()); }
BENCHMARK(BM_FullCall_Minimal);

void BM_FullCall_FullyLoaded(benchmark::State& state) { run_full_call(state, loaded_config()); }
BENCHMARK(BM_FullCall_FullyLoaded);

void BM_CodecNetMessage(benchmark::State& state) {
  net::NetMessage msg;
  msg.type = net::MsgType::kCall;
  msg.id = CallId{123456};
  msg.op = OpId{7};
  Writer(msg.args).str("some moderately sized argument payload for the call");
  msg.server = GroupId{1};
  msg.sender = ProcessId{9};
  for (auto _ : state) {
    const Buffer wire = msg.encode();
    const net::NetMessage decoded = net::NetMessage::decode(wire);
    benchmark::DoNotOptimize(decoded.id);
  }
}
BENCHMARK(BM_CodecNetMessage);

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 21;
  int calls = 400;
  std::string out;  // no attribution artifact unless asked
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--seed" && has_value && ugrpc::bench::parse_u64(argv[i + 1], seed)) {
      ++i;
    } else if (arg == "--calls" && has_value && ugrpc::bench::parse_count(argv[i + 1], calls)) {
      ++i;
    } else if (arg == "--out" && has_value) {
      out = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  ugrpc::bench::warn_if_debug("framework_overhead");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (out.empty()) return 0;

  std::uint64_t dropped = 0;
  const obs::Profile prof = ugrpc::bench::profile_config(loaded_config(), calls, seed,
                                                         /*num_servers=*/3, &dropped);
  if (dropped != 0) {
    std::fprintf(stderr, "framework_overhead: %llu spans dropped -- attribution under-counts\n",
                 static_cast<unsigned long long>(dropped));
  }
  std::vector<std::pair<std::string, std::string>> sections;
  sections.emplace_back("fully_loaded", prof.to_json());
  if (!ugrpc::bench::write_attribution_json(
          out, "framework_overhead attribution",
          "Per-handler cost breakdown of the fully loaded configuration (3 servers, sequential "
          "simulated calls) from span tracing; companion to BENCH_attribution.json.",
          seed, calls, sections, "configs")) {
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
