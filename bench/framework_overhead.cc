// Experiment B-overhead (DESIGN.md) -- the cost of the event-driven
// framework, measured with google-benchmark on real (wall-clock) time.
//
// The follow-on work to this paper (Cactus; "Experience with modularity in
// Consul") evaluates exactly this: what does decomposing a protocol into
// micro-protocols cost per event?  We measure:
//
//   * EventDispatch/N      -- triggering one event with N registered
//                             handlers (framework dispatch + priority chain)
//   * TimeoutRegistration  -- arming + cancelling a TIMEOUT registration
//   * FullCall/<config>    -- one complete simulated group RPC (client call
//                             through 3 servers to completion) for a minimal
//                             configuration vs a fully loaded one; the gap is
//                             the price of the added micro-protocols
//   * CodecNetMessage      -- encode+decode of a wire message
#include <benchmark/benchmark.h>

#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "net/message.h"
#include "net/sim_transport.h"
#include "runtime/framework.h"

namespace {

using namespace ugrpc;

constexpr runtime::EventId kEvent{1};

void BM_EventDispatch(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  runtime::Framework fw(transport, DomainId{1});
  const int handlers = static_cast<int>(state.range(0));
  for (int i = 0; i < handlers; ++i) {
    fw.register_handler(kEvent, "h" + std::to_string(i), i,
                        [](runtime::EventContext&) -> sim::Task<> { co_return; });
  }
  int arg = 0;
  for (auto _ : state) {
    sched.spawn([](runtime::Framework& f, int& a) -> sim::Task<> {
      co_await f.trigger(kEvent, runtime::EventArg::ref(a));
    }(fw, arg));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * handlers);
}
BENCHMARK(BM_EventDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_TimeoutRegistration(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net{sched};
  net::SimTransport transport{net};
  runtime::Framework fw(transport, DomainId{1});
  for (auto _ : state) {
    TimerId id = fw.register_timeout("t", sim::seconds(10), []() -> sim::Task<> { co_return; });
    fw.cancel_timeout(id);
  }
}
BENCHMARK(BM_TimeoutRegistration);

core::Config minimal_config() {
  core::Config c;
  c.acceptance_limit = 1;
  return c;
}

core::Config loaded_config() {
  core::Config c;
  c.acceptance_limit = core::kAll;
  c.reliable_communication = true;
  c.unique_execution = true;
  c.ordering = core::Ordering::kTotal;
  c.execution = core::ExecutionMode::kSerial;
  c.orphan = core::OrphanHandling::kInterferenceAvoidance;
  return c;
}

void run_full_call(benchmark::State& state, core::Config config) {
  core::ScenarioParams p;
  p.num_servers = 3;
  p.config = std::move(config);
  core::Scenario s(std::move(p));
  for (auto _ : state) {
    core::CallResult result;
    s.run_client(0, [&](core::Client& c) -> sim::Task<> {
      result = co_await c.call(s.group(), OpId{1}, Buffer{});
    });
    benchmark::DoNotOptimize(result.status);
  }
}

void BM_FullCall_Minimal(benchmark::State& state) { run_full_call(state, minimal_config()); }
BENCHMARK(BM_FullCall_Minimal);

void BM_FullCall_FullyLoaded(benchmark::State& state) { run_full_call(state, loaded_config()); }
BENCHMARK(BM_FullCall_FullyLoaded);

void BM_CodecNetMessage(benchmark::State& state) {
  net::NetMessage msg;
  msg.type = net::MsgType::kCall;
  msg.id = CallId{123456};
  msg.op = OpId{7};
  Writer(msg.args).str("some moderately sized argument payload for the call");
  msg.server = GroupId{1};
  msg.sender = ProcessId{9};
  for (auto _ : state) {
    const Buffer wire = msg.encode();
    const net::NetMessage decoded = net::NetMessage::decode(wire);
    benchmark::DoNotOptimize(decoded.id);
  }
}
BENCHMARK(BM_CodecNetMessage);

}  // namespace

BENCHMARK_MAIN();
