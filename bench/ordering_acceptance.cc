// Experiments B-ordering and B-acceptance (DESIGN.md) -- latency shape of
// the ordering micro-protocols and of the acceptance policy.
//
// B-ordering: mean synchronous call latency vs group size for no ordering,
// FIFO order, and total order (acceptance=ALL so every member's execution is
// on the critical path).  Expected shape: none ~= fifo (no extra messages)
// < total (the leader's Order dissemination adds a one-way delay, growing
// slightly with group size).
//
// B-acceptance: mean call latency vs acceptance limit k for a group of 5
// with heterogeneous server speeds (server i thinks for 2*(i-1) ms).
// Expected shape: latency climbs from the fastest member's response time at
// k=1 to the slowest member's at k=5 -- the paper's section 5 motivation for
// configuring acceptance per application.
#include <cstdio>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

constexpr OpId kOp{1};
constexpr int kCalls = 40;

double mean_latency_ms(ScenarioParams params, int calls = kCalls) {
  Scenario s(std::move(params));
  double total_ms = 0;
  int completed = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) {
      const sim::Time t0 = s.scheduler().now();
      const CallResult r = co_await c.call(s.group(), kOp, Buffer{});
      if (r.ok()) {
        total_ms += sim::to_msec(s.scheduler().now() - t0);
        ++completed;
      }
    }
  }, sim::seconds(120));
  return completed > 0 ? total_ms / completed : -1.0;
}

Config ordered_config(Ordering ordering) {
  Config c;
  c.acceptance_limit = kAll;
  c.reliable_communication = true;
  c.retrans_timeout = sim::msec(100);
  if (ordering == Ordering::kTotal) c.unique_execution = true;
  c.ordering = ordering;
  return c;
}

void bench_ordering(std::uint64_t seed) {
  std::printf("--- B-ordering: call latency (ms) vs group size, acceptance=ALL ---\n");
  std::printf("%-12s", "group size");
  for (int n : {1, 2, 3, 5, 8}) std::printf("  n=%-6d", n);
  std::printf("\n");
  const Ordering kinds[] = {Ordering::kNone, Ordering::kFifo, Ordering::kTotal};
  for (Ordering ordering : kinds) {
    std::printf("%-12s", std::string(to_string(ordering)).c_str());
    for (int n : {1, 2, 3, 5, 8}) {
      ScenarioParams p;
      p.num_servers = n;
      p.config = ordered_config(ordering);
      p.seed = seed;
      std::printf("  %-8.3f", mean_latency_ms(std::move(p)));
    }
    std::printf("\n");
  }
  std::printf("expected shape: none ~= fifo < total (Order dissemination adds a hop)\n\n");
}

void bench_acceptance(std::uint64_t seed) {
  std::printf("--- B-acceptance: call latency (ms) vs acceptance limit, 5 servers ---\n");
  std::printf("(server i thinks 2*(i-1) ms: members answer after 0,2,4,6,8 ms)\n");
  std::printf("%-14s  %-12s\n", "acceptance k", "latency (ms)");
  for (int k : {1, 2, 3, 4, 5}) {
    ScenarioParams p;
    p.num_servers = 5;
    p.config.acceptance_limit = k;
    p.config.reliable_communication = true;
    p.seed = seed;
    p.server_app = [](UserProtocol& user, Site& site) {
      const sim::Duration think = sim::msec(2) * (site.id().value() - 1);
      user.set_procedure([&site, think](OpId, Buffer&) -> sim::Task<> {
        co_await site.scheduler().sleep_for(think);
      });
    };
    std::printf("k=%-12d  %-12.3f\n", k, mean_latency_ms(std::move(p)));
  }
  std::printf("expected shape: monotone climb from the fastest member's latency to the "
              "slowest member's\n");
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/5);
  std::printf("=== ordering & acceptance latency shapes ===\n(seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));
  bench_ordering(args.seed);
  bench_acceptance(args.seed);
  return 0;
}
