// Experiment B-transport -- what does the real network cost?
//
// The same exactly-once group RPC workload (one client, one server group,
// sequential calls) run twice:
//
//   sim : the deterministic simulated fabric (SimTransport), zero-delay
//         links -- measures pure stack overhead, no wire, no kernel
//   udp : two UdpTransports in this process (client and server sides, each
//         with its own sockets and executor) exchanging real datagrams over
//         127.0.0.1 -- adds wire framing, sendto/recv, poll wakeups
//
// Reported per backend: wall-clock calls/sec and per-call latency p50/p99
// (virtual microseconds for sim, real microseconds for udp).  Writes the
// JSON artifact consumed by BENCH_transport.json when --out is given.
//
//   usage: transport_loopback [--seed N] [--calls N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "core/config_builder.h"
#include "core/scenario.h"
#include "core/service.h"
#include "net/udp_transport.h"

namespace {

using namespace ugrpc;

constexpr GroupId kGroup{1};
constexpr OpId kOp{1};

struct Result {
  int ok = 0;
  double calls_per_sec = 0;  // wall clock
  sim::Duration p50 = 0;
  sim::Duration p99 = 0;
};

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

sim::Duration percentile(std::vector<sim::Duration> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

Result run_sim(std::uint64_t seed, int calls) {
  core::ScenarioParams p;
  p.num_servers = 1;
  p.config = core::ConfigBuilder::exactly_once().build();
  p.seed = seed;
  core::Scenario s(std::move(p));
  Result res;
  std::vector<sim::Duration> latencies;
  const auto t0 = std::chrono::steady_clock::now();
  s.run_client(0, [&](core::Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) {
      const sim::Time start = s.scheduler().now();
      const core::CallResult r = co_await c.call(s.group(), kOp, Buffer{});
      if (r.ok()) {
        ++res.ok;
        latencies.push_back(s.scheduler().now() - start);
      }
    }
  }, sim::seconds(600));
  const double wall = wall_seconds_since(t0);
  res.calls_per_sec = wall > 0 ? res.ok / wall : 0;
  res.p50 = percentile(latencies, 0.50);
  res.p99 = percentile(latencies, 0.99);
  return res;
}

Result run_udp(std::uint64_t seed, int calls) {
  // Two transports in one OS process: real sockets, real poll loops, the
  // client's and the server's stacks each on their own executor --
  // structurally the same as two processes, minus the fork.
  constexpr ProcessId kServer{1};
  constexpr ProcessId kClient{2};

  net::UdpTransport::Options server_opt;
  server_opt.seed = seed;
  net::UdpTransport server_t(server_opt);
  net::UdpTransport::Options client_opt;
  client_opt.seed = seed + 1;
  net::UdpTransport client_t(client_opt);

  const std::set<ProcessId> known{kServer, kClient};
  core::Site server(server_t, kServer, core::ConfigBuilder::exactly_once().build(), known);
  core::Site client(client_t, kClient, core::ConfigBuilder::exactly_once().build(), known);

  server_t.add_peer(kClient, "127.0.0.1", client_t.local_port(kClient));
  client_t.add_peer(kServer, "127.0.0.1", server_t.local_port(kServer));
  server_t.define_group(kGroup, {kServer});
  client_t.define_group(kGroup, {kServer});

  server.set_app([](core::UserProtocol& user, core::Site&) {
    user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });
  });
  server.boot();
  client.boot();
  core::Client handle(client);

  Result res;
  std::vector<sim::Duration> latencies;
  const FiberId fiber = client_t.spawn(
      [](core::Client& c, net::UdpTransport& t, int n, Result& out,
         std::vector<sim::Duration>& lat) -> sim::Task<> {
        for (int i = 0; i < n; ++i) {
          const sim::Time start = t.now();
          const core::CallResult r = co_await c.call(kGroup, kOp, Buffer{});
          if (r.ok()) {
            ++out.ok;
            lat.push_back(t.now() - start);
          }
        }
      }(handle, client_t, calls, res, latencies),
      client.domain());

  const auto t0 = std::chrono::steady_clock::now();
  const sim::Time stop_at = client_t.now() + sim::seconds(120);
  while (client_t.executor().fiber_alive(fiber) && client_t.now() < stop_at) {
    // Interleave the two event loops; zero-wait server poll keeps the
    // client's poll timeout the only pacing.
    client_t.poll_once(sim::usec(500));
    server_t.poll_once(0);
  }
  const double wall = wall_seconds_since(t0);
  res.calls_per_sec = wall > 0 ? res.ok / wall : 0;
  res.p50 = percentile(latencies, 0.50);
  res.p99 = percentile(latencies, 0.99);
  return res;
}

void print_backend(std::FILE* f, const char* name, const Result& r, int calls, bool last) {
  std::fprintf(f,
               "    \"%s\": {\"ok\": %d, \"calls\": %d, \"calls_per_sec\": %.0f, "
               "\"p50_us\": %lld, \"p99_us\": %lld}%s\n",
               name, r.ok, calls, r.calls_per_sec, static_cast<long long>(r.p50),
               static_cast<long long>(r.p99), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, /*default_seed=*/21,
                                             /*default_calls=*/2000);
  bench::warn_if_debug("transport_loopback");

  std::printf("=== B-transport: group call over sim vs UDP loopback ===\n");
  std::printf("(1 server, exactly-once, %d sequential calls, seed %llu)\n\n", args.calls,
              static_cast<unsigned long long>(args.seed));

  const Result sim_res = run_sim(args.seed, args.calls);
  const Result udp_res = run_udp(args.seed, args.calls);

  std::printf("%-6s | %8s | %12s | %10s | %10s\n", "mode", "ok", "calls/sec", "p50 us", "p99 us");
  std::printf("-------+----------+--------------+------------+-----------\n");
  std::printf("%-6s | %8d | %12.0f | %10lld | %10lld   (virtual latency)\n", "sim", sim_res.ok,
              sim_res.calls_per_sec, static_cast<long long>(sim_res.p50),
              static_cast<long long>(sim_res.p99));
  std::printf("%-6s | %8d | %12.0f | %10lld | %10lld   (real latency)\n", "udp", udp_res.ok,
              udp_res.calls_per_sec, static_cast<long long>(udp_res.p50),
              static_cast<long long>(udp_res.p99));

  if (!args.out.empty()) {
    std::FILE* f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"transport_loopback\",\n  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(args.seed));
    std::fprintf(f, "  \"environment\": %s,\n", bench::env_json().c_str());
    std::fprintf(f, "  \"config\": \"exactly_once, 1 server\",\n  \"backends\": {\n");
    print_backend(f, "sim", sim_res, args.calls, false);
    print_backend(f, "udp_loopback", udp_res, args.calls, true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", args.out.c_str());
  }

  const bool ok = sim_res.ok == args.calls && udp_res.ok == args.calls;
  if (!ok) std::fprintf(stderr, "transport_loopback: not every call completed\n");
  return ok ? 0 : 1;
}
