// Experiment Fig. 1 -- "Failure semantics as combinations of properties".
//
// The paper's Figure 1 is a table mapping the classic RPC failure semantics
// to combinations of the Unique Execution and Atomic Execution properties:
//
//                   unique execution   atomicity of procedure execution
//   At least once        NO                     NO
//   Exactly once         YES                    NO
//   At most once         YES                    YES
//
// This harness regenerates the table *with measured evidence*: it runs each
// of the three configurations through the same adversarial schedule --
// message duplication + loss (exercising uniqueness) and a server crash in
// the middle of a two-step stable-state update followed by recovery
// (exercising atomicity) -- and reports what was observed:
//
//   * dup executions: did any call execute more than once at the server?
//     (measured under duplication+loss, no crash)
//   * torn state: after a mid-call crash + recovery + retransmitted
//     completion, did the server's two-register invariant a == b break at
//     any observation point, i.e. was a partial execution ever visible?
//
// Expected shape: at-least-once shows dup executions and torn state;
// exactly-once shows neither duplicate executions while up, but torn state
// across the crash; at-most-once shows neither.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

constexpr OpId kTwoStep{1};

std::uint64_t read_var(storage::StableStore& store, const std::string& key) {
  auto v = store.get(key);
  return v.has_value() ? Reader(*v).u64() : 0;
}

void write_var(storage::StableStore& store, const std::string& key, std::uint64_t value) {
  Buffer b;
  Writer(b).u64(value);
  store.put(key, b);
}

/// Server app with stable state: increments register a, works 10ms,
/// increments register b.  Complete execution preserves a == b.
Site::AppSetup two_step_app() {
  return [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer& args) -> sim::Task<> {
      write_var(site.stable(), "a", read_var(site.stable(), "a") + 1);
      co_await site.scheduler().sleep_for(sim::msec(10));
      write_var(site.stable(), "b", read_var(site.stable(), "b") + 1);
      Buffer out;
      Writer(out).u64(read_var(site.stable(), "b"));
      args = out;
    });
    user.set_state_hooks(
        [&site]() {
          Buffer snap;
          Writer w(snap);
          w.u64(read_var(site.stable(), "a"));
          w.u64(read_var(site.stable(), "b"));
          return snap;
        },
        [&site](const Buffer& snap) {
          Reader r(snap);
          const std::uint64_t a = r.u64();
          const std::uint64_t b = r.u64();
          write_var(site.stable(), "a", a);
          write_var(site.stable(), "b", b);
        });
  };
}

struct SemanticsRow {
  const char* name;
  bool unique;
  bool atomic;
};

Config config_for(const SemanticsRow& row) {
  Config c;
  c.acceptance_limit = 1;
  c.reliable_communication = true;
  c.retrans_timeout = sim::msec(25);
  c.unique_execution = row.unique;
  c.execution = row.atomic ? ExecutionMode::kSerialAtomic : ExecutionMode::kSerial;
  c.termination_bound = sim::seconds(3);
  return c;
}

/// Phase 1: duplication + loss, no crash.  Returns executions beyond one
/// per call ("duplicate executions").
std::uint64_t measure_duplicates(const SemanticsRow& row, std::uint64_t seed) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = config_for(row);
  p.faults.dup_prob = 0.4;
  p.faults.drop_prob = 0.1;
  p.seed = seed;
  p.server_app = two_step_app();
  Scenario s(std::move(p));
  const int calls = 25;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) (void)co_await c.call(s.group(), kTwoStep, Buffer{});
  });
  s.run_for(sim::seconds(1));  // let straggler duplicates land
  const std::uint64_t execs = s.total_server_executions();
  return execs > static_cast<std::uint64_t>(calls) ? execs - calls : 0;
}

/// Phase 2: crash the server mid-call, recover, let retransmission finish
/// the call.  Returns whether the two-register invariant was ever torn
/// (checked right after the crash, before and after recovery completes).
bool measure_torn_state(const SemanticsRow& row, std::uint64_t seed) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = config_for(row);
  p.seed = seed + 101;  // distinct stream; default base 101 -> 202
  p.server_app = two_step_app();
  Scenario s(std::move(p));
  bool torn = false;
  const auto check = [&] {
    storage::StableStore& store = s.server(0).stable();
    if (read_var(store, "a") != read_var(store, "b")) torn = true;
  };
  // Crash 5ms into the 10ms a..b window of the first call.  Atomicity is
  // only promised at observation points after recovery (rollback happens in
  // the RECOVERY handler), so the checks run post-recovery and at the end.
  s.scheduler().schedule_after(sim::msec(6), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(60), [&] {
    s.server(0).recover();
    s.scheduler().schedule_after(sim::msec(1), check);  // after rollback
  });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kTwoStep, Buffer{});
  });
  s.run_for(sim::seconds(1));
  check();
  return torn;
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/101);
  std::printf("=== Figure 1: failure semantics as combinations of properties ===\n");
  std::printf("(workload: dup_prob=0.4 drop_prob=0.1 for uniqueness; mid-call crash+recovery "
              "for atomicity; seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));
  std::printf("%-15s | %-7s | %-7s | %-18s | %-14s\n", "semantics", "unique", "atomic",
              "dup executions", "torn state");
  std::printf("----------------+---------+---------+--------------------+---------------\n");
  const SemanticsRow rows[] = {
      {"at least once", false, false},
      {"exactly once", true, false},
      {"at most once", true, true},
  };
  for (const SemanticsRow& row : rows) {
    const std::uint64_t dups = measure_duplicates(row, args.seed);
    const bool torn = measure_torn_state(row, args.seed);
    std::printf("%-15s | %-7s | %-7s | %-18llu | %-14s\n", row.name, row.unique ? "YES" : "NO",
                row.atomic ? "YES" : "NO", static_cast<unsigned long long>(dups),
                torn ? "TORN" : "consistent");
  }
  std::printf("\npaper's table: at-least-once = {no,no}; exactly-once = {yes,no}; "
              "at-most-once = {yes,yes}\n");
  std::printf("expected shape: dup executions only without Unique Execution; torn state only "
              "without Atomic Execution\n");
  return 0;
}
