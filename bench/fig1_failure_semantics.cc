// Experiment Fig. 1 -- "Failure semantics as combinations of properties".
//
// The paper's Figure 1 is a table mapping the classic RPC failure semantics
// to combinations of the Unique Execution and Atomic Execution properties:
//
//                   unique execution   atomicity of procedure execution
//   At least once        NO                     NO
//   Exactly once         YES                    NO
//   At most once         YES                    YES
//
// This harness regenerates the table *with measured evidence*: it runs each
// of the three configurations through the same adversarial schedule --
// message duplication + loss (exercising uniqueness) and a server crash in
// the middle of a two-step stable-state update followed by recovery
// (exercising atomicity) -- with an obs::Tracer attached, and reports what
// the trace checker (obs::check) observed:
//
//   * dup executions: committed executions beyond one per (call, site),
//     counted from kExecCommitted trace events (Summary::duplicate_commits)
//     under duplication+loss, no crash;
//   * torn state: after a mid-call crash + recovery + retransmitted
//     completion, did the server's two-register invariant a == b break at
//     any observation point, i.e. was a partial execution ever visible?
//   * checker verdict: obs::check replays the merged trace of both phases
//     against the invariants the configuration promises
//     (core::expectations_from) -- PASS means zero violations.
//
// Expected shape: at-least-once shows dup executions and torn state yet
// PASSES (it promises neither property); exactly-once suppresses
// duplicates while up but tears across the crash; at-most-once shows
// neither.  All three rows must PASS: each configuration keeps exactly the
// promises it makes.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/observe.h"
#include "core/scenario.h"
#include "obs/checker.h"
#include "obs/trace.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

constexpr OpId kTwoStep{1};

std::uint64_t read_var(storage::StableStore& store, const std::string& key) {
  auto v = store.get(key);
  return v.has_value() ? Reader(*v).u64() : 0;
}

void write_var(storage::StableStore& store, const std::string& key, std::uint64_t value) {
  Buffer b;
  Writer(b).u64(value);
  store.put(key, b);
}

/// Server app with stable state: increments register a, works 10ms,
/// increments register b.  Complete execution preserves a == b.
Site::AppSetup two_step_app() {
  return [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer& args) -> sim::Task<> {
      write_var(site.stable(), "a", read_var(site.stable(), "a") + 1);
      co_await site.scheduler().sleep_for(sim::msec(10));
      write_var(site.stable(), "b", read_var(site.stable(), "b") + 1);
      Buffer out;
      Writer(out).u64(read_var(site.stable(), "b"));
      args = out;
    });
    user.set_state_hooks(
        [&site]() {
          Buffer snap;
          Writer w(snap);
          w.u64(read_var(site.stable(), "a"));
          w.u64(read_var(site.stable(), "b"));
          return snap;
        },
        [&site](const Buffer& snap) {
          Reader r(snap);
          const std::uint64_t a = r.u64();
          const std::uint64_t b = r.u64();
          write_var(site.stable(), "a", a);
          write_var(site.stable(), "b", b);
        });
  };
}

struct SemanticsRow {
  const char* name;
  bool unique;
  bool atomic;
};

Config config_for(const SemanticsRow& row) {
  Config c;
  c.acceptance_limit = 1;
  c.reliable_communication = true;
  c.retrans_timeout = sim::msec(25);
  c.unique_execution = row.unique;
  c.execution = row.atomic ? ExecutionMode::kSerialAtomic : ExecutionMode::kSerial;
  c.termination_bound = sim::seconds(3);
  return c;
}

struct RowEvidence {
  std::uint64_t dup_commits = 0;      ///< measured from the phase-1 trace
  std::uint64_t dups_suppressed = 0;  ///< Unique Execution's interceptions
  bool torn = false;                  ///< phase-2 register invariant broke
  std::uint64_t violations = 0;       ///< checker verdict over both phases
};

/// Phase 1: duplication + loss, no crash.  Records into `tracer`.
void run_duplicates_phase(const SemanticsRow& row, std::uint64_t seed, obs::Tracer& tracer) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = config_for(row);
  p.faults.dup_prob = 0.4;
  p.faults.drop_prob = 0.1;
  p.seed = seed;
  p.server_app = two_step_app();
  p.tracer = &tracer;
  Scenario s(std::move(p));
  const int calls = 25;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < calls; ++i) (void)co_await c.call(s.group(), kTwoStep, Buffer{});
  });
  s.run_for(sim::seconds(1));  // let straggler duplicates land
}

/// Phase 2: crash the server mid-call, recover, let retransmission finish
/// the call.  Returns whether the two-register invariant was ever torn
/// (checked right after recovery completes and at the end).
bool run_torn_state_phase(const SemanticsRow& row, std::uint64_t seed, obs::Tracer& tracer) {
  ScenarioParams p;
  p.num_servers = 1;
  p.config = config_for(row);
  p.seed = seed + 101;  // distinct stream; default base 101 -> 202
  p.server_app = two_step_app();
  p.tracer = &tracer;
  Scenario s(std::move(p));
  bool torn = false;
  const auto check = [&] {
    storage::StableStore& store = s.server(0).stable();
    if (read_var(store, "a") != read_var(store, "b")) torn = true;
  };
  // Crash 5ms into the 10ms a..b window of the first call.  Atomicity is
  // only promised at observation points after recovery (rollback happens in
  // the RECOVERY handler), so the checks run post-recovery and at the end.
  s.scheduler().schedule_after(sim::msec(6), [&] { s.server(0).crash(); });
  s.scheduler().schedule_after(sim::msec(60), [&] {
    s.server(0).recover();
    s.scheduler().schedule_after(sim::msec(1), check);  // after rollback
  });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    (void)co_await c.call(s.group(), kTwoStep, Buffer{});
  });
  s.run_for(sim::seconds(1));
  check();
  return torn;
}

RowEvidence measure(const SemanticsRow& row, std::uint64_t seed) {
  RowEvidence ev;
  const obs::Expect expect = expectations_from(config_for(row));

  // Phase 1 evidence comes from the trace, not hand counting: every server
  // commit is a kExecCommitted event, and Summary::duplicate_commits counts
  // the ones beyond the first per (call, site).
  obs::Tracer dup_trace(1 << 17);
  run_duplicates_phase(row, seed, dup_trace);
  const obs::Report dup_report = obs::check(dup_trace.merged(), expect);
  ev.dup_commits = dup_report.summary.duplicate_commits;
  ev.dups_suppressed = dup_report.summary.duplicates_suppressed;
  ev.violations += dup_report.violations.size();
  if (dup_trace.total_dropped() > 0) {
    std::fprintf(stderr, "warning: %s phase 1 dropped %llu trace events\n", row.name,
                 static_cast<unsigned long long>(dup_trace.total_dropped()));
  }

  // Phase 2: the torn-state probe reads stable storage directly (the trace
  // cannot see the registers), while the checker validates the crash story
  // -- rollback before any post-recovery commit, termination bounds held.
  obs::Tracer crash_trace(1 << 17);
  ev.torn = run_torn_state_phase(row, seed, crash_trace);
  const obs::Report crash_report = obs::check(crash_trace.merged(), expect);
  ev.violations += crash_report.violations.size();
  if (crash_trace.total_dropped() > 0) {
    std::fprintf(stderr, "warning: %s phase 2 dropped %llu trace events\n", row.name,
                 static_cast<unsigned long long>(crash_trace.total_dropped()));
  }
  return ev;
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/101);
  std::printf("=== Figure 1: failure semantics as combinations of properties ===\n");
  std::printf("(workload: dup_prob=0.4 drop_prob=0.1 for uniqueness; mid-call crash+recovery "
              "for atomicity; seed %llu)\n",
              static_cast<unsigned long long>(args.seed));
  std::printf("(dup executions / dup suppressed are measured by the trace checker from "
              "kExecCommitted / kDupSuppressed events;\n checker = obs::check of the merged "
              "trace against the invariants the configuration promises)\n\n");
  std::printf("%-15s | %-7s | %-7s | %-14s | %-14s | %-12s | %-8s\n", "semantics", "unique",
              "atomic", "dup executions", "dup suppressed", "torn state", "checker");
  std::printf("----------------+---------+---------+----------------+----------------+"
              "--------------+---------\n");
  const SemanticsRow rows[] = {
      {"at least once", false, false},
      {"exactly once", true, false},
      {"at most once", true, true},
  };
  bool all_pass = true;
  for (const SemanticsRow& row : rows) {
    const RowEvidence ev = measure(row, args.seed);
    if (ev.violations > 0) all_pass = false;
    const std::string verdict =
        ev.violations == 0 ? "PASS" : "FAIL(" + std::to_string(ev.violations) + ")";
    std::printf("%-15s | %-7s | %-7s | %-14llu | %-14llu | %-12s | %s\n", row.name,
                row.unique ? "YES" : "NO", row.atomic ? "YES" : "NO",
                static_cast<unsigned long long>(ev.dup_commits),
                static_cast<unsigned long long>(ev.dups_suppressed),
                ev.torn ? "TORN" : "consistent", verdict.c_str());
  }
  std::printf("\npaper's table: at-least-once = {no,no}; exactly-once = {yes,no}; "
              "at-most-once = {yes,yes}\n");
  std::printf("expected shape: dup executions only without Unique Execution; torn state only "
              "without Atomic Execution;\nevery row PASSes its checker -- each configuration "
              "keeps exactly the promises it makes\n");
  return all_pass ? 0 : 1;
}
