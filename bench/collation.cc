// Experiment B-collation (DESIGN.md) -- reply collation strategies.
//
// The paper fixes collation as a user-supplied fold.  This harness runs the
// same 5-way replicated call under four representative collation functions
// and reports the collated result and the call latency, demonstrating that
// the choice is orthogonal to the rest of the configuration (latency is set
// by the acceptance policy, not the fold):
//
//   last   -- the paper's identity fold ("return any reply")
//   max    -- pick the largest reply
//   sum    -- accumulate all replies
//   concat -- return all replies (paper: "return all replies")
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "stub/stub.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

constexpr OpId kOp{1};

/// Server i replies with its id.
Site::AppSetup id_app() {
  return [](UserProtocol& user, Site& site) {
    user.set_procedure([&site](OpId, Buffer& args) -> sim::Task<> {
      Buffer out;
      Writer(out).u64(site.id().value());
      args = out;
      co_return;
    });
  };
}

struct Strategy {
  const char* name;
  CollationFn fn;
  Buffer init;
  bool list_result;  // result decodes as a vector
};

Buffer num_buf(std::uint64_t v) {
  Buffer b;
  Writer(b).u64(v);
  return b;
}

std::vector<Strategy> strategies() {
  std::vector<Strategy> out;
  out.push_back({"last (paper's id fold)", last_reply_collation(), Buffer{}, false});
  out.push_back({"max",
                 [](const Buffer& acc, const Buffer& reply) {
                   return num_buf(std::max(Reader(acc).u64(), Reader(reply).u64()));
                 },
                 num_buf(0), false});
  out.push_back({"sum",
                 [](const Buffer& acc, const Buffer& reply) {
                   return num_buf(Reader(acc).u64() + Reader(reply).u64());
                 },
                 num_buf(0), false});
  auto [concat_fn, concat_init] = stub::typed_collation<std::vector<std::uint64_t>>(
      [](std::vector<std::uint64_t> acc, std::vector<std::uint64_t> reply) {
        acc.insert(acc.end(), reply.begin(), reply.end());
        return acc;
      },
      {});
  // Servers reply with a bare u64; wrap each into a one-element list first.
  CollationFn wrap_concat = [concat_fn](const Buffer& acc, const Buffer& reply) {
    return concat_fn(acc, stub::marshal(std::vector<std::uint64_t>{Reader(reply).u64()}));
  };
  out.push_back({"all (concatenate)", std::move(wrap_concat), std::move(concat_init), true});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/3);
  std::printf("=== B-collation: collation strategies over a 5-server group ===\n");
  std::printf("(servers reply with their id: 1..5; acceptance=ALL; seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));
  std::printf("%-24s | %-22s | %-12s\n", "strategy", "collated result", "latency (ms)");
  std::printf("-------------------------+------------------------+-------------\n");
  for (Strategy& strat : strategies()) {
    ScenarioParams p;
    p.num_servers = 5;
    p.config.acceptance_limit = kAll;
    p.config.collation = strat.fn;
    p.config.collation_init = strat.init;
    p.server_app = id_app();
    p.seed = args.seed;
    Scenario s(std::move(p));
    CallResult result;
    sim::Time t0 = 0;
    sim::Time t1 = 0;
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      t0 = s.scheduler().now();
      result = co_await c.call(s.group(), kOp, Buffer{});
      t1 = s.scheduler().now();
    });
    std::string shown;
    if (strat.list_result) {
      for (std::uint64_t v : stub::unmarshal<std::vector<std::uint64_t>>(result.result)) {
        shown += std::to_string(v) + " ";
      }
    } else {
      shown = std::to_string(Reader(result.result).u64());
    }
    std::printf("%-24s | %-22s | %-12.3f\n", strat.name, shown.c_str(),
                sim::to_msec(t1 - t0));
  }
  std::printf("\nexpected shape: identical latency across strategies (acceptance drives "
              "latency); results differ per fold\n");
  return 0;
}
