// Shared harness for the attribution benches (ISSUE 4 tentpole part 4).
//
// Runs a span-traced simulated workload and rolls the span trees into an
// obs::Profile, turning the paper's qualitative "cost of configurability"
// discussion into a measured per-micro-protocol table.  Span timestamps use
// the steady clock, so even though the scenario runs under the virtual-time
// simulator, the attributed numbers are real nanoseconds.  Caveat: they are
// *elapsed* time -- a span that suspends across an await is also charged for
// whatever other fibers ran meanwhile.  Leaf handler spans (the
// micro-protocol rows) rarely suspend, so their self-time approximates CPU
// time; long-lived wrapper spans such as SynchronousCall deliberately read
// as end-to-end latency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/config.h"
#include "core/scenario.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ugrpc::bench {

/// Runs `calls` sequential group calls under `config` with span tracing
/// enabled and folds every site's span tree into the returned Profile.
/// `dropped` (optional) reports spans lost to the per-site budget -- a
/// non-zero value means the numbers under-count and the budget needs raising.
inline obs::Profile profile_config(core::Config config, int calls, std::uint64_t seed,
                                   int num_servers = 3, std::uint64_t* dropped = nullptr) {
  // Budget sized for the workload: a fully loaded exactly-once call opens a
  // few dozen spans per site; 1<<18 leaves an order of magnitude of slack.
  obs::Tracer tracer(std::size_t{1} << 18);
  core::ScenarioParams p;
  p.num_servers = num_servers;
  p.config = std::move(config);
  p.seed = seed;
  p.tracer = &tracer;
  core::Scenario s(std::move(p));
  for (int i = 0; i < calls; ++i) {
    s.run_client(0, [&](core::Client& c) -> sim::Task<> {
      core::CallResult r = co_await c.call(s.group(), OpId{1}, Buffer{});
      (void)r;
    });
  }
  if (dropped != nullptr) *dropped = tracer.total_spans_dropped();
  obs::Profile prof;
  prof.add(tracer);
  return prof;
}

/// Writes a BENCH_attribution-style artifact: one named Profile JSON object
/// per section (e.g. one per Fig. 1 preset), plus the measured environment.
/// Returns false (with a stderr diagnostic) when the file cannot be written.
inline bool write_attribution_json(const std::string& path, const char* bench_name,
                                   const char* description, std::uint64_t seed, int calls,
                                   const std::vector<std::pair<std::string, std::string>>& sections,
                                   const char* section_key = "presets") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  char date[16] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm tm{}; localtime_r(&now, &tm) != nullptr) {
    std::strftime(date, sizeof date, "%Y-%m-%d", &tm);
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"description\": \"%s\",\n", bench_name,
               description);
  std::fprintf(f, "  \"date\": \"%s\",\n  \"seed\": %llu,\n  \"calls\": %d,\n", date,
               static_cast<unsigned long long>(seed), calls);
  std::fprintf(f, "  \"units\": \"nanoseconds (steady clock)\",\n");
  std::fprintf(f, "  \"environment\": %s,\n  \"%s\": {\n", env_json().c_str(), section_key);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::fprintf(f, "    \"%s\": %s%s\n", sections[i].first.c_str(), sections[i].second.c_str(),
                 i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace ugrpc::bench
