// Shared command-line plumbing for the custom bench binaries.
//
// Every bench accepts `--seed N` so a run can be reproduced (and sweeps can
// vary the seed), and prints the seed it used into its output -- a number
// in a results file that cannot be traced back to a seed is not evidence.
// Benches with a JSON artifact also take `--out PATH`.
//
// Numeric options are parsed with checked strtol/strtoull rather than atoi:
// atoi returns 0 for garbage ("--calls abc" silently ran zero calls) and
// accepts negatives that later index arrays.  A malformed value is a usage
// error, not a silent zero.  try_parse_args() is the non-exiting core that
// the unit tests drive; parse_args() wraps it with the print-and-exit
// behaviour the binaries want.
#pragma once

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#if defined(__unix__)
#include <sys/utsname.h>
#endif

namespace ugrpc::bench {

struct Args {
  std::uint64_t seed;
  int calls;
  std::string out;
};

// ---- environment stamping ----
//
// Every BENCH_*.json emitter records the environment it actually ran in.
// These are measured, not guessed: an early artifact shipped with
// `"host_cpus": 1, "library_build_type": "debug"` because the fields were
// filled in by hand, which is precisely the kind of number that poisons
// later comparisons.

/// Compile-time build flavour of the *bench binary* (which links the library
/// statically, so it is also the library's flavour in this tree).
inline constexpr const char* kBuildType =
#ifdef NDEBUG
    "release";
#else
    "debug";
#endif

[[nodiscard]] inline bool is_release_build() { return kBuildType[0] == 'r'; }

/// Git SHA baked in at configure time (bench/CMakeLists.txt); "unknown" when
/// the tree was built outside git.  Stamped per-binary so a results file can
/// always be traced back to the code that produced it.
[[nodiscard]] inline const char* git_sha() {
#ifdef UGRPC_GIT_SHA
  return UGRPC_GIT_SHA;
#else
  return "unknown";
#endif
}

[[nodiscard]] inline unsigned host_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

[[nodiscard]] inline std::string platform_string() {
#if defined(__unix__)
  utsname u{};
  if (uname(&u) == 0) {
    return std::string(u.sysname) + "-" + u.release + "-" + u.machine;
  }
#endif
  return "unknown";
}

/// Prints a hard-to-miss banner when the binary was not built Release.
/// Numbers from a debug build are not wrong, but they are not evidence
/// either; the banner (and the `library_build_type` field in the artifact)
/// keeps them from being mistaken for it.
inline void warn_if_debug(const char* prog) {
  if (is_release_build()) return;
  std::fprintf(stderr,
               "%s: *** WARNING: this is a %s build ***\n"
               "%s: numbers below do NOT reflect release performance;\n"
               "%s: rebuild with -DCMAKE_BUILD_TYPE=Release before recording them.\n",
               prog, kBuildType, prog, prog);
}

/// The `"environment"` JSON object (measured fields only), ready to embed:
///   fprintf(f, "  \"environment\": %s,\n", env_json().c_str());
[[nodiscard]] inline std::string env_json() {
  std::string out = "{\"host_cpus\": ";
  out += std::to_string(host_cpus());
  out += ", \"library_build_type\": \"";
  out += kBuildType;
  out += "\", \"git_sha\": \"";
  out += git_sha();
  out += "\", \"platform\": \"";
  out += platform_string();
  out += "\"}";
  return out;
}

/// Parses a full unsigned decimal string.  Rejects empty strings, signs,
/// whitespace, trailing garbage and out-of-range values.
inline bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || !std::isdigit(static_cast<unsigned char>(*s))) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// Parses a non-negative count that fits in int.
inline bool parse_count(const char* s, int& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > static_cast<std::uint64_t>(INT_MAX)) return false;
  out = static_cast<int>(v);
  return true;
}

struct ParseResult {
  Args args;
  bool ok = true;
  std::string error;  ///< one-line diagnostic when !ok
};

/// Non-exiting parse of `--seed N`, `--calls N`, `--out PATH`.
inline ParseResult try_parse_args(int argc, const char* const* argv, std::uint64_t default_seed,
                                  int default_calls = 0, std::string default_out = {}) {
  ParseResult result;
  result.args = Args{default_seed, default_calls, std::move(default_out)};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        result.ok = false;
        result.error = "missing value for " + arg;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return result;
      if (!parse_u64(v, result.args.seed)) {
        result.ok = false;
        result.error = "invalid value for --seed: '" + std::string(v) +
                       "' (expected a non-negative integer)";
        return result;
      }
    } else if (arg == "--calls") {
      const char* v = next();
      if (v == nullptr) return result;
      if (!parse_count(v, result.args.calls)) {
        result.ok = false;
        result.error = "invalid value for --calls: '" + std::string(v) +
                       "' (expected a non-negative integer)";
        return result;
      }
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return result;
      result.args.out = v;
    } else {
      result.ok = false;
      result.error = "unknown argument " + arg;
      return result;
    }
  }
  return result;
}

/// Parses or exits with a usage message (what the bench binaries call).
inline Args parse_args(int argc, char** argv, std::uint64_t default_seed, int default_calls = 0,
                       std::string default_out = {}) {
  ParseResult result =
      try_parse_args(argc, argv, default_seed, default_calls, std::move(default_out));
  if (!result.ok) {
    std::fprintf(stderr, "%s: %s\nusage: %s [--seed N] [--calls N] [--out PATH]\n", argv[0],
                 result.error.c_str(), argv[0]);
    std::exit(2);
  }
  return result.args;
}

}  // namespace ugrpc::bench
