// Shared command-line plumbing for the custom bench binaries.
//
// Every bench accepts `--seed N` so a run can be reproduced (and sweeps can
// vary the seed), and prints the seed it used into its output -- a number
// in a results file that cannot be traced back to a seed is not evidence.
// Benches with a JSON artifact also take `--out PATH`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ugrpc::bench {

struct Args {
  std::uint64_t seed;
  int calls;
  std::string out;
};

/// Parses `--seed N`, `--calls N`, `--out PATH`; exits with usage on
/// anything else.  Pass each option's default.
inline Args parse_args(int argc, char** argv, std::uint64_t default_seed, int default_calls = 0,
                       std::string default_out = {}) {
  Args args{default_seed, default_calls, std::move(default_out)};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      args.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--calls") {
      args.calls = std::atoi(next());
    } else if (arg == "--out") {
      args.out = next();
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--calls N] [--out PATH]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace ugrpc::bench
