// Experiment B-ablations (DESIGN.md) -- sensitivity of the design's tunable
// knobs, driven by the closed-loop workload harness.
//
//  A1. Retransmission timeout vs loss: too-short timeouts waste messages,
//      too-long timeouts stretch tail latency.  Reports mean / p99 latency
//      and retransmissions per call for a grid of timeouts at 20% loss.
//  A2. Atomic Execution cost vs stable-storage write latency: every call
//      pays one checkpoint write; the table shows call latency tracking the
//      storage latency, and the no-atomic baseline staying flat.
//  A3. Client scaling: aggregate throughput of the group as closed-loop
//      clients are added (serial execution caps it; plain execution scales
//      until the simulated network dominates).
#include <cstdio>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/micro/reliable_communication.h"
#include "core/scenario.h"
#include "core/workload.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

void ablation_retrans_timeout(std::uint64_t seed) {
  std::printf("--- A1: retransmission timeout at 20%% loss (3 servers, acceptance=ALL) ---\n");
  std::printf("%-14s %-10s %-10s %-10s %-16s\n", "timeout (ms)", "ok%", "mean ms", "p99 ms",
              "retrans/call");
  // The round trip is ~0.6-1 ms: sub-RTT timeouts retransmit prematurely
  // (wasted messages, no latency gain); long timeouts stretch every
  // loss-recovery by the full period.
  for (sim::Duration timeout : {sim::usec(200), sim::usec(500), sim::msec(1), sim::msec(5),
                                sim::msec(25), sim::msec(100)}) {
    ScenarioParams p;
    p.num_servers = 3;
    p.config.acceptance_limit = kAll;
    p.config.reliable_communication = true;
    p.config.retrans_timeout = timeout;
    p.faults.drop_prob = 0.2;
    p.seed = seed;
    Scenario s(std::move(p));
    WorkloadParams w;
    w.calls_per_client = 80;
    const WorkloadReport r = run_closed_loop(s, w);
    const double retrans_per_call =
        static_cast<double>(s.client_site(0).grpc().reliable()->retransmissions()) /
        static_cast<double>(r.calls_ok + r.calls_failed);
    std::printf("%-14.1f %-10.1f %-10.3f %-10.3f %-16.2f\n", sim::to_msec(timeout),
                100.0 * static_cast<double>(r.calls_ok) /
                    static_cast<double>(r.calls_ok + r.calls_failed),
                r.latency.mean_ms(), r.latency.percentile_ms(0.99), retrans_per_call);
  }
  std::printf("expected shape: latency falls then flattens as the timeout shrinks, while "
              "retransmissions per call climb -- the classic timer tradeoff\n\n");
}

void ablation_checkpoint_latency(std::uint64_t seed) {
  std::printf("--- A2: atomic-execution cost vs stable-storage write latency (1 server) ---\n");
  std::printf("%-18s %-16s %-16s\n", "storage (ms)", "atomic mean ms", "plain mean ms");
  for (sim::Duration lat : {sim::msec(0), sim::msec(1), sim::msec(2), sim::msec(5),
                            sim::msec(10)}) {
    const auto run = [lat, seed](ExecutionMode mode) {
      ScenarioParams p;
      p.num_servers = 1;
      p.config.acceptance_limit = 1;
      p.config.reliable_communication = true;
      p.config.unique_execution = true;
      p.config.execution = mode;
      p.seed = seed - 64;  // historical default: 77 - 64 = 13
      Scenario s(std::move(p));
      s.server(0).stable().set_write_latency(lat);
      WorkloadParams w;
      w.calls_per_client = 40;
      return run_closed_loop(s, w).latency.mean_ms();
    };
    std::printf("%-18.0f %-16.3f %-16.3f\n", sim::to_msec(lat),
                run(ExecutionMode::kSerialAtomic), run(ExecutionMode::kSerial));
  }
  std::printf("expected shape: atomic latency grows ~1:1 with the checkpoint write; the "
              "non-atomic baseline is flat\n\n");
}

void ablation_client_scaling(std::uint64_t seed) {
  std::printf("--- A3: throughput vs closed-loop clients (3 servers, 2ms procedure) ---\n");
  std::printf("%-10s %-22s %-22s\n", "clients", "plain (calls/s)", "serial (calls/s)");
  for (int clients : {1, 2, 4, 8, 16}) {
    const auto run = [clients, seed](ExecutionMode mode) {
      ScenarioParams p;
      p.num_servers = 3;
      p.num_clients = clients;
      p.config.acceptance_limit = kAll;
      p.config.execution = mode;
      p.seed = seed - 48;  // historical default: 77 - 48 = 29
      p.server_app = [](UserProtocol& user, Site& site) {
        user.set_procedure([&site](OpId, Buffer&) -> sim::Task<> {
          co_await site.scheduler().sleep_for(sim::msec(2));
        });
      };
      Scenario s(std::move(p));
      WorkloadParams w;
      w.calls_per_client = 40;
      return run_closed_loop(s, w).throughput_per_sec();
    };
    std::printf("%-10d %-22.1f %-22.1f\n", clients, run(ExecutionMode::kPlain),
                run(ExecutionMode::kSerial));
  }
  std::printf("expected shape: plain execution overlaps procedure time and scales with "
              "clients; serial execution saturates near 1/procedure-time\n");
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/77);
  std::printf("=== design-knob ablations ===\n(seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));
  ablation_retrans_timeout(args.seed);
  ablation_checkpoint_latency(args.seed);
  ablation_client_scaling(args.seed);
  return 0;
}
