// Experiment Fig. 4 / section 5 -- the dependency graph of micro-protocols
// and the size of the configuration space.
//
// The paper: "micro-protocols can be selected from among two that implement
// different call semantics; three that deal with orphans; three that give
// serial execution, atomic execution, or no special execution property; and
// a total of 11 possible choices for dealing with unique execution, reliable
// communication, termination, and ordering.  This sums up to [2x3x3x11=198]
// possible combinations, and hence, possible group RPC services."
//
// This harness (a) enumerates every dependency-valid configuration and
// prints the breakdown, and (b) *builds and exercises* a stratified sample
// of them end-to-end -- every enumerated synchronous configuration runs one
// real call through a 3-server group; asynchronous ones run begin+result.
// A configuration counts as PASS if the call completes with status OK.
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

/// Runs one call through a freshly built scenario with `config`.
bool smoke_run(Config config, std::uint64_t seed) {
  config.acceptance_limit = 1;
  // Unbounded-termination configs on a perfect network still terminate.
  ScenarioParams p;
  p.num_servers = 3;
  p.config = config;
  p.seed = seed;
  Scenario s(std::move(p));
  CallResult result;
  if (config.call == CallSemantics::kSynchronous) {
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      result = co_await c.call(s.group(), OpId{1}, Buffer{});
    }, sim::seconds(30));
  } else {
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      CallHandle h = co_await c.call_async(s.group(), OpId{1}, Buffer{});
      result = co_await h.get();
    }, sim::seconds(30));
  }
  return result.status == Status::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/11);
  std::printf("=== Figure 4 / section 5: the configuration space ===\n(seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));

  const ConfigSpace space = config_space();
  std::printf("call semantics variants:        %d\n", space.call_variants);
  std::printf("orphan handling variants:       %d\n", space.orphan_variants);
  std::printf("execution-property variants:    %d\n", space.execution_variants);
  std::printf("unique x reliable x termination x ordering combinations\n");
  std::printf("  (raw 2x2x2x3 = 24, pruned by the dependency graph): %d\n",
              space.comm_combinations);
  std::printf("total configurable group RPC services: %d x %d x %d x %d = %d\n",
              space.call_variants, space.orphan_variants, space.execution_variants,
              space.comm_combinations, space.total);
  std::printf("paper reports: 198   -> %s\n\n", space.total == 198 ? "MATCH" : "MISMATCH");

  std::printf("breakdown of the 11 communication combinations by ordering:\n");
  const auto configs = enumerate_valid_configs();
  std::map<std::string, int> by_ordering;
  for (const Config& c : configs) {
    if (c.call != CallSemantics::kSynchronous || c.orphan != OrphanHandling::kIgnore ||
        c.execution != ExecutionMode::kPlain) {
      continue;
    }
    by_ordering[std::string(to_string(c.ordering))]++;
  }
  for (const auto& [ordering, count] : by_ordering) {
    std::printf("  %-10s: %d\n", ordering.c_str(), count);
  }

  std::printf("\nsmoke-running all %zu configurations end-to-end (1 call each, 3 servers):\n",
              configs.size());
  int pass = 0;
  int fail = 0;
  for (const Config& c : configs) {
    if (smoke_run(c, args.seed)) {
      ++pass;
    } else {
      ++fail;
      std::printf("  FAIL: %s\n", c.describe().c_str());
    }
  }
  std::printf("  %d/%zu configurations complete a call successfully\n", pass, configs.size());
  return fail == 0 ? 0 : 1;
}
