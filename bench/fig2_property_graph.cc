// Experiment Fig. 2 -- "Semantic properties of group RPC".
//
// Prints the machine-readable form of the paper's property dependency graph
// (properties, choice groups, dependency edges with their rationale) and
// cross-checks it against the micro-protocol dependency rules the
// configurator enforces (paper Fig. 4): every strict configurator rule must
// be traceable to a Figure 2 edge or to one of the implementation-induced
// dependencies the paper lists in section 5.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/config.h"
#include "core/micro/acceptance.h"
#include "core/properties.h"
#include "core/scenario.h"

namespace {

/// Empirical check of the FIFO -> Reliable Communication edge: run the same
/// lossy async workload with the edge respected and violated (validation
/// bypassed).  Violated, a lost call leaves a permanent gap that stalls
/// each server's stream; respected, retransmission fills the gaps and every
/// call executes.
std::size_t fifo_executions(bool reliable, std::size_t calls, std::uint64_t seed) {
  using namespace ugrpc;
  using namespace ugrpc::core;
  std::size_t executed = 0;
  ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.call = CallSemantics::kAsynchronous;
  p.config.ordering = Ordering::kFifo;
  p.config.reliable_communication = reliable;
  p.config.retrans_timeout = sim::msec(30);
  p.config.unsafe_skip_validation = !reliable;  // experiment-only bypass
  p.faults.drop_prob = 0.15;
  p.seed = seed;
  p.server_app = [&executed](UserProtocol& user, Site&) {
    user.set_procedure([&executed](OpId, Buffer&) -> sim::Task<> {
      ++executed;
      co_return;
    });
  };
  Scenario s(std::move(p));
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (std::size_t i = 0; i < calls; ++i) {
      (void)co_await c.call_async(s.group(), OpId{1}, Buffer{});
      // Paced so the first call arrives first: this isolates the loss
      // effect from FIFO's first-seen stream initialization under bursts.
      co_await s.scheduler().sleep_for(sim::msec(2));
    }
  });
  s.run_for(sim::seconds(10));
  return executed;
}

}  // namespace

int main(int argc, char** argv) {
  const ugrpc::bench::Args args = ugrpc::bench::parse_args(argc, argv, /*default_seed=*/19);
  using namespace ugrpc::core;

  std::printf("=== Figure 2: semantic properties of group RPC ===\n(seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));

  std::printf("choice groups (pick one alternative per category):\n");
  for (const PropertyChoice& choice : property_choices()) {
    std::printf("  %-18s:", std::string(choice.category).c_str());
    for (Property p : choice.alternatives) {
      std::printf("  [%s]", std::string(to_string(p)).c_str());
    }
    std::printf("\n");
  }

  std::printf("\ndependency edges (property -> prerequisite):\n");
  for (const PropertyEdge& edge : property_edges()) {
    std::printf("  %-26s -> %-26s  (%s)\n", std::string(to_string(edge.from)).c_str(),
                std::string(to_string(edge.to)).c_str(), std::string(edge.reason).c_str());
  }

  std::printf("\n=== cross-check against the configurator (Figure 4 rules) ===\n");
  // Drive each strict rule to violation and report the diagnostic, proving
  // the implementation enforces the printed graph.
  struct Probe {
    const char* description;
    Config config;
  };
  Config unique_no_rel;
  unique_no_rel.unique_execution = true;
  Config fifo_no_rel;
  fifo_no_rel.ordering = Ordering::kFifo;
  Config total_bounded;
  total_bounded.ordering = Ordering::kTotal;
  total_bounded.termination_bound = ugrpc::sim::seconds(1);
  const Probe probes[] = {
      {"unique execution without reliable communication", unique_no_rel},
      {"FIFO order without reliable communication", fifo_no_rel},
      {"total order without reliable/unique, with bounded termination", total_bounded},
  };
  for (const Probe& probe : probes) {
    std::printf("\nprobe: %s\n", probe.description);
    for (const ValidationError& err : validate(probe.config)) {
      std::printf("  violated: %-40s %s\n", err.rule.c_str(), err.message.c_str());
    }
  }
  std::printf("\nall strict rules map onto Figure 2 edges plus the section-5 "
              "implementation dependencies (Total->Unique, Total-x-Bounded).\n");

  std::printf("\n=== empirical edge check: FIFO Order -> Reliable Communication ===\n");
  std::printf("(40 async calls, 15%% loss, one server; executions observed)\n");
  const std::size_t with_edge = fifo_executions(true, 40, args.seed);
  const std::size_t without_edge = fifo_executions(false, 40, args.seed);
  std::printf("  edge respected (FIFO + Reliable): %zu/40 executed\n", with_edge);
  std::printf("  edge violated  (FIFO, no Reliable, validation bypassed): %zu/40 executed\n",
              without_edge);
  std::printf("  -> a single lost call permanently stalls the unreliable FIFO stream, "
              "empirically confirming the dependency\n");
  return with_edge == 40 && without_edge < 40 ? 0 : 1;
}
