// Experiment B-modularity (ablation) -- what does the micro-protocol
// architecture cost relative to a hand-fused protocol?
//
// The paper: point-to-point RPC "would likely be implemented separately to
// obtain a more compact and efficient protocol".  We built that compact
// protocol (core/p2p_rpc.h) with the same wire format and the same
// semantics (reliable + unique execution), and compare one complete
// simulated call:
//
//   composite(n=1)  -- the full micro-protocol composite with a one-member
//                      group: framework dispatch, HOLD gating, event chains
//   p2p fast path   -- monolithic class, straight-line code
//
// The gap is the modularity tax the paper accepts for configurability.
// Measured in real (CPU) time with google-benchmark.
#include <benchmark/benchmark.h>

#include "core/micro/acceptance.h"
#include "core/p2p_rpc.h"
#include "core/scenario.h"
#include "net/sim_transport.h"

namespace {

using namespace ugrpc;

void BM_Composite_SingleServerCall(benchmark::State& state) {
  core::ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  core::Scenario s(std::move(p));
  for (auto _ : state) {
    core::CallResult result;
    s.run_client(0, [&](core::Client& c) -> sim::Task<> {
      result = co_await c.call(s.group(), OpId{1}, Buffer{});
    });
    benchmark::DoNotOptimize(result.status);
  }
}
BENCHMARK(BM_Composite_SingleServerCall);

void BM_P2pFastPath_Call(benchmark::State& state) {
  sim::Scheduler sched{3};
  net::Network net{sched};
  net::SimTransport transport{net};
  net::Endpoint& client_ep = net.attach(ProcessId{1}, DomainId{1});
  net::Endpoint& server_ep = net.attach(ProcessId{2}, DomainId{2});
  core::UserProtocol client_user;
  core::UserProtocol server_user;
  server_user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });
  core::P2pRpc client(transport, client_ep, ProcessId{1}, client_user, {});
  core::P2pRpc server(transport, server_ep, ProcessId{2}, server_user, {});
  for (auto _ : state) {
    core::CallResult result;
    sched.spawn([](core::P2pRpc& c, core::CallResult& out) -> sim::Task<> {
      out = co_await c.call(ProcessId{2}, OpId{1}, Buffer{});
    }(client, result), DomainId{1});
    sched.run();
    benchmark::DoNotOptimize(result.status);
  }
}
BENCHMARK(BM_P2pFastPath_Call);

}  // namespace

BENCHMARK_MAIN();
