// Experiment B-modularity (ablation) -- what does the micro-protocol
// architecture cost relative to a hand-fused protocol?
//
// The paper: point-to-point RPC "would likely be implemented separately to
// obtain a more compact and efficient protocol".  We built that compact
// protocol (core/p2p_rpc.h) with the same wire format and the same
// semantics (reliable + unique execution), and compare one complete
// simulated call:
//
//   composite(n=1)  -- the full micro-protocol composite with a one-member
//                      group: framework dispatch, HOLD gating, event chains
//   p2p fast path   -- monolithic class, straight-line code
//
// The gap is the modularity tax the paper accepts for configurability.
// Measured in real (CPU) time with google-benchmark.
//
// Beyond the end-to-end gap, the span profiler decomposes it: the binary
// also runs the three Fig. 1 presets with span tracing enabled and emits
// per-micro-protocol self-time percentiles into BENCH_attribution.json
// (which micro-protocol a microsecond went to, not just that it went).
//
//   usage: modularity_tax [--seed N] [--calls N] [--out PATH]
//                         [google-benchmark flags...]
//   --out ""  skips the attribution pass (timing benches only).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "attribution.h"
#include "bench_util.h"
#include "core/config_builder.h"
#include "core/micro/acceptance.h"
#include "core/p2p_rpc.h"
#include "core/scenario.h"
#include "net/sim_transport.h"

namespace {

using namespace ugrpc;

void BM_Composite_SingleServerCall(benchmark::State& state) {
  core::ScenarioParams p;
  p.num_servers = 1;
  p.config.acceptance_limit = 1;
  p.config.reliable_communication = true;
  p.config.unique_execution = true;
  core::Scenario s(std::move(p));
  for (auto _ : state) {
    core::CallResult result;
    s.run_client(0, [&](core::Client& c) -> sim::Task<> {
      result = co_await c.call(s.group(), OpId{1}, Buffer{});
    });
    benchmark::DoNotOptimize(result.status);
  }
}
BENCHMARK(BM_Composite_SingleServerCall);

void BM_P2pFastPath_Call(benchmark::State& state) {
  sim::Scheduler sched{3};
  net::Network net{sched};
  net::SimTransport transport{net};
  net::Endpoint& client_ep = net.attach(ProcessId{1}, DomainId{1});
  net::Endpoint& server_ep = net.attach(ProcessId{2}, DomainId{2});
  core::UserProtocol client_user;
  core::UserProtocol server_user;
  server_user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });
  core::P2pRpc client(transport, client_ep, ProcessId{1}, client_user, {});
  core::P2pRpc server(transport, server_ep, ProcessId{2}, server_user, {});
  for (auto _ : state) {
    core::CallResult result;
    sched.spawn([](core::P2pRpc& c, core::CallResult& out) -> sim::Task<> {
      out = co_await c.call(ProcessId{2}, OpId{1}, Buffer{});
    }(client, result), DomainId{1});
    sched.run();
    benchmark::DoNotOptimize(result.status);
  }
}
BENCHMARK(BM_P2pFastPath_Call);

// ---- attribution pass (emits BENCH_attribution.json) ----

/// The failure-semantics rows of paper Figure 1.
struct Preset {
  const char* name;
  core::Config config;
};

std::vector<Preset> fig1_presets() {
  std::vector<Preset> out;
  out.push_back({"at_least_once", core::ConfigBuilder::at_least_once().build()});
  out.push_back({"exactly_once", core::ConfigBuilder::exactly_once().build()});
  out.push_back({"at_most_once", core::ConfigBuilder::at_most_once().build()});
  return out;
}

int run_attribution(const std::string& out_path, std::uint64_t seed, int calls) {
  std::vector<std::pair<std::string, std::string>> sections;
  for (Preset& preset : fig1_presets()) {
    std::uint64_t dropped = 0;
    const obs::Profile prof =
        bench::profile_config(std::move(preset.config), calls, seed, /*num_servers=*/3, &dropped);
    if (dropped != 0) {
      std::fprintf(stderr, "modularity_tax: %llu spans dropped under %s -- attribution "
                           "under-counts; raise the tracer budget in bench/attribution.h\n",
                   static_cast<unsigned long long>(dropped), preset.name);
    }
    std::printf("attribution[%s]: per-component self-time p50/p99 (ns)\n", preset.name);
    for (const auto& [comp, st] : prof.by_component()) {
      std::printf("  %-16s count=%-6llu self p50=%-8llu p99=%llu\n", comp.c_str(),
                  static_cast<unsigned long long>(st.count),
                  static_cast<unsigned long long>(st.self_p50),
                  static_cast<unsigned long long>(st.self_p99));
    }
    sections.emplace_back(preset.name, prof.to_json());
  }
  if (!bench::write_attribution_json(
          out_path, "modularity_tax attribution",
          "Per-micro-protocol latency attribution from span tracing: one Profile per Fig. 1 "
          "failure-semantics preset (3 servers, sequential simulated calls).  self_* fields "
          "exclude time attributed to child spans.",
          seed, calls, sections)) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our flags, hand the rest to google-benchmark.
  std::uint64_t seed = 21;
  int calls = 400;
  std::string out = "BENCH_attribution.json";
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--seed" && has_value && ugrpc::bench::parse_u64(argv[i + 1], seed)) {
      ++i;
    } else if (arg == "--calls" && has_value && ugrpc::bench::parse_count(argv[i + 1], calls)) {
      ++i;
    } else if (arg == "--out" && has_value) {
      out = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  ugrpc::bench::warn_if_debug("modularity_tax");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (out.empty()) return 0;
  return run_attribution(out, seed, calls);
}
