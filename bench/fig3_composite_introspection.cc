// Experiment Fig. 3 -- "A composite protocol".
//
// The paper's Figure 3 sketches a live composite: the framework in the
// middle with shared data and event definitions, micro-protocols on the
// left, and, on the right, each event with the ordered list of
// micro-protocol handlers invoked when it occurs (e.g. "Msg from network:
// R, U" / "Call from user: R, S").
//
// This harness reproduces that picture from a *running* composite: it
// builds the figure's configuration -- RPC Main (R), Synchronous Call (S),
// Bounded Termination (B), Unique Execution (U) -- plus the always-present
// Collation/Acceptance, and dumps the registered micro-protocols, the shared
// tables, and the per-event handler chains in invocation (priority) order.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

int main() {
  using namespace ugrpc;
  using namespace ugrpc::core;

  Config config;  // Figure 3's letters: R + S + B + U (U needs reliable comm)
  config.call = CallSemantics::kSynchronous;
  config.reliable_communication = true;
  config.unique_execution = true;
  config.termination_bound = sim::seconds(1);
  config.acceptance_limit = 1;

  ScenarioParams params;
  params.num_servers = 2;
  params.config = config;
  Scenario scenario(std::move(params));
  GrpcComposite& composite = scenario.server(0).grpc();

  std::printf("=== Figure 3: a composite protocol (live introspection) ===\n\n");
  std::printf("micro-protocols configured:\n");
  for (const std::string& name : composite.micro_protocol_names()) {
    std::printf("  - %s\n", name.c_str());
  }

  std::printf("\nshared data (GrpcState):\n");
  const GrpcState& state = composite.state();
  std::printf("  pRPC (pending client calls): %zu entries\n", state.pRPC.size());
  std::printf("  sRPC (pending server calls): %zu entries\n", state.sRPC.size());
  std::printf("  HOLD array: [main=%d fifo=%d total=%d]\n", static_cast<int>(state.HOLD[kHoldMain]),
              static_cast<int>(state.HOLD[kHoldFifo]), static_cast<int>(state.HOLD[kHoldTotal]));
  std::printf("  members: %zu live\n", state.members.size());
  std::printf("  incarnation: %u\n", state.inc_number);

  std::printf("\nevents and their handler chains (in invocation order):\n");
  std::map<std::string, std::vector<std::string>> chains;
  for (const auto& reg : composite.framework().registrations()) {
    chains[reg.event].push_back(reg.handler + " (prio " +
                                (reg.priority >= 1'000'000 ? std::string("default")
                                                           : std::to_string(reg.priority)) +
                                ")");
  }
  for (const auto& [event, handlers] : chains) {
    std::printf("  %s:\n", event.c_str());
    for (const std::string& h : handlers) std::printf("      %s\n", h.c_str());
  }

  std::printf("\npaper Figure 3's bindings for comparison:\n");
  std::printf("  Msg from network -> R, U     (here: Reliable, Unique, Main -- \n");
  std::printf("                                Reliable was implicit in the figure's example)\n");
  std::printf("  Call from user   -> R, S     (here: Main, then Synchronous Call last)\n");
  std::printf("  Timeout          -> B, U     (here: one-shot timers of Bounded/Reliable)\n");
  std::printf("  Reply from server-> U        (here: Unique stores the result)\n");
  return 0;
}
