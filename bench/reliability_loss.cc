// Experiment B-reliability (DESIGN.md) -- what Reliable Communication and
// Bounded Termination buy under message loss.
//
// Sweep the per-link drop probability and report, for three configurations,
// the fraction of calls that complete OK and their mean latency:
//
//   bare      : no reliability, no bound  (calls hang when a message dies;
//               completion measured with a 2s patience window)
//   bounded   : no reliability, 250ms bound (calls fail fast, never hang)
//   reliable  : retransmission, no bound  (every call completes; latency
//               grows with loss as retransmissions kick in)
//
// Expected shape: 'bare' completion decays roughly like the probability all
// of the 2*n messages survive; 'bounded' matches 'bare' completion but
// bounds the damage; 'reliable' stays at 100% with rising tail latency.
#include <cstdio>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

constexpr OpId kOp{1};
constexpr int kCalls = 60;

struct Outcome {
  double ok_fraction = 0;
  double mean_ms = 0;
};

Outcome run(double drop, bool reliable, bool bounded, std::uint64_t seed) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = reliable;
  p.config.retrans_timeout = sim::msec(30);
  if (bounded) p.config.termination_bound = sim::msec(250);
  p.faults.drop_prob = drop;
  p.seed = seed;
  Scenario s(std::move(p));
  int ok = 0;
  double total_ms = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < kCalls; ++i) {
      const sim::Time t0 = s.scheduler().now();
      // Patience window for configurations that can hang: run each call
      // concurrently with a 2s alarm is not needed -- bounded configs
      // return; bare configs would block forever, so bound the whole
      // workload loop instead (run_client deadline below) and count what
      // finished.
      const CallResult r = co_await c.call(s.group(), kOp, Buffer{});
      if (r.ok()) {
        total_ms += sim::to_msec(s.scheduler().now() - t0);
        ++ok;
      }
    }
  }, sim::seconds(120));
  Outcome out;
  out.ok_fraction = static_cast<double>(ok) / kCalls;
  out.mean_ms = ok > 0 ? total_ms / ok : 0;
  return out;
}

}  // namespace

int main() {
  std::printf("=== B-reliability: completion and latency vs message loss ===\n");
  std::printf("(3 servers, acceptance=ALL, %d sequential calls; 'bare' stops at the first "
              "hung call)\n\n", kCalls);
  std::printf("%-8s | %-20s | %-20s | %-20s\n", "loss", "bare ok%/ms", "bounded ok%/ms",
              "reliable ok%/ms");
  std::printf("---------+----------------------+----------------------+---------------------\n");
  for (double drop : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const Outcome bare = run(drop, false, false, 21);
    const Outcome bounded = run(drop, false, true, 21);
    const Outcome reliable = run(drop, true, false, 21);
    std::printf("%-8.2f | %6.1f%% / %-10.2f | %6.1f%% / %-10.2f | %6.1f%% / %-10.2f\n", drop,
                bare.ok_fraction * 100, bare.mean_ms, bounded.ok_fraction * 100, bounded.mean_ms,
                reliable.ok_fraction * 100, reliable.mean_ms);
  }
  std::printf("\nexpected shape: bare decays and wedges; bounded decays but always returns; "
              "reliable holds 100%% with growing latency\n");
  return 0;
}
