// Experiment B-reliability (DESIGN.md) -- what Reliable Communication and
// Bounded Termination buy under message loss.
//
// Sweep the per-link drop probability and report, for three configurations,
// the fraction of calls that complete OK and their mean latency:
//
//   bare      : no reliability, no bound  (calls hang when a message dies;
//               completion measured with a 2s patience window)
//   bounded   : no reliability, 250ms bound (calls fail fast, never hang)
//   reliable  : retransmission, no bound  (every call completes; latency
//               grows with loss as retransmissions kick in)
//
// Expected shape: 'bare' completion decays roughly like the probability all
// of the 2*n messages survive; 'bounded' matches 'bare' completion but
// bounds the damage; 'reliable' stays at 100% with rising tail latency.
//
// A second table shows the fabric byte counters and the client->server0
// link for the 'reliable' runs: the gap between bytes_sent and
// bytes_delivered is the traffic loss ate, and the retransmission
// micro-protocol's job is to keep completion at 100% despite it.
//
//   usage: reliability_loss [--seed N]
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "net/network.h"

namespace {

using namespace ugrpc;
using namespace ugrpc::core;

constexpr OpId kOp{1};
constexpr int kCalls = 60;

struct Outcome {
  double ok_fraction = 0;
  double mean_ms = 0;
  net::Stats fabric;              // whole-fabric counters after the run
  net::Network::LinkStats c2s;    // client -> first server
};

Outcome run(double drop, bool reliable, bool bounded, std::uint64_t seed) {
  ScenarioParams p;
  p.num_servers = 3;
  p.config.acceptance_limit = kAll;
  p.config.reliable_communication = reliable;
  p.config.retrans_timeout = sim::msec(30);
  if (bounded) p.config.termination_bound = sim::msec(250);
  p.faults.drop_prob = drop;
  p.seed = seed;
  Scenario s(std::move(p));
  int ok = 0;
  double total_ms = 0;
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    for (int i = 0; i < kCalls; ++i) {
      const sim::Time t0 = s.scheduler().now();
      // Patience window for configurations that can hang: run each call
      // concurrently with a 2s alarm is not needed -- bounded configs
      // return; bare configs would block forever, so bound the whole
      // workload loop instead (run_client deadline below) and count what
      // finished.
      const CallResult r = co_await c.call(s.group(), kOp, Buffer{});
      if (r.ok()) {
        total_ms += sim::to_msec(s.scheduler().now() - t0);
        ++ok;
      }
    }
  }, sim::seconds(120));
  Outcome out;
  out.ok_fraction = static_cast<double>(ok) / kCalls;
  out.mean_ms = ok > 0 ? total_ms / ok : 0;
  out.fabric = s.network().stats();
  out.c2s = s.network().link_stats(s.client_id(0), Scenario::server_id(0));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, /*default_seed=*/21);

  std::printf("=== B-reliability: completion and latency vs message loss ===\n");
  std::printf("(3 servers, acceptance=ALL, %d sequential calls, seed %llu; 'bare' stops at the "
              "first hung call)\n\n", kCalls, static_cast<unsigned long long>(args.seed));
  std::printf("%-8s | %-20s | %-20s | %-20s\n", "loss", "bare ok%/ms", "bounded ok%/ms",
              "reliable ok%/ms");
  std::printf("---------+----------------------+----------------------+---------------------\n");
  std::vector<std::pair<double, Outcome>> reliable_runs;
  for (double drop : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const Outcome bare = run(drop, false, false, args.seed);
    const Outcome bounded = run(drop, false, true, args.seed);
    const Outcome reliable = run(drop, true, false, args.seed);
    std::printf("%-8.2f | %6.1f%% / %-10.2f | %6.1f%% / %-10.2f | %6.1f%% / %-10.2f\n", drop,
                bare.ok_fraction * 100, bare.mean_ms, bounded.ok_fraction * 100, bounded.mean_ms,
                reliable.ok_fraction * 100, reliable.mean_ms);
    reliable_runs.emplace_back(drop, reliable);
  }

  std::printf("\n--- reliable config: fabric traffic vs loss (bytes lost = retransmission's "
              "bill) ---\n");
  std::printf("%-8s | %12s | %14s | %-30s\n", "loss", "bytes_sent", "bytes_delivered",
              "client->server0 sent/dlvd/drop");
  std::printf("---------+--------------+----------------+-------------------------------\n");
  for (const auto& [drop, o] : reliable_runs) {
    std::printf("%-8.2f | %12llu | %14llu | %8llu / %6llu / %6llu\n", drop,
                static_cast<unsigned long long>(o.fabric.bytes_sent),
                static_cast<unsigned long long>(o.fabric.bytes_delivered),
                static_cast<unsigned long long>(o.c2s.sent),
                static_cast<unsigned long long>(o.c2s.delivered),
                static_cast<unsigned long long>(o.c2s.dropped));
  }

  std::printf("\nexpected shape: bare decays and wedges; bounded decays but always returns; "
              "reliable holds 100%% with growing latency and byte overhead\n");
  return 0;
}
