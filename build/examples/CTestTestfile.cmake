# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example.quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example.quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.read_optimized]=] "/root/repo/build/examples/read_optimized")
set_tests_properties([=[example.read_optimized]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.replicated_kv]=] "/root/repo/build/examples/replicated_kv")
set_tests_properties([=[example.replicated_kv]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.parallel_compute]=] "/root/repo/build/examples/parallel_compute")
set_tests_properties([=[example.parallel_compute]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.orphan_strategies]=] "/root/repo/build/examples/orphan_strategies")
set_tests_properties([=[example.orphan_strategies]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.config_explorer]=] "/root/repo/build/examples/config_explorer" "check" "--ordering=total" "--reliable" "--unique")
set_tests_properties([=[example.config_explorer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
