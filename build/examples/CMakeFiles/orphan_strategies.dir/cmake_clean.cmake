file(REMOVE_RECURSE
  "CMakeFiles/orphan_strategies.dir/orphan_strategies.cpp.o"
  "CMakeFiles/orphan_strategies.dir/orphan_strategies.cpp.o.d"
  "orphan_strategies"
  "orphan_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orphan_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
