# Empty dependencies file for orphan_strategies.
# This may be replaced when dependencies are built.
