file(REMOVE_RECURSE
  "CMakeFiles/read_optimized.dir/read_optimized.cpp.o"
  "CMakeFiles/read_optimized.dir/read_optimized.cpp.o.d"
  "read_optimized"
  "read_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
