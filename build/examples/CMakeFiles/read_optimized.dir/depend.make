# Empty dependencies file for read_optimized.
# This may be replaced when dependencies are built.
