
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/config_explorer.cpp" "examples/CMakeFiles/config_explorer.dir/config_explorer.cpp.o" "gcc" "examples/CMakeFiles/config_explorer.dir/config_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ugrpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ugrpc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/ugrpc_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ugrpc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ugrpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ugrpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
