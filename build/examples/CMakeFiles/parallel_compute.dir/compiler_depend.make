# Empty compiler generated dependencies file for parallel_compute.
# This may be replaced when dependencies are built.
