file(REMOVE_RECURSE
  "CMakeFiles/parallel_compute.dir/parallel_compute.cpp.o"
  "CMakeFiles/parallel_compute.dir/parallel_compute.cpp.o.d"
  "parallel_compute"
  "parallel_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
