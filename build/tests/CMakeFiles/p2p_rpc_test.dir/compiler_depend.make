# Empty compiler generated dependencies file for p2p_rpc_test.
# This may be replaced when dependencies are built.
