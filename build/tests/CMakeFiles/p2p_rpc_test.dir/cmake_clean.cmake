file(REMOVE_RECURSE
  "CMakeFiles/p2p_rpc_test.dir/core/p2p_rpc_test.cc.o"
  "CMakeFiles/p2p_rpc_test.dir/core/p2p_rpc_test.cc.o.d"
  "p2p_rpc_test"
  "p2p_rpc_test.pdb"
  "p2p_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
