file(REMOVE_RECURSE
  "CMakeFiles/ordering_recovery_test.dir/core/ordering_recovery_test.cc.o"
  "CMakeFiles/ordering_recovery_test.dir/core/ordering_recovery_test.cc.o.d"
  "ordering_recovery_test"
  "ordering_recovery_test.pdb"
  "ordering_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
