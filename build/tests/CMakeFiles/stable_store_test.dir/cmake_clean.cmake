file(REMOVE_RECURSE
  "CMakeFiles/stable_store_test.dir/storage/stable_store_test.cc.o"
  "CMakeFiles/stable_store_test.dir/storage/stable_store_test.cc.o.d"
  "stable_store_test"
  "stable_store_test.pdb"
  "stable_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
