# Empty dependencies file for stable_store_test.
# This may be replaced when dependencies are built.
