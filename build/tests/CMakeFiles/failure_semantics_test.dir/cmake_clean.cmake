file(REMOVE_RECURSE
  "CMakeFiles/failure_semantics_test.dir/core/failure_semantics_test.cc.o"
  "CMakeFiles/failure_semantics_test.dir/core/failure_semantics_test.cc.o.d"
  "failure_semantics_test"
  "failure_semantics_test.pdb"
  "failure_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
