# Empty dependencies file for failure_semantics_test.
# This may be replaced when dependencies are built.
