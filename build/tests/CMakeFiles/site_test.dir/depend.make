# Empty dependencies file for site_test.
# This may be replaced when dependencies are built.
