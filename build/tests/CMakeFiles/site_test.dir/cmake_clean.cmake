file(REMOVE_RECURSE
  "CMakeFiles/site_test.dir/core/site_test.cc.o"
  "CMakeFiles/site_test.dir/core/site_test.cc.o.d"
  "site_test"
  "site_test.pdb"
  "site_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
