file(REMOVE_RECURSE
  "CMakeFiles/orphan_test.dir/core/orphan_test.cc.o"
  "CMakeFiles/orphan_test.dir/core/orphan_test.cc.o.d"
  "orphan_test"
  "orphan_test.pdb"
  "orphan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orphan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
