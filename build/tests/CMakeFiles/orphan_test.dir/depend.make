# Empty dependencies file for orphan_test.
# This may be replaced when dependencies are built.
