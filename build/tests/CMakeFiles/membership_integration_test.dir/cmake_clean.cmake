file(REMOVE_RECURSE
  "CMakeFiles/membership_integration_test.dir/core/membership_integration_test.cc.o"
  "CMakeFiles/membership_integration_test.dir/core/membership_integration_test.cc.o.d"
  "membership_integration_test"
  "membership_integration_test.pdb"
  "membership_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
