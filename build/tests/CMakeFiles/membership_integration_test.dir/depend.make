# Empty dependencies file for membership_integration_test.
# This may be replaced when dependencies are built.
