# Empty dependencies file for wire_format_test.
# This may be replaced when dependencies are built.
