file(REMOVE_RECURSE
  "CMakeFiles/wire_format_test.dir/net/wire_format_test.cc.o"
  "CMakeFiles/wire_format_test.dir/net/wire_format_test.cc.o.d"
  "wire_format_test"
  "wire_format_test.pdb"
  "wire_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
