file(REMOVE_RECURSE
  "CMakeFiles/total_order_agreement_test.dir/core/total_order_agreement_test.cc.o"
  "CMakeFiles/total_order_agreement_test.dir/core/total_order_agreement_test.cc.o.d"
  "total_order_agreement_test"
  "total_order_agreement_test.pdb"
  "total_order_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/total_order_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
