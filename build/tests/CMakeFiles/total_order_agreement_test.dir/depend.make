# Empty dependencies file for total_order_agreement_test.
# This may be replaced when dependencies are built.
