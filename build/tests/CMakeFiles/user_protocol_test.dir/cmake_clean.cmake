file(REMOVE_RECURSE
  "CMakeFiles/user_protocol_test.dir/core/user_protocol_test.cc.o"
  "CMakeFiles/user_protocol_test.dir/core/user_protocol_test.cc.o.d"
  "user_protocol_test"
  "user_protocol_test.pdb"
  "user_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
