# Empty compiler generated dependencies file for user_protocol_test.
# This may be replaced when dependencies are built.
