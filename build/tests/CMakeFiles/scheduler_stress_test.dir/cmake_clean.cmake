file(REMOVE_RECURSE
  "CMakeFiles/scheduler_stress_test.dir/sim/scheduler_stress_test.cc.o"
  "CMakeFiles/scheduler_stress_test.dir/sim/scheduler_stress_test.cc.o.d"
  "scheduler_stress_test"
  "scheduler_stress_test.pdb"
  "scheduler_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
