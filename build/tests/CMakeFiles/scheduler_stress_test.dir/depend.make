# Empty dependencies file for scheduler_stress_test.
# This may be replaced when dependencies are built.
