file(REMOVE_RECURSE
  "CMakeFiles/multi_group_test.dir/core/multi_group_test.cc.o"
  "CMakeFiles/multi_group_test.dir/core/multi_group_test.cc.o.d"
  "multi_group_test"
  "multi_group_test.pdb"
  "multi_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
