# Empty compiler generated dependencies file for async_edge_test.
# This may be replaced when dependencies are built.
