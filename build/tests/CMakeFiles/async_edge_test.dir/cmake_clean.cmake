file(REMOVE_RECURSE
  "CMakeFiles/async_edge_test.dir/core/async_edge_test.cc.o"
  "CMakeFiles/async_edge_test.dir/core/async_edge_test.cc.o.d"
  "async_edge_test"
  "async_edge_test.pdb"
  "async_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
