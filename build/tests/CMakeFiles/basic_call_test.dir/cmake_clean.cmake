file(REMOVE_RECURSE
  "CMakeFiles/basic_call_test.dir/core/basic_call_test.cc.o"
  "CMakeFiles/basic_call_test.dir/core/basic_call_test.cc.o.d"
  "basic_call_test"
  "basic_call_test.pdb"
  "basic_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
