# Empty compiler generated dependencies file for basic_call_test.
# This may be replaced when dependencies are built.
