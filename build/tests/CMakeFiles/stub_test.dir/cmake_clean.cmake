file(REMOVE_RECURSE
  "CMakeFiles/stub_test.dir/stub/stub_test.cc.o"
  "CMakeFiles/stub_test.dir/stub/stub_test.cc.o.d"
  "stub_test"
  "stub_test.pdb"
  "stub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
