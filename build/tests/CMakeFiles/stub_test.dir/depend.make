# Empty dependencies file for stub_test.
# This may be replaced when dependencies are built.
