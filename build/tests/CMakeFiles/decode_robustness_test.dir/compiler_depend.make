# Empty compiler generated dependencies file for decode_robustness_test.
# This may be replaced when dependencies are built.
