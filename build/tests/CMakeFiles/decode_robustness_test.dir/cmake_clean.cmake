file(REMOVE_RECURSE
  "CMakeFiles/decode_robustness_test.dir/net/decode_robustness_test.cc.o"
  "CMakeFiles/decode_robustness_test.dir/net/decode_robustness_test.cc.o.d"
  "decode_robustness_test"
  "decode_robustness_test.pdb"
  "decode_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
