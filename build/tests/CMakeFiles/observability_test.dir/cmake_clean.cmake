file(REMOVE_RECURSE
  "CMakeFiles/observability_test.dir/core/observability_test.cc.o"
  "CMakeFiles/observability_test.dir/core/observability_test.cc.o.d"
  "observability_test"
  "observability_test.pdb"
  "observability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
