# Empty dependencies file for observability_test.
# This may be replaced when dependencies are built.
