# Empty compiler generated dependencies file for ugrpc_membership.
# This may be replaced when dependencies are built.
