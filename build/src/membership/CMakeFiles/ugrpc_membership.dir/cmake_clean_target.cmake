file(REMOVE_RECURSE
  "libugrpc_membership.a"
)
