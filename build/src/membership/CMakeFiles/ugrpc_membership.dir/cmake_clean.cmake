file(REMOVE_RECURSE
  "CMakeFiles/ugrpc_membership.dir/membership.cc.o"
  "CMakeFiles/ugrpc_membership.dir/membership.cc.o.d"
  "libugrpc_membership.a"
  "libugrpc_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugrpc_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
