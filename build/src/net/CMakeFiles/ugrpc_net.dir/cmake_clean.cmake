file(REMOVE_RECURSE
  "CMakeFiles/ugrpc_net.dir/network.cc.o"
  "CMakeFiles/ugrpc_net.dir/network.cc.o.d"
  "libugrpc_net.a"
  "libugrpc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugrpc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
