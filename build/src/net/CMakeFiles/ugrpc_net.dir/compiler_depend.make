# Empty compiler generated dependencies file for ugrpc_net.
# This may be replaced when dependencies are built.
