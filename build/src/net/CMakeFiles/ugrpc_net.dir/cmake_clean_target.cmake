file(REMOVE_RECURSE
  "libugrpc_net.a"
)
