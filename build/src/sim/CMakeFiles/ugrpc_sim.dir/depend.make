# Empty dependencies file for ugrpc_sim.
# This may be replaced when dependencies are built.
