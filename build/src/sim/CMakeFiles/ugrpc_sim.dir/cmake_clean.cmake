file(REMOVE_RECURSE
  "CMakeFiles/ugrpc_sim.dir/scheduler.cc.o"
  "CMakeFiles/ugrpc_sim.dir/scheduler.cc.o.d"
  "libugrpc_sim.a"
  "libugrpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugrpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
