file(REMOVE_RECURSE
  "libugrpc_sim.a"
)
