file(REMOVE_RECURSE
  "CMakeFiles/ugrpc_common.dir/buffer.cc.o"
  "CMakeFiles/ugrpc_common.dir/buffer.cc.o.d"
  "CMakeFiles/ugrpc_common.dir/log.cc.o"
  "CMakeFiles/ugrpc_common.dir/log.cc.o.d"
  "libugrpc_common.a"
  "libugrpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugrpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
