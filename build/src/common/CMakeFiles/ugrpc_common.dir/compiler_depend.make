# Empty compiler generated dependencies file for ugrpc_common.
# This may be replaced when dependencies are built.
