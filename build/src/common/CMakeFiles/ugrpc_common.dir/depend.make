# Empty dependencies file for ugrpc_common.
# This may be replaced when dependencies are built.
