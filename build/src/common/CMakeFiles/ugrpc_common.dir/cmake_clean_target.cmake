file(REMOVE_RECURSE
  "libugrpc_common.a"
)
