# Empty compiler generated dependencies file for ugrpc_runtime.
# This may be replaced when dependencies are built.
