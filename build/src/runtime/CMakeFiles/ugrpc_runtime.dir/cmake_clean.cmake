file(REMOVE_RECURSE
  "CMakeFiles/ugrpc_runtime.dir/framework.cc.o"
  "CMakeFiles/ugrpc_runtime.dir/framework.cc.o.d"
  "libugrpc_runtime.a"
  "libugrpc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugrpc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
