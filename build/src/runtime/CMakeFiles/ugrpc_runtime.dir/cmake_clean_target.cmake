file(REMOVE_RECURSE
  "libugrpc_runtime.a"
)
