# Empty dependencies file for ugrpc_core.
# This may be replaced when dependencies are built.
