file(REMOVE_RECURSE
  "libugrpc_core.a"
)
