
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/composite.cc" "src/core/CMakeFiles/ugrpc_core.dir/composite.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/composite.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/ugrpc_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/config.cc.o.d"
  "/root/repo/src/core/events.cc" "src/core/CMakeFiles/ugrpc_core.dir/events.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/events.cc.o.d"
  "/root/repo/src/core/micro/acceptance.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/acceptance.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/acceptance.cc.o.d"
  "/root/repo/src/core/micro/atomic_execution.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/atomic_execution.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/atomic_execution.cc.o.d"
  "/root/repo/src/core/micro/bounded_termination.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/bounded_termination.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/bounded_termination.cc.o.d"
  "/root/repo/src/core/micro/call_semantics.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/call_semantics.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/call_semantics.cc.o.d"
  "/root/repo/src/core/micro/collation.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/collation.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/collation.cc.o.d"
  "/root/repo/src/core/micro/fifo_order.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/fifo_order.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/fifo_order.cc.o.d"
  "/root/repo/src/core/micro/interference_avoidance.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/interference_avoidance.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/interference_avoidance.cc.o.d"
  "/root/repo/src/core/micro/reliable_communication.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/reliable_communication.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/reliable_communication.cc.o.d"
  "/root/repo/src/core/micro/rpc_main.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/rpc_main.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/rpc_main.cc.o.d"
  "/root/repo/src/core/micro/serial_execution.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/serial_execution.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/serial_execution.cc.o.d"
  "/root/repo/src/core/micro/terminate_orphan.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/terminate_orphan.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/terminate_orphan.cc.o.d"
  "/root/repo/src/core/micro/total_order.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/total_order.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/total_order.cc.o.d"
  "/root/repo/src/core/micro/unique_execution.cc" "src/core/CMakeFiles/ugrpc_core.dir/micro/unique_execution.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/micro/unique_execution.cc.o.d"
  "/root/repo/src/core/p2p_rpc.cc" "src/core/CMakeFiles/ugrpc_core.dir/p2p_rpc.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/p2p_rpc.cc.o.d"
  "/root/repo/src/core/properties.cc" "src/core/CMakeFiles/ugrpc_core.dir/properties.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/properties.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/ugrpc_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/site.cc" "src/core/CMakeFiles/ugrpc_core.dir/site.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/site.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/ugrpc_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/ugrpc_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ugrpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ugrpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ugrpc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ugrpc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/ugrpc_membership.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
