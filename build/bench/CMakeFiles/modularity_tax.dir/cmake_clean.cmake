file(REMOVE_RECURSE
  "CMakeFiles/modularity_tax.dir/modularity_tax.cc.o"
  "CMakeFiles/modularity_tax.dir/modularity_tax.cc.o.d"
  "modularity_tax"
  "modularity_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modularity_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
