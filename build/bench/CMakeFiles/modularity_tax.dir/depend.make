# Empty dependencies file for modularity_tax.
# This may be replaced when dependencies are built.
