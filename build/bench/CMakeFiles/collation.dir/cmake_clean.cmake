file(REMOVE_RECURSE
  "CMakeFiles/collation.dir/collation.cc.o"
  "CMakeFiles/collation.dir/collation.cc.o.d"
  "collation"
  "collation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
