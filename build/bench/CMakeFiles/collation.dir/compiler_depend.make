# Empty compiler generated dependencies file for collation.
# This may be replaced when dependencies are built.
