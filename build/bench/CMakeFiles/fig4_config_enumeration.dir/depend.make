# Empty dependencies file for fig4_config_enumeration.
# This may be replaced when dependencies are built.
