file(REMOVE_RECURSE
  "CMakeFiles/fig4_config_enumeration.dir/fig4_config_enumeration.cc.o"
  "CMakeFiles/fig4_config_enumeration.dir/fig4_config_enumeration.cc.o.d"
  "fig4_config_enumeration"
  "fig4_config_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_config_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
