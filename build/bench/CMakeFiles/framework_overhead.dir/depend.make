# Empty dependencies file for framework_overhead.
# This may be replaced when dependencies are built.
