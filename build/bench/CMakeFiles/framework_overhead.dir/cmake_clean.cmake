file(REMOVE_RECURSE
  "CMakeFiles/framework_overhead.dir/framework_overhead.cc.o"
  "CMakeFiles/framework_overhead.dir/framework_overhead.cc.o.d"
  "framework_overhead"
  "framework_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
