# Empty dependencies file for ordering_acceptance.
# This may be replaced when dependencies are built.
