file(REMOVE_RECURSE
  "CMakeFiles/ordering_acceptance.dir/ordering_acceptance.cc.o"
  "CMakeFiles/ordering_acceptance.dir/ordering_acceptance.cc.o.d"
  "ordering_acceptance"
  "ordering_acceptance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
