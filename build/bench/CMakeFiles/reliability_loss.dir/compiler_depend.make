# Empty compiler generated dependencies file for reliability_loss.
# This may be replaced when dependencies are built.
