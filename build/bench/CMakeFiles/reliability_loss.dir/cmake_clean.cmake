file(REMOVE_RECURSE
  "CMakeFiles/reliability_loss.dir/reliability_loss.cc.o"
  "CMakeFiles/reliability_loss.dir/reliability_loss.cc.o.d"
  "reliability_loss"
  "reliability_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
