file(REMOVE_RECURSE
  "CMakeFiles/fig2_property_graph.dir/fig2_property_graph.cc.o"
  "CMakeFiles/fig2_property_graph.dir/fig2_property_graph.cc.o.d"
  "fig2_property_graph"
  "fig2_property_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_property_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
