# Empty dependencies file for fig2_property_graph.
# This may be replaced when dependencies are built.
