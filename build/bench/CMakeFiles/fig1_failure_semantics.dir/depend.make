# Empty dependencies file for fig1_failure_semantics.
# This may be replaced when dependencies are built.
