file(REMOVE_RECURSE
  "CMakeFiles/fig1_failure_semantics.dir/fig1_failure_semantics.cc.o"
  "CMakeFiles/fig1_failure_semantics.dir/fig1_failure_semantics.cc.o.d"
  "fig1_failure_semantics"
  "fig1_failure_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_failure_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
