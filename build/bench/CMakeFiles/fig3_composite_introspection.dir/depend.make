# Empty dependencies file for fig3_composite_introspection.
# This may be replaced when dependencies are built.
