file(REMOVE_RECURSE
  "CMakeFiles/fig3_composite_introspection.dir/fig3_composite_introspection.cc.o"
  "CMakeFiles/fig3_composite_introspection.dir/fig3_composite_introspection.cc.o.d"
  "fig3_composite_introspection"
  "fig3_composite_introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_composite_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
