// Deterministic random number generator (xoshiro256** seeded via splitmix64).
//
// Every source of randomness in a simulation run -- network fault decisions,
// delay jitter, workload generation -- draws from one seeded Rng (or from
// Rngs forked from it), so a run is fully determined by its seed.  We do not
// use <random> engines because their distributions are not guaranteed to be
// identical across standard library implementations.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.h"

namespace ugrpc::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    UGRPC_ASSERT(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % range);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    UGRPC_ASSERT(mean > 0);
    return -mean * std::log1p(-uniform());
  }

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not shift another.
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace ugrpc::sim
