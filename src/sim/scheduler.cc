#include "sim/scheduler.h"

#include <utility>

#include "common/log.h"

namespace ugrpc::sim {

Scheduler::Scheduler(std::uint64_t seed) : rng_(seed) {}

Scheduler::~Scheduler() {
  // Destroy remaining fibers explicitly; their awaiter destructors unlink
  // from ready_/timer queues, which must still be alive here.
  fibers_.clear();
}

FiberId Scheduler::spawn(Task<> task, DomainId domain) {
  UGRPC_ASSERT(task.valid());
  const FiberId fiber{next_fiber_++};
  auto [it, inserted] = fibers_.try_emplace(fiber);
  UGRPC_ASSERT(inserted);
  FiberState& state = it->second;
  state.task = std::move(task);
  state.domain = domain;
  auto handle = state.task.handle();
  handle.promise().root_scheduler = this;
  handle.promise().root_fiber = fiber;
  state.start_node.handle = handle;
  state.start_node.fiber = fiber;
  ready_.push_back(state.start_node);
  return fiber;
}

void Scheduler::kill(FiberId fiber) {
  UGRPC_ASSERT(fiber != current_fiber_ && "a fiber cannot kill itself");
  // Erasing the FiberState destroys the Task, which destroys the whole
  // coroutine chain; intrusive nodes unlink from ready_/wait queues.
  fibers_.erase(fiber);
}

void Scheduler::kill_domain(DomainId domain) {
  std::vector<FiberId> victims;
  victims.reserve(fibers_.size());
  for (const auto& [id, state] : fibers_) {
    if (state.domain == domain) victims.push_back(id);
  }
  for (FiberId id : victims) kill(id);

  std::vector<TimerId> dead_timers;
  for (const auto& [id, rec] : timers_) {
    if (rec.domain == domain) dead_timers.push_back(id);
  }
  for (TimerId id : dead_timers) cancel_timer(id);
}

DomainId Scheduler::current_domain() const {
  auto it = fibers_.find(current_fiber_);
  return it != fibers_.end() ? it->second.domain : kGlobalDomain;
}

TimerId Scheduler::schedule_after(Duration delay, std::function<void()> fn, DomainId domain) {
  UGRPC_ASSERT(delay >= 0);
  const TimerId id{next_timer_++};
  timers_.emplace(id, TimerRecord{std::move(fn), domain});
  timer_heap_.push(TimerEntry{now_ + delay, next_seq_++, id});
  return id;
}

void Scheduler::cancel_timer(TimerId id) {
  timers_.erase(id);  // heap entry is skipped lazily when popped
}

std::optional<Time> Scheduler::next_timer_deadline() {
  while (!timer_heap_.empty()) {
    const TimerEntry& entry = timer_heap_.top();
    if (timers_.contains(entry.id)) return entry.deadline;
    timer_heap_.pop();  // cancelled
  }
  return std::nullopt;
}

bool Scheduler::fire_due_timer() {
  while (!timer_heap_.empty()) {
    const TimerEntry entry = timer_heap_.top();
    auto it = timers_.find(entry.id);
    if (it == timers_.end()) {
      timer_heap_.pop();  // cancelled
      continue;
    }
    UGRPC_ASSERT(entry.deadline >= now_);
    now_ = entry.deadline;
    timer_heap_.pop();
    // Move the callback out before erasing so the callback may itself
    // register or cancel timers.
    std::function<void()> fn = std::move(it->second.fn);
    timers_.erase(it);
    fn();
    return true;
  }
  return false;
}

bool Scheduler::step() {
  if (ScheduleNode* node = ready_.pop_front()) {
    current_fiber_ = node->fiber;
    auto handle = node->handle;
    handle.resume();
    current_fiber_ = FiberId{0};
    if (pending_exception_) {
      auto ex = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(ex);
    }
    return true;
  }
  return fire_due_timer();
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(Time deadline) {
  for (;;) {
    if (!ready_.empty()) {
      (void)step();
      continue;
    }
    // Peek the next live timer without firing it.
    bool fired = false;
    while (!timer_heap_.empty()) {
      const TimerEntry& entry = timer_heap_.top();
      if (!timers_.contains(entry.id)) {
        timer_heap_.pop();
        continue;
      }
      if (entry.deadline > deadline) break;
      (void)fire_due_timer();
      fired = true;
      break;
    }
    if (fired) continue;
    break;  // quiescent until `deadline`
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::park_ready(ScheduleNode& node, std::coroutine_handle<> h) {
  node.handle = h;
  node.fiber = current_fiber_;
  ready_.push_back(node);
}

void Scheduler::fiber_finished(FiberId fiber) {
  auto it = fibers_.find(fiber);
  UGRPC_ASSERT(it != fibers_.end());
  // Surface unhandled fiber exceptions from step()/run(): a protocol fiber
  // that throws indicates a bug or a test assertion, never normal operation.
  auto handle = it->second.task.handle();
  if (handle.promise().exception && !pending_exception_) {
    pending_exception_ = handle.promise().exception;
  }
  fibers_.erase(it);
}

namespace detail {

void notify_fiber_finished(Scheduler& sched, FiberId fiber) { sched.fiber_finished(fiber); }

}  // namespace detail

}  // namespace ugrpc::sim
