// Discrete-event scheduler: the simulator's kernel.
//
// The scheduler owns (a) virtual time, (b) a FIFO ready list of suspended
// coroutines waiting to run "now", (c) a timer heap of callbacks to fire at
// future virtual times, and (d) the table of spawned fibers.  Execution is
// single-threaded and cooperative: `step()` resumes one ready coroutine or,
// if none is ready, advances the clock to the next timer.  Determinism
// follows from FIFO ready order and (deadline, registration-sequence) timer
// order.
//
// Fibers are the unit of kill: `spawn` creates one from a Task<> and tags it
// with a DomainId (one domain per simulated site), `kill` destroys a fiber's
// entire coroutine chain, and `kill_domain` does so for every fiber of a
// crashing site, also cancelling the site's timers.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/ids.h"
#include "sim/intrusive_list.h"
#include "sim/rng.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ugrpc::sim {

/// Domain used by fibers that do not belong to any crashable site.
inline constexpr DomainId kGlobalDomain{0};

/// A parked coroutine: lives inside an awaiter frame, unlinks itself from
/// whatever queue holds it when destroyed.  See intrusive_list.h.
class ScheduleNode : public ListNode {
 public:
  std::coroutine_handle<> handle;
  FiberId fiber;
};

class Scheduler {
 public:
  explicit Scheduler(std::uint64_t seed = 1);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  // ---- time ----
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // ---- fibers ----

  /// Starts a new fiber running `task`, tagged with `domain`.  The task body
  /// begins executing when the scheduler next runs (not inline).
  FiberId spawn(Task<> task, DomainId domain = kGlobalDomain);

  /// Destroys a suspended fiber and its whole coroutine chain.  Destructors
  /// of in-scope locals run; wait-queue entries unlink.  It is a fatal error
  /// to kill the currently running fiber.  Killing an unknown/finished fiber
  /// is a no-op (the paper's kill(thread) races with thread completion).
  void kill(FiberId fiber);

  /// Kills every fiber of `domain` and cancels the domain's timers.  Models
  /// a site crash: all volatile threads of control vanish.
  void kill_domain(DomainId domain);

  /// Fiber currently executing (valid only while inside a resumed coroutine).
  [[nodiscard]] FiberId current_fiber() const { return current_fiber_; }
  [[nodiscard]] DomainId current_domain() const;
  [[nodiscard]] bool fiber_alive(FiberId fiber) const { return fibers_.contains(fiber); }
  [[nodiscard]] std::size_t live_fiber_count() const { return fibers_.size(); }

  // ---- timers ----

  /// Runs `fn` at virtual time now()+delay.  The callback executes inline in
  /// the scheduler loop (it typically spawns a fiber or releases a
  /// semaphore).  Returns an id usable with cancel_timer.
  TimerId schedule_after(Duration delay, std::function<void()> fn,
                         DomainId domain = kGlobalDomain);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void cancel_timer(TimerId id);

  /// Deadline of the earliest live timer, or no value when none is pending.
  /// Lazily discards cancelled heap entries, hence non-const.  Real-time
  /// drivers (net::UdpTransport) use this to size their poll timeout.
  [[nodiscard]] std::optional<Time> next_timer_deadline();

  /// True when a fiber is ready to run without advancing the clock.
  [[nodiscard]] bool has_ready() const { return !ready_.empty(); }

  // ---- running ----

  /// Executes one scheduling step.  Returns false when no work remains.
  bool step();

  /// Runs until the system is quiescent (no ready fibers, no timers).
  void run();

  /// Runs until quiescent or until virtual time would pass `deadline`;
  /// in the latter case the clock is left at `deadline`.
  void run_until(Time deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  // ---- awaitables ----

  /// co_await sched.sleep_for(d): suspends the caller for d of virtual time.
  [[nodiscard]] auto sleep_for(Duration d);

  /// co_await sched.yield(): re-queues the caller behind other ready fibers.
  [[nodiscard]] auto yield();

  // ---- internal (used by awaiters and sync primitives) ----

  /// Parks `node` on the ready list, stamping it with the current fiber.
  void park_ready(ScheduleNode& node, std::coroutine_handle<> h);
  /// Makes an already-stamped node (from a wait queue) ready to run.
  void make_ready(ScheduleNode& node) { ready_.push_back(node); }

 private:
  friend void detail::notify_fiber_finished(Scheduler& sched, FiberId fiber);

  struct FiberState {
    Task<> task;
    DomainId domain;
    ScheduleNode start_node;  // used once, to schedule the initial resume
  };

  struct TimerEntry {
    Time deadline;
    std::uint64_t seq;
    TimerId id;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  struct TimerRecord {
    std::function<void()> fn;
    DomainId domain;
  };

  void fiber_finished(FiberId fiber);
  bool fire_due_timer();

  Time now_ = kTimeZero;
  Rng rng_;
  IntrusiveList<ScheduleNode> ready_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timer_heap_;
  std::unordered_map<TimerId, TimerRecord> timers_;
  std::unordered_map<FiberId, FiberState> fibers_;
  FiberId current_fiber_{0};
  std::uint64_t next_fiber_ = 1;
  std::uint64_t next_timer_ = 1;
  std::uint64_t next_seq_ = 1;
  std::exception_ptr pending_exception_;
};

inline auto Scheduler::sleep_for(Duration d) {
  struct SleepAwaiter {
    Scheduler& sched;
    Duration delay;
    ScheduleNode node;
    TimerId timer{};
    bool fired = false;

    [[nodiscard]] bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      node.handle = h;
      node.fiber = sched.current_fiber();
      timer = sched.schedule_after(delay, [this] {
        fired = true;
        sched.make_ready(node);
      });
    }
    void await_resume() noexcept {}
    ~SleepAwaiter() {
      // Frame destroyed while still sleeping: cancel the timer so its
      // callback never touches this (freed) awaiter.
      if (!fired && timer != TimerId{}) sched.cancel_timer(timer);
    }
  };
  return SleepAwaiter{*this, d, {}, {}, false};
}

inline auto Scheduler::yield() {
  struct YieldAwaiter {
    Scheduler& sched;
    ScheduleNode node;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sched.park_ready(node, h); }
    void await_resume() const noexcept {}
  };
  return YieldAwaiter{*this, {}};
}

}  // namespace ugrpc::sim
