// Virtual time for the discrete-event simulator.
//
// Time is an integer count of microseconds since simulation start; integer
// arithmetic keeps runs bit-for-bit reproducible across platforms (floating
// point would not).  Durations are signed so arithmetic composes naturally.
#pragma once

#include <cstdint>

namespace ugrpc::sim {

/// Absolute virtual time, microseconds since simulation start.
using Time = std::int64_t;
/// Time difference, microseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;

[[nodiscard]] constexpr Duration usec(std::int64_t n) { return n; }
[[nodiscard]] constexpr Duration msec(std::int64_t n) { return n * 1000; }
[[nodiscard]] constexpr Duration seconds(std::int64_t n) { return n * 1'000'000; }

[[nodiscard]] constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }
[[nodiscard]] constexpr double to_msec(Duration d) { return static_cast<double>(d) / 1e3; }

}  // namespace ugrpc::sim
