// Synchronization primitives for simulated threads.
//
// Semaphore gives the paper's P/V: `co_await sem.acquire()` is P, `release()`
// is V.  release() uses direct handoff -- if a waiter is parked, it receives
// the token and is moved to the scheduler's ready list (it runs later, not
// inline), matching the paper's model where V makes a blocked thread
// runnable.  Mutex is a binary semaphore with an RAII guard for scoped
// critical sections.
#pragma once

#include <coroutine>
#include <utility>

#include "common/assert.h"
#include "sim/intrusive_list.h"
#include "sim/scheduler.h"

namespace ugrpc::sim {

class Semaphore {
 public:
  Semaphore(Scheduler& sched, int initial) : sched_(sched), count_(initial) {
    UGRPC_ASSERT(initial >= 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// P operation: decrements the count, suspending until positive.
  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      ScheduleNode node;
      [[nodiscard]] bool await_ready() {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        node.fiber = sem.sched_.current_fiber();
        sem.waiters_.push_back(node);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, {}};
  }

  /// Non-blocking P: returns true and decrements if the count is positive.
  bool try_acquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  /// V operation: wakes the oldest waiter (direct handoff) or increments.
  void release() {
    if (ScheduleNode* waiter = waiters_.pop_front()) {
      sched_.make_ready(*waiter);
    } else {
      ++count_;
    }
  }

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] bool has_waiters() { return !waiters_.empty(); }

 private:
  Scheduler& sched_;
  int count_;
  IntrusiveList<ScheduleNode> waiters_;
};

/// Binary mutual exclusion with RAII unlock.
///
/// Usage:  auto guard = co_await mutex.lock();
///
/// With cooperative scheduling a critical section only needs a mutex if it
/// spans a suspension point; the paper's pRPC/sRPC table mutexes do (e.g.
/// Serial Execution blocks mid-event), so we keep them, faithfully.
class Mutex {
 public:
  explicit Mutex(Scheduler& sched) : sem_(sched, 1) {}

  class [[nodiscard]] Guard {
   public:
    explicit Guard(Mutex* m) : mutex_(m) {}
    Guard(Guard&& other) noexcept : mutex_(std::exchange(other.mutex_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        reset();
        mutex_ = std::exchange(other.mutex_, nullptr);
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { reset(); }

    void reset() {
      if (mutex_ != nullptr) std::exchange(mutex_, nullptr)->unlock();
    }

   private:
    Mutex* mutex_;
  };

  /// Acquires the mutex; the returned Guard releases it when destroyed.
  [[nodiscard]] Task<Guard> lock() {
    co_await sem_.acquire();
    co_return Guard(this);
  }

  void unlock() { sem_.release(); }

 private:
  Semaphore sem_;
};

}  // namespace ugrpc::sim
