// Coroutine task type used as the simulator's "thread" abstraction.
//
// The paper's execution model has event handlers and user threads that block
// on semaphores (P/V).  We model each such thread as a C++20 coroutine:
// blocking operations are awaitables that suspend the coroutine and park it
// in a wait queue; the Scheduler resumes it later.  This gives the paper's
// blocking semantics with fully deterministic, cooperative scheduling.
//
// Ownership discipline (what makes kill() safe):
//  * A Task object owns its coroutine frame and destroys it in its
//    destructor.
//  * `co_await some_task()` keeps the child Task as a temporary in the
//    parent's frame, so destroying the root frame cascades down the entire
//    await chain, running destructors of every in-scope local (RAII).
//  * Awaiters that park in wait queues unlink themselves on destruction
//    (see intrusive_list.h), so destroying a suspended chain never leaves a
//    dangling queue entry.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/ids.h"

namespace ugrpc::sim {

class Scheduler;

namespace detail {

struct PromiseBase {
  /// Coroutine to resume when this one finishes (the awaiting parent).
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  /// Set only on root (spawned) tasks; used to notify the scheduler.
  Scheduler* root_scheduler = nullptr;
  FiberId root_fiber;

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept;

    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a value of type T (or void).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] handle_type handle() const { return handle_; }
  /// Transfers frame ownership to the caller (used by Scheduler::spawn).
  handle_type release() { return std::exchange(handle_, {}); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type child;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      T await_resume() {
        if (child.promise().exception) std::rethrow_exception(child.promise().exception);
        return std::move(*child.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] handle_type handle() const { return handle_; }
  handle_type release() { return std::exchange(handle_, {}); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type child;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() {
        if (child.promise().exception) std::rethrow_exception(child.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_;
};

namespace detail {

// Defined in scheduler.h (needs the full Scheduler type).
void notify_fiber_finished(Scheduler& sched, FiberId fiber);

template <typename Promise>
std::coroutine_handle<> PromiseBase::FinalAwaiter::await_suspend(
    std::coroutine_handle<Promise> h) noexcept {
  auto& promise = h.promise();
  if (promise.continuation) {
    return promise.continuation;  // resume the awaiting parent
  }
  if (promise.root_scheduler != nullptr) {
    // Root of a spawned fiber: tell the scheduler, which erases the fiber
    // record and thereby destroys this frame.  Only stack locals may be
    // touched afterwards.
    Scheduler& sched = *promise.root_scheduler;
    const FiberId fiber = promise.root_fiber;
    notify_fiber_finished(sched, fiber);
    return std::noop_coroutine();
  }
  // A detached task that nobody awaits and nobody spawned: not supported.
  UGRPC_ASSERT(false && "Task finished with no continuation and no scheduler");
  return std::noop_coroutine();
}

}  // namespace detail

}  // namespace ugrpc::sim
