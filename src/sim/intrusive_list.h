// Intrusive doubly-linked list used by the simulator's wait queues.
//
// Why intrusive: a suspended coroutine may be destroyed (site crash, orphan
// kill) while it is parked in a semaphore wait queue or the scheduler's ready
// list.  Each parked coroutine is represented by a node that lives inside the
// awaiter object in the coroutine frame; when the frame is destroyed the
// node's destructor unlinks it, so no queue is ever left holding a dangling
// pointer.  This property is what makes `Scheduler::kill` safe.
#pragma once

#include "common/assert.h"

namespace ugrpc::sim {

class ListNode {
 public:
  ListNode() = default;

  ListNode(const ListNode&) = delete;
  ListNode& operator=(const ListNode&) = delete;

  ~ListNode() { unlink(); }

  [[nodiscard]] bool linked() const { return next_ != nullptr; }

  void unlink() {
    if (!linked()) return;
    prev_->next_ = next_;
    next_->prev_ = prev_;
    prev_ = next_ = nullptr;
  }

 private:
  template <typename T>
  friend class IntrusiveList;

  ListNode* prev_ = nullptr;
  ListNode* next_ = nullptr;
};

/// FIFO list of T, where T publicly derives from ListNode.  Does not own its
/// elements; elements remove themselves on destruction.
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() {
    // Elements outliving the list would be left with dangling sentinel
    // pointers; unlink them all defensively.
    while (!empty()) pop_front();
  }

  [[nodiscard]] bool empty() const { return head_.next_ == &head_; }

  void push_back(T& elem) {
    ListNode& node = elem;
    UGRPC_ASSERT(!node.linked());
    node.prev_ = head_.prev_;
    node.next_ = &head_;
    head_.prev_->next_ = &node;
    head_.prev_ = &node;
  }

  /// Removes and returns the oldest element, or nullptr if empty.
  T* pop_front() {
    if (empty()) return nullptr;
    ListNode* node = head_.next_;
    node->unlink();
    return static_cast<T*>(node);
  }

  [[nodiscard]] T* front() { return empty() ? nullptr : static_cast<T*>(head_.next_); }

 private:
  ListNode head_;
};

}  // namespace ugrpc::sim
