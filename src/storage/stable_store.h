// Simulated stable storage.
//
// The paper's Atomic Execution micro-protocol assumes `checkpoint()` /
// `load(address)` operations against storage that survives crashes, plus
// "stable variables" whose assignment is atomic.  StableStore models exactly
// that: one instance per site, owned by the Site object *outside* the
// volatile protocol stack, so Site::crash() destroys the stack but leaves the
// store intact.  An optional per-write latency charges virtual time for
// checkpointing, which the benchmarks use to show the cost of atomic
// execution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/buffer.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ugrpc::storage {

/// Address of a stored checkpoint (paper: "address of the storage location").
struct StableAddressTag {};
using StableAddress = ugrpc::detail::TaggedId<StableAddressTag, std::uint64_t>;

class StableStore {
 public:
  explicit StableStore(sim::Scheduler& sched, sim::Duration write_latency = 0)
      : sched_(sched), write_latency_(write_latency) {}

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // ---- raw key/value area (server applications with stable state) ----
  void put(const std::string& key, Buffer value) { kv_[key] = std::move(value); }
  [[nodiscard]] std::optional<Buffer> get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }
  void erase(const std::string& key) { kv_.erase(key); }
  [[nodiscard]] bool contains(const std::string& key) const { return kv_.contains(key); }
  [[nodiscard]] std::size_t key_count() const { return kv_.size(); }

  /// put() that charges the configured write latency to the calling fiber.
  [[nodiscard]] sim::Task<> put_async(std::string key, Buffer value) {
    co_await sched_.sleep_for(write_latency_);
    put(key, std::move(value));
  }

  // ---- checkpoint area (Atomic Execution) ----

  /// Writes a checkpoint, returning its address.  Old checkpoints are kept
  /// until released; the caller implements the old/new switch-over.
  [[nodiscard]] StableAddress store_checkpoint(Buffer snapshot) {
    const StableAddress addr{next_checkpoint_++};
    checkpoints_[addr] = std::move(snapshot);
    return addr;
  }
  [[nodiscard]] sim::Task<StableAddress> store_checkpoint_async(Buffer snapshot) {
    co_await sched_.sleep_for(write_latency_);
    co_return store_checkpoint(std::move(snapshot));
  }
  [[nodiscard]] std::optional<Buffer> load_checkpoint(StableAddress addr) const {
    auto it = checkpoints_.find(addr);
    if (it == checkpoints_.end()) return std::nullopt;
    return it->second;
  }
  void release_checkpoint(StableAddress addr) { checkpoints_.erase(addr); }
  [[nodiscard]] std::size_t checkpoint_count() const { return checkpoints_.size(); }

  // ---- stable variables (atomic assignment, paper section 4.4.5) ----
  void set_var(const std::string& name, std::uint64_t value) { vars_[name] = value; }
  [[nodiscard]] std::optional<std::uint64_t> var(const std::string& name) const {
    auto it = vars_.find(name);
    if (it == vars_.end()) return std::nullopt;
    return it->second;
  }
  void clear_var(const std::string& name) { vars_.erase(name); }

  [[nodiscard]] sim::Duration write_latency() const { return write_latency_; }
  void set_write_latency(sim::Duration d) { write_latency_ = d; }

 private:
  sim::Scheduler& sched_;
  sim::Duration write_latency_;
  std::unordered_map<std::string, Buffer> kv_;
  std::unordered_map<StableAddress, Buffer> checkpoints_;
  std::unordered_map<std::string, std::uint64_t> vars_;
  std::uint64_t next_checkpoint_ = 1;
};

}  // namespace ugrpc::storage
