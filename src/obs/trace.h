// Structured call-trace observability (tentpole of ISSUE 3).
//
// The paper's claims -- exactly-once vs at-most-once, bounded termination,
// orphan cleanup, FIFO/total delivery order -- are *semantic*: they speak
// about which events may or may not occur in an execution.  This layer turns
// every run into a machine-checkable event log:
//
//   * Tracer owns one ring buffer per site (process).  Components record
//     typed Event entries -- call issued/completed, event triggered/handled,
//     message sent/delivered/dropped/duplicated, timer armed/fired/cancelled,
//     execution started/committed, checkpoint/restore, orphan killed, site
//     crash/recovery -- stamped with the site's clock and a tracer-global
//     sequence number.  In the deterministic simulator the sequence number is
//     a total order consistent with causality, so merging the per-site rings
//     by sequence yields a faithful global history.
//   * obs::check (checker.h) replays a merged trace against the invariants
//     the selected micro-protocol set promises.
//
// Cost model: tracing is OFF unless a Tracer is attached.  Every record site
// is guarded by a single pointer null-check, so the dispatch and transport
// hot paths are unchanged when disabled (BENCH_dispatch / BENCH_transport
// medians are pinned by the acceptance criteria of ISSUE 3).  When enabled,
// record() is an inline bump of a preallocated ring -- no allocation, no
// formatting, no I/O.
//
// Layering: obs depends only on common + sim, so both the network fabric
// (src/net) and the protocol stack (src/core) can record into it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "obs/span.h"
#include "sim/time.h"

namespace ugrpc::obs {

/// Typed trace event kinds.  `call`/`a`/`b` operand meaning per kind is
/// documented inline; 0 means "not applicable".
enum class Kind : std::uint8_t {
  // Call lifecycle (client side).
  kCallIssued,     ///< call=id, a=server group, b=client incarnation
  kCallCompleted,  ///< call=id, a=Status value (0 ok, 2 timeout)
  // Framework dispatch.
  kEventTriggered,  ///< a=event id, name=event name
  kEventHandled,    ///< a=event id, b=priority, name=handler name
  // Transport.
  kMsgSent,        ///< a=peer (dst), b=protocol id
  kMsgDelivered,   ///< a=peer (src), b=protocol id
  kMsgDropped,     ///< a=peer, b=protocol id
  kMsgDuplicated,  ///< a=peer (dst), b=protocol id
  kMsgUnroutable,  ///< a=peer or group, b=protocol id
  // Timers (framework TIMEOUT registrations).
  kTimerArmed,      ///< a=timer id, b=delay, name=timer name
  kTimerFired,      ///< a=timer id, name=timer name
  kTimerCancelled,  ///< a=timer id
  // Server-side execution.
  kExecStarted,    ///< call=id, a=client process, b=client incarnation
  kExecCommitted,  ///< call=id, a=client process, b=client incarnation
  kDupSuppressed,  ///< call=id (Unique Execution answered/dropped a duplicate)
  kRetransmit,     ///< call=id, a=destination process
  kCheckpoint,     ///< a=stable checkpoint address (Atomic Execution)
  kStateRestored,  ///< a=stable checkpoint address (recovery rollback)
  kOrphanKilled,   ///< a=client process, b=fiber id
  kCallDeferred,   ///< call=id, a=client process (Interference Avoidance)
  kStaleDropped,   ///< call=id (ordering dropped an orphaned/executed call)
  kCallHeld,       ///< call=id, a=HoldIndex (ordering gate not yet satisfied)
  kCallReleased,   ///< call=id, a=HoldIndex (gate opened)
  kSerialAcquired, ///< call=id (Serial Execution token)
  kSerialReleased, ///< call=id
  kDeadlineExpired,///< call=id (Bounded Termination fired)
  // Site lifecycle.
  kSiteCrashed,    ///< a=incarnation that died
  kSiteRecovered,  ///< a=new incarnation
  kKindCount,      ///< sentinel, not a real kind
};

inline constexpr std::size_t kKindCount = static_cast<std::size_t>(Kind::kKindCount);

/// Short stable name, e.g. "exec_committed" (used in JSON dumps).
[[nodiscard]] std::string_view kind_name(Kind k);

/// Inverse of kind_name (flight-recorder dumps are reloaded through this);
/// kKindCount for an unknown name.
[[nodiscard]] Kind kind_from_name(std::string_view name);

/// One trace record.  Plain data; 48 bytes.
struct Event {
  std::uint64_t seq = 0;   ///< tracer-global, monotonically increasing
  sim::Time time = 0;      ///< site clock (virtual or steady, per backend)
  ProcessId site;          ///< which site's ring recorded it
  Kind kind = Kind::kKindCount;
  std::uint32_t name = 0;  ///< interned string id, 0 = none
  std::uint64_t call = 0;  ///< raw CallId, 0 = none
  std::uint64_t a = 0;     ///< kind-specific (see Kind)
  std::uint64_t b = 0;     ///< kind-specific (see Kind)
};

class Tracer;

/// Per-site ring buffer.  Owned by a Tracer; components hold a raw pointer
/// (nullptr = tracing disabled) and call record().
class SiteTrace {
 public:
  /// Appends an event; overwrites the oldest entry when the ring is full
  /// (dropped() counts the overwritten ones).
  void record(sim::Time time, Kind kind, std::uint64_t call = 0, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint32_t name = 0);

  /// Interns `s` in the owning tracer's string table (for the name field).
  [[nodiscard]] std::uint32_t intern(std::string_view s);

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] ProcessId site() const { return site_; }

  // ---- spans (performance tracing; span.h) ----

  /// Opens a span at transport time `t` under context `ctx` (trace inherited
  /// from ctx; parent = ctx.parent).  Returns the span id, or 0 when the
  /// per-site span budget is exhausted (close(0) is a no-op, so callers need
  /// no extra branch).  Also stamps the steady clock for cost attribution.
  [[nodiscard]] std::uint64_t span_open(sim::Time t, SpanKind kind, std::uint32_t name,
                                        const SpanCtx& ctx, std::uint64_t a = 0);
  /// Closes an open span; no-op for id 0 or an unknown/already-closed id.
  void span_close(std::uint64_t id, sim::Time t);
  /// Marks a span (e.g. the delivery of a duplicated packet).
  void span_flag(std::uint64_t id);
  /// The context a child of `id` should run under ({trace-of-id, id});
  /// {0, id} when `id` is unknown (the link is still recorded).
  [[nodiscard]] SpanCtx ctx_of(std::uint64_t id) const;

  /// All spans recorded so far (open ones have end == -1), in open order.
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }

  // ---- ambient per-fiber context ----
  //
  // Which trace the code currently running in a fiber belongs to.  The
  // framework saves/sets/restores this around handler invocations, the
  // transports read it at send time to stamp outgoing frames, and delivery /
  // timer wrappers seed it for fresh fibers.  Keyed per fiber because the
  // cooperative scheduler interleaves fibers at suspension points -- one
  // site-global "current" would be clobbered by whichever fiber ran last.

  [[nodiscard]] SpanCtx current(std::uint64_t fiber) const {
    auto it = fiber_ctx_.find(fiber);
    return it != fiber_ctx_.end() ? it->second : SpanCtx{};
  }
  void set_current(std::uint64_t fiber, const SpanCtx& ctx) { fiber_ctx_[fiber] = ctx; }
  /// Reclaims a finished fiber's entry (delivery/timer wrappers call this).
  void clear_current(std::uint64_t fiber) { fiber_ctx_.erase(fiber); }

 private:
  friend class Tracer;
  SiteTrace(Tracer& tracer, ProcessId site, std::size_t capacity)
      : tracer_(tracer), site_(site), ring_(capacity), span_capacity_(capacity) {}

  Tracer& tracer_;
  ProcessId site_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< live entries (<= capacity)
  std::uint64_t dropped_ = 0;

  std::size_t span_capacity_;
  std::vector<SpanRecord> spans_;  ///< append-only up to span_capacity_
  std::unordered_map<std::uint64_t, std::size_t> open_;  ///< span id -> index
  std::uint64_t spans_dropped_ = 0;
  std::unordered_map<std::uint64_t, SpanCtx> fiber_ctx_;
};

/// The per-experiment trace collector: a registry of per-site rings, a
/// shared string-intern table, and per-kind counters.
class Tracer {
 public:
  explicit Tracer(std::size_t per_site_capacity = 1 << 15);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The ring of `site`, created on first use.  The reference is stable for
  /// the tracer's lifetime (sites are node-allocated).
  [[nodiscard]] SiteTrace& site(ProcessId site);

  [[nodiscard]] std::uint32_t intern(std::string_view s);
  /// The interned string for `id`; "" for 0 or out of range.
  [[nodiscard]] const std::string& name(std::uint32_t id) const;

  /// All retained events of all sites merged into one history, ordered by
  /// sequence number (a causal total order in the deterministic simulator).
  [[nodiscard]] std::vector<Event> merged() const;

  /// All spans of all sites, ordered by open sequence (low 32 bits of id).
  [[nodiscard]] std::vector<SpanRecord> merged_spans() const;
  /// Spans discarded because a site hit its span budget.
  [[nodiscard]] std::uint64_t total_spans_dropped() const;

  /// Events recorded per kind since construction/clear (not capped by ring
  /// capacity -- these are exact counters).
  [[nodiscard]] std::uint64_t count(Kind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  /// Total events overwritten across all rings.  A non-zero value means
  /// merged() is an incomplete history (checker results are unreliable);
  /// size the per-site capacity for the experiment instead.
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Serializes the merged trace as a JSON array (one object per event).
  [[nodiscard]] std::string dump_json() const;

  void clear();

 private:
  friend class SiteTrace;

  std::size_t capacity_;
  std::map<ProcessId, std::unique_ptr<SiteTrace>> sites_;
  std::vector<std::string> names_;  ///< names_[0] == ""
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_span_seq_ = 1;  ///< low 32 bits of span ids
  std::uint64_t counts_[kKindCount] = {};
};

inline void SiteTrace::record(sim::Time time, Kind kind, std::uint64_t call, std::uint64_t a,
                              std::uint64_t b, std::uint32_t name) {
  Event& slot = ring_[head_];
  if (count_ == ring_.size()) {
    ++dropped_;
  } else {
    ++count_;
  }
  slot = Event{tracer_.next_seq_++, time, site_, kind, name, call, a, b};
  ++tracer_.counts_[static_cast<std::size_t>(kind)];
  head_ = (head_ + 1) % ring_.size();
}

}  // namespace ugrpc::obs
