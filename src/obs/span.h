// Per-call distributed spans (tentpole of ISSUE 4).
//
// The Tracer's Event ring answers "did the configuration keep its semantic
// promises?"; spans answer "where did the time go?".  A Span is an interval
// with a parent link, following the Dapper-style trace-context model:
//
//   * trace  -- which end-to-end activity this work belongs to.  Group RPC
//               calls use the CallId as the trace id (already globally
//               unique: client process in the high bits, incarnation +
//               sequence below), so a trace spans client, servers and
//               retransmissions without any id-allocation protocol.
//   * parent -- the span that caused this one: a message-delivery span
//               parents to the *send* span on the other side of the wire
//               (the send span id travels in the frame), a handler span
//               parents to its event-chain span, a timer-fire span to the
//               span that armed the timer.
//
// Spans carry two clocks: the transport clock (virtual time under
// SimTransport, microseconds of real time under UdpTransport) for ordering
// against the Event ring, and a raw steady-clock nanosecond stamp for cost
// attribution -- in the simulator, virtual handler time is always zero, so
// only the real clock can say what a micro-protocol costs.  The steady clock
// is system-wide (CLOCK_MONOTONIC), so spans exported from different OS
// processes on one host share a timebase.
//
// Storage and the open/close API live on SiteTrace (trace.h); this header
// defines only the plain-data types so net/ can carry a SpanCtx in Packet
// metadata without pulling in the collector.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/ids.h"
#include "sim/time.h"

namespace ugrpc::obs {

/// Compact trace context: propagated in wire frames / packet metadata and as
/// the per-fiber ambient context inside a site.  {0, 0} means "untraced".
struct SpanCtx {
  std::uint64_t trace = 0;   ///< trace id (CallId for call traces), 0 = none
  std::uint64_t parent = 0;  ///< causing span id, 0 = root

  [[nodiscard]] bool active() const { return trace != 0 || parent != 0; }
  friend bool operator==(const SpanCtx&, const SpanCtx&) = default;
};

/// What kind of work a span covers (Perfetto category / profile grouping).
enum class SpanKind : std::uint8_t {
  kEventChain,  ///< one Framework::trigger invocation (all handlers)
  kHandler,     ///< one handler of a chain (name = handler name)
  kTimer,       ///< a fired TIMEOUT handler (name = timer name)
  kWheelFire,   ///< a TimerWheel callback (transport-level timer)
  kSend,        ///< transport send/transmit of one packet
  kDeliver,     ///< transport delivery fiber (decode + demux + handler)
  kCall,        ///< client-side call lifetime (issue -> completion)
  kExec,        ///< server-side user-procedure execution
  kSpanKindCount,
};

inline constexpr std::size_t kSpanKindCount = static_cast<std::size_t>(SpanKind::kSpanKindCount);

[[nodiscard]] std::string_view span_kind_name(SpanKind k);

/// One completed (or still-open) span.  Plain data.
struct SpanRecord {
  std::uint64_t id = 0;      ///< (site << 32 | seq): unique across processes
  std::uint64_t trace = 0;   ///< 0 = untraced background work
  std::uint64_t parent = 0;  ///< parent span id, 0 = root
  sim::Time begin = 0;       ///< transport clock at open
  sim::Time end = -1;        ///< transport clock at close; -1 = still open
  std::uint64_t ns_begin = 0;  ///< steady clock (ns) at open
  std::uint64_t ns_end = 0;    ///< steady clock (ns) at close; 0 = still open
  ProcessId site;
  SpanKind kind = SpanKind::kSpanKindCount;
  std::uint32_t name = 0;  ///< interned string id, 0 = none
  std::uint64_t a = 0;     ///< kind-specific (peer, call id, timer id, ...)
  bool flagged = false;    ///< e.g. delivery of a duplicated packet

  [[nodiscard]] bool open() const { return ns_end == 0; }
  /// Cost in steady-clock nanoseconds (0 while open).
  [[nodiscard]] std::uint64_t wall_ns() const {
    return ns_end > ns_begin ? ns_end - ns_begin : 0;
  }
};

/// Steady-clock nanoseconds since an arbitrary (boot-stable, system-wide)
/// epoch; the second clock every span carries.
[[nodiscard]] inline std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace ugrpc::obs
