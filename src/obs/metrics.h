// Named counters / histograms / gauges, dumpable as JSON.
//
// Replaces ad-hoc per-component stats plumbing as the way benches and tests
// export numbers: components either own obs::Counter/obs::Histogram objects
// registered here, or bind existing fields as gauges (read-at-dump), so
// legacy structs like net::Stats surface in the same JSON artifact without
// hot-path changes.  A Registry is experiment-scoped (no globals): each
// bench builds one, lets components export into it, and dumps it alongside
// its results.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/assert.h"

namespace ugrpc::obs {

/// A monotonically increasing named count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-footprint value distribution: power-of-two buckets plus exact
/// count/sum/min/max.  Good enough for latency shapes without per-sample
/// allocation; quantiles are bucket-resolution estimates (upper bound).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;  ///< bucket i holds values with bit_width i

  void add(std::uint64_t v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    ++buckets_[bucket_of(v)];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  // ---- raw bucket access (exposition renderers) ----

  /// Samples in bucket i: values with bit_width i, i.e. in (upper(i-1),
  /// upper(i)].  Bucket kBuckets-1 additionally holds everything larger.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }
  /// Inclusive upper bound of bucket i (0, 1, 3, 7, ...; ~0 for the last).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    return (i >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << i) - 1);
  }

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 0) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Experiment-scoped registry of named metrics.  Names are dotted paths
/// ("net.sent", "call.latency_us"); references returned by counter() /
/// histogram() are stable for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);
  /// Binds an externally owned value; `read` is evaluated at dump time.
  void gauge(const std::string& name, std::function<std::uint64_t()> read);

  /// All metrics as one JSON object.  Histograms dump as
  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p99":..}.
  [[nodiscard]] std::string to_json() const;

  // ---- read-only iteration (exposition renderers; obs/live/prometheus.h) ----
  // Name order follows the underlying maps (lexicographic).  Gauge reads are
  // evaluated at visit time.

  void for_each_counter(const std::function<void(const std::string&, const Counter&)>& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  void for_each_gauge(const std::function<void(const std::string&, std::uint64_t)>& fn) const {
    for (const auto& [name, read] : gauges_) fn(name, read());
  }
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

 private:
  // node-based maps keep references stable across insertion
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<std::uint64_t()>> gauges_;
};

}  // namespace ugrpc::obs
