#include "obs/profile.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ugrpc::obs {

namespace {

/// The micro-protocol a handler/timer name belongs to: the prefix before the
/// first '.' ("ReliableComm.handle_new_call" -> "ReliableComm").
std::string component_of(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[rank < sorted.size() ? rank : sorted.size() - 1];
}

}  // namespace

void Profile::add(const Tracer& t) { add_spans(t.merged_spans(), t); }

void Profile::add_spans(const std::vector<SpanRecord>& spans, const Tracer& names) {
  // Self time = wall minus the wall of direct children, clamped at zero.
  // (Children of an open span still accrue to it if it closes later in a
  // subsequent add() -- callers should add() after quiescing, which every
  // bench does.)
  std::unordered_map<std::uint64_t, std::uint64_t> children_ns;
  children_ns.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    if (s.open() || s.parent == 0) continue;
    children_ns[s.parent] += s.wall_ns();
  }
  for (const SpanRecord& s : spans) {
    if (s.open()) continue;
    const std::uint64_t wall = s.wall_ns();
    const auto it = children_ns.find(s.id);
    const std::uint64_t child = it != children_ns.end() ? it->second : 0;
    const std::uint64_t self = wall > child ? wall - child : 0;
    if (s.kind == SpanKind::kHandler || s.kind == SpanKind::kTimer) {
      const std::string& name = names.name(s.name);
      Samples& comp = component_[component_of(name)];
      comp.wall.push_back(wall);
      comp.self.push_back(self);
      Samples& h = handler_[name];
      h.wall.push_back(wall);
      h.self.push_back(self);
    } else {
      Samples& k = kind_[std::string(span_kind_name(s.kind))];
      k.wall.push_back(wall);
      k.self.push_back(self);
    }
  }
}

Profile::Stats Profile::finalize(const Samples& s) {
  Stats out;
  out.count = s.wall.size();
  std::vector<std::uint64_t> wall = s.wall;
  std::vector<std::uint64_t> self = s.self;
  std::sort(wall.begin(), wall.end());
  std::sort(self.begin(), self.end());
  for (const auto v : wall) out.wall_total += v;
  for (const auto v : self) out.self_total += v;
  out.wall_p50 = percentile(wall, 0.50);
  out.wall_p95 = percentile(wall, 0.95);
  out.wall_p99 = percentile(wall, 0.99);
  out.wall_max = wall.empty() ? 0 : wall.back();
  out.self_p50 = percentile(self, 0.50);
  out.self_p95 = percentile(self, 0.95);
  out.self_p99 = percentile(self, 0.99);
  out.self_max = self.empty() ? 0 : self.back();
  return out;
}

std::map<std::string, Profile::Stats> Profile::finalize_all(
    const std::map<std::string, Samples>& m) {
  std::map<std::string, Stats> out;
  for (const auto& [key, samples] : m) out.emplace(key, finalize(samples));
  return out;
}

std::map<std::string, Profile::Stats> Profile::by_component() const {
  return finalize_all(component_);
}
std::map<std::string, Profile::Stats> Profile::by_handler() const { return finalize_all(handler_); }
std::map<std::string, Profile::Stats> Profile::by_kind() const { return finalize_all(kind_); }

std::string Profile::to_json() const {
  const auto emit_group = [](std::string& out, const std::map<std::string, Stats>& rows) {
    out += "{";
    bool first = true;
    for (const auto& [key, st] : rows) {
      if (!first) out += ",";
      first = false;
      out += "\n    " + json_str(key) + ": {\"count\":" + std::to_string(st.count) +
             ",\"wall_total_ns\":" + std::to_string(st.wall_total) +
             ",\"wall_p50_ns\":" + std::to_string(st.wall_p50) +
             ",\"wall_p95_ns\":" + std::to_string(st.wall_p95) +
             ",\"wall_p99_ns\":" + std::to_string(st.wall_p99) +
             ",\"wall_max_ns\":" + std::to_string(st.wall_max) +
             ",\"self_total_ns\":" + std::to_string(st.self_total) +
             ",\"self_p50_ns\":" + std::to_string(st.self_p50) +
             ",\"self_p95_ns\":" + std::to_string(st.self_p95) +
             ",\"self_p99_ns\":" + std::to_string(st.self_p99) +
             ",\"self_max_ns\":" + std::to_string(st.self_max) +
             ",\"children_total_ns\":" + std::to_string(st.children_total()) + "}";
    }
    out += "\n  }";
  };
  std::string out = "{\n  \"by_component\": ";
  emit_group(out, by_component());
  out += ",\n  \"by_kind\": ";
  emit_group(out, by_kind());
  out += ",\n  \"by_handler\": ";
  emit_group(out, by_handler());
  out += "\n}";
  return out;
}

void Profile::export_to(Registry& reg) const {
  for (const auto& [comp, samples] : component_) {
    Histogram& h = reg.histogram("span." + comp + ".self_ns");
    for (const auto v : samples.self) h.add(v);
  }
  for (const auto& [kind, samples] : kind_) {
    Histogram& h = reg.histogram("span.kind." + kind + ".wall_ns");
    for (const auto v : samples.wall) h.add(v);
  }
}

}  // namespace ugrpc::obs
