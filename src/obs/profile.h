// Span aggregation: rolls the per-call span trees collected by a Tracer into
// per-micro-protocol latency attribution (tentpole part 3 of ISSUE 4).
//
// The question the paper leaves qualitative -- what does each micro-protocol
// *cost*? -- becomes a table: for every component (the prefix of a handler
// name before '.', e.g. "ReliableComm" from "ReliableComm.handle_new_call")
// and every transport/framework span kind, the Profile keeps the exact
// steady-clock samples and reports count, wall-time percentiles, and
// *self-time* percentiles (wall minus the wall-time of child spans, clamped
// at zero), so a component that merely awaits its children is not charged for
// their work.
//
// Percentiles here are exact (samples are retained and sorted at finalize),
// unlike the bucketed estimates of obs::Histogram -- bench attribution wants
// real p50/p99, not power-of-two upper bounds.  export_to() additionally
// folds self-time samples into a metrics Registry so the regular Registry
// JSON dump carries the same attribution at bucket resolution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/span.h"

namespace ugrpc::obs {

class Tracer;
class Registry;

class Profile {
 public:
  /// Finalized statistics of one attribution row (nanoseconds).
  struct Stats {
    std::uint64_t count = 0;
    std::uint64_t wall_total = 0;
    std::uint64_t wall_p50 = 0, wall_p95 = 0, wall_p99 = 0, wall_max = 0;
    std::uint64_t self_total = 0;
    std::uint64_t self_p50 = 0, self_p95 = 0, self_p99 = 0, self_max = 0;
    /// Wall time attributed to children (wall_total - self_total).
    [[nodiscard]] std::uint64_t children_total() const { return wall_total - self_total; }
  };

  /// Folds all closed spans of `t` in (may be called repeatedly, e.g. once
  /// per bench iteration before Tracer::clear()).  Open spans are skipped.
  void add(const Tracer& t);
  /// Same, for an externally merged span set; `names` resolves name ids.
  void add_spans(const std::vector<SpanRecord>& spans, const Tracer& names);

  /// Per-micro-protocol rollup: handler and timer spans grouped by the
  /// component prefix of their name (before the first '.').
  [[nodiscard]] std::map<std::string, Stats> by_component() const;
  /// Full handler-name detail rows.
  [[nodiscard]] std::map<std::string, Stats> by_handler() const;
  /// Transport / framework rows keyed by span kind name ("send", "deliver",
  /// "chain", "call", "exec", ...).
  [[nodiscard]] std::map<std::string, Stats> by_kind() const;

  /// {"by_component":{...},"by_kind":{...},"by_handler":{...}} with every
  /// Stats field spelled out (keys JSON-escaped).
  [[nodiscard]] std::string to_json() const;

  /// Folds self-time samples into `reg` as histograms named
  /// "span.<component>.self_ns" / "span.kind.<kind>.wall_ns", extending the
  /// Registry JSON dump with the same attribution.
  void export_to(Registry& reg) const;

  [[nodiscard]] bool empty() const { return component_.empty() && kind_.empty(); }

 private:
  struct Samples {
    std::vector<std::uint64_t> wall;
    std::vector<std::uint64_t> self;
  };

  [[nodiscard]] static Stats finalize(const Samples& s);
  [[nodiscard]] static std::map<std::string, Stats> finalize_all(
      const std::map<std::string, Samples>& m);

  std::map<std::string, Samples> component_;
  std::map<std::string, Samples> handler_;
  std::map<std::string, Samples> kind_;
};

}  // namespace ugrpc::obs
