// TelemetryServer: a tiny non-blocking HTTP/1.0 listener over a TelemetryHub
// (tentpole of ISSUE 5).
//
// Serves the live plane to off-the-shelf consumers -- `curl`, a Prometheus
// scraper, tools/ugrpcstat -- without threads: the owner (UdpTransport's
// poll loop) calls poll_once() every loop iteration, which accepts pending
// connections, progresses partial reads/writes with zero-timeout poll(2),
// and closes finished responses.  Because poll_once() runs *between* fibers
// of the cooperative executor, every response is a consistent point-in-time
// snapshot of the site -- no locks, no torn reads.
//
// Routes (GET only; one request per connection, Connection: close):
//   /metrics        Prometheus text exposition        (hub.metrics_text())
//   /metrics.json   same data as JSON                 (hub.metrics_json())
//   /introspect     channelz-style live-state JSON    (hub.introspection_json())
//   /healthz        "ok"
//   /               plain-text index of the above
//
// The listener binds one host/port (default loopback, port 0 = ephemeral --
// parallel CI runs cannot collide; the example publishes the chosen port via
// --port-file).  Malformed or oversized requests get a 400 and the
// connection dropped; slow readers are bounded by a per-connection byte cap,
// not timeouts (the process' lifetime bounds the leak).
#pragma once

#include <cstdint>
#include <list>
#include <string>

namespace ugrpc::obs::live {

class TelemetryHub;

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryHub& hub) : hub_(hub) {}
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds + listens (non-blocking).  `port` 0 picks an ephemeral port.
  /// False (with a diagnostic in `error` when non-null) on failure.
  bool listen(const std::string& host, std::uint16_t port, std::string* error = nullptr);

  /// The bound port (after listen()), 0 otherwise.
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The listening socket, for inclusion in an external poll set (-1 when
  /// not listening).  Readability means a connection is waiting.
  [[nodiscard]] int listen_fd() const { return listen_fd_; }

  /// Accepts and progresses all connections without blocking.  Call from
  /// the event loop on every iteration (cheap when idle: one poll(2) with
  /// timeout 0 over the open fds).
  void poll_once();

  /// Closes the listener and every open connection.
  void close();

  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }
  /// Requests answered (any status) since construction.
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;       ///< request bytes until the blank line
    std::string out;      ///< rendered response, drained incrementally
    std::size_t sent = 0;
    bool responding = false;
  };

  void handle_request(Conn& conn);
  [[nodiscard]] std::string route(const std::string& method, const std::string& path);

  TelemetryHub& hub_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::list<Conn> conns_;
  std::uint64_t served_ = 0;
};

}  // namespace ugrpc::obs::live
