// TelemetryHub: the one object a serving site exposes to the outside world
// (tentpole of ISSUE 5).
//
// A hub aggregates everything the live telemetry plane can answer with and
// is the single dependency of every frontend -- the TCP listener
// (obs/live/http.h) serving curl/Prometheus/ugrpcstat, the SimTransport
// snapshot path used by tests, and the flight recorder:
//
//   * metrics_text()       -- Prometheus exposition of the site's long-lived
//                             SiteStats registry, plus per-micro-protocol
//                             self-time attribution folded fresh from the
//                             attached Tracer's spans on every scrape (the
//                             Tracer is never cleared -- its rings feed the
//                             flight recorder -- so folding into a persistent
//                             registry would double-count);
//   * introspection_json() -- channelz-style live-state snapshot, produced
//                             by a provider the owner installs (core's
//                             SiteTelemetry walks composite state; obs
//                             cannot name core types);
//   * trip()               -- flight-recorder dump of rings + spans +
//                             metrics + introspection into a fresh
//                             timestamped directory (flight_recorder.h).
//
// Layering: the hub lives in obs and knows only obs types.  Core wires it:
// GrpcState::live points at hub->stats() for hot-path counters, and
// core/telemetry.h installs the introspection/manifest providers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "obs/live/prometheus.h"
#include "obs/live/site_stats.h"

namespace ugrpc::obs {
class Tracer;
}

namespace ugrpc::obs::live {

class TelemetryHub {
 public:
  TelemetryHub() = default;

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  [[nodiscard]] SiteStats& stats() { return stats_; }
  [[nodiscard]] const SiteStats& stats() const { return stats_; }

  /// Attaches the tracer whose rings/spans back scrapes and flight dumps
  /// (also binds its exact per-kind counters as gauges).  May be null to
  /// detach.  `t` must outlive the hub or the next set_tracer call.
  void set_tracer(const Tracer* t);
  [[nodiscard]] const Tracer* tracer() const { return tracer_; }

  /// Installs the introspection snapshot provider (must return a complete
  /// JSON document).  Without one, introspection_json() returns "{}".
  void set_introspection(std::function<std::string()> provider) {
    introspection_ = std::move(provider);
  }

  /// Installs a provider of extra MANIFEST.json fields for flight dumps --
  /// comma-joined `"key":value` fragments without enclosing braces (e.g. the
  /// checker expectations derived from the site's Config).
  void set_manifest_extra(std::function<std::string()> provider) {
    manifest_extra_ = std::move(provider);
  }

  [[nodiscard]] PromOptions& prom_options() { return prom_; }

  // ---- snapshot endpoints ----

  /// Prometheus text exposition: SiteStats registry + a fresh span-profile
  /// fold (when a tracer with closed spans is attached).
  [[nodiscard]] std::string metrics_text() const;
  /// Same data as one JSON object: {"site":{...},"spans":{...}}.
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string introspection_json() const {
    return introspection_ ? introspection_() : std::string("{}");
  }
  [[nodiscard]] std::string manifest_extra() const {
    return manifest_extra_ ? manifest_extra_() : std::string();
  }

  // ---- flight recorder ----

  /// Directory flight dumps are written under; empty disables trip().
  void set_flight_dir(std::string dir) { flight_dir_ = std::move(dir); }
  [[nodiscard]] const std::string& flight_dir() const { return flight_dir_; }

  /// Writes one flight dump (flight_recorder.h) tagged with `reason`.
  /// Returns the dump directory, or nullopt when disabled or on I/O failure
  /// (diagnostic in `error` when non-null).  Bumps stats().flight_dumps on
  /// success.  Callers: watchdog trips, checker violations, crash handler.
  std::optional<std::string> trip(std::string_view reason, std::string* error = nullptr);

  /// Dumps written so far (suffix for unique directory names within one
  /// clock tick).
  [[nodiscard]] std::uint64_t dump_seq() const { return dump_seq_; }

 private:
  SiteStats stats_;
  const Tracer* tracer_ = nullptr;
  std::function<std::string()> introspection_;
  std::function<std::string()> manifest_extra_;
  PromOptions prom_;
  std::string flight_dir_;
  std::uint64_t dump_seq_ = 0;
};

}  // namespace ugrpc::obs::live
