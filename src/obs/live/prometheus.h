// Prometheus text-format exposition of a metrics Registry (tentpole part 1
// of ISSUE 5).
//
// Registry names are free-form dotted paths that may contain user-provided
// group labels -- quotes, backslashes, newlines, control bytes.  Prometheus
// metric names admit only [a-zA-Z_:][a-zA-Z0-9_:]*, so rendering maps every
// name through prom_metric_name() (dots and hostile bytes become '_'); when
// sanitization loses information, the ORIGINAL name rides along in a
// `raw="..."` label, escaped per the exposition format (backslash, double
// quote, newline), so hostile names stay queryable instead of colliding
// silently.
//
// Counters and gauges render as single samples with a # TYPE header.
// Histograms render as native Prometheus histograms: cumulative `_bucket`
// samples over obs::Histogram's power-of-two bucket bounds (only buckets up
// to the one containing the max are emitted, then le="+Inf"), plus `_sum`
// and `_count` -- `histogram_quantile()` works out of the box at
// power-of-two resolution.
//
// The renderer is snapshot-free: it walks the live Registry in place.  Under
// the cooperative executor nothing mutates concurrently (scrapes run from
// the poll loop, between fibers), so a scrape mid-workload sees a consistent
// point-in-time view -- pinned by tests/obs/prometheus_test.cc.
#pragma once

#include <string>
#include <string_view>

namespace ugrpc::obs {
class Registry;
}

namespace ugrpc::obs::live {

struct PromOptions {
  /// Prepended to every metric name ("ugrpc" -> "ugrpc_calls_started").
  std::string prefix = "ugrpc";
  /// Extra labels attached to every sample, pre-rendered ("site=\"3\"");
  /// empty = none.
  std::string const_labels;
};

/// `s` escaped for a Prometheus label value (backslash, quote, newline).
[[nodiscard]] std::string prom_escape_label(std::string_view s);

/// `s` squeezed into the Prometheus metric-name alphabet; never empty.
[[nodiscard]] std::string prom_metric_name(std::string_view s);

/// The whole registry in Prometheus text exposition format (version 0.0.4),
/// terminated by a trailing newline.
[[nodiscard]] std::string render_prometheus(const Registry& reg, const PromOptions& opts = {});

}  // namespace ugrpc::obs::live
