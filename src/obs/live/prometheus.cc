#include "obs/live/prometheus.h"

#include <cstdio>

#include "obs/metrics.h"

namespace ugrpc::obs::live {

namespace {

bool name_char_ok(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') return true;
  return !first && c >= '0' && c <= '9';
}

struct RenderedName {
  std::string metric;  ///< sanitized, prefixed
  std::string labels;  ///< "{...}" or "" -- raw label + const labels
};

RenderedName rendered_name(const PromOptions& opts, const std::string& name) {
  RenderedName out;
  out.metric = prom_metric_name(name);
  bool lossy = false;
  for (char c : name) {
    if (!name_char_ok(c, false) && c != '.') {
      lossy = true;
      break;
    }
  }
  if (!opts.prefix.empty()) out.metric = opts.prefix + "_" + out.metric;
  std::string labels;
  if (lossy) labels = "raw=\"" + prom_escape_label(name) + "\"";
  if (!opts.const_labels.empty()) {
    if (!labels.empty()) labels += ",";
    labels += opts.const_labels;
  }
  if (!labels.empty()) out.labels = "{" + labels + "}";
  return out;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

}  // namespace

std::string prom_escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Other control bytes are not representable in the text format;
          // degrade to an escaped hex marker rather than corrupt the line.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\\\x%02x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_metric_name(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    // '.' separates Registry path segments; '_' is its canonical spelling.
    out += name_char_ok(c, /*first=*/false) ? c : '_';
  }
  if (out.empty() || !name_char_ok(out.front(), /*first=*/true)) out.insert(out.begin(), '_');
  return out;
}

std::string render_prometheus(const Registry& reg, const PromOptions& opts) {
  std::string out;
  out.reserve(1024);

  reg.for_each_counter([&](const std::string& name, const Counter& c) {
    const RenderedName rn = rendered_name(opts, name);
    out += "# TYPE " + rn.metric + " counter\n";
    out += rn.metric + rn.labels + " ";
    append_u64(out, c.value());
    out += "\n";
  });

  reg.for_each_gauge([&](const std::string& name, std::uint64_t value) {
    const RenderedName rn = rendered_name(opts, name);
    out += "# TYPE " + rn.metric + " gauge\n";
    out += rn.metric + rn.labels + " ";
    append_u64(out, value);
    out += "\n";
  });

  reg.for_each_histogram([&](const std::string& name, const Histogram& h) {
    const RenderedName rn = rendered_name(opts, name);
    // Bucket lines carry `le` plus whatever labels the base name has; the
    // raw/const labels must precede le to keep one canonical order.
    std::string base_labels = rn.labels;
    if (!base_labels.empty()) {
      base_labels.pop_back();  // drop '}'
      base_labels += ",";
    } else {
      base_labels = "{";
    }
    out += "# TYPE " + rn.metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t in_bucket = h.bucket_count(i);
      if (in_bucket == 0 && cumulative == 0) continue;   // leading empty buckets
      cumulative += in_bucket;
      out += rn.metric + "_bucket" + base_labels + "le=\"";
      append_u64(out, Histogram::bucket_upper(i));
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
      if (cumulative == h.count()) break;  // trailing empty buckets add nothing
    }
    out += rn.metric + "_bucket" + base_labels + "le=\"+Inf\"} ";
    append_u64(out, h.count());
    out += "\n";
    out += rn.metric + "_sum" + rn.labels + " ";
    append_u64(out, h.sum());
    out += "\n";
    out += rn.metric + "_count" + rn.labels + " ";
    append_u64(out, h.count());
    out += "\n";
  });

  return out;
}

}  // namespace ugrpc::obs::live
