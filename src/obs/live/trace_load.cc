#include "obs/live/trace_load.h"

#include <algorithm>

#include "obs/live/json_value.h"

namespace ugrpc::obs::live {

std::optional<LoadedTrace> load_trace_json(std::string_view text, std::string* error) {
  const std::optional<JsonValue> doc = json_parse(text, error);
  if (!doc.has_value()) return std::nullopt;
  if (!doc->is_array()) {
    if (error != nullptr) *error = "trace dump is not a JSON array";
    return std::nullopt;
  }

  LoadedTrace out;
  out.events.reserve(doc->as_array().size());
  for (const JsonValue& item : doc->as_array()) {
    if (!item.is_object()) {
      if (error != nullptr) *error = "trace entry is not an object";
      return std::nullopt;
    }
    const JsonValue& kind = item["kind"];
    if (!kind.is_string()) {
      if (error != nullptr) *error = "trace entry has no \"kind\" string";
      return std::nullopt;
    }
    const Kind k = kind_from_name(kind.as_string());
    if (k == Kind::kKindCount) {
      ++out.unknown_kinds;
      continue;
    }
    Event e;
    e.seq = item["seq"].as_u64();
    e.time = item["t"].as_i64();
    e.site = ProcessId(static_cast<std::uint32_t>(item["site"].as_u64()));
    e.kind = k;
    e.call = item["call"].as_u64();
    e.a = item["a"].as_u64();
    e.b = item["b"].as_u64();
    out.events.push_back(e);
  }

  // dump_json() emits in merged (sequence) order already; re-sort defensively
  // so hand-edited or concatenated dumps still satisfy check()'s contract.
  std::sort(out.events.begin(), out.events.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

}  // namespace ugrpc::obs::live
