#include "obs/live/json_value.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace ugrpc::obs::live {

namespace {

const JsonValue kNullValue{};

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text{};
  std::size_t pos = 0;
  std::string error{};

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void fail(const std::string& what) {
    if (error.empty()) error = what + " at byte " + std::to_string(pos);
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view w) {
    if (text.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    out.clear();
    while (true) {
      if (at_end()) {
        fail("unterminated string");
        return false;
      }
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) {
        fail("unterminated escape");
        return false;
      }
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) {
            fail("bad \\u escape");
            return false;
          }
          // Surrogate pair: combine; lone surrogates degrade to U+FFFD.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            std::uint32_t lo = 0;
            if (pos + 1 < text.size() && text[pos] == '\\' && text[pos + 1] == 'u') {
              pos += 2;
              if (!parse_hex4(lo)) {
                fail("bad \\u escape");
                return false;
              }
            }
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape");
          return false;
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") {
      fail("bad number");
      return false;
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("bad number");
      return false;
    }
    std::optional<std::int64_t> i;
    std::optional<std::uint64_t> u;
    if (integral) {
      errno = 0;
      char* iend = nullptr;
      const long long ll = std::strtoll(token.c_str(), &iend, 10);
      if (errno == 0 && iend == token.c_str() + token.size()) i = ll;
      if (token[0] != '-') {
        errno = 0;
        char* uend = nullptr;
        const unsigned long long ull = std::strtoull(token.c_str(), &uend, 10);
        if (errno == 0 && uend == token.c_str() + token.size()) u = ull;
      }
    }
    out = JsonValue::make_number(d, i, u);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (at_end()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonValue::Object obj;
      skip_ws();
      if (consume('}')) {
        out = JsonValue::make_object(std::move(obj));
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) {
          fail("expected ':'");
          return false;
        }
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        obj.insert_or_assign(std::move(key), std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) break;
        fail("expected ',' or '}'");
        return false;
      }
      out = JsonValue::make_object(std::move(obj));
      return true;
    }
    if (c == '[') {
      ++pos;
      JsonValue::Array arr;
      skip_ws();
      if (consume(']')) {
        out = JsonValue::make_array(std::move(arr));
        return true;
      }
      while (true) {
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        arr.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) break;
        fail("expected ',' or ']'");
        return false;
      }
      out = JsonValue::make_array(std::move(arr));
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = JsonValue::make_string(std::move(s));
      return true;
    }
    if (consume_word("true")) {
      out = JsonValue::make_bool(true);
      return true;
    }
    if (consume_word("false")) {
      out = JsonValue::make_bool(false);
      return true;
    }
    if (consume_word("null")) {
      out = JsonValue::make_null();
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) return parse_number(out);
    fail("unexpected character");
    return false;
  }
};

}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  if (type_ != Type::kObject) return kNullValue;
  const auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d, std::optional<std::int64_t> i,
                                 std::optional<std::uint64_t> u) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  v.exact_i64_ = i;
  v.exact_u64_ = u;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  Parser p{.text = text};
  JsonValue out;
  if (!p.parse_value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) *error = "trailing garbage at byte " + std::to_string(p.pos);
    return std::nullopt;
  }
  return out;
}

}  // namespace ugrpc::obs::live
