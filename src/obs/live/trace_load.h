// Re-hydrates a Tracer::dump_json() document into checker-ready events.
//
// The flight recorder (flight_recorder.h) persists trace rings as JSON so a
// crash dump is self-describing and diffable.  To make the dump *loadable*
// -- runnable back through obs::check() / obs::summarize() by ugrpcstat or a
// post-mortem script -- this inverts dump_json(): kinds are matched by their
// stable kind_name() strings (kind_from_name), operands by field name.
// Events with an unknown kind are skipped and counted, not fatal: a newer
// build must be able to read an older build's dump.
//
// The `name` field of loaded events is 0: dump_json() stores the interned
// string inline per event, and the checker never reads names -- they exist
// for human display, which post-mortem tools take from the JSON directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace ugrpc::obs::live {

struct LoadedTrace {
  /// Sequence-ordered events, as obs::check() expects.
  std::vector<Event> events;
  /// Events whose "kind" string no build of this binary knows.
  std::uint64_t unknown_kinds = 0;
};

/// Parses a dump_json() document.  nullopt (with a diagnostic in `error`
/// when non-null) if the text is not a JSON array of event objects.
[[nodiscard]] std::optional<LoadedTrace> load_trace_json(std::string_view text,
                                                          std::string* error = nullptr);

}  // namespace ugrpc::obs::live
