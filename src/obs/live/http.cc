#include "obs/live/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "obs/live/telemetry.h"

namespace ugrpc::obs::live {

namespace {

/// Requests are one GET line + a few headers; anything bigger is hostile.
constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kListenBacklog = 16;

std::string http_response(int status, std::string_view reason, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

TelemetryServer::~TelemetryServer() { close(); }

bool TelemetryServer::listen(const std::string& host, std::uint16_t port, std::string* error) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "telemetry host must be a numeric IPv4 address: " + host;
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, kListenBacklog) != 0) {
    if (error != nullptr) *error = std::string("bind/listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error != nullptr) *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return true;
}

void TelemetryServer::close() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  for (Conn& conn : conns_) ::close(conn.fd);
  conns_.clear();
}

std::string TelemetryServer::route(const std::string& method, const std::string& path) {
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain", "GET only\n");
  }
  if (path == "/metrics") {
    return http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         hub_.metrics_text());
  }
  if (path == "/metrics.json") {
    return http_response(200, "OK", "application/json", hub_.metrics_json());
  }
  if (path == "/introspect") {
    return http_response(200, "OK", "application/json", hub_.introspection_json());
  }
  if (path == "/healthz") return http_response(200, "OK", "text/plain", "ok\n");
  if (path == "/") {
    return http_response(200, "OK", "text/plain",
                         "ugrpc live telemetry\n"
                         "  /metrics        Prometheus text exposition\n"
                         "  /metrics.json   metrics as JSON\n"
                         "  /introspect     live composite-state snapshot\n"
                         "  /healthz        liveness probe\n");
  }
  return http_response(404, "Not Found", "text/plain", "unknown path\n");
}

void TelemetryServer::handle_request(Conn& conn) {
  // Request line: "GET /path HTTP/1.x".  Headers are ignored.
  const std::size_t eol = conn.in.find("\r\n");
  const std::string line = conn.in.substr(0, eol == std::string::npos ? conn.in.size() : eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    conn.out = http_response(400, "Bad Request", "text/plain", "malformed request line\n");
  } else {
    conn.out = route(line.substr(0, sp1), line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  conn.responding = true;
  ++served_;
}

void TelemetryServer::poll_once() {
  if (listen_fd_ < 0) return;

  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) break;  // EAGAIN: no more pending connections
    Conn conn;
    conn.fd = fd;
    conns_.push_back(conn);
  }
  if (conns_.empty()) return;

  std::vector<pollfd> fds;
  fds.reserve(conns_.size());
  for (const Conn& conn : conns_) {
    fds.push_back(pollfd{conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN), 0});
  }
  if (::poll(fds.data(), fds.size(), 0) <= 0) return;

  std::size_t i = 0;
  for (auto it = conns_.begin(); it != conns_.end(); ++i) {
    Conn& conn = *it;
    const short revents = fds[i].revents;
    bool done = false;
    if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.responding) {
      done = true;
    } else if (!conn.responding && (revents & POLLIN) != 0) {
      char buf[2048];
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          conn.in.append(buf, static_cast<std::size_t>(n));
          if (conn.in.size() > kMaxRequestBytes) {
            conn.out = http_response(400, "Bad Request", "text/plain", "request too large\n");
            conn.responding = true;
            ++served_;
            break;
          }
          if (conn.in.find("\r\n\r\n") != std::string::npos) {
            handle_request(conn);
            break;
          }
        } else if (n == 0) {
          done = true;  // peer closed before completing a request
          break;
        } else {
          break;  // EAGAIN: wait for more bytes
        }
      }
    }
    if (conn.responding && !done) {
      while (conn.sent < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.sent, conn.out.size() - conn.sent, MSG_NOSIGNAL);
        if (n <= 0) break;  // EAGAIN (or error -- retried/detected next poll)
        conn.sent += static_cast<std::size_t>(n);
      }
      if (conn.sent == conn.out.size() || (revents & (POLLERR | POLLNVAL)) != 0) done = true;
    }
    if (done) {
      ::close(conn.fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ugrpc::obs::live
