// Minimal JSON document model + recursive-descent parser.
//
// The live telemetry plane emits JSON (obs/json.h escapes it) and two
// consumers need to read it back without external dependencies: the flight
// recorder loader (trace_load.h) re-hydrates dumped trace rings for the
// checker, and tools/ugrpcstat parses, diffs and pretty-prints the
// introspection endpoint.  This is a small, strict-enough parser for those
// documents: objects, arrays, strings (with standard escapes incl. \uXXXX,
// decoded to UTF-8), numbers (stored as double, plus the exact i64/u64 when
// representable), booleans, null.  It rejects trailing garbage and caps
// nesting depth; it does NOT aim to be a validator for arbitrary hostile
// input beyond not crashing on it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ugrpc::obs::live {

class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion order is not preserved; introspection consumers key by name.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  /// Exact unsigned value when the token was a non-negative integer that
  /// fits; otherwise a best-effort cast of the double.
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const {
    if (!is_number()) return fallback;
    return exact_u64_.value_or(static_cast<std::uint64_t>(number_));
  }
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const {
    if (!is_number()) return fallback;
    return exact_i64_.value_or(static_cast<std::int64_t>(number_));
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return array_; }
  [[nodiscard]] const Object& as_object() const { return object_; }

  /// Member lookup; a shared null value for missing keys / non-objects.
  [[nodiscard]] const JsonValue& operator[](const std::string& key) const;

  // ---- construction (parser + tests) ----
  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d, std::optional<std::int64_t> i = {},
                               std::optional<std::uint64_t> u = {});
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::optional<std::int64_t> exact_i64_;
  std::optional<std::uint64_t> exact_u64_;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  On failure returns nullopt and, when `error` is
/// non-null, stores a one-line diagnostic with the byte offset.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace ugrpc::obs::live
