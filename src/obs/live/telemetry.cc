#include "obs/live/telemetry.h"

#include "obs/live/flight_recorder.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ugrpc::obs::live {

void TelemetryHub::set_tracer(const Tracer* t) {
  tracer_ = t;
  if (t != nullptr) stats_.attach_tracer(*t);
}

std::string TelemetryHub::metrics_text() const {
  std::string out = render_prometheus(stats_.registry(), prom_);
  if (tracer_ != nullptr) {
    // Fold spans into a throwaway registry per scrape: the tracer is long-
    // lived (its rings feed the flight recorder, so it is never cleared) and
    // Profile::add re-reads every closed span -- accumulating into a
    // persistent registry would double-count monotonically.
    Profile profile;
    profile.add(*tracer_);
    if (!profile.empty()) {
      Registry span_reg;
      profile.export_to(span_reg);
      out += render_prometheus(span_reg, prom_);
    }
  }
  return out;
}

std::string TelemetryHub::metrics_json() const {
  std::string out = "{\"site\":" + stats_.registry().to_json();
  if (tracer_ != nullptr) {
    Profile profile;
    profile.add(*tracer_);
    if (!profile.empty()) out += ",\"spans\":" + profile.to_json();
  }
  out += "}";
  return out;
}

std::optional<std::string> TelemetryHub::trip(std::string_view reason, std::string* error) {
  if (flight_dir_.empty()) {
    if (error != nullptr) *error = "flight recorder disabled (no directory configured)";
    return std::nullopt;
  }
  const std::optional<std::string> dir = dump_flight(*this, reason, ++dump_seq_, error);
  if (dir.has_value()) ++stats_.flight_dumps;
  return dir;
}

}  // namespace ugrpc::obs::live
