// Long-lived per-site operational counters (tentpole part 1 of ISSUE 5).
//
// The metrics Registry (obs/metrics.h) is experiment-scoped: benches build
// one, dump it, throw it away.  A serving site needs the opposite -- a
// registry that lives as long as the process and accumulates across
// incarnations (crash/recover rebuilds the protocol stack but NOT the
// SiteStats).  SiteStats owns that registry plus cached references to the
// hot-path counters the core stack bumps directly (one pointer check per
// record site when telemetry is off -- GrpcState holds `SiteStats* live`,
// nullptr by default).
//
// "Site" here means one OS process in the UDP deployment model (one Site per
// process); under the simulator several simulated sites may share one
// SiteStats, which is exactly what a scrape of that process would see.
//
// Sources of truth are split three ways:
//   * call lifecycle / retransmissions -- owned Counters, bumped by core;
//   * trace-derived totals (timer fires, per-kind message counts, ring
//     drops) -- gauges over the attached Tracer's exact per-kind counters;
//   * transport bytes/drops -- gauges bound by the owner (core/telemetry.cc
//     binds net::Stats fields; obs cannot name net types).
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.h"

namespace ugrpc::obs {
class Tracer;
}

namespace ugrpc::obs::live {

class SiteStats {
  // Declared before the public Counter references: members initialize in
  // declaration order, and the references bind into this registry.
  Registry registry_;

 public:
  SiteStats();

  SiteStats(const SiteStats&) = delete;
  SiteStats& operator=(const SiteStats&) = delete;

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

  /// Binds gauges over `t`'s exact per-kind counters (timer fires, message
  /// sent/delivered/dropped, ring/span drops).  `t` must outlive this.
  void attach_tracer(const Tracer& t);

  /// Pass-through gauge binding for externally owned values (the owner binds
  /// transport stats fields here).
  void gauge(const std::string& name, std::function<std::uint64_t()> read) {
    registry_.gauge(name, std::move(read));
  }

  // ---- hot-path counters (cached references into the registry) ----

  Counter& calls_started;        ///< client calls issued ("calls.started")
  Counter& calls_completed;      ///< completed with Status::kOk
  Counter& calls_failed;         ///< completed with any other status
  Counter& retransmissions;      ///< Reliable Communication resends
  Counter& watchdog_scans;       ///< stall-watchdog sweeps run
  Counter& watchdog_stalled;     ///< calls newly flagged past their bound
  Counter& watchdog_orphaned;    ///< sRPC entries newly flagged as orphaned
  Counter& watchdog_trips;       ///< watchdog trips (first stall of a sweep)
  Counter& flight_dumps;         ///< flight-recorder dumps written
};

}  // namespace ugrpc::obs::live
