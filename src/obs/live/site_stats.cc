#include "obs/live/site_stats.h"

#include "obs/trace.h"

namespace ugrpc::obs::live {

SiteStats::SiteStats()
    : calls_started(registry_.counter("calls.started")),
      calls_completed(registry_.counter("calls.completed")),
      calls_failed(registry_.counter("calls.failed")),
      retransmissions(registry_.counter("calls.retransmissions")),
      watchdog_scans(registry_.counter("watchdog.scans")),
      watchdog_stalled(registry_.counter("watchdog.stalled_calls")),
      watchdog_orphaned(registry_.counter("watchdog.orphaned_entries")),
      watchdog_trips(registry_.counter("watchdog.trips")),
      flight_dumps(registry_.counter("flight.dumps")) {}

void SiteStats::attach_tracer(const Tracer& t) {
  const auto bind_kind = [&](const std::string& name, Kind k) {
    registry_.gauge(name, [&t, k] { return t.count(k); });
  };
  bind_kind("timers.fired", Kind::kTimerFired);
  bind_kind("timers.cancelled", Kind::kTimerCancelled);
  bind_kind("msgs.sent", Kind::kMsgSent);
  bind_kind("msgs.delivered", Kind::kMsgDelivered);
  bind_kind("msgs.dropped", Kind::kMsgDropped);
  bind_kind("msgs.unroutable", Kind::kMsgUnroutable);
  bind_kind("execs.started", Kind::kExecStarted);
  bind_kind("execs.committed", Kind::kExecCommitted);
  bind_kind("execs.duplicates_suppressed", Kind::kDupSuppressed);
  registry_.gauge("trace.events_dropped", [&t] { return t.total_dropped(); });
  registry_.gauge("trace.spans_dropped", [&t] { return t.total_spans_dropped(); });
}

}  // namespace ugrpc::obs::live
