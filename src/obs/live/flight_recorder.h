// Crash flight recorder (tentpole part 4 of ISSUE 5).
//
// When something goes irrecoverably wrong -- a crash signal, a checker
// violation, a watchdog trip -- the most valuable artifacts are the ones
// already in memory: the trace rings, the span fragments, the metrics, and
// the live introspection snapshot.  dump_flight() persists all of them into
// one fresh timestamped directory:
//
//   MANIFEST.json   reason, wall-clock stamp, file list, plus owner-provided
//                   fields (core adds the checker Expect derived from the
//                   site's Config, so the dump is checkable standalone)
//   trace.json      Tracer::dump_json()       (reload: obs/live/trace_load.h)
//   spans.json      export_perfetto()         (loadable by ui.perfetto.dev
//                                              and tools/check_perfetto.py)
//   metrics.json    TelemetryHub::metrics_json()
//   metrics.prom    TelemetryHub::metrics_text()
//   introspect.json TelemetryHub::introspection_json()
//
// Atomicity: everything is written into a ".tmp-" sibling and rename(2)d
// into place, so a consumer polling the directory never observes a partial
// dump -- either the final name exists with all files, or nothing does.
//
// install_crash_handler() arms SIGSEGV/SIGBUS/SIGFPE/SIGABRT to attempt one
// best-effort dump before re-raising with default disposition.  The handler
// allocates and does buffered I/O -- NOT async-signal-safe in the strict
// sense -- which is the standard flight-recorder trade-off: the process is
// dying anyway, and a truncated dump (the tmp directory, never renamed)
// cannot be mistaken for a complete one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ugrpc::obs::live {

class TelemetryHub;

/// Writes one dump under hub.flight_dir() (which must be non-empty; created
/// if missing).  `seq` disambiguates dumps within one wall-clock second.
/// Returns the final dump directory, or nullopt with a diagnostic in
/// `error` (when non-null) on I/O failure.
[[nodiscard]] std::optional<std::string> dump_flight(const TelemetryHub& hub,
                                                     std::string_view reason, std::uint64_t seq,
                                                     std::string* error = nullptr);

/// Arms fatal-signal handlers that trip `hub` once (reason "signal:<name>")
/// and re-raise.  `hub` must outlive the process' last chance to crash; pass
/// nullptr to disarm.  Only one hub can be armed per process.
void install_crash_handler(TelemetryHub* hub);

}  // namespace ugrpc::obs::live
