#include "obs/live/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/json.h"
#include "obs/live/telemetry.h"
#include "obs/perfetto.h"
#include "obs/trace.h"

namespace ugrpc::obs::live {

namespace {

namespace fs = std::filesystem;

bool write_file(const fs::path& path, std::string_view contents, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path.string();
    return false;
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path.string();
    return false;
  }
  return true;
}

std::string stamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y%m%d-%H%M%S", &tm);
  return buf;
}

TelemetryHub* g_crash_hub = nullptr;

void crash_handler(int sig) {
  TelemetryHub* hub = g_crash_hub;
  g_crash_hub = nullptr;  // one attempt only, even if the dump itself faults
  if (hub != nullptr) {
    const char* name = "signal";
    switch (sig) {
      case SIGSEGV: name = "signal:SIGSEGV"; break;
      case SIGBUS: name = "signal:SIGBUS"; break;
      case SIGFPE: name = "signal:SIGFPE"; break;
      case SIGABRT: name = "signal:SIGABRT"; break;
      default: break;
    }
    (void)hub->trip(name);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};

}  // namespace

std::optional<std::string> dump_flight(const TelemetryHub& hub, std::string_view reason,
                                       std::uint64_t seq, std::string* error) {
  const fs::path base = hub.flight_dir();
  const std::string name = "flight-" + stamp_utc() + "-" + std::to_string(seq);
  const fs::path tmp = base / (".tmp-" + name);
  const fs::path final_dir = base / name;

  std::error_code ec;
  fs::create_directories(tmp, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + tmp.string() + ": " + ec.message();
    return std::nullopt;
  }

  std::string manifest = "{\n  \"reason\": " + json_str(reason) +
                         ",\n  \"stamp_utc\": " + json_str(stamp_utc()) +
                         ",\n  \"seq\": " + std::to_string(seq) +
                         ",\n  \"files\": [\"trace.json\", \"spans.json\", \"metrics.json\", "
                         "\"metrics.prom\", \"introspect.json\"]";
  const std::string extra = hub.manifest_extra();
  if (!extra.empty()) manifest += ",\n  " + extra;
  manifest += "\n}\n";

  const Tracer* tracer = hub.tracer();
  const std::string trace_json = tracer != nullptr ? tracer->dump_json() : std::string("[]");
  const std::string spans_json = tracer != nullptr
                                     ? export_perfetto(*tracer)
                                     : std::string("{\"traceEvents\":[]}");

  if (!write_file(tmp / "MANIFEST.json", manifest, error) ||
      !write_file(tmp / "trace.json", trace_json, error) ||
      !write_file(tmp / "spans.json", spans_json, error) ||
      !write_file(tmp / "metrics.json", hub.metrics_json(), error) ||
      !write_file(tmp / "metrics.prom", hub.metrics_text(), error) ||
      !write_file(tmp / "introspect.json", hub.introspection_json(), error)) {
    fs::remove_all(tmp, ec);
    return std::nullopt;
  }

  fs::rename(tmp, final_dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot rename to " + final_dir.string() + ": " + ec.message();
    fs::remove_all(tmp, ec);
    return std::nullopt;
  }
  return final_dir.string();
}

void install_crash_handler(TelemetryHub* hub) {
  g_crash_hub = hub;
  for (const int sig : kCrashSignals) {
    std::signal(sig, hub != nullptr ? crash_handler : SIG_DFL);
  }
}

}  // namespace ugrpc::obs::live
