// Semantic invariant checking over merged traces (tentpole of ISSUE 3).
//
// check() replays a merged, sequence-ordered trace (Tracer::merged()) and
// verifies the invariants the configured micro-protocol set promises --
// the same trace-validation approach OptSCORE uses to compare group
// communication stacks.  Which invariants apply is configuration-dependent
// (an at-least-once stack legitimately executes duplicates); Expect captures
// the selection, and core/observe.h derives it from a core::Config.
//
// Invariants (paper Fig. 1 / Fig. 2 properties):
//   * unique execution      -- at most one committed execution per
//                              (call, server site);
//   * atomic execution      -- no partial execution survives a crash: a
//                              commit requires a start in the same server
//                              incarnation, and a crash that interrupts an
//                              execution must be followed by a state
//                              rollback (kStateRestored) before the
//                              recovered incarnation commits anything;
//   * bounded termination   -- every issued call completes (any status)
//                              within the bound, unless its client crashed
//                              or the trace ends before the deadline;
//   * FIFO order            -- per (client incarnation, server site),
//                              executions start in call-id order;
//   * total order           -- any two calls executed by two sites start in
//                              the same relative order at both;
//   * orphan termination    -- no execution of a dead client incarnation
//                              commits after a newer incarnation of that
//                              client has started executing at the site.
//
// The checker also produces a Summary of evidence counters (duplicate
// commits, completions, latency) that benches print regardless of which
// invariants are enforced -- Fig. 1's "dup executions" column is measured
// this way instead of hand-counted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace ugrpc::obs {

/// Which invariants a trace is expected to satisfy.
struct Expect {
  bool unique_execution = false;
  bool atomic_execution = false;
  /// Bounded Termination's time bound; checking is off when unset.
  std::optional<sim::Duration> termination_bound;
  /// Completion may trail the deadline by this much (the completion record
  /// is stamped when the waiting fiber resumes, one scheduling step after
  /// the deadline timer fires).
  sim::Duration termination_slack = sim::msec(1);
  bool fifo_order = false;
  bool total_order = false;
  bool terminate_orphans = false;
};

enum class Invariant : std::uint8_t {
  kUniqueExecution,
  kAtomicExecution,
  kBoundedTermination,
  kFifoOrder,
  kTotalOrder,
  kOrphanTermination,
};

[[nodiscard]] std::string_view to_string(Invariant inv);

struct Violation {
  Invariant invariant;
  ProcessId site;       ///< site the violation was observed at (0 = global)
  std::uint64_t call;   ///< raw CallId involved, 0 if none
  sim::Time time;       ///< trace time of the offending event
  std::string detail;   ///< human-readable explanation
};

/// Evidence counters computed from the trace (independent of Expect).
struct Summary {
  std::uint64_t calls_issued = 0;
  std::uint64_t calls_completed = 0;
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_timeout = 0;
  std::uint64_t execs_started = 0;
  std::uint64_t execs_committed = 0;
  /// Committed executions beyond the first per (call, site) -- Fig. 1's
  /// "dup executions" evidence, measured.
  std::uint64_t duplicate_commits = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t orphans_killed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  sim::Duration max_call_latency = 0;  ///< completed calls only
};

struct Report {
  std::vector<Violation> violations;
  Summary summary;
  /// Invariants that were actually enforced (for display).
  std::vector<Invariant> checked;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::uint64_t count(Invariant inv) const;
  /// One line, e.g. "0 violations (unique, atomic, bounded checked)".
  [[nodiscard]] std::string brief() const;
};

/// Replays `trace` (must be sequence-ordered, as produced by
/// Tracer::merged()) against `expect`.
[[nodiscard]] Report check(const std::vector<Event>& trace, const Expect& expect);

/// Evidence counters only (equivalent to check(trace, {}).summary).
[[nodiscard]] Summary summarize(const std::vector<Event>& trace);

}  // namespace ugrpc::obs
