#include "obs/trace.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/json.h"

namespace ugrpc::obs {

std::string_view kind_name(Kind k) {
  switch (k) {
    case Kind::kCallIssued: return "call_issued";
    case Kind::kCallCompleted: return "call_completed";
    case Kind::kEventTriggered: return "event_triggered";
    case Kind::kEventHandled: return "event_handled";
    case Kind::kMsgSent: return "msg_sent";
    case Kind::kMsgDelivered: return "msg_delivered";
    case Kind::kMsgDropped: return "msg_dropped";
    case Kind::kMsgDuplicated: return "msg_duplicated";
    case Kind::kMsgUnroutable: return "msg_unroutable";
    case Kind::kTimerArmed: return "timer_armed";
    case Kind::kTimerFired: return "timer_fired";
    case Kind::kTimerCancelled: return "timer_cancelled";
    case Kind::kExecStarted: return "exec_started";
    case Kind::kExecCommitted: return "exec_committed";
    case Kind::kDupSuppressed: return "dup_suppressed";
    case Kind::kRetransmit: return "retransmit";
    case Kind::kCheckpoint: return "checkpoint";
    case Kind::kStateRestored: return "state_restored";
    case Kind::kOrphanKilled: return "orphan_killed";
    case Kind::kCallDeferred: return "call_deferred";
    case Kind::kStaleDropped: return "stale_dropped";
    case Kind::kCallHeld: return "call_held";
    case Kind::kCallReleased: return "call_released";
    case Kind::kSerialAcquired: return "serial_acquired";
    case Kind::kSerialReleased: return "serial_released";
    case Kind::kDeadlineExpired: return "deadline_expired";
    case Kind::kSiteCrashed: return "site_crashed";
    case Kind::kSiteRecovered: return "site_recovered";
    case Kind::kKindCount: break;
  }
  return "<invalid>";
}

Kind kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindCount; ++i) {
    const Kind k = static_cast<Kind>(i);
    if (kind_name(k) == name) return k;
  }
  return Kind::kKindCount;
}

std::string_view span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kEventChain: return "chain";
    case SpanKind::kHandler: return "handler";
    case SpanKind::kTimer: return "timer";
    case SpanKind::kWheelFire: return "wheel_fire";
    case SpanKind::kSend: return "send";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kCall: return "call";
    case SpanKind::kExec: return "exec";
    case SpanKind::kSpanKindCount: break;
  }
  return "<invalid>";
}

std::uint64_t SiteTrace::span_open(sim::Time t, SpanKind kind, std::uint32_t name,
                                   const SpanCtx& ctx, std::uint64_t a) {
  if (spans_.size() >= span_capacity_) {
    ++spans_dropped_;
    return 0;
  }
  // (site << 32 | tracer-global seq): unique across every site of this tracer
  // AND across OS processes (sites are disjoint between forked processes), so
  // multi-process Perfetto fragments merge without id collisions.
  const std::uint64_t id = (static_cast<std::uint64_t>(site_.value()) << 32) |
                           (tracer_.next_span_seq_++ & 0xFFFFFFFFu);
  SpanRecord rec;
  rec.id = id;
  rec.trace = ctx.trace;
  rec.parent = ctx.parent;
  rec.begin = t;
  rec.ns_begin = steady_ns();
  rec.site = site_;
  rec.kind = kind;
  rec.name = name;
  rec.a = a;
  open_.emplace(id, spans_.size());
  spans_.push_back(rec);
  return id;
}

void SiteTrace::span_close(std::uint64_t id, sim::Time t) {
  if (id == 0) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;
  SpanRecord& rec = spans_[it->second];
  rec.end = t;
  rec.ns_end = steady_ns();
  if (rec.ns_end == rec.ns_begin) rec.ns_end = rec.ns_begin + 1;  // open() sentinel is 0-width
  open_.erase(it);
}

void SiteTrace::span_flag(std::uint64_t id) {
  if (id == 0) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].flagged = true;
}

SpanCtx SiteTrace::ctx_of(std::uint64_t id) const {
  auto it = open_.find(id);
  if (it != open_.end()) return SpanCtx{spans_[it->second].trace, id};
  return SpanCtx{0, id};
}

Tracer::Tracer(std::size_t per_site_capacity) : capacity_(per_site_capacity) {
  UGRPC_ASSERT(capacity_ > 0);
  names_.emplace_back();  // id 0 = ""
}

SiteTrace& Tracer::site(ProcessId site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(site, std::unique_ptr<SiteTrace>(new SiteTrace(*this, site, capacity_)))
             .first;
  }
  return *it->second;
}

std::uint32_t SiteTrace::intern(std::string_view s) { return tracer_.intern(s); }

std::uint32_t Tracer::intern(std::string_view s) {
  if (s.empty()) return 0;
  auto it = name_ids_.find(std::string(s));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

const std::string& Tracer::name(std::uint32_t id) const {
  return id < names_.size() ? names_[id] : names_[0];
}

std::vector<Event> SiteTrace::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  // Oldest-first: when full, the oldest entry sits at head_ (next overwrite).
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> Tracer::merged() const {
  std::vector<Event> out;
  for (const auto& [id, site] : sites_) {
    auto evs = site->events();
    out.insert(out.end(), evs.begin(), evs.end());
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& [id, site] : sites_) total += site->dropped();
  return total;
}

std::vector<SpanRecord> Tracer::merged_spans() const {
  std::vector<SpanRecord> out;
  for (const auto& [id, site] : sites_) {
    out.insert(out.end(), site->spans().begin(), site->spans().end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& x, const SpanRecord& y) {
    return (x.id & 0xFFFFFFFFu) < (y.id & 0xFFFFFFFFu);
  });
  return out;
}

std::uint64_t Tracer::total_spans_dropped() const {
  std::uint64_t total = 0;
  for (const auto& [id, site] : sites_) total += site->spans_dropped();
  return total;
}

std::string Tracer::dump_json() const {
  std::string out = "[";
  bool first = true;
  for (const Event& e : merged()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"seq\":" + std::to_string(e.seq) + ",\"t\":" + std::to_string(e.time) +
           ",\"site\":" + std::to_string(e.site.value()) + ",\"kind\":\"" +
           std::string(kind_name(e.kind)) + "\"";
    if (e.call != 0) out += ",\"call\":" + std::to_string(e.call);
    if (e.a != 0) out += ",\"a\":" + std::to_string(e.a);
    if (e.b != 0) out += ",\"b\":" + std::to_string(e.b);
    if (e.name != 0) out += ",\"name\":" + json_str(name(e.name));
    out += "}";
  }
  out += "\n]";
  return out;
}

void Tracer::clear() {
  // Reset the rings in place: components hold raw SiteTrace pointers, and
  // site() promises stable references for the tracer's lifetime.
  for (auto& [id, site] : sites_) {
    site->head_ = 0;
    site->count_ = 0;
    site->dropped_ = 0;
    site->spans_.clear();
    site->open_.clear();
    site->spans_dropped_ = 0;
    site->fiber_ctx_.clear();
  }
  next_seq_ = 1;
  next_span_seq_ = 1;
  for (auto& c : counts_) c = 0;
}

}  // namespace ugrpc::obs
