#include "obs/trace.h"

#include <algorithm>

#include "common/assert.h"

namespace ugrpc::obs {

std::string_view kind_name(Kind k) {
  switch (k) {
    case Kind::kCallIssued: return "call_issued";
    case Kind::kCallCompleted: return "call_completed";
    case Kind::kEventTriggered: return "event_triggered";
    case Kind::kEventHandled: return "event_handled";
    case Kind::kMsgSent: return "msg_sent";
    case Kind::kMsgDelivered: return "msg_delivered";
    case Kind::kMsgDropped: return "msg_dropped";
    case Kind::kMsgDuplicated: return "msg_duplicated";
    case Kind::kMsgUnroutable: return "msg_unroutable";
    case Kind::kTimerArmed: return "timer_armed";
    case Kind::kTimerFired: return "timer_fired";
    case Kind::kTimerCancelled: return "timer_cancelled";
    case Kind::kExecStarted: return "exec_started";
    case Kind::kExecCommitted: return "exec_committed";
    case Kind::kDupSuppressed: return "dup_suppressed";
    case Kind::kRetransmit: return "retransmit";
    case Kind::kCheckpoint: return "checkpoint";
    case Kind::kStateRestored: return "state_restored";
    case Kind::kOrphanKilled: return "orphan_killed";
    case Kind::kCallDeferred: return "call_deferred";
    case Kind::kStaleDropped: return "stale_dropped";
    case Kind::kCallHeld: return "call_held";
    case Kind::kCallReleased: return "call_released";
    case Kind::kSerialAcquired: return "serial_acquired";
    case Kind::kSerialReleased: return "serial_released";
    case Kind::kDeadlineExpired: return "deadline_expired";
    case Kind::kSiteCrashed: return "site_crashed";
    case Kind::kSiteRecovered: return "site_recovered";
    case Kind::kKindCount: break;
  }
  return "<invalid>";
}

Tracer::Tracer(std::size_t per_site_capacity) : capacity_(per_site_capacity) {
  UGRPC_ASSERT(capacity_ > 0);
  names_.emplace_back();  // id 0 = ""
}

SiteTrace& Tracer::site(ProcessId site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(site, std::unique_ptr<SiteTrace>(new SiteTrace(*this, site, capacity_)))
             .first;
  }
  return *it->second;
}

std::uint32_t SiteTrace::intern(std::string_view s) { return tracer_.intern(s); }

std::uint32_t Tracer::intern(std::string_view s) {
  if (s.empty()) return 0;
  auto it = name_ids_.find(std::string(s));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

const std::string& Tracer::name(std::uint32_t id) const {
  return id < names_.size() ? names_[id] : names_[0];
}

std::vector<Event> SiteTrace::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  // Oldest-first: when full, the oldest entry sits at head_ (next overwrite).
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> Tracer::merged() const {
  std::vector<Event> out;
  for (const auto& [id, site] : sites_) {
    auto evs = site->events();
    out.insert(out.end(), evs.begin(), evs.end());
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& [id, site] : sites_) total += site->dropped();
  return total;
}

std::string Tracer::dump_json() const {
  std::string out = "[";
  bool first = true;
  for (const Event& e : merged()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"seq\":" + std::to_string(e.seq) + ",\"t\":" + std::to_string(e.time) +
           ",\"site\":" + std::to_string(e.site.value()) + ",\"kind\":\"" +
           std::string(kind_name(e.kind)) + "\"";
    if (e.call != 0) out += ",\"call\":" + std::to_string(e.call);
    if (e.a != 0) out += ",\"a\":" + std::to_string(e.a);
    if (e.b != 0) out += ",\"b\":" + std::to_string(e.b);
    if (e.name != 0) out += ",\"name\":\"" + name(e.name) + "\"";
    out += "}";
  }
  out += "\n]";
  return out;
}

void Tracer::clear() {
  // Reset the rings in place: components hold raw SiteTrace pointers, and
  // site() promises stable references for the tracer's lifetime.
  for (auto& [id, site] : sites_) {
    site->head_ = 0;
    site->count_ = 0;
    site->dropped_ = 0;
  }
  next_seq_ = 1;
  for (auto& c : counts_) c = 0;
}

}  // namespace ugrpc::obs
