// Minimal JSON string escaping shared by every obs dumper (trace, metrics,
// perfetto).  Interned names and metric keys may contain user-provided group
// labels -- quotes, backslashes, control bytes -- which would otherwise
// corrupt the emitted documents.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace ugrpc::obs {

/// `s` escaped for embedding between JSON double quotes (quotes and the
/// enclosing string are NOT added).
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `s` as a complete JSON string literal, quotes included.
[[nodiscard]] inline std::string json_str(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace ugrpc::obs
