#include "obs/metrics.h"

#include <cstdio>

#include "obs/json.h"

namespace ugrpc::obs {

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper bound of bucket i: values with bit_width i, i.e. < 2^i.
      const std::uint64_t upper = bucket_upper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

Counter& Registry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(name, std::make_unique<Counter>()).first;
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  return *it->second;
}

void Registry::gauge(const std::string& name, std::function<std::uint64_t()> read) {
  UGRPC_ASSERT(read != nullptr);
  gauges_[name] = std::move(read);
}

std::string Registry::to_json() const {
  std::string out = "{";
  bool first = true;
  const auto emit_key = [&](const std::string& name) {
    if (!first) out += ",";
    first = false;
    out += "\n  " + json_str(name) + ": ";
  };
  for (const auto& [name, c] : counters_) {
    emit_key(name);
    out += std::to_string(c->value());
  }
  for (const auto& [name, read] : gauges_) {
    emit_key(name);
    out += std::to_string(read());
  }
  for (const auto& [name, h] : histograms_) {
    emit_key(name);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", h->mean());
    out += "{\"count\":" + std::to_string(h->count()) + ",\"sum\":" + std::to_string(h->sum()) +
           ",\"min\":" + std::to_string(h->min()) + ",\"max\":" + std::to_string(h->max()) +
           ",\"mean\":" + buf + ",\"p50\":" + std::to_string(h->quantile(0.5)) +
           ",\"p99\":" + std::to_string(h->quantile(0.99)) + "}";
  }
  out += "\n}";
  return out;
}

}  // namespace ugrpc::obs
