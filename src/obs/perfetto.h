// Chrome/Perfetto `trace_event` JSON export of a Tracer's span trees.
//
// Emits the legacy JSON trace format (loadable by ui.perfetto.dev and
// chrome://tracing): one "X" complete event per closed span (pid = site,
// tid = trace id bucket so concurrent calls land on separate tracks), "M"
// metadata naming each site's track, and "s"/"f" flow events linking every
// send span to the deliver span it caused -- flow ids are the send-span ids
// carried on the wire, so fragments exported by *different OS processes*
// merge into one cross-process tree with zero coordination: concatenate the
// fragments and wrap (merge_perfetto_fragments).  Timestamps come from the
// spans' steady-clock nanosecond stamps, which share a timebase across
// processes on one host (CLOCK_MONOTONIC).
#pragma once

#include <string>
#include <vector>

namespace ugrpc::obs {

class Tracer;

struct PerfettoOptions {
  /// Label prefix for process tracks ("site" -> "site 3").
  std::string process_prefix = "site";
  /// Also emit flagged spans' "flagged":true arg (duplicate deliveries).
  bool emit_args = true;
};

/// One process's events as a comma-separated JSON fragment (no enclosing
/// brackets); "" when there are no closed spans.
[[nodiscard]] std::string export_perfetto_fragment(const Tracer& t,
                                                   const PerfettoOptions& opts = {});

/// A complete standalone trace document for `t`:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
[[nodiscard]] std::string export_perfetto(const Tracer& t, const PerfettoOptions& opts = {});

/// Wraps per-process fragments (from export_perfetto_fragment, possibly
/// written by forked children) into one loadable document.
[[nodiscard]] std::string merge_perfetto_fragments(const std::vector<std::string>& fragments);

}  // namespace ugrpc::obs
