#include "obs/checker.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace ugrpc::obs {

std::string_view to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kUniqueExecution: return "unique-execution";
    case Invariant::kAtomicExecution: return "atomic-execution";
    case Invariant::kBoundedTermination: return "bounded-termination";
    case Invariant::kFifoOrder: return "fifo-order";
    case Invariant::kTotalOrder: return "total-order";
    case Invariant::kOrphanTermination: return "orphan-termination";
  }
  return "<invalid>";
}

std::uint64_t Report::count(Invariant inv) const {
  std::uint64_t n = 0;
  for (const Violation& v : violations) {
    if (v.invariant == inv) ++n;
  }
  return n;
}

std::string Report::brief() const {
  std::string out = std::to_string(violations.size()) + " violation" +
                    (violations.size() == 1 ? "" : "s") + " (";
  if (checked.empty()) {
    out += "nothing checked";
  } else {
    for (std::size_t i = 0; i < checked.size(); ++i) {
      if (i > 0) out += ", ";
      out += to_string(checked[i]);
    }
    out += " checked";
  }
  return out + ")";
}

namespace {

/// Per-call bookkeeping keyed by raw CallId.
struct CallInfo {
  sim::Time issued = -1;
  ProcessId client;  ///< site whose ring recorded kCallIssued
  bool completed = false;
  sim::Time completed_at = 0;
  std::uint64_t status = 0;
};

struct SiteState {
  Incarnation inc = 1;
  bool rollback_due = false;  ///< crash interrupted an execution; expect restore
  /// In-progress executions: call -> (incarnation started, client process).
  std::map<std::uint64_t, std::pair<Incarnation, std::uint32_t>> in_progress;
  /// Last start incarnation per call (atomic: commit needs same-inc start).
  std::map<std::uint64_t, Incarnation> started_inc;
  /// Crash times (for the bounded-termination client-crash exemption).
  std::vector<sim::Time> crash_times;
};

}  // namespace

Report check(const std::vector<Event>& trace, const Expect& expect) {
  Report report;
  if (expect.unique_execution) report.checked.push_back(Invariant::kUniqueExecution);
  if (expect.atomic_execution) report.checked.push_back(Invariant::kAtomicExecution);
  if (expect.termination_bound.has_value())
    report.checked.push_back(Invariant::kBoundedTermination);
  if (expect.fifo_order) report.checked.push_back(Invariant::kFifoOrder);
  if (expect.total_order) report.checked.push_back(Invariant::kTotalOrder);
  if (expect.terminate_orphans) report.checked.push_back(Invariant::kOrphanTermination);

  Summary& sum = report.summary;
  std::map<std::uint64_t, CallInfo> calls;
  std::map<std::uint32_t, SiteState> sites;  // keyed by raw ProcessId
  // Commits per (site, server incarnation, call) and per (site, call): the
  // former scopes the unique check to one server lifetime (without Atomic
  // Execution a crash legitimately loses the duplicate tables), the latter
  // is the cross-crash evidence counter and the strict at-most-once check.
  std::map<std::tuple<std::uint32_t, Incarnation, std::uint64_t>, std::uint64_t> commits_inc;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> commits_all;
  // FIFO: (site, server inc, client, client inc) -> highest started call id.
  std::map<std::tuple<std::uint32_t, Incarnation, std::uint64_t, std::uint64_t>, std::uint64_t>
      fifo_last;
  // Total order: (site, server inc) -> first-start order of calls.
  std::map<std::pair<std::uint32_t, Incarnation>, std::vector<std::uint64_t>> exec_order;
  // Orphans: (site, client) -> highest client incarnation already executing.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> max_started_inc;
  sim::Time last_time = 0;

  const auto violate = [&](Invariant inv, const Event& e, std::string detail) {
    report.violations.push_back(Violation{inv, e.site, e.call, e.time, std::move(detail)});
  };

  for (const Event& e : trace) {
    last_time = std::max(last_time, e.time);
    SiteState& site = sites[e.site.value()];
    switch (e.kind) {
      case Kind::kCallIssued: {
        ++sum.calls_issued;
        CallInfo& info = calls[e.call];
        info.issued = e.time;
        info.client = e.site;
        break;
      }
      case Kind::kCallCompleted: {
        ++sum.calls_completed;
        if (e.a == 0) ++sum.calls_ok;
        if (e.a == 2) ++sum.calls_timeout;
        auto it = calls.find(e.call);
        if (it != calls.end() && !it->second.completed) {
          it->second.completed = true;
          it->second.completed_at = e.time;
          it->second.status = e.a;
          if (it->second.issued >= 0) {
            sum.max_call_latency = std::max(sum.max_call_latency, e.time - it->second.issued);
          }
        }
        break;
      }
      case Kind::kExecStarted: {
        ++sum.execs_started;
        site.in_progress[e.call] = {site.inc, static_cast<std::uint32_t>(e.a)};
        site.started_inc[e.call] = site.inc;
        if (expect.fifo_order) {
          const auto key = std::make_tuple(e.site.value(), site.inc, e.a, e.b);
          auto [it, inserted] = fifo_last.try_emplace(key, e.call);
          if (!inserted) {
            if (e.call < it->second) {
              violate(Invariant::kFifoOrder, e,
                      "call " + std::to_string(e.call) + " started after call " +
                          std::to_string(it->second) + " of the same sender stream");
            }
            it->second = std::max(it->second, e.call);
          }
        }
        if (expect.total_order) {
          auto& order = exec_order[{e.site.value(), site.inc}];
          if (std::find(order.begin(), order.end(), e.call) == order.end()) {
            order.push_back(e.call);
          }
        }
        if (expect.terminate_orphans) {
          auto& highest = max_started_inc[{e.site.value(), static_cast<std::uint32_t>(e.a)}];
          highest = std::max(highest, e.b);
        }
        break;
      }
      case Kind::kExecCommitted: {
        ++sum.execs_committed;
        site.in_progress.erase(e.call);
        const std::uint64_t nth_all = ++commits_all[{e.site.value(), e.call}];
        const std::uint64_t nth_inc =
            ++commits_inc[{e.site.value(), site.inc, e.call}];
        if (nth_all > 1) ++sum.duplicate_commits;
        if (expect.unique_execution) {
          // With Atomic Execution the duplicate tables survive crashes, so
          // uniqueness holds across the site's whole history; without it the
          // promise is scoped to one server incarnation.
          const std::uint64_t nth = expect.atomic_execution ? nth_all : nth_inc;
          if (nth > 1) {
            violate(Invariant::kUniqueExecution, e,
                    "call " + std::to_string(e.call) + " committed " + std::to_string(nth) +
                        " times at site " + std::to_string(e.site.value()));
          }
        }
        if (expect.atomic_execution) {
          auto it = site.started_inc.find(e.call);
          if (it == site.started_inc.end() || it->second != site.inc) {
            violate(Invariant::kAtomicExecution, e,
                    "commit of call " + std::to_string(e.call) +
                        " without a start in server incarnation " + std::to_string(site.inc));
          }
          if (site.rollback_due) {
            violate(Invariant::kAtomicExecution, e,
                    "commit before state rollback after a crash-interrupted execution");
          }
        }
        if (expect.terminate_orphans) {
          auto it = max_started_inc.find({e.site.value(), static_cast<std::uint32_t>(e.a)});
          if (it != max_started_inc.end() && e.b < it->second) {
            violate(Invariant::kOrphanTermination, e,
                    "execution of client incarnation " + std::to_string(e.b) +
                        " committed after incarnation " + std::to_string(it->second) +
                        " started executing");
          }
        }
        break;
      }
      case Kind::kDupSuppressed: ++sum.duplicates_suppressed; break;
      case Kind::kRetransmit: ++sum.retransmissions; break;
      case Kind::kOrphanKilled: {
        ++sum.orphans_killed;
        // The killed fiber's execution is abandoned deliberately; it is not
        // a crash-interrupted execution.
        std::erase_if(site.in_progress, [&](const auto& kv) {
          return kv.second.second == static_cast<std::uint32_t>(e.a);
        });
        break;
      }
      case Kind::kCheckpoint: ++sum.checkpoints; break;
      case Kind::kStateRestored: site.rollback_due = false; break;
      case Kind::kSiteCrashed: {
        ++sum.crashes;
        site.crash_times.push_back(e.time);
        if (expect.atomic_execution && !site.in_progress.empty()) site.rollback_due = true;
        site.in_progress.clear();
        break;
      }
      case Kind::kSiteRecovered: {
        ++sum.recoveries;
        site.inc = static_cast<Incarnation>(e.a);
        break;
      }
      default: break;
    }
  }

  // Bounded termination: judged at end of trace, when completions are known.
  if (expect.termination_bound.has_value()) {
    const sim::Duration bound = *expect.termination_bound + expect.termination_slack;
    for (const auto& [id, info] : calls) {
      if (info.issued < 0) continue;  // completion without issue record
      const sim::Time deadline = info.issued + bound;
      if (info.completed) {
        if (info.completed_at > deadline) {
          report.violations.push_back(Violation{
              Invariant::kBoundedTermination, info.client, id, info.completed_at,
              "call " + std::to_string(id) + " completed " +
                  std::to_string(info.completed_at - info.issued) + "us after issue (bound " +
                  std::to_string(*expect.termination_bound) + "us)"});
        }
        continue;
      }
      if (deadline > last_time) continue;  // trace ends before the deadline
      const auto& crashes = sites[info.client.value()].crash_times;
      const bool client_crashed = std::any_of(
          crashes.begin(), crashes.end(), [&](sim::Time t) { return t >= info.issued; });
      if (client_crashed) continue;  // caller died; nobody is waiting
      report.violations.push_back(
          Violation{Invariant::kBoundedTermination, info.client, id, deadline,
                    "call " + std::to_string(id) + " never completed (deadline passed at " +
                        std::to_string(deadline) + "us)"});
    }
  }

  // Total order: pairwise consistency of the per-(site, incarnation)
  // execution sequences.
  if (expect.total_order) {
    for (auto a = exec_order.begin(); a != exec_order.end(); ++a) {
      for (auto b = std::next(a); b != exec_order.end(); ++b) {
        std::map<std::uint64_t, std::size_t> pos_b;
        for (std::size_t i = 0; i < b->second.size(); ++i) pos_b[b->second[i]] = i;
        // Positions in b of the common calls, in a's order, must increase.
        std::size_t prev = 0;
        std::uint64_t prev_call = 0;
        bool have_prev = false;
        for (std::uint64_t call : a->second) {
          auto it = pos_b.find(call);
          if (it == pos_b.end()) continue;
          if (have_prev && it->second < prev) {
            report.violations.push_back(Violation{
                Invariant::kTotalOrder, ProcessId{a->first.first}, call, last_time,
                "sites " + std::to_string(a->first.first) + " and " +
                    std::to_string(b->first.first) + " executed calls " +
                    std::to_string(prev_call) + " and " + std::to_string(call) +
                    " in opposite orders"});
          }
          prev = it->second;
          prev_call = call;
          have_prev = true;
        }
      }
    }
  }

  return report;
}

Summary summarize(const std::vector<Event>& trace) { return check(trace, Expect{}).summary; }

}  // namespace ugrpc::obs
