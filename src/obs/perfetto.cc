#include "obs/perfetto.h"

#include <cinttypes>
#include <cstdio>
#include <set>

#include "obs/json.h"
#include "obs/trace.h"

namespace ugrpc::obs {

namespace {

/// trace_event timestamps are fractional microseconds.
std::string ts_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

/// Track id within a process: one track per trace so concurrent calls do not
/// stack into a false nesting; untraced background work goes to track 0.
std::uint64_t tid_of(const SpanRecord& s) { return s.trace == 0 ? 0 : 1 + s.trace % 997; }

}  // namespace

std::string export_perfetto_fragment(const Tracer& t, const PerfettoOptions& opts) {
  std::string out;
  bool first = true;
  const auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  std::set<std::uint64_t> named_sites;
  for (const SpanRecord& s : t.merged_spans()) {
    if (s.open()) continue;  // still running at export time; nothing to draw
    const std::uint64_t pid = s.site.value();
    if (named_sites.insert(pid).second) {
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
           json_str(opts.process_prefix + " " + std::to_string(pid)) + "}}");
    }
    const std::string& raw = t.name(s.name);
    const std::string name = raw.empty() ? std::string(span_kind_name(s.kind)) : raw;
    std::string obj = "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                      ",\"tid\":" + std::to_string(tid_of(s)) + ",\"ts\":" + ts_us(s.ns_begin) +
                      ",\"dur\":" + ts_us(s.wall_ns()) + ",\"name\":" + json_str(name) +
                      ",\"cat\":" + json_str(span_kind_name(s.kind));
    if (opts.emit_args) {
      obj += ",\"args\":{\"span\":" + std::to_string(s.id) +
             ",\"parent\":" + std::to_string(s.parent) + ",\"trace\":" + std::to_string(s.trace);
      if (s.a != 0) obj += ",\"a\":" + std::to_string(s.a);
      if (s.flagged) obj += ",\"flagged\":true";
      obj += "}";
    }
    obj += "}";
    emit(obj);
    // Cross-process edges: the send-span id travels in the wire frame and
    // becomes the deliver span's parent on the far side, so a flow step "s"
    // at every send matched by a finish "f" at every deliver joins the two
    // fragments without either side knowing about the other.
    if (s.kind == SpanKind::kSend) {
      emit("{\"ph\":\"s\",\"id\":" + std::to_string(s.id) + ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid_of(s)) + ",\"ts\":" + ts_us(s.ns_begin) +
           ",\"name\":\"msg\",\"cat\":\"flow\"}");
    } else if (s.kind == SpanKind::kDeliver && s.parent != 0) {
      emit("{\"ph\":\"f\",\"bp\":\"e\",\"id\":" + std::to_string(s.parent) +
           ",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid_of(s)) +
           ",\"ts\":" + ts_us(s.ns_begin) + ",\"name\":\"msg\",\"cat\":\"flow\"}");
    }
  }
  return out;
}

std::string export_perfetto(const Tracer& t, const PerfettoOptions& opts) {
  return merge_perfetto_fragments({export_perfetto_fragment(t, opts)});
}

std::string merge_perfetto_fragments(const std::vector<std::string>& fragments) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& frag : fragments) {
    if (frag.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += frag;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace ugrpc::obs
