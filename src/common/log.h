// Minimal leveled logger.
//
// Protocol code logs through UGRPC_LOG(level, ...) with printf-style
// formatting.  The sink is a process-global function pointer so tests can
// capture or silence output; the default sink writes to stderr.  Logging is
// deliberately synchronous and allocation-light: it is used inside the
// deterministic simulator and must not perturb scheduling.
#pragma once

#include <cstdarg>
#include <string_view>

namespace ugrpc {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

using LogSink = void (*)(LogLevel, std::string_view message);

/// Replaces the global log sink; returns the previous sink.  Passing nullptr
/// restores the default stderr sink.
LogSink set_log_sink(LogSink sink);

/// Messages below this level are dropped before formatting.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
}

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
inline void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  detail::vlog(level, fmt, args);
  va_end(args);
}

}  // namespace ugrpc

#define UGRPC_LOG(level, ...) ::ugrpc::log(::ugrpc::LogLevel::level, __VA_ARGS__)
