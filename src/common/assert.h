// Lightweight contract checking for ugrpc.
//
// UGRPC_ASSERT is used for internal invariants: violations indicate a bug in
// the library itself, so the process aborts with a diagnostic rather than
// limping on with corrupted protocol state.  Checks are active in all build
// types -- a protocol library whose invariants silently rot in release mode
// is worse than a slightly slower one.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ugrpc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ugrpc: assertion failed: %s (%s:%d)\n", expr, file, line);
  std::abort();
}

}  // namespace ugrpc

#define UGRPC_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::ugrpc::assert_fail(#expr, __FILE__, __LINE__))
