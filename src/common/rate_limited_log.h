// Keyed rate limiting for repetitive warnings, with exact counts.
//
// A retransmission loop aimed at a dead destination, or a watchdog scanning
// a stalled table, can hit the same condition thousands of times per second;
// one log line per occurrence drowns everything else.  The policy shared by
// every user (originally hand-rolled for unroutable-send warnings in
// net/network.cc, pinned by tests/net/network_test.cc):
//
//   * the FIRST occurrence for a key is reported immediately and in full;
//   * afterwards, at most one summary line per `period`, carrying the EXACT
//     number of occurrences suppressed since the last line.
//
// Counting is exact by construction -- occurrences_to_log() accumulates the
// suppressed backlog per key and hands it back in one piece -- so callers'
// metrics counters and the sum of logged counts always agree.
//
// Time is caller-supplied (an int64 microsecond clock, matching sim::Time):
// the helper works identically under the deterministic simulator's virtual
// clock and a real transport's steady clock, and stays allocation-free on
// the suppressed path after a key's first occurrence.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>

namespace ugrpc {

class RateLimitedLog {
 public:
  /// `period`: minimum clock gap between emitted lines for one key.
  explicit RateLimitedLog(std::int64_t period) : period_(period) {}

  /// Registers one occurrence for `key` at time `now` and returns how many
  /// occurrences the caller should report: 0 = stay silent, 1 = first
  /// occurrence (log it in full), n > 1 = summary of n occurrences since the
  /// last emitted line.
  [[nodiscard]] std::uint64_t occurrences_to_log(std::uint64_t key, std::int64_t now) {
    State& state = states_[key];
    ++state.unlogged;
    if (state.ever_logged && now - state.last_log < period_) return 0;
    state.ever_logged = true;
    state.last_log = now;
    return std::exchange(state.unlogged, 0);
  }

  /// Occurrences of `key` suppressed since its last emitted line.
  [[nodiscard]] std::uint64_t pending(std::uint64_t key) const {
    auto it = states_.find(key);
    return it != states_.end() ? it->second.unlogged : 0;
  }

  /// Forgets all keys (tests, stats resets).
  void clear() { states_.clear(); }

 private:
  struct State {
    std::uint64_t unlogged = 0;  ///< occurrences since the last emitted line
    std::int64_t last_log = 0;
    bool ever_logged = false;
  };

  std::int64_t period_;
  std::unordered_map<std::uint64_t, State> states_;
};

}  // namespace ugrpc
