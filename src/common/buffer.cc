#include "common/buffer.h"

#include <array>
#include <bit>
#include <cstring>

namespace ugrpc {

void Writer::uint_le(std::uint64_t v, int width) {
  // One staged append instead of `width` push_backs: a single detach check
  // and a single grow for the whole field.
  std::array<std::byte, 8> staged;
  for (int i = 0; i < width; ++i) {
    staged[static_cast<std::size_t>(i)] = static_cast<std::byte>(v & 0xffu);
    v >>= 8;
  }
  out_.append(std::span<const std::byte>(staged.data(), static_cast<std::size_t>(width)));
}

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  append_bytes(s);
}

void Writer::append_bytes(std::string_view s) {
  out_.append(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

void Writer::raw(std::span<const std::byte> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  out_.append(data);
}

void Reader::require(std::size_t n) const {
  if (remaining() < n) throw CodecError("ugrpc codec: truncated input");
}

std::uint8_t Reader::u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint64_t Reader::uint_le(int width) {
  require(static_cast<std::size_t>(width));
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t len = u32();
  require(len);
  std::string s;
  s.resize(len);
  std::memcpy(s.data(), data_.data() + pos_, len);
  pos_ += len;
  return s;
}

Buffer Reader::raw() {
  const std::uint32_t len = u32();
  require(len);
  Buffer b;
  b.append(data_.subspan(pos_, len));
  pos_ += len;
  return b;
}

}  // namespace ugrpc
