// Strongly-typed identifiers used throughout ugrpc.
//
// The paper's pseudocode traffics in bare ints for process ids, group ids,
// call ids and incarnation numbers.  We wrap each in a distinct type so that
// e.g. a CallId can never be passed where a ProcessId is expected; the wrappers
// are trivially copyable and hash/compare like the underlying integer.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace ugrpc {

namespace detail {

// CRTP-free tagged integer.  `Tag` makes each instantiation a distinct type.
template <typename Tag, typename Rep = std::uint64_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) { return os << id.value_; }

 private:
  Rep value_ = 0;
};

}  // namespace detail

struct ProcessIdTag {};
struct GroupIdTag {};
struct CallIdTag {};
struct OpIdTag {};
struct ProtocolIdTag {};
struct FiberIdTag {};
struct TimerIdTag {};
struct DomainIdTag {};

/// Identifies one process (site) in the distributed system.
using ProcessId = detail::TaggedId<ProcessIdTag, std::uint32_t>;
/// Identifies a server group (a named set of processes).
using GroupId = detail::TaggedId<GroupIdTag, std::uint32_t>;
/// Identifies one remote procedure call issued by a client.  Carried in every
/// Call/Reply/Ack message so requests and responses can be matched (paper
/// section 4.2).  Call ids are assigned per-client and are monotonically
/// increasing, which FIFO ordering relies on.
using CallId = detail::TaggedId<CallIdTag, std::uint64_t>;
/// Identifies the remote operation (procedure) being invoked.
using OpId = detail::TaggedId<OpIdTag, std::uint32_t>;
/// x-kernel style demultiplexing key: which protocol a packet belongs to.
using ProtocolId = detail::TaggedId<ProtocolIdTag, std::uint16_t>;
/// Identifies a simulated thread (fiber) managed by sim::Scheduler.
using FiberId = detail::TaggedId<FiberIdTag, std::uint64_t>;
/// Identifies a pending timer registration.
using TimerId = detail::TaggedId<TimerIdTag, std::uint64_t>;
/// Groups fibers/timers belonging to one crashable unit (a Site).
using DomainId = detail::TaggedId<DomainIdTag, std::uint32_t>;

/// Client incarnation number.  Incremented each time a site recovers from a
/// crash; used by the orphan-handling micro-protocols to partition calls into
/// generations (paper section 4.4.7).
using Incarnation = std::uint32_t;

}  // namespace ugrpc

namespace std {

template <typename Tag, typename Rep>
struct hash<ugrpc::detail::TaggedId<Tag, Rep>> {
  size_t operator()(ugrpc::detail::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
