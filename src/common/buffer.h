// Byte buffer plus a small, bounds-checked binary codec.
//
// The gRPC layer of the paper treats call arguments as "one continuous
// untyped field that is copied to and from messages"; Buffer is that field.
// Copying a Buffer is O(1): the byte storage is shared and copied-on-write,
// so fanning one payload out to n group members (multicast, retransmission,
// stored duplicate answers) costs n refcount bumps instead of n deep
// copies.  Mutation through any handle detaches it first, so value
// semantics are preserved -- two handles never observe each other's writes.
//
// Writer/Reader implement the wire codec used both for marshalling call
// arguments (src/stub) and for serializing protocol messages (src/net).
// Integers are encoded little-endian at fixed width; strings and nested
// buffers are length-prefixed.  Reader throws CodecError on malformed input
// rather than reading out of bounds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ugrpc {

/// Error thrown by Reader when decoding runs past the end of the buffer or
/// encounters an impossible length prefix.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A growable sequence of bytes with value semantics and O(1) copies
/// (shared storage, copy-on-write).
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::byte> bytes)
      : data_(std::make_shared<std::vector<std::byte>>(std::move(bytes))) {}

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return data_ ? std::span<const std::byte>(*data_) : std::span<const std::byte>{};
  }

  void append(std::span<const std::byte> data) {
    auto& bytes = mut();
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  void push_back(std::byte b) { mut().push_back(b); }
  void reserve(std::size_t n) { mut().reserve(n); }
  void clear() {
    // Shared storage is simply released (other handles keep their bytes);
    // exclusive storage is reused to keep its capacity.
    if (data_ != nullptr && data_.use_count() == 1) {
      data_->clear();
    } else {
      data_.reset();
    }
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    const auto sa = a.bytes();
    const auto sb = b.bytes();
    return std::equal(sa.begin(), sa.end(), sb.begin(), sb.end());
  }

  /// True when this handle shares its storage with another (test/bench
  /// observability for the copy-on-write behaviour).
  [[nodiscard]] bool shares_storage() const { return data_ != nullptr && data_.use_count() > 1; }

 private:
  /// Mutable access: allocates on first write, detaches shared storage.
  std::vector<std::byte>& mut() {
    if (data_ == nullptr) {
      data_ = std::make_shared<std::vector<std::byte>>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<std::vector<std::byte>>(*data_);
    }
    return *data_;
  }

  std::shared_ptr<std::vector<std::byte>> data_;
};

/// Appends encoded values to a Buffer.
class Writer {
 public:
  explicit Writer(Buffer& out) : out_(out) {}

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { uint_le(v, 2); }
  void u32(std::uint32_t v) { uint_le(v, 4); }
  void u64(std::uint64_t v) { uint_le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed string.
  void str(std::string_view s);
  /// Length-prefixed raw bytes (e.g. a nested Buffer).
  void raw(std::span<const std::byte> data);

 private:
  void uint_le(std::uint64_t v, int width);
  void append_bytes(std::string_view s);

  Buffer& out_;
};

/// Decodes values from a byte span, in the order Writer produced them.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}
  explicit Reader(const Buffer& buf) : data_(buf.bytes()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(uint_le(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(uint_le(4)); }
  [[nodiscard]] std::uint64_t u64() { return uint_le(8); }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::string str();
  [[nodiscard]] Buffer raw();

  /// Number of bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

 private:
  std::uint64_t uint_le(int width);
  void require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ugrpc
