// Byte buffer plus a small, bounds-checked binary codec.
//
// The gRPC layer of the paper treats call arguments as "one continuous
// untyped field that is copied to and from messages"; Buffer is that field.
// Writer/Reader implement the wire codec used both for marshalling call
// arguments (src/stub) and for serializing protocol messages (src/net).
// Integers are encoded little-endian at fixed width; strings and nested
// buffers are length-prefixed.  Reader throws CodecError on malformed input
// rather than reading out of bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ugrpc {

/// Error thrown by Reader when decoding runs past the end of the buffer or
/// encounters an impossible length prefix.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An owned, growable sequence of bytes.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }
  [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }

  void append(std::span<const std::byte> data) { bytes_.insert(bytes_.end(), data.begin(), data.end()); }
  void push_back(std::byte b) { bytes_.push_back(b); }
  void clear() { bytes_.clear(); }

  friend bool operator==(const Buffer&, const Buffer&) = default;

 private:
  std::vector<std::byte> bytes_;
};

/// Appends encoded values to a Buffer.
class Writer {
 public:
  explicit Writer(Buffer& out) : out_(out) {}

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { uint_le(v, 2); }
  void u32(std::uint32_t v) { uint_le(v, 4); }
  void u64(std::uint64_t v) { uint_le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed string.
  void str(std::string_view s);
  /// Length-prefixed raw bytes (e.g. a nested Buffer).
  void raw(std::span<const std::byte> data);

 private:
  void uint_le(std::uint64_t v, int width);
  void append_bytes(std::string_view s);

  Buffer& out_;
};

/// Decodes values from a byte span, in the order Writer produced them.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}
  explicit Reader(const Buffer& buf) : data_(buf.bytes()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(uint_le(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(uint_le(4)); }
  [[nodiscard]] std::uint64_t u64() { return uint_le(8); }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::string str();
  [[nodiscard]] Buffer raw();

  /// Number of bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

 private:
  std::uint64_t uint_le(int width);
  void require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ugrpc
