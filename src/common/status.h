// Call status codes shared by the client-side tables and the public API.
#pragma once

#include <string_view>

namespace ugrpc {

/// Return status of a remote call (paper section 4.2, `Status_type`).
///
/// - kWaiting: the call is still pending (internal state, never returned to
///   the application by a completed synchronous call).
/// - kOk: the acceptance condition was met; results are valid.
/// - kTimeout: Bounded Termination expired before the acceptance condition
///   was met.  Per the paper's failure-semantics discussion, no conclusion
///   about execution is possible (unless Unique/Atomic Execution are
///   configured, which bound *how* it may have executed).
enum class Status : unsigned char {
  kOk,
  kWaiting,
  kTimeout,
};

[[nodiscard]] constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kWaiting: return "WAITING";
    case Status::kTimeout: return "TIMEOUT";
  }
  return "<invalid>";
}

}  // namespace ugrpc
