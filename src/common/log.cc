#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace ugrpc {

namespace {

void default_sink(LogLevel level, std::string_view message) {
  const char* name = "?";
  switch (level) {
    case LogLevel::kTrace: name = "TRACE"; break;
    case LogLevel::kDebug: name = "DEBUG"; break;
    case LogLevel::kInfo: name = "INFO"; break;
    case LogLevel::kWarn: name = "WARN"; break;
    case LogLevel::kError: name = "ERROR"; break;
  }
  std::fprintf(stderr, "[ugrpc %-5s] %.*s\n", name, static_cast<int>(message.size()), message.data());
}

std::atomic<LogSink> g_sink{&default_sink};
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace

LogSink set_log_sink(LogSink sink) {
  return g_sink.exchange(sink != nullptr ? sink : &default_sink);
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  char stack_buf[512];
  std::va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, copy);
  va_end(copy);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof(stack_buf)) {
    g_sink.load()(level, std::string_view(stack_buf, static_cast<std::size_t>(n)));
    return;
  }
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  std::vsnprintf(big.data(), big.size(), fmt, args);
  g_sink.load()(level, std::string_view(big.data(), static_cast<std::size_t>(n)));
}

}  // namespace detail

}  // namespace ugrpc
