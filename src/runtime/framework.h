// The micro-protocol runtime framework (paper section 3).
//
// Provides the four operations the paper defines for micro-protocols --
// register, trigger, deregister, cancel_event -- plus TIMEOUT registration:
//
//  * register_handler(event, name, priority, fn): invoke `fn` whenever
//    `event` is triggered.  Handlers for one event run *sequentially and
//    blocking* in ascending priority-value order; equal priorities run in
//    registration order.  Omitting the priority yields kDefaultPriority,
//    which runs after all explicitly prioritised handlers ("defaults to the
//    lowest priority").
//  * trigger(event, arg): runs all handlers registered for `event` (a
//    coroutine; the caller awaits completion -- "blocking" invocation).
//    Handlers may suspend (P on a semaphore, calling into the user
//    protocol); the event chain waits, which is exactly how Serial Execution
//    serialises calls.
//  * EventContext::cancel() inside a handler skips the remaining handlers of
//    the current invocation (cancel_event()).
//  * register_timeout(name, delay, fn): one-shot handler invoked `delay`
//    after registration, in a fresh fiber; unlike ordinary registrations it
//    fires once and is gone (paper: "executed only once after the timeout
//    period has expired").  Cancelled automatically if the framework is
//    destroyed first (site crash).
//
// Dispatch hot path: each event keeps its registrations pre-sorted by
// (priority, registration sequence) and caches an immutable, shared snapshot
// of the invocation chain.  register_handler/deregister bump the event's
// generation, invalidating the snapshot; trigger() rebuilds it at most once
// per generation and otherwise only takes a reference -- no per-trigger
// allocation, copying or sorting.  Handlers deregistered while their event
// is in flight are skipped via a liveness check against the registry.
//
// The framework also records event names and registrations for
// introspection (reproduces paper Figure 3's picture of a live composite).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "runtime/event.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace ugrpc::runtime {

/// Handlers registered without an explicit priority run last.
inline constexpr int kDefaultPriority = 1'000'000;

struct HandlerIdTag {};
using HandlerId = ugrpc::detail::TaggedId<HandlerIdTag, std::uint64_t>;

using Handler = std::function<sim::Task<>(EventContext&)>;
/// Timeout handlers take no event argument (paper's TIMEOUT handlers).
using TimeoutHandler = std::function<sim::Task<>()>;

class Framework {
 public:
  /// Timers registered through the framework (TIMEOUT handlers) and the
  /// fibers they run in come from `transport`'s clock/timer/spawn hooks, so
  /// one framework implementation serves both the simulated and the real
  /// (UDP) backend.
  Framework(net::Transport& transport, DomainId domain);
  ~Framework();

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  /// Associates a human-readable name with an event id (introspection only).
  void define_event(EventId event, std::string name);

  /// Registers `fn` for `event`.  Returns an id usable with deregister().
  HandlerId register_handler(EventId event, std::string handler_name, int priority, Handler fn);
  HandlerId register_handler(EventId event, std::string handler_name, Handler fn) {
    return register_handler(event, std::move(handler_name), kDefaultPriority, std::move(fn));
  }

  /// Removes a registration.  Safe to call for an already-removed id.  A
  /// handler deregistered while its event is being triggered no longer runs
  /// in that invocation (if it has not started yet).
  void deregister(HandlerId id);
  /// Paper-style deregistration by (event, handler name).
  void deregister(EventId event, const std::string& handler_name);

  /// Invokes every handler registered for `event`, in priority order,
  /// sequentially, awaiting each (blocking sequential invocation).  Returns
  /// true if the chain ran to completion, false if a handler cancelled it.
  sim::Task<bool> trigger(EventId event, EventArg arg = {});

  /// One-shot timeout (see file comment).  Returns the timer id; cancel with
  /// cancel_timeout().
  TimerId register_timeout(std::string name, sim::Duration delay, TimeoutHandler fn);
  void cancel_timeout(TimerId id);

  [[nodiscard]] net::Transport& transport() { return transport_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return transport_.executor(); }
  [[nodiscard]] DomainId domain() const { return domain_; }

  // ---- observability ----

  /// Called immediately before each handler invocation with (virtual time,
  /// event name, handler name).  One observer per framework; pass nullptr to
  /// remove.  Intended for tests and debugging dumps -- the observer runs
  /// synchronously and must not re-enter the framework.
  using TraceObserver = std::function<void(sim::Time, const std::string& event,
                                           const std::string& handler)>;
  void set_trace_observer(TraceObserver observer) { trace_ = std::move(observer); }

  /// Attaches this framework to a per-site trace ring (obs layer): trigger()
  /// records kEventTriggered/kEventHandled and the TIMEOUT machinery records
  /// kTimerArmed/kTimerFired/kTimerCancelled.  nullptr (the default) turns
  /// recording off; every record site is behind a single pointer check.
  void set_site_trace(obs::SiteTrace* trace) { site_trace_ = trace; }
  [[nodiscard]] obs::SiteTrace* site_trace() const { return site_trace_; }

  // ---- introspection (Figure 3 reproduction, debugging) ----
  struct RegistrationInfo {
    std::string event;
    std::string handler;
    int priority;
  };
  /// All live registrations, grouped by event, in invocation order.
  [[nodiscard]] std::vector<RegistrationInfo> registrations() const;
  [[nodiscard]] std::string event_name(EventId event) const;
  [[nodiscard]] std::size_t handler_count(EventId event) const;

  /// Mutation counter of `event`'s handler set: bumped by every
  /// register_handler/deregister touching the event.  The cached dispatch
  /// chain is tagged with the generation it was built from and rebuilt only
  /// when the two diverge (regression tests pin this).
  [[nodiscard]] std::uint64_t generation(EventId event) const;

 private:
  // Immutable once registered; the chain snapshot and the sorted per-event
  // vector share ownership so in-flight triggers survive deregistration.
  struct Registration {
    HandlerId id;
    EventId event;
    std::string name;
    int priority;
    std::uint64_t seq;
    Handler fn;
  };
  using RegistrationPtr = std::shared_ptr<const Registration>;
  using Chain = std::vector<RegistrationPtr>;

  struct EventTable {
    Chain regs;  ///< sorted by (priority, seq); insertion keeps the order
    std::shared_ptr<const Chain> cache;  ///< dispatch snapshot, lazily rebuilt
    std::uint64_t generation = 0;        ///< bumped on every regs mutation
    std::uint64_t cache_generation = 0;  ///< generation `cache` was built at
  };

  [[nodiscard]] const std::shared_ptr<const Chain>& chain_for(EventId event);

  net::Transport& transport_;
  DomainId domain_;
  std::unordered_map<EventId, EventTable> events_;
  std::unordered_map<HandlerId, EventId> by_id_;
  std::unordered_map<EventId, std::string> event_names_;
  std::unordered_set<TimerId> live_timeouts_;
  TraceObserver trace_;
  obs::SiteTrace* site_trace_ = nullptr;
  std::uint64_t next_handler_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ugrpc::runtime
