// The micro-protocol runtime framework (paper section 3).
//
// Provides the four operations the paper defines for micro-protocols --
// register, trigger, deregister, cancel_event -- plus TIMEOUT registration:
//
//  * register_handler(event, name, priority, fn): invoke `fn` whenever
//    `event` is triggered.  Handlers for one event run *sequentially and
//    blocking* in ascending priority-value order; equal priorities run in
//    registration order.  Omitting the priority yields kDefaultPriority,
//    which runs after all explicitly prioritised handlers ("defaults to the
//    lowest priority").
//  * trigger(event, arg): runs all handlers registered for `event` (a
//    coroutine; the caller awaits completion -- "blocking" invocation).
//    Handlers may suspend (P on a semaphore, calling into the user
//    protocol); the event chain waits, which is exactly how Serial Execution
//    serialises calls.
//  * EventContext::cancel() inside a handler skips the remaining handlers of
//    the current invocation (cancel_event()).
//  * register_timeout(name, delay, fn): one-shot handler invoked `delay`
//    after registration, in a fresh fiber; unlike ordinary registrations it
//    fires once and is gone (paper: "executed only once after the timeout
//    period has expired").  Cancelled automatically if the framework is
//    destroyed first (site crash).
//
// The framework also records event names and registrations for
// introspection (reproduces paper Figure 3's picture of a live composite).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "runtime/event.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace ugrpc::runtime {

/// Handlers registered without an explicit priority run last.
inline constexpr int kDefaultPriority = 1'000'000;

struct HandlerIdTag {};
using HandlerId = ugrpc::detail::TaggedId<HandlerIdTag, std::uint64_t>;

using Handler = std::function<sim::Task<>(EventContext&)>;
/// Timeout handlers take no event argument (paper's TIMEOUT handlers).
using TimeoutHandler = std::function<sim::Task<>()>;

class Framework {
 public:
  Framework(sim::Scheduler& sched, DomainId domain);
  ~Framework();

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  /// Associates a human-readable name with an event id (introspection only).
  void define_event(EventId event, std::string name);

  /// Registers `fn` for `event`.  Returns an id usable with deregister().
  HandlerId register_handler(EventId event, std::string handler_name, int priority, Handler fn);
  HandlerId register_handler(EventId event, std::string handler_name, Handler fn) {
    return register_handler(event, std::move(handler_name), kDefaultPriority, std::move(fn));
  }

  /// Removes a registration.  Safe to call for an already-removed id.  A
  /// handler deregistered while its event is being triggered no longer runs
  /// in that invocation (if it has not started yet).
  void deregister(HandlerId id);
  /// Paper-style deregistration by (event, handler name).
  void deregister(EventId event, const std::string& handler_name);

  /// Invokes every handler registered for `event`, in priority order,
  /// sequentially, awaiting each (blocking sequential invocation).  Returns
  /// true if the chain ran to completion, false if a handler cancelled it.
  sim::Task<bool> trigger(EventId event, EventArg arg = {});

  /// One-shot timeout (see file comment).  Returns the timer id; cancel with
  /// cancel_timeout().
  TimerId register_timeout(std::string name, sim::Duration delay, TimeoutHandler fn);
  void cancel_timeout(TimerId id);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] DomainId domain() const { return domain_; }

  // ---- observability ----

  /// Called immediately before each handler invocation with (virtual time,
  /// event name, handler name).  One observer per framework; pass nullptr to
  /// remove.  Intended for tests and debugging dumps -- the observer runs
  /// synchronously and must not re-enter the framework.
  using TraceObserver = std::function<void(sim::Time, const std::string& event,
                                           const std::string& handler)>;
  void set_trace_observer(TraceObserver observer) { trace_ = std::move(observer); }

  // ---- introspection (Figure 3 reproduction, debugging) ----
  struct RegistrationInfo {
    std::string event;
    std::string handler;
    int priority;
  };
  /// All live registrations, grouped by event, in invocation order.
  [[nodiscard]] std::vector<RegistrationInfo> registrations() const;
  [[nodiscard]] std::string event_name(EventId event) const;
  [[nodiscard]] std::size_t handler_count(EventId event) const;

 private:
  struct Registration {
    HandlerId id;
    EventId event;
    std::string name;
    int priority;
    std::uint64_t seq;
    std::shared_ptr<Handler> fn;  // shared so in-flight triggers survive deregistration
  };

  sim::Scheduler& sched_;
  DomainId domain_;
  // Sorted invocation order per event: key (priority, seq).
  std::map<std::tuple<EventId, int, std::uint64_t>, Registration> table_;
  std::unordered_map<HandlerId, std::tuple<EventId, int, std::uint64_t>> by_id_;
  std::unordered_map<EventId, std::string> event_names_;
  std::unordered_set<TimerId> live_timeouts_;
  TraceObserver trace_;
  std::uint64_t next_handler_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ugrpc::runtime
