#include "runtime/framework.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/assert.h"
#include "common/log.h"

namespace ugrpc::runtime {

Framework::Framework(net::Transport& transport, DomainId domain)
    : transport_(transport), domain_(domain) {}

Framework::~Framework() {
  // A destroyed framework (crashed site) must not leave timers behind: their
  // callbacks capture `this`.
  for (TimerId id : live_timeouts_) transport_.cancel_timer(id);
}

void Framework::define_event(EventId event, std::string name) {
  event_names_[event] = std::move(name);
}

HandlerId Framework::register_handler(EventId event, std::string handler_name, int priority,
                                      Handler fn) {
  UGRPC_ASSERT(fn != nullptr);
  UGRPC_ASSERT(priority >= 0 && "priorities are non-negative");
  const HandlerId id{next_handler_++};
  auto reg = std::make_shared<const Registration>(
      Registration{id, event, std::move(handler_name), priority, next_seq_++, std::move(fn)});
  EventTable& table = events_[event];
  // Insertion keeps (priority, seq) order; seq is monotonic, so among equal
  // priorities the new entry goes after every existing one.
  const auto pos = std::upper_bound(
      table.regs.begin(), table.regs.end(), priority,
      [](int prio, const RegistrationPtr& r) { return prio < r->priority; });
  table.regs.insert(pos, std::move(reg));
  ++table.generation;
  by_id_.emplace(id, event);
  return id;
}

void Framework::deregister(HandlerId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  EventTable& table = events_[it->second];
  std::erase_if(table.regs, [id](const RegistrationPtr& r) { return r->id == id; });
  ++table.generation;
  by_id_.erase(it);
}

void Framework::deregister(EventId event, const std::string& handler_name) {
  auto ev = events_.find(event);
  if (ev == events_.end()) return;
  EventTable& table = ev->second;
  const auto removed = std::erase_if(table.regs, [&](const RegistrationPtr& r) {
    if (r->name != handler_name) return false;
    by_id_.erase(r->id);
    return true;
  });
  if (removed > 0) ++table.generation;
}

const std::shared_ptr<const Framework::Chain>& Framework::chain_for(EventId event) {
  EventTable& table = events_[event];
  if (table.cache == nullptr || table.cache_generation != table.generation) {
    table.cache = std::make_shared<const Chain>(table.regs);
    table.cache_generation = table.generation;
  }
  return table.cache;
}

sim::Task<bool> Framework::trigger(EventId event, EventArg arg) {
  // Take a reference to the immutable chain snapshot: handlers registered
  // *during* this trigger do not run in it (they land in a new snapshot),
  // and deregistered ones are skipped via the liveness check below.
  std::shared_ptr<const Chain> chain = chain_for(event);
  // Span bookkeeping: one kEventChain span for the whole invocation, one
  // kHandler span per handler, threaded through the running fiber's ambient
  // context so sends and nested triggers parent correctly.  The ambient is
  // saved/restored because triggers re-enter on the same fiber (a handler
  // that triggers another event) and the caller's context must survive.
  obs::SiteTrace* const st = site_trace_;
  std::uint64_t fiber = 0;
  std::uint64_t chain_span = 0;
  obs::SpanCtx saved;
  obs::SpanCtx chain_ctx;
  if (st) {
    st->record(transport_.now(), obs::Kind::kEventTriggered, 0, event.value(), 0,
               st->intern(event_name(event)));
    fiber = transport_.executor().current_fiber().value();
    saved = st->current(fiber);
    chain_span = st->span_open(transport_.now(), obs::SpanKind::kEventChain,
                               st->intern(event_name(event)), saved, event.value());
    chain_ctx = chain_span != 0 ? st->ctx_of(chain_span) : saved;
    st->set_current(fiber, chain_ctx);
  }
  const auto finish = [&](bool completed) {
    if (st) {
      st->span_close(chain_span, transport_.now());
      st->set_current(fiber, saved);
    }
    return completed;
  };
  EventContext ctx(arg);
  for (const RegistrationPtr& reg : *chain) {
    if (!by_id_.contains(reg->id)) continue;  // deregistered mid-event
    if (trace_) trace_(transport_.now(), event_name(event), reg->name);
    std::uint64_t handler_span = 0;
    if (st) {
      st->record(transport_.now(), obs::Kind::kEventHandled, 0, event.value(),
                 static_cast<std::uint64_t>(reg->priority), st->intern(reg->name));
      handler_span = st->span_open(transport_.now(), obs::SpanKind::kHandler,
                                   st->intern(reg->name), chain_ctx,
                                   static_cast<std::uint64_t>(reg->priority));
      if (handler_span != 0) st->set_current(fiber, st->ctx_of(handler_span));
    }
    co_await reg->fn(ctx);
    if (st) {
      st->span_close(handler_span, transport_.now());
      st->set_current(fiber, chain_ctx);
    }
    if (ctx.cancelled()) co_return finish(false);
  }
  co_return finish(true);
}

TimerId Framework::register_timeout(std::string name, sim::Duration delay, TimeoutHandler fn) {
  UGRPC_ASSERT(fn != nullptr);
  // The id is assigned by the scheduler; the callback fires exactly once and
  // spawns a fresh fiber so the timeout handler may block (e.g. Bounded
  // Termination takes the pRPC mutex).
  auto shared_fn = std::make_shared<TimeoutHandler>(std::move(fn));
  // The wrapper coroutine keeps the handler object alive for as long as the
  // handler body runs: coroutine parameters are copied into the frame,
  // whereas the closure that a std::function invocation runs on is not.
  // It also opens the timer's kTimer span, parented to the context that
  // *armed* it (captured below), and makes it the handler fiber's ambient
  // context -- so a retransmission timer's sends stay on the call's trace.
  // The wrapper captures the transport and the site trace rather than the
  // framework: both outlive any fiber of this domain, the framework may not.
  static constexpr auto invoke = [](net::Transport* tp, obs::SiteTrace* st,
                                    std::shared_ptr<TimeoutHandler> f, obs::SpanCtx armed,
                                    std::uint32_t name_id) -> sim::Task<> {
    std::uint64_t span = 0;
    std::uint64_t fiber = 0;
    if (st != nullptr) {
      fiber = tp->executor().current_fiber().value();
      span = st->span_open(tp->now(), obs::SpanKind::kTimer, name_id, armed);
      if (span != 0) st->set_current(fiber, st->ctx_of(span));
    }
    co_await (*f)();
    if (st != nullptr) {
      st->clear_current(fiber);
      st->span_close(span, tp->now());
    }
  };
  const std::uint32_t name_id = site_trace_ ? site_trace_->intern(name) : 0;
  obs::SpanCtx armed_ctx;
  if (site_trace_) {
    armed_ctx = site_trace_->current(transport_.executor().current_fiber().value());
  }
  const TimerId id = transport_.schedule_after(
      delay,
      [this, shared_fn, name = std::move(name), name_id, armed_ctx]() {
        if (site_trace_) {
          // The fired timer id is unknown inside the callback (schedule_after
          // assigns it after capture); the name identifies the timer class.
          site_trace_->record(transport_.now(), obs::Kind::kTimerFired, 0, 0, 0, name_id);
        }
        transport_.spawn(invoke(&transport_, site_trace_, shared_fn, armed_ctx, name_id),
                         domain_);
      },
      domain_);
  // Fired timers linger in this set until cancel/destruction; cancelling an
  // already-fired timer is a harmless no-op and ids are never reused.
  live_timeouts_.insert(id);
  if (site_trace_) {
    site_trace_->record(transport_.now(), obs::Kind::kTimerArmed, 0, id.value(),
                        static_cast<std::uint64_t>(delay), name_id);
  }
  return id;
}

void Framework::cancel_timeout(TimerId id) {
  transport_.cancel_timer(id);
  if (live_timeouts_.erase(id) > 0 && site_trace_) {
    site_trace_->record(transport_.now(), obs::Kind::kTimerCancelled, 0, id.value());
  }
}

std::vector<Framework::RegistrationInfo> Framework::registrations() const {
  // Grouped by event in event-id order (events_ is unordered).
  std::map<EventId, const EventTable*> ordered;
  std::size_t total = 0;
  for (const auto& [event, table] : events_) {
    ordered.emplace(event, &table);
    total += table.regs.size();
  }
  std::vector<RegistrationInfo> out;
  out.reserve(total);
  for (const auto& [event, table] : ordered) {
    for (const RegistrationPtr& reg : table->regs) {
      out.push_back(RegistrationInfo{event_name(event), reg->name, reg->priority});
    }
  }
  return out;
}

std::string Framework::event_name(EventId event) const {
  auto it = event_names_.find(event);
  if (it != event_names_.end()) return it->second;
  return "event#" + std::to_string(event.value());
}

std::size_t Framework::handler_count(EventId event) const {
  auto it = events_.find(event);
  return it != events_.end() ? it->second.regs.size() : 0;
}

std::uint64_t Framework::generation(EventId event) const {
  auto it = events_.find(event);
  return it != events_.end() ? it->second.generation : 0;
}

}  // namespace ugrpc::runtime
