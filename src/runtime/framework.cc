#include "runtime/framework.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/log.h"

namespace ugrpc::runtime {

Framework::Framework(sim::Scheduler& sched, DomainId domain) : sched_(sched), domain_(domain) {}

Framework::~Framework() {
  // A destroyed framework (crashed site) must not leave timers behind: their
  // callbacks capture `this`.
  for (TimerId id : live_timeouts_) sched_.cancel_timer(id);
}

void Framework::define_event(EventId event, std::string name) {
  event_names_[event] = std::move(name);
}

HandlerId Framework::register_handler(EventId event, std::string handler_name, int priority,
                                      Handler fn) {
  UGRPC_ASSERT(fn != nullptr);
  UGRPC_ASSERT(priority >= 0 && "priorities are non-negative");
  const HandlerId id{next_handler_++};
  const auto key = std::tuple{event, priority, next_seq_++};
  table_.emplace(key, Registration{id, event, std::move(handler_name), priority,
                                   std::get<2>(key), std::make_shared<Handler>(std::move(fn))});
  by_id_.emplace(id, key);
  return id;
}

void Framework::deregister(HandlerId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  table_.erase(it->second);
  by_id_.erase(it);
}

void Framework::deregister(EventId event, const std::string& handler_name) {
  for (auto it = table_.lower_bound(std::tuple{event, 0, std::uint64_t{0}}); it != table_.end();) {
    if (std::get<0>(it->first) != event) break;
    if (it->second.name == handler_name) {
      by_id_.erase(it->second.id);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

sim::Task<bool> Framework::trigger(EventId event, EventArg arg) {
  // Snapshot the chain: handlers registered *during* this trigger do not run
  // in it, and deregistered ones are skipped via the liveness check below.
  struct ChainEntry {
    HandlerId id;
    std::shared_ptr<Handler> fn;
    const std::string* name;
  };
  std::vector<ChainEntry> chain;
  for (auto it = table_.lower_bound(std::tuple{event, 0, std::uint64_t{0}}); it != table_.end();
       ++it) {
    if (std::get<0>(it->first) != event) break;
    chain.push_back(ChainEntry{it->second.id, it->second.fn, &it->second.name});
  }

  EventContext ctx(arg);
  for (auto& entry : chain) {
    if (!by_id_.contains(entry.id)) continue;  // deregistered mid-event
    if (trace_) trace_(sched_.now(), event_name(event), *entry.name);
    co_await (*entry.fn)(ctx);
    if (ctx.cancelled()) co_return false;
  }
  co_return true;
}

TimerId Framework::register_timeout(std::string name, sim::Duration delay, TimeoutHandler fn) {
  UGRPC_ASSERT(fn != nullptr);
  // The id is assigned by the scheduler; the callback fires exactly once and
  // spawns a fresh fiber so the timeout handler may block (e.g. Bounded
  // Termination takes the pRPC mutex).
  auto shared_fn = std::make_shared<TimeoutHandler>(std::move(fn));
  // The wrapper coroutine keeps the handler object alive for as long as the
  // handler body runs: coroutine parameters are copied into the frame,
  // whereas the closure that a std::function invocation runs on is not.
  static constexpr auto invoke = [](std::shared_ptr<TimeoutHandler> f) -> sim::Task<> {
    co_await (*f)();
  };
  const TimerId id = sched_.schedule_after(
      delay, [this, shared_fn, name = std::move(name)]() { sched_.spawn(invoke(shared_fn), domain_); },
      domain_);
  // Fired timers linger in this set until cancel/destruction; cancelling an
  // already-fired timer is a harmless no-op and ids are never reused.
  live_timeouts_.insert(id);
  return id;
}

void Framework::cancel_timeout(TimerId id) {
  sched_.cancel_timer(id);
  live_timeouts_.erase(id);
}

std::vector<Framework::RegistrationInfo> Framework::registrations() const {
  std::vector<RegistrationInfo> out;
  out.reserve(table_.size());
  for (const auto& [key, reg] : table_) {
    out.push_back(RegistrationInfo{event_name(reg.event), reg.name, reg.priority});
  }
  return out;
}

std::string Framework::event_name(EventId event) const {
  auto it = event_names_.find(event);
  if (it != event_names_.end()) return it->second;
  return "event#" + std::to_string(event.value());
}

std::size_t Framework::handler_count(EventId event) const {
  std::size_t n = 0;
  for (auto it = table_.lower_bound(std::tuple{event, 0, std::uint64_t{0}}); it != table_.end();
       ++it) {
    if (std::get<0>(it->first) != event) break;
    ++n;
  }
  return n;
}

}  // namespace ugrpc::runtime
