// Composite protocol: micro-protocols + framework, linked together.
//
// "The object formed by the linking of a collection of micro-protocols and
// associated framework is known as a composite protocol" (paper section 3).
// CompositeProtocol owns the Framework and the configured micro-protocols;
// `start()` wires everything up.  Domain-specific composites (the gRPC
// service in src/core) derive from this and add shared data plus the
// x-kernel UPI adapters that feed external events into the framework.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "net/transport.h"
#include "runtime/framework.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::runtime {

class CompositeProtocol {
 public:
  CompositeProtocol(net::Transport& transport, DomainId domain) : framework_(transport, domain) {}
  virtual ~CompositeProtocol() = default;

  CompositeProtocol(const CompositeProtocol&) = delete;
  CompositeProtocol& operator=(const CompositeProtocol&) = delete;

  /// Constructs a micro-protocol in place.  Must precede start().
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    UGRPC_ASSERT(!started_ && "cannot add micro-protocols after start()");
    auto mp = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *mp;
    micro_protocols_.push_back(std::move(mp));
    return ref;
  }

  /// Starts every configured micro-protocol (registration phase).
  void start() {
    UGRPC_ASSERT(!started_);
    started_ = true;
    for (const auto& mp : micro_protocols_) mp->start(framework_);
  }

  [[nodiscard]] Framework& framework() { return framework_; }
  [[nodiscard]] const Framework& framework() const { return framework_; }
  [[nodiscard]] bool started() const { return started_; }

  [[nodiscard]] std::vector<std::string> micro_protocol_names() const {
    std::vector<std::string> names;
    names.reserve(micro_protocols_.size());
    for (const auto& mp : micro_protocols_) names.push_back(mp->name());
    return names;
  }

 private:
  Framework framework_;
  std::vector<std::unique_ptr<MicroProtocol>> micro_protocols_;
  bool started_ = false;
};

}  // namespace ugrpc::runtime
