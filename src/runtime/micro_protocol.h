// Base class for micro-protocols.
//
// A micro-protocol "implements a well-defined property" and is "structured
// as a collection of event handlers" (paper section 3).  Concrete
// micro-protocols register their handlers in start(); the composite protocol
// calls start() for each configured micro-protocol after all of them have
// been constructed, so handlers may assume every peer's shared state exists.
#pragma once

#include <string>
#include <utility>

#include "runtime/framework.h"

namespace ugrpc::runtime {

class MicroProtocol {
 public:
  explicit MicroProtocol(std::string name) : name_(std::move(name)) {}
  virtual ~MicroProtocol() = default;

  MicroProtocol(const MicroProtocol&) = delete;
  MicroProtocol& operator=(const MicroProtocol&) = delete;

  /// Registers event handlers and initializes shared state contributions.
  virtual void start(Framework& framework) = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace ugrpc::runtime
