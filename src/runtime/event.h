// Event identifiers and arguments for the micro-protocol framework.
//
// An event is "a change of state potentially of interest to a
// micro-protocol" (paper section 3).  Events carry one argument -- e.g. the
// arriving network message -- passed to every handler *by mutable
// reference*: handlers routinely edit the argument in place (Synchronous
// Call writes results into the user's message).  EventArg is a checked,
// non-owning reference wrapper; the dynamic type check turns a mis-wired
// handler into an immediate assertion instead of silent corruption.
#pragma once

#include <typeinfo>

#include "common/assert.h"
#include "common/ids.h"

namespace ugrpc::runtime {

struct EventIdTag {};
using EventId = ugrpc::detail::TaggedId<EventIdTag, std::uint32_t>;

class EventArg {
 public:
  EventArg() = default;

  template <typename T>
  static EventArg ref(T& value) {
    EventArg arg;
    arg.ptr_ = &value;
    arg.type_ = &typeid(T);
    return arg;
  }

  [[nodiscard]] bool empty() const { return ptr_ == nullptr; }

  /// Checked downcast to the payload type the trigger supplied.
  template <typename T>
  [[nodiscard]] T& as() const {
    UGRPC_ASSERT(ptr_ != nullptr && "event carries no argument");
    UGRPC_ASSERT(*type_ == typeid(T) && "event argument type mismatch");
    return *static_cast<T*>(ptr_);
  }

 private:
  void* ptr_ = nullptr;
  const std::type_info* type_ = nullptr;
};

/// Per-invocation context handed to every handler.  `cancel()` implements
/// the paper's cancel_event(): remaining handlers registered for the current
/// event are skipped.  Nested triggers get their own context, so cancelling
/// an inner event never affects the outer one.
class EventContext {
 public:
  explicit EventContext(EventArg arg) : arg_(arg) {}

  [[nodiscard]] const EventArg& arg() const { return arg_; }

  template <typename T>
  [[nodiscard]] T& arg_as() const {
    return arg_.as<T>();
  }

  void cancel() { cancelled_ = true; }
  [[nodiscard]] bool cancelled() const { return cancelled_; }

 private:
  EventArg arg_;
  bool cancelled_ = false;
};

}  // namespace ugrpc::runtime
