// Datagram framing for UdpTransport.
//
// One Packet per UDP datagram, framed as:
//
//   u32  magic        'uGRP' (0x75475250) -- rejects stray traffic
//   u8   version      kWireVersion
//   u32  src          sender ProcessId
//   u32  dst          destination ProcessId
//   u16  proto        demux key
//   u32  incarnation  sender attachment incarnation; receivers drop frames
//                     from an incarnation older than the newest they have
//                     seen, so a restarted sender's stale datagrams (still
//                     queued in kernel buffers) cannot be delivered as if
//                     from the new incarnation
//   u64  trace        trace-context id (v2; 0 = untraced).  Group RPC calls
//                     use the raw CallId, so one trace follows a call across
//                     client, servers and retransmissions
//   u64  span         sender's send-span id (v2; 0 = none); becomes the
//                     parent of the receiver's delivery span, stitching the
//                     cross-process span tree together
//   raw  payload      length-prefixed opaque bytes
//
// Integers are little-endian (the Writer/Reader codec).  decode() is
// defensive: any malformed input -- wrong magic, truncation, trailing
// garbage -- yields nullopt rather than an exception or a partial frame,
// because a UDP socket receives whatever the network hands it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/buffer.h"
#include "common/ids.h"
#include "net/transport.h"

namespace ugrpc::net {

inline constexpr std::uint32_t kWireMagic = 0x75475250;  // "uGRP"
inline constexpr std::uint8_t kWireVersion = 2;  // v2: +trace/span context

/// Frame header bytes before the length-prefixed payload.
inline constexpr std::size_t kWireHeaderSize = 4 + 1 + 4 + 4 + 2 + 4 + 8 + 8;

/// Largest datagram the transport sends or accepts.  Loopback MTU is ~64k;
/// staying under it keeps sendto() from failing with EMSGSIZE.
inline constexpr std::size_t kMaxDatagram = 60 * 1024;

struct WireFrame {
  ProcessId src;
  ProcessId dst;
  ProtocolId proto;
  std::uint32_t incarnation = 0;
  std::uint64_t trace = 0;  ///< trace-context id (0 = untraced)
  std::uint64_t span = 0;   ///< sender's send-span id (0 = none)
  Buffer payload;

  [[nodiscard]] Buffer encode() const {
    Buffer out;
    out.reserve(kWireHeaderSize + 4 + payload.size());
    Writer w(out);
    w.u32(kWireMagic);
    w.u8(kWireVersion);
    w.u32(src.value());
    w.u32(dst.value());
    w.u16(proto.value());
    w.u32(incarnation);
    w.u64(trace);
    w.u64(span);
    w.raw(payload.bytes());
    return out;
  }

  [[nodiscard]] static std::optional<WireFrame> decode(std::span<const std::byte> data) {
    try {
      Reader r(data);
      if (r.u32() != kWireMagic) return std::nullopt;
      if (r.u8() != kWireVersion) return std::nullopt;
      WireFrame frame;
      frame.src = ProcessId{r.u32()};
      frame.dst = ProcessId{r.u32()};
      frame.proto = ProtocolId{r.u16()};
      frame.incarnation = r.u32();
      frame.trace = r.u64();
      frame.span = r.u64();
      frame.payload = r.raw();
      if (!r.at_end()) return std::nullopt;  // trailing garbage
      return frame;
    } catch (const CodecError&) {
      return std::nullopt;
    }
  }
};

}  // namespace ugrpc::net
