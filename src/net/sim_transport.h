// Transport backend over the deterministic simulated fabric.
//
// A thin forwarding layer: traffic goes to net::Network (fault injection,
// demux, per-packet delivery fibers) and clock/timers/fibers go to the
// Network's sim::Scheduler.  Every forward is a single direct call in the
// same order the pre-Transport code made it, so schedules, RNG draws and
// timer ids are bit-identical to driving Network/Scheduler directly --
// the existing tests, benches and fault-injection experiments run unchanged.
//
// SimTransport holds references only; several SimTransports over one fabric
// behave identically (all state lives in the Network and the Scheduler).
#pragma once

#include "net/network.h"
#include "net/transport.h"

namespace ugrpc::net {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& network) : net_(network), sched_(network.scheduler()) {}

  // ---- attachment ----
  Endpoint& attach(ProcessId process, DomainId domain) override {
    return net_.attach(process, domain);
  }
  void detach(ProcessId process) override { net_.detach(process); }

  // ---- groups ----
  void define_group(GroupId group, std::vector<ProcessId> members) override {
    net_.define_group(group, std::move(members));
  }
  [[nodiscard]] const std::vector<ProcessId>& group_members(GroupId group) const override {
    return net_.group_members(group);
  }
  [[nodiscard]] bool has_group(GroupId group) const override { return net_.has_group(group); }

  // ---- process-up control ----
  [[nodiscard]] bool supports_process_control() const override { return true; }
  void set_process_up(ProcessId process, bool up) override { net_.set_process_up(process, up); }
  [[nodiscard]] bool process_up(ProcessId process) const override {
    return net_.process_up(process);
  }

  // ---- clock + timers ----
  [[nodiscard]] sim::Time now() const override { return sched_.now(); }
  TimerId schedule_after(sim::Duration delay, std::function<void()> fn,
                         DomainId domain = sim::kGlobalDomain) override {
    return sched_.schedule_after(delay, std::move(fn), domain);
  }
  void cancel_timer(TimerId id) override { sched_.cancel_timer(id); }

  // ---- threads of control ----
  FiberId spawn(sim::Task<> task, DomainId domain = sim::kGlobalDomain) override {
    return sched_.spawn(std::move(task), domain);
  }
  void kill_domain(DomainId domain) override { sched_.kill_domain(domain); }
  [[nodiscard]] sim::Scheduler& executor() override { return sched_; }

  // ---- observability ----
  [[nodiscard]] const Stats& stats() const override { return net_.stats(); }
  void reset_stats() override { net_.reset_stats(); }

  /// The wrapped fabric, for sim-only knobs: fault injection, packet
  /// tracing, per-link stats.  Experiment harnesses may use this; protocol
  /// layers must not.
  [[nodiscard]] Network& network() { return net_; }

 private:
  Network& net_;
  sim::Scheduler& sched_;
};

}  // namespace ugrpc::net
