// Simulated network fabric with x-kernel style demultiplexing.
//
// Processes attach to the Network and receive an Endpoint.  A packet sent to
// a process is, after fault-injection (drop / duplicate / delay), delivered
// by spawning a fiber in the destination's domain that runs the handler the
// destination registered for the packet's ProtocolId -- the x-kernel demux
// step.  Each delivered packet therefore gets its own thread of control,
// matching the paper's model where message arrival events execute in their
// own thread.
//
// Crash modelling: `set_process_up(p, false)` makes the fabric drop all
// traffic to and from p (a crashed site neither sends nor receives); the
// Site layer additionally kills p's fibers and discards its volatile state.
//
// Crash-edge semantics (pinned by tests/net/crash_edge_test.cc):
//  * packets in flight when set_process_up(p, false) fires are dropped at
//    delivery time -- going down races ahead of the wire;
//  * a handler replaced between send and delivery receives the packet in
//    its *new* registration (demux happens at delivery, not at send), while
//    a handler already executing runs to completion on the old closure;
//  * detach() invalidates the Endpoint and drops in-flight packets on
//    delivery; a subsequent attach() starts fresh (empty demux table).
//
// This fabric is normally driven through net::SimTransport; protocol layers
// program against net::Transport and never name Network directly.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/ids.h"
#include "common/rate_limited_log.h"
#include "net/fault.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace ugrpc::net {

class Network {
 public:
  explicit Network(sim::Scheduler& sched);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches a process; `domain` is the scheduler domain its delivery
  /// fibers run in (killed when the site crashes).  The returned reference
  /// stays valid until the process is detached (never, for the common case
  /// of sites that crash via set_process_up but stay attached).
  Endpoint& attach(ProcessId process, DomainId domain);

  /// Removes an attachment; in-flight packets to the process are dropped at
  /// delivery time.  No-op for a process that is not attached.
  void detach(ProcessId process);

  /// Faults applied to links without a per-link override.
  void set_default_faults(const FaultSpec& spec) { default_faults_ = spec; }
  /// Per-link override; creates the override (copied from the default) on
  /// first use.  Mutations apply to packets sent afterwards.
  FaultSpec& link(ProcessId from, ProcessId to);

  /// Marks a process up/down.  Down processes neither send nor receive.
  void set_process_up(ProcessId process, bool up);
  [[nodiscard]] bool process_up(ProcessId process) const;

  // ---- groups ----
  void define_group(GroupId group, std::vector<ProcessId> members);
  [[nodiscard]] const std::vector<ProcessId>& group_members(GroupId group) const;
  [[nodiscard]] bool has_group(GroupId group) const { return groups_.contains(group); }

  // ---- observability ----

  enum class PacketFate : unsigned char { kDelivered, kDropped, kDuplicated };
  /// Called once per transmission outcome decision (before delivery delay
  /// elapses for kDelivered/kDuplicated).  One tracer per fabric; nullptr
  /// removes it.  For debugging and tests; must not re-enter the Network.
  using PacketTracer = std::function<void(const Packet&, PacketFate)>;
  void set_packet_tracer(PacketTracer tracer) { tracer_ = std::move(tracer); }

  /// Attaches the fabric to a trace collector: transmissions record
  /// kMsgSent/kMsgDropped/kMsgDuplicated/kMsgUnroutable on the sender's ring
  /// and deliveries record kMsgDelivered (or kMsgDropped for in-flight
  /// losses) on the receiver's.  nullptr (default) disables recording.
  void set_tracer(obs::Tracer* tracer) { obs_ = tracer; }

  // ---- counters (for benches and tests) ----

  using Stats = net::Stats;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = {};
    link_stats_.clear();
    unroutable_log_.clear();
  }

  /// Per-link (ordered from->to pair) counters.  `sent`/`dropped`/
  /// `duplicated`/`bytes_sent` are stamped at transmission time,
  /// `delivered`/`bytes_delivered` when the packet reaches a handler.
  struct LinkStats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;
  };
  /// Counters of the from->to link; all-zero for a link never used.
  [[nodiscard]] LinkStats link_stats(ProcessId from, ProcessId to) const;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

 private:
  /// The simulator's attachment point: send/multicast feed the fault
  /// injection pipeline of the owning Network.
  class SimEndpoint final : public Endpoint {
   public:
    SimEndpoint(Network& net, ProcessId process, DomainId domain)
        : Endpoint(process, domain), net_(&net) {}

    void send(ProcessId dst, ProtocolId proto, Buffer payload) override {
      net_->transmit(process(), dst, proto, payload);
    }
    void multicast(GroupId group, ProtocolId proto, Buffer payload) override {
      net_->multicast_from(process(), group, proto, payload);
    }

   private:
    Network* net_;
  };

  void transmit(ProcessId from, ProcessId to, ProtocolId proto, const Buffer& payload);
  void multicast_from(ProcessId from, GroupId group, ProtocolId proto, const Buffer& payload);
  void schedule_delivery(Packet packet, sim::Duration delay);
  [[nodiscard]] const FaultSpec& faults_for(ProcessId from, ProcessId to) const;

  sim::Scheduler& sched_;
  sim::Rng rng_;
  FaultSpec default_faults_;
  std::map<std::pair<ProcessId, ProcessId>, FaultSpec> link_faults_;
  std::unordered_map<ProcessId, SimEndpoint> endpoints_;
  std::unordered_map<ProcessId, bool> up_;
  std::unordered_map<GroupId, std::vector<ProcessId>> groups_;
  Stats stats_;
  std::map<std::pair<ProcessId, ProcessId>, LinkStats> link_stats_;
  PacketTracer tracer_;
  obs::Tracer* obs_ = nullptr;

  /// Unroutable-destination warnings rate-limited per key (link or
  /// (sender, group)), exact counts; stats_.unroutable stays exact
  /// regardless.  See common/rate_limited_log.h for the shared policy.
  RateLimitedLog unroutable_log_;
};

}  // namespace ugrpc::net
