// Simulated network fabric with x-kernel style demultiplexing.
//
// Processes attach to the Network and receive an Endpoint.  A packet sent to
// a process is, after fault-injection (drop / duplicate / delay), delivered
// by spawning a fiber in the destination's domain that runs the handler the
// destination registered for the packet's ProtocolId -- the x-kernel demux
// step.  Each delivered packet therefore gets its own thread of control,
// matching the paper's model where message arrival events execute in their
// own thread.
//
// Crash modelling: `set_process_up(p, false)` makes the fabric drop all
// traffic to and from p (a crashed site neither sends nor receives); the
// Site layer additionally kills p's fibers and discards its volatile state.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/ids.h"
#include "net/fault.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace ugrpc::net {

/// A packet in flight: source, destination, demux key, opaque payload.
struct Packet {
  ProcessId src;
  ProcessId dst;
  ProtocolId proto;
  Buffer payload;
};

/// Invoked (in a fresh fiber, in the destination's domain) for each
/// delivered packet of the registered protocol.
using PacketHandler = std::function<sim::Task<>(Packet)>;

class Network;

/// A process's attachment point.  Handlers are volatile: a crashing site
/// clears them and re-registers on recovery.
class Endpoint {
 public:
  /// Registers the upcall for packets demuxed to `proto` (replacing any
  /// previous handler).
  void set_handler(ProtocolId proto, PacketHandler handler);
  void clear_handler(ProtocolId proto);
  void clear_all_handlers() { handlers_.clear(); }

  void send(ProcessId dst, ProtocolId proto, Buffer payload);
  /// Sends one copy to every member of `group` (including the sender if it
  /// is a member), each copy independently subject to link faults.
  void multicast(GroupId group, ProtocolId proto, Buffer payload);

  [[nodiscard]] ProcessId process() const { return process_; }

 private:
  friend class Network;
  Endpoint(Network& net, ProcessId process, DomainId domain)
      : net_(&net), process_(process), domain_(domain) {}

  Network* net_;
  ProcessId process_;
  DomainId domain_;
  // shared_ptr so an in-flight delivery fiber keeps the handler object (and
  // thus the coroutine's implicit *this) alive even if the handler is
  // replaced or cleared mid-flight.
  std::unordered_map<ProtocolId, std::shared_ptr<PacketHandler>> handlers_;
};

class Network {
 public:
  explicit Network(sim::Scheduler& sched);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches a process; `domain` is the scheduler domain its delivery
  /// fibers run in (killed when the site crashes).  The returned reference
  /// stays valid for the lifetime of the Network.
  Endpoint& attach(ProcessId process, DomainId domain);

  /// Faults applied to links without a per-link override.
  void set_default_faults(const FaultSpec& spec) { default_faults_ = spec; }
  /// Per-link override; creates the override (copied from the default) on
  /// first use.  Mutations apply to packets sent afterwards.
  FaultSpec& link(ProcessId from, ProcessId to);

  /// Marks a process up/down.  Down processes neither send nor receive.
  void set_process_up(ProcessId process, bool up);
  [[nodiscard]] bool process_up(ProcessId process) const;

  // ---- groups ----
  void define_group(GroupId group, std::vector<ProcessId> members);
  [[nodiscard]] const std::vector<ProcessId>& group_members(GroupId group) const;

  // ---- observability ----

  enum class PacketFate : unsigned char { kDelivered, kDropped, kDuplicated };
  /// Called once per transmission outcome decision (before delivery delay
  /// elapses for kDelivered/kDuplicated).  One tracer per fabric; nullptr
  /// removes it.  For debugging and tests; must not re-enter the Network.
  using PacketTracer = std::function<void(const Packet&, PacketFate)>;
  void set_packet_tracer(PacketTracer tracer) { tracer_ = std::move(tracer); }

  // ---- counters (for benches and tests) ----
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

 private:
  friend class Endpoint;

  void transmit(ProcessId from, ProcessId to, ProtocolId proto, const Buffer& payload);
  void schedule_delivery(Packet packet, sim::Duration delay);
  [[nodiscard]] const FaultSpec& faults_for(ProcessId from, ProcessId to) const;

  sim::Scheduler& sched_;
  sim::Rng rng_;
  FaultSpec default_faults_;
  std::map<std::pair<ProcessId, ProcessId>, FaultSpec> link_faults_;
  std::unordered_map<ProcessId, Endpoint> endpoints_;
  std::unordered_map<ProcessId, bool> up_;
  std::unordered_map<GroupId, std::vector<ProcessId>> groups_;
  Stats stats_;
  PacketTracer tracer_;
};

}  // namespace ugrpc::net
