// Fault model for the simulated network.
//
// The paper assumes an asynchronous system whose communication can suffer
// omission failures (messages lost) and performance failures (messages
// late).  FaultSpec expresses both, plus duplication -- reordering arises
// naturally from randomized per-packet delays.
#pragma once

#include "sim/time.h"

namespace ugrpc::net {

struct FaultSpec {
  /// Probability that a transmission is silently dropped (omission failure).
  double drop_prob = 0.0;
  /// Probability that a delivered packet is delivered a second time, with an
  /// independently drawn delay.
  double dup_prob = 0.0;
  /// Per-packet latency is uniform in [min_delay, max_delay]; a wide range
  /// yields reordering (performance failures).
  sim::Duration min_delay = sim::usec(100);
  sim::Duration max_delay = sim::usec(500);
  /// A partitioned link delivers nothing until the partition heals.
  bool partitioned = false;
};

}  // namespace ugrpc::net
