// Real-network Transport backend: non-blocking UDP sockets on one host.
//
// The same protocol stack that runs deterministically over SimTransport runs
// here over actual datagrams between OS processes.  The trick is that the
// stack's threads of control stay on the cooperative sim::Scheduler: the
// transport slaves the executor's virtual clock to the host's monotonic
// clock (run_until(elapsed)), so semaphores, sleeps and fibers behave
// identically -- one microsecond of virtual time is one microsecond of real
// time.  Transport-level timers (retransmission, heartbeats, termination
// bounds) live on a hashed TimerWheel rather than the executor's heap.
//
// Topology is explicit: each locally attached process binds its own
// ephemeral-port socket (no fixed ports, so parallel CI runs cannot
// collide), and remote peers are introduced via add_peer().  Multicast is
// sender-side fan-out over the address book, mirroring the simulator.
//
// The event loop is poll()-based and single-threaded:
//
//   poll_once:  advance wheel + executor to `elapsed()`, then poll every
//               socket (timeout sized by the earliest wheel/executor timer),
//               then decode + demux received frames into delivery fibers.
//
// Crash modelling is local-only: set_process_up(p, false) silences a
// locally attached p (its datagrams are dropped on send and on receive) but
// cannot reach into other OS processes -- supports_process_control() is
// false, and remote failures are real failures detected by the membership
// service exactly as the paper intends.
#pragma once

#include <netinet/in.h>

#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rate_limited_log.h"
#include "net/timer_wheel.h"
#include "net/transport.h"
#include "obs/live/http.h"
#include "obs/trace.h"

namespace ugrpc::net {

class UdpTransport final : public Transport {
 public:
  struct Options {
    /// Seed of the executor's RNG (protocol-visible randomness).
    std::uint64_t seed = 1;
    /// Address local sockets bind to (always with an ephemeral port).
    std::string bind_host = "127.0.0.1";
    /// Poll timeout cap: an idle loop wakes at least this often.
    sim::Duration max_poll_wait = sim::msec(10);
    /// Timer wheel tick width.
    sim::Duration wheel_granularity = sim::msec(1);
  };

  UdpTransport();  // default options
  explicit UdpTransport(Options options);
  ~UdpTransport() override;

  // ---- Transport interface ----

  Endpoint& attach(ProcessId process, DomainId domain) override;
  void detach(ProcessId process) override;

  void define_group(GroupId group, std::vector<ProcessId> members) override;
  [[nodiscard]] const std::vector<ProcessId>& group_members(GroupId group) const override;
  [[nodiscard]] bool has_group(GroupId group) const override;

  [[nodiscard]] bool supports_process_control() const override { return false; }
  /// Only locally attached processes can be taken down; remote ones crash
  /// for real.  Asserts on a non-local ProcessId.
  void set_process_up(ProcessId process, bool up) override;
  [[nodiscard]] bool process_up(ProcessId process) const override;

  [[nodiscard]] sim::Time now() const override;
  TimerId schedule_after(sim::Duration delay, std::function<void()> fn,
                         DomainId domain = sim::kGlobalDomain) override;
  void cancel_timer(TimerId id) override;

  FiberId spawn(sim::Task<> task, DomainId domain = sim::kGlobalDomain) override;
  void kill_domain(DomainId domain) override;
  [[nodiscard]] sim::Scheduler& executor() override { return exec_; }

  [[nodiscard]] const Stats& stats() const override { return stats_; }
  void reset_stats() override { stats_ = {}; }

  // ---- UDP-specific surface ----

  /// Introduces (or updates) a remote peer's address.  Local attachments
  /// register themselves automatically.
  void add_peer(ProcessId peer, const std::string& host, std::uint16_t port);

  /// Ephemeral port a locally attached process is bound to; publish it to
  /// the other side (the udp_group_call example pipes it between forks).
  [[nodiscard]] std::uint16_t local_port(ProcessId process) const;

  // ---- event loop ----

  /// One loop iteration: advance timers + executor to real `now()`, poll
  /// the sockets (waiting at most `max_wait`, less if a timer is due
  /// sooner), dispatch received datagrams, run the executor again.
  void poll_once(sim::Duration max_wait);

  /// Drives the loop for `d` of real time.
  void run_for(sim::Duration d);

  /// Drives the loop until `fiber` finishes or `timeout` elapses; true on
  /// fiber completion.
  bool run_until_fiber_done(FiberId fiber, sim::Duration timeout);

  /// Records kMsgSent/kMsgDelivered/kMsgDropped/kMsgUnroutable on the local
  /// processes' rings, plus send/deliver/wheel-fire spans with trace context
  /// carried in the wire frames (wire.h v2).  nullptr disables.
  void set_tracer(obs::Tracer* tracer) {
    obs_ = tracer;
    wheel_.set_tracer(tracer);
  }

  /// Serves `hub` over a telemetry listener (obs/live/http.h) bound to
  /// `host`:`port` (port 0 = ephemeral), driven from this transport's poll
  /// loop: the listening socket joins the pollfd set (instant wakeup for new
  /// scrapes) and connections progress once per poll_once, between fibers,
  /// so every response is a consistent snapshot.  Returns the bound port, or
  /// 0 on failure (diagnostic in `error` when non-null).  Serving stops when
  /// the transport is destroyed or stop_telemetry() is called.
  std::uint16_t serve_telemetry(obs::live::TelemetryHub& hub, std::uint16_t port = 0,
                                const std::string& host = "127.0.0.1",
                                std::string* error = nullptr);
  void stop_telemetry() { telemetry_.reset(); }
  [[nodiscard]] obs::live::TelemetryServer* telemetry_server() { return telemetry_.get(); }

  /// Deterministic loss injection: when set, each outgoing datagram is
  /// offered to `fault` (src, dst, proto) and dropped before sendto() on
  /// true.  Loopback UDP essentially never loses datagrams, so tests and the
  /// udp_group_call example use this to force real retransmissions.  nullptr
  /// removes the hook.
  using SendFault = std::function<bool(ProcessId, ProcessId, ProtocolId)>;
  void set_send_fault(SendFault fault) { send_fault_ = std::move(fault); }

 private:
  class UdpEndpoint final : public Endpoint {
   public:
    UdpEndpoint(UdpTransport& transport, ProcessId process, DomainId domain)
        : Endpoint(process, domain), transport_(&transport) {}

    void send(ProcessId dst, ProtocolId proto, Buffer payload) override {
      transport_->send_from(process(), dst, proto, std::move(payload));
    }
    void multicast(GroupId group, ProtocolId proto, Buffer payload) override {
      transport_->multicast_from(process(), group, proto, std::move(payload));
    }

   private:
    UdpTransport* transport_;
  };

  struct Attachment {
    std::unique_ptr<UdpEndpoint> endpoint;
    int fd = -1;
    std::uint16_t port = 0;
    std::uint32_t incarnation = 1;
    bool up = true;
  };

  void send_from(ProcessId src, ProcessId dst, ProtocolId proto, Buffer payload);
  void multicast_from(ProcessId src, GroupId group, ProtocolId proto, Buffer payload);
  void dispatch_datagram(Attachment& att, std::span<const std::byte> datagram);
  /// Advances the wheel and the executor's virtual clock to real elapsed
  /// time, draining every ready fiber and due timer.
  void sync_executor();
  [[nodiscard]] sim::Duration poll_wait(sim::Duration max_wait);

  Options options_;
  sim::Scheduler exec_;
  TimerWheel wheel_;
  std::chrono::steady_clock::time_point start_;
  std::unordered_map<ProcessId, Attachment> attachments_;
  std::unordered_map<ProcessId, sockaddr_in> peers_;
  std::unordered_map<GroupId, std::vector<ProcessId>> groups_;
  /// Highest incarnation heard per remote sender; older frames are stale.
  std::unordered_map<ProcessId, std::uint32_t> seen_incarnations_;
  /// Incarnation counter per locally attached ProcessId, so re-attach after
  /// detach tags frames as a fresh incarnation.
  std::unordered_map<ProcessId, std::uint32_t> attach_counts_;
  Stats stats_;
  obs::Tracer* obs_ = nullptr;
  std::unique_ptr<obs::live::TelemetryServer> telemetry_;
  SendFault send_fault_;
  /// Unroutable-send warnings rate-limited per (src, dst) / (src, group)
  /// with exact suppressed counts (common/rate_limited_log.h); the
  /// stats_.unroutable counter stays exact regardless.
  RateLimitedLog unroutable_log_{sim::seconds(1)};
};

}  // namespace ugrpc::net
