// The pluggable transport abstraction the µGRPC stack programs against.
//
// The paper's composite protocol is transport-agnostic: micro-protocols sit
// on an x-kernel-style framework whose only contract with the layer below is
// push (send/multicast) and pop (demultiplexed packet delivery).  Transport
// captures that contract plus the ambient services every layer above needs:
//
//   * attach/detach       -- bind a process to the fabric, yielding an
//                            Endpoint for traffic and demux registration;
//   * groups              -- named member lists for sender-side multicast;
//   * process-up control  -- crash modelling, where the backend supports it;
//   * clock + timers      -- now()/schedule_after()/cancel_timer(), the only
//                            way protocol layers may arm timers;
//   * threads of control  -- spawn()/kill_domain(), one fiber per delivered
//                            packet or timeout, killable per crashing site.
//
// Two implementations exist: SimTransport (sim_transport.h) wraps the
// deterministic simulated fabric so tests, benches and fault-injection
// experiments run unchanged, and UdpTransport (udp_transport.h) runs the
// same stack over real non-blocking UDP sockets between OS processes.
//
// Both backends execute protocol code on a single-threaded cooperative
// sim::Scheduler; executor() exposes it for the synchronization primitives
// (sim::Semaphore, sim::Mutex) and fiber-level control (current_fiber, kill)
// that are executor concerns rather than transport concerns.  Under
// SimTransport the executor runs in virtual time; under UdpTransport its
// clock is slaved to the host's monotonic clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/ids.h"
#include "obs/span.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ugrpc::net {

/// A packet in flight: source, destination, demux key, opaque payload.
struct Packet {
  ProcessId src;
  ProcessId dst;
  ProtocolId proto;
  Buffer payload;
  /// Trace context propagated with the packet: {trace id, send-span id}.
  /// Carried as metadata under SimTransport and in the wire frame (wire.h
  /// v2) under UdpTransport; {0,0} when tracing is off.
  obs::SpanCtx ctx;
  /// This copy was manufactured by fault injection (duplicate delivery);
  /// its delivery span is flagged so the trace distinguishes it.
  bool duplicate = false;
};

/// Invoked (in a fresh fiber, in the destination's domain) for each
/// delivered packet of the registered protocol.
using PacketHandler = std::function<sim::Task<>(Packet)>;

/// Fabric-wide counters, common to every backend.  Byte counts measure
/// payload bytes (what the protocol layers handed to the transport), so sim
/// and UDP numbers are directly comparable regardless of frame overhead.
struct Stats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  /// Transmissions with no possible route: sends to a ProcessId that was
  /// never attached (sim) / has no address-book entry (UDP), and multicasts
  /// to an undefined GroupId.  These used to vanish silently; now they are
  /// counted here and logged at warn level.
  std::uint64_t unroutable = 0;
};

/// A process's attachment point on a Transport.  Owns the x-kernel demux
/// table: handlers are volatile (a crashing site clears them and
/// re-registers on recovery); send/multicast are backend-specific.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Registers the upcall for packets demuxed to `proto` (replacing any
  /// previous handler).  Replacement takes effect for deliveries dispatched
  /// afterwards; a handler already running keeps executing to completion.
  void set_handler(ProtocolId proto, PacketHandler handler) {
    handlers_[proto] = std::make_shared<PacketHandler>(std::move(handler));
  }
  void clear_handler(ProtocolId proto) { handlers_.erase(proto); }
  void clear_all_handlers() { handlers_.clear(); }

  /// The handler currently registered for `proto`, or nullptr.  Backends
  /// dispatch through the returned shared_ptr so an in-flight delivery fiber
  /// keeps the handler object (and thus the coroutine's implicit *this)
  /// alive even if the handler is replaced or cleared mid-flight.
  [[nodiscard]] std::shared_ptr<PacketHandler> handler(ProtocolId proto) const {
    auto it = handlers_.find(proto);
    return it != handlers_.end() ? it->second : nullptr;
  }

  virtual void send(ProcessId dst, ProtocolId proto, Buffer payload) = 0;
  /// Sends one copy to every member of `group` (including the sender if it
  /// is a member): sender-side fan-out on every backend, each copy
  /// independently subject to link faults / datagram loss.
  virtual void multicast(GroupId group, ProtocolId proto, Buffer payload) = 0;

  [[nodiscard]] ProcessId process() const { return process_; }
  [[nodiscard]] DomainId domain() const { return domain_; }

 protected:
  Endpoint(ProcessId process, DomainId domain) : process_(process), domain_(domain) {}

 private:
  std::unordered_map<ProtocolId, std::shared_ptr<PacketHandler>> handlers_;
  ProcessId process_;
  DomainId domain_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // ---- attachment ----

  /// Attaches a process; `domain` is the executor domain its delivery
  /// fibers run in (killed when the site crashes).  The returned reference
  /// stays valid until the process is detached.  Attaching an
  /// already-attached process is a fatal error; attach after detach starts a
  /// fresh attachment (empty demux table, next incarnation on backends that
  /// tag frames).
  virtual Endpoint& attach(ProcessId process, DomainId domain) = 0;

  /// Removes the attachment; the Endpoint reference becomes invalid.
  /// Packets in flight to a detached process are dropped on delivery.
  virtual void detach(ProcessId process) = 0;

  // ---- groups (sender-side multicast fan-out) ----

  virtual void define_group(GroupId group, std::vector<ProcessId> members) = 0;
  /// Members of a defined group; fatal on an undefined one (use has_group).
  [[nodiscard]] virtual const std::vector<ProcessId>& group_members(GroupId group) const = 0;
  [[nodiscard]] virtual bool has_group(GroupId group) const = 0;

  // ---- process-up control (crash modelling, where supported) ----

  /// True when the backend can take any process up/down fabric-wide (the
  /// simulator).  UdpTransport controls only locally-attached processes;
  /// remote processes crash for real.
  [[nodiscard]] virtual bool supports_process_control() const = 0;
  /// Marks a process up/down.  Down processes neither send nor receive.
  virtual void set_process_up(ProcessId process, bool up) = 0;
  [[nodiscard]] virtual bool process_up(ProcessId process) const = 0;

  // ---- clock + timers ----

  /// Current time: virtual under SimTransport, microseconds of real time
  /// since transport construction under UdpTransport.
  [[nodiscard]] virtual sim::Time now() const = 0;

  /// Runs `fn` at now()+delay.  The callback executes inline in the driving
  /// loop (it typically spawns a fiber or releases a semaphore); `domain`
  /// ties the timer to a crashable site (cancelled by kill_domain).
  virtual TimerId schedule_after(sim::Duration delay, std::function<void()> fn,
                                 DomainId domain = sim::kGlobalDomain) = 0;
  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  virtual void cancel_timer(TimerId id) = 0;

  // ---- threads of control ----

  /// Starts a new fiber running `task`, tagged with `domain`.
  virtual FiberId spawn(sim::Task<> task, DomainId domain = sim::kGlobalDomain) = 0;
  /// Kills every fiber of `domain` and cancels the domain's timers (both
  /// the executor's and the transport's).  Models a site crash.
  virtual void kill_domain(DomainId domain) = 0;

  /// The cooperative executor protocol code runs on.  For synchronization
  /// primitives (sim::Semaphore, sim::Mutex) and fiber-level introspection
  /// (current_fiber, kill); traffic and timers must go through the
  /// Transport interface, never through the executor directly.
  [[nodiscard]] virtual sim::Scheduler& executor() = 0;

  // ---- observability ----

  [[nodiscard]] virtual const Stats& stats() const = 0;
  virtual void reset_stats() = 0;
};

}  // namespace ugrpc::net
