#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "net/wire.h"

namespace ugrpc::net {

namespace {

/// Rate-limiter keys: one space for (src, dst) links, one for (src, group).
constexpr std::uint64_t link_key(ProcessId from, ProcessId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}
constexpr std::uint64_t group_key(ProcessId from, GroupId group) {
  return (std::uint64_t{1} << 63) | (static_cast<std::uint64_t>(from.value()) << 16) |
         group.value();
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const int rc = ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  UGRPC_ASSERT(rc == 1 && "bind_host/peer host must be a numeric IPv4 address");
  return addr;
}

}  // namespace

UdpTransport::UdpTransport() : UdpTransport(Options{}) {}

UdpTransport::UdpTransport(Options options)
    : options_(std::move(options)), exec_(options_.seed), wheel_(options_.wheel_granularity),
      start_(std::chrono::steady_clock::now()) {}

UdpTransport::~UdpTransport() {
  for (auto& [process, att] : attachments_) {
    if (att.fd >= 0) ::close(att.fd);
  }
}

sim::Time UdpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               start_)
      .count();
}

Endpoint& UdpTransport::attach(ProcessId process, DomainId domain) {
  UGRPC_ASSERT(!attachments_.contains(process) && "process already attached");
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  UGRPC_ASSERT(fd >= 0 && "socket() failed");
  // Ephemeral port: parallel runs on one host cannot collide, and the
  // example/CI publish the chosen port out of band.
  sockaddr_in addr = make_addr(options_.bind_host, 0);
  int rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  UGRPC_ASSERT(rc == 0 && "bind() failed");
  socklen_t len = sizeof(addr);
  rc = ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  UGRPC_ASSERT(rc == 0 && "getsockname() failed");

  Attachment att;
  att.endpoint = std::make_unique<UdpEndpoint>(*this, process, domain);
  att.fd = fd;
  att.port = ntohs(addr.sin_port);
  att.incarnation = ++attach_counts_[process];
  auto [it, inserted] = attachments_.emplace(process, std::move(att));
  peers_[process] = addr;  // local processes are reachable like any peer
  UGRPC_LOG(kDebug, "udp: attach %u on %s:%u (incarnation %u)", process.value(),
            options_.bind_host.c_str(), it->second.port, it->second.incarnation);
  return *it->second.endpoint;
}

void UdpTransport::detach(ProcessId process) {
  auto it = attachments_.find(process);
  if (it == attachments_.end()) return;
  ::close(it->second.fd);
  peers_.erase(process);
  attachments_.erase(it);
}

void UdpTransport::define_group(GroupId group, std::vector<ProcessId> members) {
  groups_[group] = std::move(members);
}

const std::vector<ProcessId>& UdpTransport::group_members(GroupId group) const {
  auto it = groups_.find(group);
  UGRPC_ASSERT(it != groups_.end() && "unknown group");
  return it->second;
}

bool UdpTransport::has_group(GroupId group) const { return groups_.contains(group); }

void UdpTransport::set_process_up(ProcessId process, bool up) {
  auto it = attachments_.find(process);
  UGRPC_ASSERT(it != attachments_.end() &&
               "UDP crash modelling reaches only locally attached processes");
  it->second.up = up;
}

bool UdpTransport::process_up(ProcessId process) const {
  auto it = attachments_.find(process);
  // Remote peers cannot be introspected; assume up (the membership service
  // is the authority on remote liveness).
  return it == attachments_.end() ? true : it->second.up;
}

TimerId UdpTransport::schedule_after(sim::Duration delay, std::function<void()> fn,
                                     DomainId domain) {
  // Capture the arming fiber's trace context so the wheel can parent the
  // fire's span to the activity that armed the timer.
  obs::SpanCtx ctx;
  if (obs_ != nullptr && domain != sim::kGlobalDomain) {
    ctx = obs_->site(ProcessId{domain.value()}).current(exec_.current_fiber().value());
  }
  return wheel_.add(now() + std::max<sim::Duration>(delay, 0), std::move(fn), domain, ctx);
}

void UdpTransport::cancel_timer(TimerId id) { wheel_.cancel(id); }

FiberId UdpTransport::spawn(sim::Task<> task, DomainId domain) {
  return exec_.spawn(std::move(task), domain);
}

void UdpTransport::kill_domain(DomainId domain) {
  exec_.kill_domain(domain);
  wheel_.cancel_domain(domain);
}

void UdpTransport::add_peer(ProcessId peer, const std::string& host, std::uint16_t port) {
  peers_[peer] = make_addr(host, port);
}

std::uint16_t UdpTransport::local_port(ProcessId process) const {
  auto it = attachments_.find(process);
  UGRPC_ASSERT(it != attachments_.end() && "process not attached");
  return it->second.port;
}

void UdpTransport::send_from(ProcessId src, ProcessId dst, ProtocolId proto, Buffer payload) {
  auto src_it = attachments_.find(src);
  UGRPC_ASSERT(src_it != attachments_.end() && "sender must be locally attached");
  auto dst_it = peers_.find(dst);
  if (dst_it == peers_.end()) {
    ++stats_.unroutable;
    if (obs_) obs_->site(src).record(now(), obs::Kind::kMsgUnroutable, 0, dst.value(), proto.value());
    if (const std::uint64_t n = unroutable_log_.occurrences_to_log(link_key(src, dst), now());
        n == 1) {
      UGRPC_LOG(kWarn, "udp: unroutable %u->%u proto=%u (no address-book entry)", src.value(),
                dst.value(), proto.value());
    } else if (n > 1) {
      UGRPC_LOG(kWarn, "udp: unroutable %u->%u: %llu more since last report (latest proto=%u)",
                src.value(), dst.value(), static_cast<unsigned long long>(n), proto.value());
    }
    return;
  }
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  if (obs_) obs_->site(src).record(now(), obs::Kind::kMsgSent, 0, dst.value(), proto.value());
  // The send span's id travels in the frame (wire v2) and parents the
  // receiving process's delivery span -- the cross-process tree edge.
  obs::SiteTrace* st = nullptr;
  obs::SpanCtx out_ctx;
  std::uint64_t send_span = 0;
  if (obs_) {
    st = &obs_->site(src);
    const obs::SpanCtx ambient = st->current(exec_.current_fiber().value());
    send_span = st->span_open(now(), obs::SpanKind::kSend, 0, ambient, dst.value());
    out_ctx = send_span != 0 ? st->ctx_of(send_span) : ambient;
  }
  const auto close_send = [&](bool faulted) {
    if (st != nullptr) {
      if (faulted) st->span_flag(send_span);
      st->span_close(send_span, now());
    }
  };
  if (!src_it->second.up) {
    ++stats_.dropped;
    close_send(true);
    return;  // crashed senders produce nothing
  }
  if (send_fault_ && send_fault_(src, dst, proto)) {
    // Deterministic loss injected by a test/example (real UDP on loopback
    // almost never drops, so forcing a retransmission needs a hook).
    ++stats_.dropped;
    if (obs_) obs_->site(src).record(now(), obs::Kind::kMsgDropped, 0, dst.value(), proto.value());
    close_send(true);
    return;
  }
  WireFrame frame{src,     dst,           proto, src_it->second.incarnation,
                  out_ctx.trace, out_ctx.parent, std::move(payload)};
  const Buffer wire = frame.encode();
  if (wire.size() > kMaxDatagram) {
    ++stats_.dropped;
    UGRPC_LOG(kWarn, "udp: frame %u->%u proto=%u exceeds %zu bytes, dropped", src.value(),
              dst.value(), proto.value(), kMaxDatagram);
    close_send(true);
    return;
  }
  const auto bytes = wire.bytes();
  const ssize_t n =
      ::sendto(src_it->second.fd, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst_it->second), sizeof(dst_it->second));
  if (n < 0) {
    // A full socket buffer or a vanished peer (ECONNREFUSED from a previous
    // ICMP) is datagram loss; the reliable-communication layer retransmits.
    ++stats_.dropped;
    UGRPC_LOG(kDebug, "udp: sendto %u->%u failed: %s", src.value(), dst.value(),
              std::strerror(errno));
  }
  close_send(n < 0);
}

void UdpTransport::multicast_from(ProcessId src, GroupId group, ProtocolId proto, Buffer payload) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    ++stats_.unroutable;
    if (const std::uint64_t n = unroutable_log_.occurrences_to_log(group_key(src, group), now());
        n == 1) {
      UGRPC_LOG(kWarn, "udp: unroutable multicast from %u to undefined group %u proto=%u",
                src.value(), group.value(), proto.value());
    } else if (n > 1) {
      UGRPC_LOG(kWarn, "udp: unroutable multicast from %u to group %u: %llu more since last report",
                src.value(), group.value(), static_cast<unsigned long long>(n));
    }
    return;
  }
  for (ProcessId member : it->second) {
    send_from(src, member, proto, payload);  // Buffer copies are O(1) (COW)
  }
}

void UdpTransport::dispatch_datagram(Attachment& att, std::span<const std::byte> datagram) {
  std::optional<WireFrame> frame = WireFrame::decode(datagram);
  if (!frame.has_value()) {
    ++stats_.dropped;
    UGRPC_LOG(kDebug, "udp: dropping malformed %zu-byte datagram", datagram.size());
    return;
  }
  if (frame->dst != att.endpoint->process() || !att.up) {
    ++stats_.dropped;
    return;  // misdirected, or the local destination is "crashed"
  }
  // Drop frames from an older incarnation of the sender: they were queued
  // before the sender restarted and must not leak into its new life.
  std::uint32_t& newest = seen_incarnations_[frame->src];
  if (frame->incarnation < newest) {
    ++stats_.dropped;
    UGRPC_LOG(kDebug, "udp: stale incarnation %u (< %u) from %u, dropped", frame->incarnation,
              newest, frame->src.value());
    return;
  }
  newest = frame->incarnation;
  const std::shared_ptr<PacketHandler> handler = att.endpoint->handler(frame->proto);
  if (handler == nullptr) {
    ++stats_.dropped;
    UGRPC_LOG(kDebug, "udp: no handler for proto=%u at %u", frame->proto.value(),
              frame->dst.value());
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += frame->payload.size();
  if (obs_) {
    obs_->site(frame->dst).record(now(), obs::Kind::kMsgDelivered, 0, frame->src.value(),
                                  frame->proto.value());
  }
  // The delivery span parents to the sender's send span (carried in the
  // frame) and stays open for the handler fiber, whose ambient context it
  // becomes -- same contract as the simulated fabric.
  const obs::SpanCtx wire_ctx{frame->trace, frame->span};
  std::uint64_t deliver_span = 0;
  if (obs_) {
    deliver_span = obs_->site(frame->dst)
                       .span_open(now(), obs::SpanKind::kDeliver, 0, wire_ctx, frame->src.value());
  }
  // x-kernel demux: each delivery runs in a fresh fiber in the destination's
  // domain; the wrapper keeps the handler alive for the fiber's lifetime.
  static constexpr auto invoke = [](UdpTransport* tp, std::shared_ptr<PacketHandler> h, Packet p,
                                    std::uint64_t span) -> sim::Task<> {
    const ProcessId dst = p.dst;
    obs::SiteTrace* st = tp->obs_ != nullptr ? &tp->obs_->site(dst) : nullptr;
    const std::uint64_t fiber = tp->exec_.current_fiber().value();
    if (st != nullptr && span != 0) st->set_current(fiber, st->ctx_of(span));
    co_await (*h)(std::move(p));
    if (st != nullptr) {
      st->clear_current(fiber);
      st->span_close(span, tp->now());
    }
  };
  Packet packet{frame->src, frame->dst, frame->proto, std::move(frame->payload), wire_ctx};
  exec_.spawn(invoke(this, std::move(handler), std::move(packet), deliver_span),
              att.endpoint->domain());
}

void UdpTransport::sync_executor() {
  const sim::Time t = now();
  wheel_.advance(t);
  // Slave the executor's virtual clock to real time: due sleep_for timers
  // fire, ready fibers drain, and the clock lands exactly at t.
  exec_.run_until(t);
}

sim::Duration UdpTransport::poll_wait(sim::Duration max_wait) {
  if (exec_.has_ready()) return 0;
  const sim::Time t = now();
  sim::Time deadline = t + std::max<sim::Duration>(max_wait, 0);
  if (const auto d = wheel_.next_deadline()) deadline = std::min(deadline, *d);
  if (const auto d = exec_.next_timer_deadline()) deadline = std::min(deadline, *d);
  return std::max<sim::Duration>(deadline - t, 0);
}

void UdpTransport::poll_once(sim::Duration max_wait) {
  sync_executor();

  std::vector<pollfd> fds;
  std::vector<ProcessId> owners;
  fds.reserve(attachments_.size() + 1);
  for (auto& [process, att] : attachments_) {
    fds.push_back(pollfd{att.fd, POLLIN, 0});
    owners.push_back(process);
  }
  // The telemetry listener rides the same poll set so a scrape wakes the
  // loop immediately; its connections progress in the poll_once() below.
  if (telemetry_ != nullptr && telemetry_->listen_fd() >= 0) {
    fds.push_back(pollfd{telemetry_->listen_fd(), POLLIN, 0});
  }
  const sim::Duration wait = poll_wait(max_wait);
  const int timeout_ms = static_cast<int>(std::min<sim::Duration>((wait + 999) / 1000, 1000));
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready > 0) {
    std::byte buf[kMaxDatagram + 1];
    for (std::size_t i = 0; i < owners.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      auto att_it = attachments_.find(owners[i]);
      if (att_it == attachments_.end()) continue;  // detached by a callback
      for (;;) {
        const ssize_t n = ::recv(fds[i].fd, buf, sizeof(buf), 0);
        if (n < 0) break;  // EWOULDBLOCK: socket drained
        dispatch_datagram(att_it->second, std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      }
    }
  }

  // Scrapes are answered here, between executor runs: the fibers are all
  // suspended, so the hub renders a consistent point-in-time snapshot.
  if (telemetry_ != nullptr) telemetry_->poll_once();

  sync_executor();
}

std::uint16_t UdpTransport::serve_telemetry(obs::live::TelemetryHub& hub, std::uint16_t port,
                                            const std::string& host, std::string* error) {
  auto server = std::make_unique<obs::live::TelemetryServer>(hub);
  if (!server->listen(host, port, error)) return 0;
  telemetry_ = std::move(server);
  UGRPC_LOG(kDebug, "udp: telemetry listening on %s:%u", host.c_str(), telemetry_->port());
  return telemetry_->port();
}

void UdpTransport::run_for(sim::Duration d) {
  const sim::Time stop_at = now() + d;
  while (now() < stop_at) poll_once(std::min(options_.max_poll_wait, stop_at - now()));
}

bool UdpTransport::run_until_fiber_done(FiberId fiber, sim::Duration timeout) {
  const sim::Time stop_at = now() + timeout;
  while (exec_.fiber_alive(fiber) && now() < stop_at) {
    poll_once(std::min(options_.max_poll_wait, stop_at - now()));
  }
  return !exec_.fiber_alive(fiber);
}

}  // namespace ugrpc::net
