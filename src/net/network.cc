#include "net/network.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"

namespace ugrpc::net {

void Endpoint::set_handler(ProtocolId proto, PacketHandler handler) {
  handlers_[proto] = std::make_shared<PacketHandler>(std::move(handler));
}

void Endpoint::clear_handler(ProtocolId proto) { handlers_.erase(proto); }

void Endpoint::send(ProcessId dst, ProtocolId proto, Buffer payload) {
  net_->transmit(process_, dst, proto, payload);
}

void Endpoint::multicast(GroupId group, ProtocolId proto, Buffer payload) {
  for (ProcessId member : net_->group_members(group)) {
    net_->transmit(process_, member, proto, payload);
  }
}

Network::Network(sim::Scheduler& sched) : sched_(sched), rng_(sched.rng().fork()) {}

Endpoint& Network::attach(ProcessId process, DomainId domain) {
  auto [it, inserted] = endpoints_.try_emplace(process, Endpoint(*this, process, domain));
  UGRPC_ASSERT(inserted && "process already attached");
  up_[process] = true;
  return it->second;
}

FaultSpec& Network::link(ProcessId from, ProcessId to) {
  auto [it, inserted] = link_faults_.try_emplace({from, to}, default_faults_);
  return it->second;
}

const FaultSpec& Network::faults_for(ProcessId from, ProcessId to) const {
  auto it = link_faults_.find({from, to});
  return it != link_faults_.end() ? it->second : default_faults_;
}

void Network::set_process_up(ProcessId process, bool up) { up_[process] = up; }

bool Network::process_up(ProcessId process) const {
  auto it = up_.find(process);
  return it != up_.end() && it->second;
}

void Network::define_group(GroupId group, std::vector<ProcessId> members) {
  groups_[group] = std::move(members);
}

const std::vector<ProcessId>& Network::group_members(GroupId group) const {
  auto it = groups_.find(group);
  UGRPC_ASSERT(it != groups_.end() && "unknown group");
  return it->second;
}

void Network::transmit(ProcessId from, ProcessId to, ProtocolId proto, const Buffer& payload) {
  ++stats_.sent;
  if (!process_up(from)) {
    ++stats_.dropped;
    return;  // crashed senders produce nothing
  }
  const FaultSpec& spec = faults_for(from, to);
  if (spec.partitioned || rng_.bernoulli(spec.drop_prob)) {
    ++stats_.dropped;
    if (tracer_) tracer_(Packet{from, to, proto, payload}, PacketFate::kDropped);
    UGRPC_LOG(kTrace, "net: drop %u->%u proto=%u", from.value(), to.value(), proto.value());
    return;
  }
  const auto draw_delay = [&] {
    return spec.min_delay >= spec.max_delay
               ? spec.min_delay
               : sim::Duration{rng_.uniform_int(spec.min_delay, spec.max_delay)};
  };
  if (tracer_) tracer_(Packet{from, to, proto, payload}, PacketFate::kDelivered);
  schedule_delivery(Packet{from, to, proto, payload}, draw_delay());
  if (rng_.bernoulli(spec.dup_prob)) {
    ++stats_.duplicated;
    if (tracer_) tracer_(Packet{from, to, proto, payload}, PacketFate::kDuplicated);
    schedule_delivery(Packet{from, to, proto, payload}, draw_delay());
  }
}

void Network::schedule_delivery(Packet packet, sim::Duration delay) {
  sched_.schedule_after(delay, [this, packet = std::move(packet)]() mutable {
    auto it = endpoints_.find(packet.dst);
    if (it == endpoints_.end() || !process_up(packet.dst)) {
      ++stats_.dropped;
      return;  // destination crashed while the packet was in flight
    }
    Endpoint& ep = it->second;
    auto handler_it = ep.handlers_.find(packet.proto);
    if (handler_it == ep.handlers_.end()) {
      ++stats_.dropped;
      UGRPC_LOG(kDebug, "net: no handler for proto=%u at %u", packet.proto.value(),
                packet.dst.value());
      return;
    }
    ++stats_.delivered;
    // Each delivery runs in its own fiber in the destination's domain, so a
    // site crash kills in-progress message processing.  The wrapper keeps
    // the handler object alive for the fiber's lifetime (the coroutine frame
    // references the closure it was created from).
    static constexpr auto invoke = [](std::shared_ptr<PacketHandler> handler,
                                      Packet p) -> sim::Task<> { co_await (*handler)(std::move(p)); };
    sched_.spawn(invoke(handler_it->second, std::move(packet)), ep.domain_);
  });
}

}  // namespace ugrpc::net
