#include "net/network.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"

namespace ugrpc::net {

namespace {

/// Minimum virtual-time gap between unroutable warnings for one key.
constexpr sim::Duration kUnroutableLogPeriod = sim::seconds(1);

/// Rate-limiter keys: one space for links, one for (sender, group).
constexpr std::uint64_t link_key(ProcessId from, ProcessId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}
constexpr std::uint64_t group_key(ProcessId from, GroupId group) {
  return (std::uint64_t{1} << 63) | (static_cast<std::uint64_t>(from.value()) << 16) |
         group.value();
}

}  // namespace

Network::Network(sim::Scheduler& sched)
    : sched_(sched), rng_(sched.rng().fork()), unroutable_log_(kUnroutableLogPeriod) {}

Endpoint& Network::attach(ProcessId process, DomainId domain) {
  // In-place construction: Endpoint is pinned (handler table address escapes
  // into delivery closures), so it is neither copyable nor movable.
  auto [it, inserted] = endpoints_.try_emplace(process, *this, process, domain);
  UGRPC_ASSERT(inserted && "process already attached");
  up_[process] = true;
  return it->second;
}

void Network::detach(ProcessId process) {
  endpoints_.erase(process);
  up_.erase(process);
}

FaultSpec& Network::link(ProcessId from, ProcessId to) {
  auto [it, inserted] = link_faults_.try_emplace({from, to}, default_faults_);
  return it->second;
}

const FaultSpec& Network::faults_for(ProcessId from, ProcessId to) const {
  auto it = link_faults_.find({from, to});
  return it != link_faults_.end() ? it->second : default_faults_;
}

void Network::set_process_up(ProcessId process, bool up) { up_[process] = up; }

bool Network::process_up(ProcessId process) const {
  auto it = up_.find(process);
  return it != up_.end() && it->second;
}

void Network::define_group(GroupId group, std::vector<ProcessId> members) {
  groups_[group] = std::move(members);
}

const std::vector<ProcessId>& Network::group_members(GroupId group) const {
  auto it = groups_.find(group);
  UGRPC_ASSERT(it != groups_.end() && "unknown group");
  return it->second;
}

Network::LinkStats Network::link_stats(ProcessId from, ProcessId to) const {
  auto it = link_stats_.find({from, to});
  return it != link_stats_.end() ? it->second : LinkStats{};
}

void Network::transmit(ProcessId from, ProcessId to, ProtocolId proto, const Buffer& payload) {
  if (!endpoints_.contains(to)) {
    // No attachment now and none possible by delivery time from this send:
    // the packet has no route.  Count it instead of letting it vanish.
    ++stats_.unroutable;
    if (obs_) {
      obs_->site(from).record(sched_.now(), obs::Kind::kMsgUnroutable, 0, to.value(),
                              proto.value());
    }
    if (const std::uint64_t n = unroutable_log_.occurrences_to_log(link_key(from, to), sched_.now());
        n == 1) {
      UGRPC_LOG(kWarn, "net: unroutable %u->%u proto=%u (destination not attached)", from.value(),
                to.value(), proto.value());
    } else if (n > 1) {
      UGRPC_LOG(kWarn,
                "net: unroutable %u->%u: %llu more since last report (latest proto=%u)",
                from.value(), to.value(), static_cast<unsigned long long>(n), proto.value());
    }
    return;
  }
  LinkStats& link = link_stats_[{from, to}];
  ++stats_.sent;
  ++link.sent;
  stats_.bytes_sent += payload.size();
  link.bytes_sent += payload.size();
  // The send span parents to whatever the sending fiber is doing (the
  // ambient per-fiber context); its own id travels on the packet and becomes
  // the delivery span's parent at the destination.
  obs::SiteTrace* st = nullptr;
  obs::SpanCtx out_ctx;
  std::uint64_t send_span = 0;
  if (obs_) {
    st = &obs_->site(from);
    const obs::SpanCtx ambient = st->current(sched_.current_fiber().value());
    send_span = st->span_open(sched_.now(), obs::SpanKind::kSend, 0, ambient, to.value());
    out_ctx = send_span != 0 ? st->ctx_of(send_span) : ambient;
  }
  if (!process_up(from)) {
    ++stats_.dropped;
    ++link.dropped;
    if (st != nullptr) {
      st->span_flag(send_span);
      st->span_close(send_span, sched_.now());
    }
    return;  // crashed senders produce nothing
  }
  const FaultSpec& spec = faults_for(from, to);
  if (spec.partitioned || rng_.bernoulli(spec.drop_prob)) {
    ++stats_.dropped;
    ++link.dropped;
    if (tracer_) tracer_(Packet{from, to, proto, payload, {}, false}, PacketFate::kDropped);
    if (obs_) {
      obs_->site(from).record(sched_.now(), obs::Kind::kMsgDropped, 0, to.value(), proto.value());
    }
    if (st != nullptr) {
      st->span_flag(send_span);
      st->span_close(send_span, sched_.now());
    }
    UGRPC_LOG(kTrace, "net: drop %u->%u proto=%u", from.value(), to.value(), proto.value());
    return;
  }
  const auto draw_delay = [&] {
    return spec.min_delay >= spec.max_delay
               ? spec.min_delay
               : sim::Duration{rng_.uniform_int(spec.min_delay, spec.max_delay)};
  };
  if (tracer_) tracer_(Packet{from, to, proto, payload, {}, false}, PacketFate::kDelivered);
  if (obs_) {
    obs_->site(from).record(sched_.now(), obs::Kind::kMsgSent, 0, to.value(), proto.value());
  }
  schedule_delivery(Packet{from, to, proto, payload, out_ctx, false}, draw_delay());
  if (rng_.bernoulli(spec.dup_prob)) {
    ++stats_.duplicated;
    ++link.duplicated;
    if (tracer_) tracer_(Packet{from, to, proto, payload, {}, false}, PacketFate::kDuplicated);
    if (obs_) {
      obs_->site(from).record(sched_.now(), obs::Kind::kMsgDuplicated, 0, to.value(),
                              proto.value());
    }
    // The manufactured copy stays on the original trace but is marked, so
    // the span tree shows the duplicate delivery for what it is.
    schedule_delivery(Packet{from, to, proto, payload, out_ctx, /*duplicate=*/true},
                      draw_delay());
  }
  if (st != nullptr) st->span_close(send_span, sched_.now());
}

void Network::multicast_from(ProcessId from, GroupId group, ProtocolId proto,
                             const Buffer& payload) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    ++stats_.unroutable;
    if (obs_) {
      obs_->site(from).record(sched_.now(), obs::Kind::kMsgUnroutable, 0, group.value(),
                              proto.value());
    }
    if (const std::uint64_t n =
            unroutable_log_.occurrences_to_log(group_key(from, group), sched_.now());
        n == 1) {
      UGRPC_LOG(kWarn, "net: unroutable multicast from %u to undefined group %u proto=%u",
                from.value(), group.value(), proto.value());
    } else if (n > 1) {
      UGRPC_LOG(kWarn,
                "net: unroutable multicast from %u to group %u: %llu more since last report",
                from.value(), group.value(), static_cast<unsigned long long>(n));
    }
    return;
  }
  for (ProcessId member : it->second) {
    transmit(from, member, proto, payload);
  }
}

void Network::schedule_delivery(Packet packet, sim::Duration delay) {
  sched_.schedule_after(delay, [this, packet = std::move(packet)]() mutable {
    auto it = endpoints_.find(packet.dst);
    if (it == endpoints_.end() || !process_up(packet.dst)) {
      ++stats_.dropped;
      ++link_stats_[{packet.src, packet.dst}].dropped;
      if (obs_) {
        obs_->site(packet.dst).record(sched_.now(), obs::Kind::kMsgDropped, 0,
                                      packet.src.value(), packet.proto.value());
      }
      return;  // destination crashed or detached while the packet was in flight
    }
    SimEndpoint& ep = it->second;
    std::shared_ptr<PacketHandler> handler = ep.handler(packet.proto);
    if (handler == nullptr) {
      ++stats_.dropped;
      ++link_stats_[{packet.src, packet.dst}].dropped;
      if (obs_) {
        obs_->site(packet.dst).record(sched_.now(), obs::Kind::kMsgDropped, 0,
                                      packet.src.value(), packet.proto.value());
      }
      UGRPC_LOG(kDebug, "net: no handler for proto=%u at %u", packet.proto.value(),
                packet.dst.value());
      return;
    }
    ++stats_.delivered;
    if (obs_) {
      obs_->site(packet.dst).record(sched_.now(), obs::Kind::kMsgDelivered, 0,
                                    packet.src.value(), packet.proto.value());
    }
    LinkStats& link = link_stats_[{packet.src, packet.dst}];
    ++link.delivered;
    stats_.bytes_delivered += packet.payload.size();
    link.bytes_delivered += packet.payload.size();
    // The delivery span parents to the *send* span carried on the packet,
    // stitching the sender's tree to the receiver's.  It stays open for the
    // whole handler fiber and is the fiber's ambient context, so everything
    // the handler does (nested sends, handler spans) hangs beneath it.
    std::uint64_t deliver_span = 0;
    if (obs_) {
      obs::SiteTrace& st = obs_->site(packet.dst);
      deliver_span = st.span_open(sched_.now(), obs::SpanKind::kDeliver, 0, packet.ctx,
                                  packet.src.value());
      if (packet.duplicate) st.span_flag(deliver_span);
    }
    // Each delivery runs in its own fiber in the destination's domain, so a
    // site crash kills in-progress message processing.  The wrapper keeps
    // the handler object alive for the fiber's lifetime (the coroutine frame
    // references the closure it was created from).
    static constexpr auto invoke = [](Network* net, std::shared_ptr<PacketHandler> h, Packet p,
                                      std::uint64_t span) -> sim::Task<> {
      const ProcessId dst = p.dst;
      obs::SiteTrace* st = net->obs_ != nullptr ? &net->obs_->site(dst) : nullptr;
      const std::uint64_t fiber = net->sched_.current_fiber().value();
      if (st != nullptr && span != 0) st->set_current(fiber, st->ctx_of(span));
      co_await (*h)(std::move(p));
      if (st != nullptr) {
        st->clear_current(fiber);
        st->span_close(span, net->sched_.now());
      }
    };
    sched_.spawn(invoke(this, std::move(handler), std::move(packet), deliver_span), ep.domain());
  });
}

}  // namespace ugrpc::net
