// Hashed timer wheel for real-time transports.
//
// UdpTransport routes every Transport::schedule_after through this wheel
// (the executor's heap stays reserved for sleep_for awaiters), so arming and
// cancelling the stack's many short-lived timers -- retransmission,
// heartbeat, bounded-termination deadlines, almost all of which are
// cancelled before firing -- is O(1) instead of leaving dead entries in a
// priority queue.  Entries hash into kSlots buckets by deadline tick; each
// advance() walks only the buckets the clock passed over and fires due
// entries in (deadline, registration-sequence) order, matching the
// scheduler's timer ordering so protocol behaviour does not depend on which
// backend armed the timer.
//
// Timer ids are drawn from the same TimerId space the scheduler uses but the
// two sets never meet: ids issued by the wheel are cancelled on the wheel,
// ids issued by the executor on the executor.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace ugrpc::net {

class TimerWheel {
 public:
  static constexpr std::size_t kSlots = 256;

  /// `granularity` is the tick width; deadlines within the same tick fire
  /// together on the advance() that passes them.
  explicit TimerWheel(sim::Duration granularity = sim::msec(1));

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms `fn` to fire at absolute time `deadline` (clamped to now or later
  /// by the next advance()).  `domain` ties the timer to a crashable site.
  /// `ctx` is the trace context captured at arming: when a tracer is
  /// attached, the fire opens a kWheelFire span parented to it (so, e.g., a
  /// retransmission timer's work hangs beneath the call that armed it).
  TimerId add(sim::Time deadline, std::function<void()> fn, DomainId domain,
              obs::SpanCtx ctx = {});

  /// No-op if the timer already fired or was cancelled.  A timer may cancel
  /// itself or any other timer from inside its own callback.
  void cancel(TimerId id);

  /// Cancels every timer of `domain` (site crash).
  void cancel_domain(DomainId domain);

  /// Fires every entry with deadline <= now, in (deadline, seq) order.
  /// Callbacks may add or cancel timers freely.
  void advance(sim::Time now);

  /// Earliest pending deadline; nullopt when the wheel is empty.  Real-time
  /// drivers use this to size their poll timeout.
  [[nodiscard]] std::optional<sim::Time> next_deadline() const;

  [[nodiscard]] std::size_t size() const { return handles_.size(); }

  /// Attaches a span collector: each fire with an active context records a
  /// kWheelFire span on the site the timer's domain maps to.  nullptr
  /// (default) disables -- the fire path gains a single null check.
  void set_tracer(obs::Tracer* tracer) { obs_ = tracer; }

 private:
  struct Entry {
    TimerId id;
    sim::Time deadline;
    std::uint64_t seq;
    DomainId domain;
    obs::SpanCtx ctx;  ///< trace context captured at arming
    std::function<void()> fn;
  };
  using Slot = std::list<Entry>;

  struct Handle {
    std::size_t slot;
    Slot::iterator it;
  };

  [[nodiscard]] std::size_t slot_of(sim::Time deadline) const {
    return static_cast<std::size_t>(deadline / granularity_) % kSlots;
  }

  sim::Duration granularity_;
  std::array<Slot, kSlots> slots_;
  std::unordered_map<TimerId, Handle> handles_;
  /// Entries extracted for the current advance() batch; cancel() during a
  /// callback removes ids from here to stop later entries of the same batch.
  std::unordered_map<TimerId, DomainId> firing_;
  std::uint64_t next_timer_ = 1;
  std::uint64_t next_seq_ = 1;
  sim::Time last_advance_ = 0;
  obs::Tracer* obs_ = nullptr;
};

}  // namespace ugrpc::net
