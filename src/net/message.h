// Wire message of the gRPC protocol (paper section 4.2, `Net_Msgtype`).
//
// One message type carries all four protocol interactions:
//   kCall  - client -> servers: invoke operation `op` with `args`
//   kReply - server -> client: result of call `id` (args holds the result)
//   kAck   - client -> server: acknowledges receipt of the Reply for
//            call `ackid` (Unique Execution's garbage-collection signal)
//   kOrder - leader -> group: assigns total-order position `ackid` to call
//            `id` (Total Order micro-protocol)
//
// Messages are serialized with the common codec before entering the network
// and decoded on delivery, so every protocol exchange exercises real
// marshalling.
#pragma once

#include <string_view>

#include "common/buffer.h"
#include "common/ids.h"

namespace ugrpc::net {

// kCall..kOrder are the paper's message types; kOrderQuery/kOrderInfo extend
// the protocol with the leader-change agreement phase the paper omits (a new
// leader reconciles the group's order assignments before assigning further
// orders; see total_order.h).
enum class MsgType : unsigned char {
  kCall = 0,
  kReply = 1,
  kAck = 2,
  kOrder = 3,
  kOrderQuery = 4,  ///< new leader -> group: report your assignments >= ackid
  kOrderInfo = 5,   ///< member -> new leader: (call, order) pairs in args
};

[[nodiscard]] constexpr std::string_view to_string(MsgType t) {
  switch (t) {
    case MsgType::kCall: return "Call";
    case MsgType::kReply: return "Reply";
    case MsgType::kAck: return "ACK";
    case MsgType::kOrder: return "Order";
    case MsgType::kOrderQuery: return "OrderQuery";
    case MsgType::kOrderInfo: return "OrderInfo";
  }
  return "<invalid>";
}

struct NetMessage {
  MsgType type = MsgType::kCall;
  CallId id;          ///< call identifier (assigned by the client)
  OpId op;            ///< operation identifier
  Buffer args;        ///< untyped argument/result bytes
  GroupId server;     ///< identity of the server group
  ProcessId sender;   ///< process that sent this message
  Incarnation inc = 0;  ///< sender's incarnation number
  std::uint64_t ackid = 0;  ///< acked call id (kAck) or assigned order (kOrder)

  [[nodiscard]] Buffer encode() const;
  /// Throws CodecError on malformed input.
  [[nodiscard]] static NetMessage decode(const Buffer& buf);

  friend bool operator==(const NetMessage&, const NetMessage&) = default;
};

inline Buffer NetMessage::encode() const {
  Buffer out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(id.value());
  w.u32(op.value());
  w.raw(args.bytes());
  w.u32(server.value());
  w.u32(sender.value());
  w.u32(inc);
  w.u64(ackid);
  return out;
}

inline NetMessage NetMessage::decode(const Buffer& buf) {
  Reader r(buf);
  NetMessage m;
  const std::uint8_t t = r.u8();
  if (t > static_cast<std::uint8_t>(MsgType::kOrderInfo)) {
    throw CodecError("NetMessage: bad message type");
  }
  m.type = static_cast<MsgType>(t);
  m.id = CallId{r.u64()};
  m.op = OpId{r.u32()};
  m.args = r.raw();
  m.server = GroupId{r.u32()};
  m.sender = ProcessId{r.u32()};
  m.inc = r.u32();
  m.ackid = r.u64();
  return m;
}

}  // namespace ugrpc::net
