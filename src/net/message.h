// Wire message of the gRPC protocol (paper section 4.2, `Net_Msgtype`).
//
// One message type carries all four protocol interactions:
//   kCall  - client -> servers: invoke operation `op` with `args`
//   kReply - server -> client: result of call `id` (args holds the result)
//   kAck   - client -> server: acknowledges receipt of the Reply for
//            call `ackid` (Unique Execution's garbage-collection signal)
//   kOrder - leader -> group: assigns total-order position `ackid` to call
//            `id` (Total Order micro-protocol)
//
// Messages are serialized with the common codec before entering the network
// and decoded on delivery, so every protocol exchange exercises real
// marshalling.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/ids.h"

namespace ugrpc::net {

// kCall..kOrder are the paper's message types; kOrderQuery/kOrderInfo extend
// the protocol with the leader-change agreement phase the paper omits (a new
// leader reconciles the group's order assignments before assigning further
// orders; see total_order.h).
enum class MsgType : unsigned char {
  kCall = 0,
  kReply = 1,
  kAck = 2,
  kOrder = 3,
  kOrderQuery = 4,  ///< new leader -> group: report your assignments >= ackid
  kOrderInfo = 5,   ///< member -> new leader: (call, order) pairs in args
};

[[nodiscard]] constexpr std::string_view to_string(MsgType t) {
  switch (t) {
    case MsgType::kCall: return "Call";
    case MsgType::kReply: return "Reply";
    case MsgType::kAck: return "ACK";
    case MsgType::kOrder: return "Order";
    case MsgType::kOrderQuery: return "OrderQuery";
    case MsgType::kOrderInfo: return "OrderInfo";
  }
  return "<invalid>";
}

struct NetMessage {
  MsgType type = MsgType::kCall;
  CallId id;          ///< call identifier (assigned by the client)
  OpId op;            ///< operation identifier
  Buffer args;        ///< untyped argument/result bytes
  GroupId server;     ///< identity of the server group
  ProcessId sender;   ///< process that sent this message
  Incarnation inc = 0;  ///< sender's incarnation number
  std::uint64_t ackid = 0;  ///< acked call id (kAck) or assigned order (kOrder)

  [[nodiscard]] Buffer encode() const;
  /// Throws CodecError on malformed input.
  [[nodiscard]] static NetMessage decode(const Buffer& buf);

  friend bool operator==(const NetMessage&, const NetMessage&) = default;
};

inline Buffer NetMessage::encode() const {
  Buffer out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(id.value());
  w.u32(op.value());
  w.raw(args.bytes());
  w.u32(server.value());
  w.u32(sender.value());
  w.u32(inc);
  w.u64(ackid);
  return out;
}

// ---- batched acknowledgements ----
//
// A kAck message acknowledges `ackid`; when the client batches several
// acknowledgements for one destination into a single message, the ids beyond
// the first ride in the (otherwise unused) args field as `u32 count` followed
// by `count` u64 call ids.  The NetMessage wire layout is unchanged -- args
// was always length-prefixed opaque bytes -- so old-format single acks decode
// as a batch of one.

[[nodiscard]] inline Buffer encode_ack_batch(std::span<const std::uint64_t> extra_ids) {
  Buffer out;
  if (extra_ids.empty()) return out;
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(extra_ids.size()));
  for (std::uint64_t id : extra_ids) w.u64(id);
  return out;
}

/// Extra acked ids carried in a kAck's args; tolerant of malformed payloads
/// (returns the ids decoded before the error -- acks are best-effort GC).
[[nodiscard]] inline std::vector<std::uint64_t> decode_ack_batch(const Buffer& args) {
  std::vector<std::uint64_t> ids;
  if (args.empty()) return ids;
  try {
    Reader r(args);
    const std::uint32_t count = r.u32();
    ids.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) ids.push_back(r.u64());
  } catch (const CodecError&) {
  }
  return ids;
}

inline NetMessage NetMessage::decode(const Buffer& buf) {
  Reader r(buf);
  NetMessage m;
  const std::uint8_t t = r.u8();
  if (t > static_cast<std::uint8_t>(MsgType::kOrderInfo)) {
    throw CodecError("NetMessage: bad message type");
  }
  m.type = static_cast<MsgType>(t);
  m.id = CallId{r.u64()};
  m.op = OpId{r.u32()};
  m.args = r.raw();
  m.server = GroupId{r.u32()};
  m.sender = ProcessId{r.u32()};
  m.inc = r.u32();
  m.ackid = r.u64();
  return m;
}

}  // namespace ugrpc::net
