#include "net/timer_wheel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace ugrpc::net {

TimerWheel::TimerWheel(sim::Duration granularity) : granularity_(granularity) {
  UGRPC_ASSERT(granularity_ > 0);
}

TimerId TimerWheel::add(sim::Time deadline, std::function<void()> fn, DomainId domain,
                        obs::SpanCtx ctx) {
  UGRPC_ASSERT(fn != nullptr);
  // A deadline already in the past still fires, on the next advance(): clamp
  // it so its bucket lies in the walk range [last tick, current tick].
  deadline = std::max(deadline, last_advance_);
  const TimerId id{next_timer_++};
  const std::size_t slot = slot_of(deadline);
  slots_[slot].push_back(Entry{id, deadline, next_seq_++, domain, ctx, std::move(fn)});
  handles_.emplace(id, Handle{slot, std::prev(slots_[slot].end())});
  return id;
}

void TimerWheel::cancel(TimerId id) {
  auto it = handles_.find(id);
  if (it != handles_.end()) {
    slots_[it->second.slot].erase(it->second.it);
    handles_.erase(it);
    return;
  }
  // Already extracted into the current advance() batch: suppress its firing.
  firing_.erase(id);
}

void TimerWheel::cancel_domain(DomainId domain) {
  std::vector<TimerId> doomed;
  for (const auto& [id, handle] : handles_) {
    if (handle.it->domain == domain) doomed.push_back(id);
  }
  for (TimerId id : doomed) cancel(id);
  std::erase_if(firing_, [domain](const auto& kv) { return kv.second == domain; });
}

void TimerWheel::advance(sim::Time now) {
  if (now < last_advance_) return;  // the clock is monotonic
  const std::int64_t from_tick = last_advance_ / granularity_;
  const std::int64_t to_tick = now / granularity_;
  // Walk each bucket the clock passed over, at most one full rotation (a
  // longer gap would revisit the same buckets).
  const std::int64_t ticks = std::min<std::int64_t>(to_tick - from_tick + 1, kSlots);
  std::vector<Entry> due;
  for (std::int64_t t = from_tick; t < from_tick + ticks; ++t) {
    Slot& slot = slots_[static_cast<std::size_t>(t) % kSlots];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline <= now) {
        handles_.erase(it->id);
        firing_.emplace(it->id, it->domain);
        due.push_back(std::move(*it));
        it = slot.erase(it);
      } else {
        ++it;  // a later rotation, or later within the current tick
      }
    }
  }
  last_advance_ = now;
  std::sort(due.begin(), due.end(),
            [](const Entry& a, const Entry& b) { return std::tie(a.deadline, a.seq) < std::tie(b.deadline, b.seq); });
  for (Entry& entry : due) {
    // Skip entries cancelled by an earlier callback of this same batch.
    if (firing_.erase(entry.id) == 0) continue;
    if (obs_ != nullptr && entry.ctx.active()) {
      // Callbacks run inline (no fiber; the executor's "current fiber" is 0
      // here), so the fiber-0 ambient slot carries the context to any sends
      // the callback performs directly.
      obs::SiteTrace& st = obs_->site(ProcessId{entry.domain.value()});
      const std::uint64_t span =
          st.span_open(now, obs::SpanKind::kWheelFire, 0, entry.ctx, entry.id.value());
      st.set_current(0, st.ctx_of(span));
      entry.fn();
      st.clear_current(0);
      st.span_close(span, now);
    } else {
      entry.fn();
    }
  }
  firing_.clear();
}

std::optional<sim::Time> TimerWheel::next_deadline() const {
  std::optional<sim::Time> best;
  for (const auto& [id, handle] : handles_) {
    if (!best.has_value() || handle.it->deadline < *best) best = handle.it->deadline;
  }
  return best;
}

}  // namespace ugrpc::net
