// Heartbeat-based membership service.
//
// The paper treats membership as an external service that triggers
// MEMBERSHIP_CHANGE(who, FAILURE|RECOVERY) events; most configurations can
// omit it ("the membership component of the system is omitted in these
// cases").  This implementation monitors a watch list of processes: each
// participant periodically sends heartbeat packets, and a detector declares
// FAILURE after `failure_timeout` of silence and RECOVERY on the first
// heartbeat heard from a process previously declared failed.
//
// It is a failure *detector*, not a view-agreement protocol: different
// observers may transition at slightly different times, which is all the
// paper's micro-protocols (Acceptance, Total Order leader selection) need.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/ids.h"
#include "net/transport.h"
#include "sim/time.h"

namespace ugrpc::membership {

/// Demux key for membership heartbeats on the shared network fabric.
inline constexpr ProtocolId kMembershipProto{2};

enum class Change : unsigned char { kFailure, kRecovery };

[[nodiscard]] constexpr std::string_view to_string(Change c) {
  return c == Change::kFailure ? "FAILURE" : "RECOVERY";
}

struct Params {
  sim::Duration heartbeat_interval = sim::msec(20);
  /// Silence longer than this declares the process failed.  Must comfortably
  /// exceed heartbeat_interval plus network delay.
  sim::Duration failure_timeout = sim::msec(100);
};

/// One instance per observing site; volatile (rebuilt on recovery).
class MembershipMonitor {
 public:
  using Listener = std::function<void(ProcessId who, Change change)>;

  /// `endpoint` is the observing site's transport attachment; `watch` is the
  /// set of processes to monitor (typically the server group); `beat` says
  /// whether this site itself emits heartbeats (servers do; a pure client
  /// that only observes does not need to).  Heartbeat and check timers are
  /// armed through the transport's timer hooks.
  MembershipMonitor(net::Transport& transport, net::Endpoint& endpoint,
                    std::vector<ProcessId> watch, Params params, bool beat);
  ~MembershipMonitor();

  MembershipMonitor(const MembershipMonitor&) = delete;
  MembershipMonitor& operator=(const MembershipMonitor&) = delete;

  /// Registers the packet handler and begins heartbeating/checking.
  void start();

  /// Called on each FAILURE/RECOVERY transition.
  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// Processes currently believed alive (watched set minus failed).
  [[nodiscard]] std::set<ProcessId> live_members() const;
  [[nodiscard]] bool is_live(ProcessId p) const;

 private:
  void send_heartbeat();
  void check_failures();
  void arm_heartbeat_timer();
  void arm_check_timer();

  net::Transport& transport_;
  net::Endpoint& endpoint_;
  std::vector<ProcessId> watch_;
  Params params_;
  bool beat_;
  Listener listener_;
  struct PeerState {
    sim::Time last_heard = 0;
    bool alive = true;
  };
  std::unordered_map<ProcessId, PeerState> peers_;
  TimerId heartbeat_timer_{};
  TimerId check_timer_{};
  bool started_ = false;
};

}  // namespace ugrpc::membership
