#include "membership/membership.h"

#include "common/assert.h"
#include "common/log.h"

namespace ugrpc::membership {

namespace {

Buffer encode_heartbeat(ProcessId sender) {
  Buffer b;
  Writer w(b);
  w.u32(sender.value());
  return b;
}

ProcessId decode_heartbeat(const Buffer& b) { return ProcessId{Reader(b).u32()}; }

DomainId domain_of(ProcessId p) { return DomainId{p.value()}; }

}  // namespace

MembershipMonitor::MembershipMonitor(net::Transport& transport, net::Endpoint& endpoint,
                                     std::vector<ProcessId> watch, Params params, bool beat)
    : transport_(transport), endpoint_(endpoint), watch_(std::move(watch)), params_(params),
      beat_(beat) {
  UGRPC_ASSERT(params_.failure_timeout > params_.heartbeat_interval);
}

MembershipMonitor::~MembershipMonitor() {
  transport_.cancel_timer(heartbeat_timer_);
  transport_.cancel_timer(check_timer_);
}

void MembershipMonitor::start() {
  UGRPC_ASSERT(!started_);
  started_ = true;
  const sim::Time now = transport_.now();
  for (ProcessId p : watch_) {
    if (p == endpoint_.process()) continue;  // never monitor oneself
    peers_.emplace(p, PeerState{now, true});
  }
  endpoint_.set_handler(kMembershipProto, [this](net::Packet pkt) -> sim::Task<> {
    const ProcessId who = decode_heartbeat(pkt.payload);
    auto it = peers_.find(who);
    if (it == peers_.end()) co_return;  // not watched
    it->second.last_heard = transport_.now();
    if (!it->second.alive) {
      it->second.alive = true;
      UGRPC_LOG(kDebug, "membership@%u: RECOVERY of %u", endpoint_.process().value(),
                who.value());
      if (listener_) listener_(who, Change::kRecovery);
    }
    co_return;
  });
  if (beat_) {
    send_heartbeat();
    arm_heartbeat_timer();
  }
  arm_check_timer();
}

void MembershipMonitor::send_heartbeat() {
  // Heartbeats go to every watched peer; peers that also watch us use them.
  for (ProcessId p : watch_) {
    if (p == endpoint_.process()) continue;
    endpoint_.send(p, kMembershipProto, encode_heartbeat(endpoint_.process()));
  }
}

void MembershipMonitor::arm_heartbeat_timer() {
  heartbeat_timer_ = transport_.schedule_after(
      params_.heartbeat_interval,
      [this] {
        send_heartbeat();
        arm_heartbeat_timer();
      },
      domain_of(endpoint_.process()));
}

void MembershipMonitor::check_failures() {
  const sim::Time now = transport_.now();
  for (auto& [who, state] : peers_) {
    if (state.alive && now - state.last_heard > params_.failure_timeout) {
      state.alive = false;
      UGRPC_LOG(kDebug, "membership@%u: FAILURE of %u", endpoint_.process().value(), who.value());
      if (listener_) listener_(who, Change::kFailure);
    }
  }
}

void MembershipMonitor::arm_check_timer() {
  check_timer_ = transport_.schedule_after(
      params_.heartbeat_interval,
      [this] {
        check_failures();
        arm_check_timer();
      },
      domain_of(endpoint_.process()));
}

std::set<ProcessId> MembershipMonitor::live_members() const {
  std::set<ProcessId> live;
  for (ProcessId p : watch_) {
    if (is_live(p)) live.insert(p);
  }
  return live;
}

bool MembershipMonitor::is_live(ProcessId p) const {
  if (p == endpoint_.process()) return true;
  auto it = peers_.find(p);
  return it != peers_.end() && it->second.alive;
}

}  // namespace ugrpc::membership
