// Typed serialization over the common byte codec.
//
// The gRPC layer treats call arguments as untyped bytes (paper section 4.1:
// a stub "marshalls arguments"; gRPC copies them opaquely).  This header is
// that stub machinery: Codec<T> maps C++ values to/from Buffers.  Built-in
// support covers integral types, bool, double, std::string, and the common
// containers (vector, pair, optional, map); applications add their own
// message types by specializing Codec<T>.
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/buffer.h"

namespace ugrpc::stub {

template <typename T>
struct Codec;  // specialize: static void encode(Writer&, const T&); static T decode(Reader&);

namespace detail {

template <typename T>
concept UnsignedInt = std::unsigned_integral<T> && !std::same_as<T, bool>;
template <typename T>
concept SignedInt = std::signed_integral<T> && !std::same_as<T, bool>;

}  // namespace detail

template <detail::UnsignedInt T>
struct Codec<T> {
  static void encode(Writer& w, const T& v) { w.u64(static_cast<std::uint64_t>(v)); }
  static T decode(Reader& r) { return static_cast<T>(r.u64()); }
};

template <detail::SignedInt T>
struct Codec<T> {
  static void encode(Writer& w, const T& v) { w.i64(static_cast<std::int64_t>(v)); }
  static T decode(Reader& r) { return static_cast<T>(r.i64()); }
};

template <>
struct Codec<bool> {
  static void encode(Writer& w, const bool& v) { w.boolean(v); }
  static bool decode(Reader& r) { return r.boolean(); }
};

template <>
struct Codec<double> {
  static void encode(Writer& w, const double& v) { w.f64(v); }
  static double decode(Reader& r) { return r.f64(); }
};

template <>
struct Codec<std::string> {
  static void encode(Writer& w, const std::string& v) { w.str(v); }
  static std::string decode(Reader& r) { return r.str(); }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void encode(Writer& w, const std::vector<T>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const T& item : v) Codec<T>::encode(w, item);
  }
  static std::vector<T> decode(Reader& r) {
    const std::uint32_t n = r.u32();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(Codec<T>::decode(r));
    return v;
  }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void encode(Writer& w, const std::pair<A, B>& v) {
    Codec<A>::encode(w, v.first);
    Codec<B>::encode(w, v.second);
  }
  static std::pair<A, B> decode(Reader& r) {
    A a = Codec<A>::decode(r);
    B b = Codec<B>::decode(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename T>
struct Codec<std::optional<T>> {
  static void encode(Writer& w, const std::optional<T>& v) {
    w.boolean(v.has_value());
    if (v.has_value()) Codec<T>::encode(w, *v);
  }
  static std::optional<T> decode(Reader& r) {
    if (!r.boolean()) return std::nullopt;
    return Codec<T>::decode(r);
  }
};

template <typename K, typename V>
struct Codec<std::map<K, V>> {
  static void encode(Writer& w, const std::map<K, V>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& [key, value] : v) {
      Codec<K>::encode(w, key);
      Codec<V>::encode(w, value);
    }
  }
  static std::map<K, V> decode(Reader& r) {
    const std::uint32_t n = r.u32();
    std::map<K, V> m;
    for (std::uint32_t i = 0; i < n; ++i) {
      K key = Codec<K>::decode(r);
      m.emplace(std::move(key), Codec<V>::decode(r));
    }
    return m;
  }
};

/// Marshals a single value into a fresh Buffer.
template <typename T>
[[nodiscard]] Buffer marshal(const T& value) {
  Buffer b;
  Writer w(b);
  Codec<T>::encode(w, value);
  return b;
}

/// Unmarshals a single value; throws CodecError on malformed input.
template <typename T>
[[nodiscard]] T unmarshal(const Buffer& buffer) {
  Reader r(buffer);
  return Codec<T>::decode(r);
}

}  // namespace ugrpc::stub
