// Typed client and server stubs over the untyped gRPC layer.
//
// `Operation<Req, Resp>` names a remote procedure with typed request and
// response.  On the server, a Dispatcher collects typed handlers and
// installs itself as the UserProtocol procedure, demultiplexing on OpId and
// (un)marshalling via Codec<T>.  On the client, invoke() marshals the
// request, performs the group RPC, and unmarshals the collated reply.
//
// Collation happens on marshalled bytes at the gRPC layer; use
// typed_collation() to lift a typed fold function into a byte-level
// CollationFn for the composite configuration.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/assert.h"
#include "core/micro/collation.h"
#include "core/service.h"
#include "core/user_protocol.h"
#include "stub/codec.h"

namespace ugrpc::stub {

template <typename Req, typename Resp>
struct Operation {
  OpId id;
  const char* name;
};

/// Server-side demultiplexer of typed handlers.
class Dispatcher {
 public:
  template <typename Req, typename Resp>
  void handle(Operation<Req, Resp> op, std::function<sim::Task<Resp>(Req)> fn) {
    const bool inserted =
        handlers_
            .emplace(op.id,
                     [fn = std::move(fn)](Buffer& args) -> sim::Task<> {
                       Req request = unmarshal<Req>(args);
                       Resp response = co_await fn(std::move(request));
                       args = marshal<Resp>(response);
                     })
            .second;
    UGRPC_ASSERT(inserted && "operation id registered twice");
  }

  /// Demultiplexes one call to its typed handler.
  [[nodiscard]] sim::Task<> dispatch(OpId op, Buffer& args) {
    auto it = handlers_.find(op);
    UGRPC_ASSERT(it != handlers_.end() && "call for unregistered operation");
    co_await it->second(args);
  }

  /// Installs the dispatch procedure on the user protocol.  The Dispatcher
  /// must outlive the UserProtocol (typically both are owned per-site and
  /// rebuilt together on recovery).
  void install(core::UserProtocol& user) {
    user.set_procedure([this](OpId op, Buffer& args) { return dispatch(op, args); });
  }

  /// As install(), but the user protocol's procedure closure co-owns the
  /// dispatcher -- convenient when the dispatcher is built inside an
  /// AppSetup callback with no other home.
  static void install_owned(std::shared_ptr<Dispatcher> self, core::UserProtocol& user) {
    UGRPC_ASSERT(self != nullptr);
    Dispatcher& ref = *self;
    user.set_procedure(
        [self = std::move(self), &ref](OpId op, Buffer& args) { return ref.dispatch(op, args); });
  }

 private:
  std::unordered_map<OpId, std::function<sim::Task<>(Buffer&)>> handlers_;
};

/// Typed result of a call: the gRPC status plus the decoded response (only
/// meaningful when ok).
template <typename Resp>
struct TypedResult {
  Status status = Status::kWaiting;
  Resp value{};

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// Typed synchronous invocation.
template <typename Req, typename Resp>
[[nodiscard]] sim::Task<TypedResult<Resp>> invoke(core::Client& client, GroupId group,
                                                  Operation<Req, Resp> op, Req request) {
  const core::CallResult raw = co_await client.call(group, op.id, marshal<Req>(request));
  TypedResult<Resp> result;
  result.status = raw.status;
  if (raw.ok()) result.value = unmarshal<Resp>(raw.result);
  co_return result;
}

/// Lifts a typed fold over responses into a byte-level collation function.
/// `init` is the typed initial accumulator; pass the returned pair into
/// Config::{collation, collation_init}.
template <typename Resp>
[[nodiscard]] std::pair<core::CollationFn, Buffer> typed_collation(
    std::function<Resp(Resp acc, Resp reply)> fold, Resp init) {
  core::CollationFn fn = [fold = std::move(fold)](const Buffer& acc, const Buffer& reply) {
    return marshal<Resp>(fold(unmarshal<Resp>(acc), unmarshal<Resp>(reply)));
  };
  return {std::move(fn), marshal<Resp>(init)};
}

}  // namespace ugrpc::stub
