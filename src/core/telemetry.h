// SiteTelemetry: binds one core::Site to the live telemetry plane
// (tentpole of ISSUE 5).
//
// The obs layer owns the mechanisms -- SiteStats counters, Prometheus
// rendering, the TCP listener, the flight recorder -- but cannot name core
// types, so everything that requires walking live composite state lives
// here:
//
//   * introspection -- a channelz-style JSON snapshot of the running stack:
//     configured micro-protocol set, registered handlers with priorities,
//     pending pRPC entries with age/status/outstanding responses, sRPC
//     entries with age and HOLD readiness, the live-member set and
//     incarnation.  Installed as the hub's introspection provider, so
//     /introspect and ugrpcstat serve it.
//   * stall watchdog -- a periodic sweep (timer on the global domain, so it
//     survives site crashes) flagging calls pending past a configurable
//     multiple of the termination bound and sRPC entries stuck past the same
//     threshold.  Each newly flagged record bumps a SiteStats counter and
//     emits a rate-limited warning (common/rate_limited_log.h); a sweep that
//     flags anything counts as a watchdog trip and -- when a flight
//     directory is configured -- trips the flight recorder.
//   * flight manifest -- installs a manifest provider adding the site's
//     config line and the checker Expect derived from it
//     (core::expectations_from), so a flight dump is checkable standalone.
//   * transport gauges -- binds net::Stats byte/drop counters into the
//     SiteStats registry.
//
// Construct AFTER the Site and BEFORE boot() (the live-counter pointer is
// wired into every stack the site builds).  The watchdog reads the pending
// tables without locks: it runs from a plain timer callback, which the
// cooperative executor schedules between fibers, so the tables are never
// mid-mutation when scanned.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "common/rate_limited_log.h"
#include "core/site.h"
#include "obs/live/telemetry.h"
#include "sim/time.h"

namespace ugrpc::core {

class SiteTelemetry {
 public:
  struct Options {
    /// A call is stalled when pending longer than `stall_multiplier` times
    /// the configured termination bound (fallback_bound when none is set).
    double stall_multiplier = 2.0;
    sim::Duration fallback_bound = sim::seconds(5);
    /// When set, replaces the config-derived bound entirely -- tools force a
    /// tight stall threshold without rebuilding the site's Config (the CI
    /// smoke job trips the watchdog this way).
    std::optional<sim::Duration> bound_override;
    /// Watchdog sweep period; the timer is armed by start_watchdog().
    sim::Duration scan_period = sim::seconds(1);
    /// Stall/orphan warnings are rate-limited to one line per category per
    /// this period (suppressed counts stay exact).
    sim::Duration warn_period = sim::seconds(10);
    /// Trip the flight recorder on a sweep that flags new records.
    bool trip_on_stall = true;
  };

  /// One sweep's findings (returned by scan_now for tests/tools).
  struct Sweep {
    std::uint64_t stalled = 0;   ///< newly flagged pRPC calls
    std::uint64_t orphaned = 0;  ///< newly flagged sRPC entries
    std::optional<std::string> flight_dir;  ///< dump written by this sweep
  };

  SiteTelemetry(obs::live::TelemetryHub& hub, Site& site);
  SiteTelemetry(obs::live::TelemetryHub& hub, Site& site, Options options);
  ~SiteTelemetry();

  SiteTelemetry(const SiteTelemetry&) = delete;
  SiteTelemetry& operator=(const SiteTelemetry&) = delete;

  [[nodiscard]] obs::live::TelemetryHub& hub() { return hub_; }
  [[nodiscard]] Site& site() { return site_; }

  // ---- stall watchdog ----

  /// Arms the periodic sweep (idempotent).
  void start_watchdog();
  void stop_watchdog();
  [[nodiscard]] bool watchdog_running() const { return timer_.has_value(); }

  /// Runs one sweep immediately (also what the timer does).
  Sweep scan_now();

  // ---- snapshot producers (installed into the hub; callable directly) ----

  [[nodiscard]] std::string introspection_json() const;
  [[nodiscard]] std::string manifest_extra_json() const;

 private:
  void arm_timer();

  obs::live::TelemetryHub& hub_;
  Site& site_;
  Options options_;
  std::optional<TimerId> timer_;
  RateLimitedLog warn_log_;
  /// Records already counted as stalled/orphaned (a record is flagged once;
  /// pruned against the live tables each sweep so the sets stay bounded).
  std::set<std::uint64_t> flagged_calls_;
  std::set<std::uint64_t> flagged_entries_;
};

}  // namespace ugrpc::core
