// Scenario: a ready-made client/server-group testbed.
//
// Wires a Scheduler, a Network with configurable faults, `num_servers`
// server sites forming one group, and `num_clients` client sites, all
// running the same gRPC configuration.  Used by the integration tests, the
// examples and the benchmark harnesses; it is part of the library because a
// downstream user evaluating a configuration wants exactly this scaffolding.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/config_builder.h"
#include "core/service.h"
#include "core/site.h"
#include "net/network.h"
#include "net/sim_transport.h"
#include "sim/scheduler.h"

namespace ugrpc::core {

struct ScenarioParams {
  int num_servers = 3;
  int num_clients = 1;
  /// Defaults to the builder's (validated) base configuration.
  Config config = ConfigBuilder().build();
  net::FaultSpec faults;  ///< default link faults for every pair
  std::uint64_t seed = 1;
  /// Per-server application setup; default echoes args back unchanged.
  Site::AppSetup server_app;
  /// Optional trace collector (must outlive the scenario): every site --
  /// servers and clients -- and the network fabric record into it.
  obs::Tracer* tracer = nullptr;
};

class Scenario {
 public:
  explicit Scenario(ScenarioParams params);

  /// The server group every client calls.
  [[nodiscard]] GroupId group() const { return kGroup; }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] net::Transport& transport() { return *transport_; }
  [[nodiscard]] Site& server(int i) { return *servers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] Site& client_site(int i) { return *clients_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] Client& client(int i = 0) { return *client_handles_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int num_servers() const { return static_cast<int>(servers_.size()); }
  [[nodiscard]] int num_clients() const { return static_cast<int>(clients_.size()); }

  /// Runs `fn` as a fiber in client i's domain and drives the simulation
  /// until the fiber finishes (then drains same-timestamp work) or
  /// `deadline` of virtual time passes -- periodic protocol timers such as
  /// membership heartbeats never quiesce, so an unbounded run() would hang.
  void run_client(int i, std::function<sim::Task<>(Client&)> fn,
                  sim::Duration deadline = sim::seconds(300));
  void run_until_quiescent() { sched_.run(); }
  void run_for(sim::Duration d) { sched_.run_for(d); }

  /// Sum of server-procedure executions across the group (Fig. 1 metric).
  [[nodiscard]] std::uint64_t total_server_executions() const;

  /// Process ids: servers are 1..num_servers, clients follow.
  [[nodiscard]] static ProcessId server_id(int i) {
    return ProcessId{static_cast<std::uint32_t>(i + 1)};
  }
  [[nodiscard]] ProcessId client_id(int i) const {
    return ProcessId{static_cast<std::uint32_t>(num_servers() + i + 1)};
  }

 private:
  static constexpr GroupId kGroup{1};

  ScenarioParams params_;
  sim::Scheduler sched_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<Site>> servers_;
  std::vector<std::unique_ptr<Site>> clients_;
  std::vector<std::unique_ptr<Client>> client_handles_;
};

/// A server application that echoes the request back (the default).
void echo_app(UserProtocol& user, Site& site);

}  // namespace ugrpc::core
