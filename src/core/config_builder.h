// Fluent construction of group RPC configurations.
//
// Config (config.h) is a plain aggregate: every field is independently
// settable and nothing stops a caller from assembling a combination that
// validate() rejects -- the error then surfaces later, at composite
// construction.  ConfigBuilder closes that gap: setters read as the
// property names of paper section 5, presets encode the failure-semantics
// rows of paper Figure 1, and build() validates against the dependency
// graph of Figure 4, throwing ConfigError (which carries the structured
// ValidationError list) on violation.  A ConfigBuilder therefore cannot
// hand out an invalid Config except through build_unchecked(), the escape
// hatch the Figure 2 harness uses to study broken configurations.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"

namespace ugrpc::core {

/// Thrown by ConfigBuilder::build() when the assembled configuration
/// violates the micro-protocol dependency graph (paper Figure 4).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(std::vector<ValidationError> errors)
      : std::runtime_error(format_what(errors)), errors_(std::move(errors)) {}

  /// The violated rules, with stable machine-readable codes.
  [[nodiscard]] const std::vector<ValidationError>& errors() const { return errors_; }

 private:
  [[nodiscard]] static std::string format_what(const std::vector<ValidationError>& errors);

  std::vector<ValidationError> errors_;
};

class ConfigBuilder {
 public:
  /// Starts from the default (valid) configuration.
  ConfigBuilder() = default;
  /// Starts from an existing configuration (e.g. to tweak a preset further).
  explicit ConfigBuilder(Config base) : config_(std::move(base)) {}

  // ---- presets: the failure-semantics rows of paper Figure 1 ----

  /// Retransmit until answered: reliable communication only.
  [[nodiscard]] static ConfigBuilder at_least_once();
  /// at-least-once + duplicate suppression (Unique Execution).
  [[nodiscard]] static ConfigBuilder exactly_once();
  /// exactly-once + atomic procedure execution: a call executes once in
  /// full or (observably) not at all, even across a server crash.
  [[nodiscard]] static ConfigBuilder at_most_once();
  /// Latency-lean reads (paper section 5): synchronous, first response
  /// wins, tight retransmission, bounded at one second.
  [[nodiscard]] static ConfigBuilder read_optimized();

  // ---- fluent setters ----

  ConfigBuilder& call_semantics(CallSemantics v) { config_.call = v; return *this; }
  ConfigBuilder& synchronous() { return call_semantics(CallSemantics::kSynchronous); }
  ConfigBuilder& asynchronous() { return call_semantics(CallSemantics::kAsynchronous); }

  ConfigBuilder& orphan_handling(OrphanHandling v) { config_.orphan = v; return *this; }
  ConfigBuilder& execution(ExecutionMode v) { config_.execution = v; return *this; }

  ConfigBuilder& unique_execution(bool on = true) {
    config_.unique_execution = on;
    return *this;
  }
  /// Enables retransmission with the given period.
  ConfigBuilder& reliable_communication(sim::Duration retrans_timeout = sim::msec(50)) {
    config_.reliable_communication = true;
    config_.retrans_timeout = retrans_timeout;
    return *this;
  }
  ConfigBuilder& unreliable() { config_.reliable_communication = false; return *this; }

  ConfigBuilder& termination_bound(sim::Duration bound) {
    config_.termination_bound = bound;
    return *this;
  }
  ConfigBuilder& unbounded_termination() {
    config_.termination_bound.reset();
    return *this;
  }

  ConfigBuilder& ordering(Ordering v) { config_.ordering = v; return *this; }
  ConfigBuilder& fifo_order() { return ordering(Ordering::kFifo); }
  ConfigBuilder& total_order() { return ordering(Ordering::kTotal); }

  /// Responses required before the call is accepted (kAll for every member).
  ConfigBuilder& acceptance_limit(int limit) { config_.acceptance_limit = limit; return *this; }
  ConfigBuilder& collation(CollationFn fn, Buffer init = {}) {
    config_.collation = std::move(fn);
    config_.collation_init = std::move(init);
    return *this;
  }
  ConfigBuilder& membership(membership::Params params = {}) {
    config_.use_membership = true;
    config_.membership_params = params;
    return *this;
  }
  ConfigBuilder& group(GroupId g) { config_.group = g; return *this; }

  // ---- terminal operations ----

  /// Validates and returns the configuration; throws ConfigError listing
  /// every violated dependency rule if it is invalid.
  [[nodiscard]] Config build() const;
  /// Returns the configuration without validating.  EXPERIMENTS ONLY; pairs
  /// with Config::unsafe_skip_validation (see config.h).
  [[nodiscard]] Config build_unchecked() const { return config_; }

 private:
  Config config_;
};

}  // namespace ugrpc::core
