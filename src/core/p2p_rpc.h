// Compact point-to-point RPC (paper section 4.1).
//
// "Point-to-point RPC can be seen as a special case in this implementation,
// although in practice it would likely be implemented separately to obtain a
// more compact and efficient protocol."  This is that separate
// implementation: one monolithic class, no event framework, no
// micro-protocols -- the same wire format and the same semantics options
// (reliable retransmission, unique execution, bounded termination) compiled
// into straight-line code.  The modularity_tax bench compares it against
// the composite configured with a one-member group to quantify what the
// micro-protocol architecture costs.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "common/buffer.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/service.h"
#include "core/user_protocol.h"
#include "net/message.h"
#include "net/transport.h"
#include "sim/sync.h"

namespace ugrpc::core {

/// Demux key of the compact point-to-point protocol.
inline constexpr ProtocolId kP2pProto{3};

class P2pRpc {
 public:
  struct Options {
    bool reliable = true;
    sim::Duration retrans_timeout = sim::msec(50);
    bool unique_execution = true;
    std::optional<sim::Duration> termination_bound;
  };

  /// One instance per process; acts as both client and server half.
  P2pRpc(net::Transport& transport, net::Endpoint& endpoint, ProcessId my_id, UserProtocol& user,
         Options options);
  ~P2pRpc();

  P2pRpc(const P2pRpc&) = delete;
  P2pRpc& operator=(const P2pRpc&) = delete;

  /// Synchronous point-to-point call.
  [[nodiscard]] sim::Task<CallResult> call(ProcessId server, OpId op, Buffer args);

  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Pending {
    explicit Pending(sim::Scheduler& sched) : sem(sched, 0) {}
    sim::Semaphore sem;
    Buffer result;
    Status status = Status::kWaiting;
    bool acked = false;
    ProcessId server;
    OpId op;
    Buffer request;
  };

  [[nodiscard]] sim::Task<> on_packet(net::Packet pkt);
  [[nodiscard]] sim::Task<> serve_call(net::NetMessage msg);
  void send(ProcessId dst, const net::NetMessage& msg) {
    endpoint_.send(dst, kP2pProto, msg.encode());
  }
  void arm_retransmit_timer();

  net::Transport& transport_;
  net::Endpoint& endpoint_;
  ProcessId my_id_;
  UserProtocol& user_;
  Options options_;

  std::uint64_t next_seq_ = 1;
  std::map<CallId, std::shared_ptr<Pending>> pending_;
  // Server-side duplicate suppression (when unique_execution).
  std::set<CallId> seen_calls_;
  std::map<CallId, Buffer> stored_results_;
  TimerId retrans_timer_{};
  bool timer_armed_ = false;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace ugrpc::core
