#include "core/events.h"

namespace ugrpc::core {

void define_grpc_events(runtime::Framework& fw) {
  fw.define_event(kCallFromUser, "CALL_FROM_USER");
  fw.define_event(kNewRpcCall, "NEW_RPC_CALL");
  fw.define_event(kReplyFromServer, "REPLY_FROM_SERVER");
  fw.define_event(kMsgFromNetwork, "MSG_FROM_NETWORK");
  fw.define_event(kRecovery, "RECOVERY");
  fw.define_event(kMembershipChange, "MEMBERSHIP_CHANGE");
}

}  // namespace ugrpc::core
