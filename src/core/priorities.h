// Canonical handler priorities for the gRPC micro-protocols.
//
// The framework runs handlers of one event in ascending priority order
// (paper: "executed in priority order"; omitted priority runs last).  The
// paper's example priorities contain collisions and two ordering hazards, so
// we renumber on a single scale while preserving every ordering the paper's
// correctness depends on.  Deviations (documented in DESIGN.md):
//
//  1. Collation runs BEFORE Acceptance on a Reply (paper: after).  With the
//     paper's order the accepting V() can wake the client before the final
//     reply is folded in; folding first removes the race.  Collation
//     therefore performs the duplicate-reply check itself (only replies not
//     yet counted `done` are folded), since Acceptance's duplicate
//     cancellation now happens after it.
//
//  2. Serial Execution does not P(serial) at message arrival (paper's
//     placement): with FIFO/Total ordering a call whose execution is being
//     held back would acquire the token at arrival and deadlock the call
//     that must execute first.  The gate instead lives in an
//     execution-guard hook that RPC Main awaits immediately before invoking
//     the procedure (see serial_execution.h).  Correspondingly, on
//     REPLY_FROM_SERVER the serial V() must precede the ordering protocols'
//     handlers, because those forward (and execute) the next held call.
#pragma once

namespace ugrpc::core {

// ---- MSG_FROM_NETWORK ----
inline constexpr int kPrioNetAssignOrder = 10;  ///< Total Order: leader assigns order
inline constexpr int kPrioNetReliable = 20;     ///< Reliable Comm: mark acked
/// Orphan handling runs BEFORE Unique Execution: Interference Avoidance
/// defers a new-incarnation call by cancelling the event and relying on the
/// client's retransmissions -- if Unique Execution saw the call first it
/// would record it in OldCalls and then suppress every retransmission as a
/// duplicate, so the deferred call could never be admitted.  (The paper
/// gives both handlers priority 2 and leaves the order to chance.)
inline constexpr int kPrioNetOrphan = 25;       ///< Interference Avoidance / Terminate Orphan
inline constexpr int kPrioNetUnique = 30;       ///< Unique Execution: dup suppression / ACK
inline constexpr int kPrioNetCollation = 45;    ///< Collation: fold reply (see note 1)
inline constexpr int kPrioNetMain = 50;         ///< RPC Main: record + forward_up
inline constexpr int kPrioNetAcceptance = 50;   ///< Acceptance: count replies (client side)
inline constexpr int kPrioNetOrderDeliver = 60; ///< FIFO/Total: ordering bookkeeping + deliver

// ---- CALL_FROM_USER ----
inline constexpr int kPrioUserMain = 10;        ///< RPC Main: create record, send
// Synchronous/Asynchronous Call register with the default (lowest) priority,
// exactly as in the paper: they block after RPC Main has sent the call.

// ---- NEW_RPC_CALL ----
inline constexpr int kPrioNewReliable = 10;     ///< reset acked flags
inline constexpr int kPrioNewAcceptance = 20;   ///< compute nres / done flags
inline constexpr int kPrioNewCollation = 30;    ///< initialize accumulator
inline constexpr int kPrioNewBounded = 40;      ///< arm the per-call deadline

// ---- REPLY_FROM_SERVER ----
// The ordering protocols' reply work is split in two: their *bookkeeping*
// (advancing next_entry / the per-client stream position) must precede the
// Atomic Execution checkpoint, or a recovered member would resume expecting
// to re-execute the call it just completed; their *forwarding* of the next
// held call must follow both the checkpoint (the next call mutates state)
// and the serial-token release (the next call needs the token).
inline constexpr int kPrioReplyUnique = 10;      ///< store result for dup answers
inline constexpr int kPrioReplyOrphan = 20;      ///< orphan bookkeeping
inline constexpr int kPrioReplyOrderMark = 25;   ///< FIFO/Total: advance position
inline constexpr int kPrioReplyAtomic = 30;      ///< checkpoint (post-position, pre-next-call)
inline constexpr int kPrioReplySerial = 40;      ///< release serial token (see note 2)
inline constexpr int kPrioReplyOrder = 50;       ///< FIFO/Total: chain to the next held call

}  // namespace ugrpc::core
