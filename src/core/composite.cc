#include "core/composite.h"

#include "common/assert.h"
#include "core/micro/acceptance.h"
#include "core/micro/atomic_execution.h"
#include "core/micro/bounded_termination.h"
#include "core/micro/call_semantics.h"
#include "core/micro/collation.h"
#include "core/micro/fifo_order.h"
#include "core/micro/interference_avoidance.h"
#include "core/micro/reliable_communication.h"
#include "core/micro/rpc_main.h"
#include "core/micro/serial_execution.h"
#include "core/micro/terminate_orphan.h"
#include "core/micro/total_order.h"
#include "core/micro/unique_execution.h"

namespace ugrpc::core {

namespace {

DomainId domain_of(ProcessId p) { return DomainId{p.value()}; }

}  // namespace

GrpcComposite::GrpcComposite(net::Transport& transport, net::Endpoint& endpoint, ProcessId my_id,
                             storage::StableStore& stable, UserProtocol& user,
                             const Config& config, std::set<ProcessId> known,
                             obs::SiteTrace* trace)
    : runtime::CompositeProtocol(transport, domain_of(my_id)), config_(config),
      state_(transport, endpoint, my_id), endpoint_(endpoint), stable_(stable) {
  UGRPC_ASSERT((config_.unsafe_skip_validation || is_valid(config_)) &&
               "configuration violates the dependency graph");
  state_.user = &user;
  state_.members = std::move(known);
  state_.trace = trace;
  framework().set_site_trace(trace);
  define_grpc_events(framework());
  assemble();
  start();
  // The baseline checkpoint must see the full checkpoint-participant list,
  // which ordering protocols only join in their start() -- after Atomic
  // Execution's (assembly order).
  if (atomic_ != nullptr) atomic_->ensure_baseline();
  // UPI "demux from below": decode and run the MSG_FROM_NETWORK chain.  The
  // network spawns one fiber per delivered packet in this site's domain.
  endpoint_.set_handler(kGrpcProto, [this](net::Packet pkt) -> sim::Task<> {
    net::NetMessage msg = net::NetMessage::decode(pkt.payload);
    co_await framework().trigger(kMsgFromNetwork, runtime::EventArg::ref(msg));
  });
}

void GrpcComposite::assemble() {
  // Assembly order matters in two places: (a) orphan handling must register
  // its execution guard before Serial Execution's (so fibers blocked on the
  // serial token are already tracked), and (b) handler priorities -- not
  // registration order -- encode the paper's per-event sequencing, so the
  // rest is free.
  emplace<RpcMain>(state_);
  switch (config_.call) {
    case CallSemantics::kSynchronous: emplace<SynchronousCall>(state_); break;
    case CallSemantics::kAsynchronous: emplace<AsynchronousCall>(state_); break;
  }
  if (config_.reliable_communication) {
    reliable_ = &emplace<ReliableCommunication>(state_, config_.retrans_timeout);
  }
  if (config_.termination_bound.has_value()) {
    bounded_ = &emplace<BoundedTermination>(state_, *config_.termination_bound);
  }
  CollationFn fold = config_.collation ? config_.collation : last_reply_collation();
  emplace<Collation>(state_, std::move(fold), config_.collation_init);
  if (config_.unique_execution) {
    unique_ = &emplace<UniqueExecution>(state_);
  }
  switch (config_.orphan) {
    case OrphanHandling::kIgnore: break;
    case OrphanHandling::kInterferenceAvoidance:
      interference_ = &emplace<InterferenceAvoidance>(state_);
      break;
    case OrphanHandling::kTerminateOrphans:
      terminator_ = &emplace<TerminateOrphan>(state_);
      break;
  }
  if (config_.execution != ExecutionMode::kPlain) {
    emplace<SerialExecution>(state_);
  }
  if (config_.execution == ExecutionMode::kSerialAtomic) {
    atomic_ = &emplace<AtomicExecution>(state_, stable_);
  }
  emplace<Acceptance>(state_, config_.acceptance_limit);
  switch (config_.ordering) {
    case Ordering::kNone: break;
    case Ordering::kFifo: fifo_ = &emplace<FifoOrder>(state_); break;
    case Ordering::kTotal: {
      TotalOrderOptions options;
      options.agreement = config_.total_order_agreement;
      options.agreement_timeout = config_.total_order_agreement_timeout;
      total_ = &emplace<TotalOrder>(state_, config_.group, options);
      break;
    }
  }
}

sim::Task<> GrpcComposite::submit(UserMessage& umsg) {
  co_await framework().trigger(kCallFromUser, runtime::EventArg::ref(umsg));
}

sim::Task<> GrpcComposite::signal_recovery(Incarnation inc) {
  RecoveryEvent ev{inc};
  co_await framework().trigger(kRecovery, runtime::EventArg::ref(ev));
}

sim::Task<> GrpcComposite::notify_membership(ProcessId who, membership::Change change) {
  if (change == membership::Change::kFailure) {
    state_.members.erase(who);
  } else {
    state_.members.insert(who);
  }
  MembershipEvent ev{who, change};
  co_await framework().trigger(kMembershipChange, runtime::EventArg::ref(ev));
}

}  // namespace ugrpc::core
