#include "core/p2p_rpc.h"

namespace ugrpc::core {

P2pRpc::P2pRpc(net::Transport& transport, net::Endpoint& endpoint, ProcessId my_id,
               UserProtocol& user, Options options)
    : transport_(transport), endpoint_(endpoint), my_id_(my_id), user_(user), options_(options) {
  endpoint_.set_handler(kP2pProto, [this](net::Packet pkt) { return on_packet(std::move(pkt)); });
}

P2pRpc::~P2pRpc() {
  transport_.cancel_timer(retrans_timer_);
  endpoint_.clear_handler(kP2pProto);
}

sim::Task<CallResult> P2pRpc::call(ProcessId server, OpId op, Buffer args) {
  const CallId id = make_call_id(my_id_, next_seq_++);
  auto rec = std::make_shared<Pending>(transport_.executor());
  rec->server = server;
  rec->op = op;
  rec->request = args;
  pending_[id] = rec;

  net::NetMessage msg;
  msg.type = net::MsgType::kCall;
  msg.id = id;
  msg.op = op;
  msg.args = std::move(args);
  msg.sender = my_id_;
  send(server, msg);
  if (options_.reliable) arm_retransmit_timer();

  TimerId deadline{};
  if (options_.termination_bound.has_value()) {
    deadline = transport_.schedule_after(
        *options_.termination_bound,
        [rec] {
          if (rec->status == Status::kWaiting) {
            rec->status = Status::kTimeout;
            rec->sem.release();
          }
        },
        DomainId{my_id_.value()});
  }

  co_await rec->sem.acquire();
  transport_.cancel_timer(deadline);
  pending_.erase(id);
  co_return CallResult{rec->status, std::move(rec->result), id};
}

sim::Task<> P2pRpc::on_packet(net::Packet pkt) {
  net::NetMessage msg = net::NetMessage::decode(pkt.payload);
  switch (msg.type) {
    case net::MsgType::kCall:
      co_await serve_call(std::move(msg));
      break;
    case net::MsgType::kReply: {
      // Acknowledge so the server can free the stored result, then wake the
      // caller.
      if (options_.unique_execution) {
        net::NetMessage ack;
        ack.type = net::MsgType::kAck;
        ack.sender = my_id_;
        ack.ackid = msg.id.value();
        send(msg.sender, ack);
      }
      auto it = pending_.find(msg.id);
      if (it != pending_.end() && it->second->status == Status::kWaiting) {
        it->second->result = std::move(msg.args);
        it->second->status = Status::kOk;
        it->second->acked = true;
        it->second->sem.release();
      }
      break;
    }
    case net::MsgType::kAck:
      stored_results_.erase(CallId{msg.ackid});
      break;
    default:
      break;  // no ordering messages in the point-to-point protocol
  }
}

sim::Task<> P2pRpc::serve_call(net::NetMessage msg) {
  if (options_.unique_execution) {
    if (auto it = stored_results_.find(msg.id); it != stored_results_.end()) {
      net::NetMessage reply;
      reply.type = net::MsgType::kReply;
      reply.id = msg.id;
      reply.op = msg.op;
      reply.args = it->second;
      reply.sender = my_id_;
      send(msg.sender, reply);
      co_return;
    }
    if (!seen_calls_.insert(msg.id).second) co_return;  // in progress: drop
  }
  co_await user_.pop(msg.op, msg.args);
  if (options_.unique_execution) stored_results_[msg.id] = msg.args;
  net::NetMessage reply;
  reply.type = net::MsgType::kReply;
  reply.id = msg.id;
  reply.op = msg.op;
  reply.args = std::move(msg.args);
  reply.sender = my_id_;
  send(msg.sender, reply);
}

void P2pRpc::arm_retransmit_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  retrans_timer_ = transport_.schedule_after(
      options_.retrans_timeout,
      [this] {
        timer_armed_ = false;
        for (const auto& [id, rec] : pending_) {
          if (rec->acked || rec->status != Status::kWaiting) continue;
          net::NetMessage msg;
          msg.type = net::MsgType::kCall;
          msg.id = id;
          msg.op = rec->op;
          msg.args = rec->request;
          msg.sender = my_id_;
          send(rec->server, msg);
          ++retransmissions_;
        }
        if (!pending_.empty()) arm_retransmit_timer();
      },
      DomainId{my_id_.value()});
}

}  // namespace ugrpc::core
