// Shared data of the gRPC composite protocol (paper section 4.2).
//
// The framework "supports shared data (e.g., messages) that can be accessed
// by the micro-protocols configured into the framework".  GrpcState is that
// shared data: the client-side pending-call table (pRPC), the server-side
// table (sRPC), the HOLD readiness array, the live-member set, the serial
// semaphore, and handles to the neighbouring protocols (the network below,
// the user protocol above).
//
// Call-id scheme: the paper indexes both tables by a bare integer call id
// assigned per client.  With multiple clients those ids would collide at the
// servers, so we make ids globally unique by packing the client's process id
// into the high bits and a per-client sequence number into the low bits.
// Low bits increment by one per call, preserving the consecutive-id
// assumption FIFO Order relies on (next expected id = id + 1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/buffer.h"
#include "common/ids.h"
#include "common/status.h"
#include "net/message.h"
#include "net/transport.h"
#include "obs/live/site_stats.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/sync.h"

namespace ugrpc::core {

/// Demux key of the gRPC composite on the network fabric.
inline constexpr ProtocolId kGrpcProto{1};

// ---- globally unique call ids ----

inline constexpr int kCallSeqBits = 40;
/// Within the 40-bit sequence space, the high bits carry the client's
/// incarnation so a recovered client never reuses the ids of its orphaned
/// calls.  (The paper's per-client `next_id` is volatile and restarts at the
/// same value after a crash; with Unique Execution configured the reused id
/// would make the server treat the recovered client's new call as a
/// duplicate of the orphan and answer it with the orphan's result.  See
/// DESIGN.md.)  Ids stay consecutive within one incarnation, which FIFO
/// Order relies on.
inline constexpr int kIncarnationShift = 28;

[[nodiscard]] constexpr std::uint64_t first_seq_of_incarnation(Incarnation inc) {
  return (static_cast<std::uint64_t>(inc) << kIncarnationShift) + 1;
}

[[nodiscard]] constexpr CallId make_call_id(ProcessId client, std::uint64_t seq) {
  return CallId{(static_cast<std::uint64_t>(client.value()) << kCallSeqBits) | seq};
}
[[nodiscard]] constexpr std::uint64_t call_seq(CallId id) {
  return id.value() & ((std::uint64_t{1} << kCallSeqBits) - 1);
}
[[nodiscard]] constexpr ProcessId call_client(CallId id) {
  return ProcessId{static_cast<std::uint32_t>(id.value() >> kCallSeqBits)};
}
/// The next call id issued by the same client (consecutive low bits).
[[nodiscard]] constexpr CallId next_call_id(CallId id) { return CallId{id.value() + 1}; }

// ---- HOLD array ----

/// Indices into the HOLD/hold readiness arrays.  HOLD[i] is set by a
/// micro-protocol that wants to gate execution; a call executes only when
/// its per-call hold array matches HOLD (paper section 4.2).
enum HoldIndex : std::size_t {
  kHoldMain = 0,
  kHoldFifo = 1,
  kHoldTotal = 2,
  kHoldCount = 3,
};

using HoldArray = std::array<bool, kHoldCount>;

// ---- client-side table (pRPC) ----

/// Per-server response bookkeeping (`waiting_list` in the paper).
struct PendingServer {
  bool acked = false;  ///< Reliable Communication: call receipt acknowledged
  bool done = false;   ///< Acceptance: response received (or server failed)
};

struct ClientRecord {
  ClientRecord(sim::Scheduler& sched, CallId id_, OpId op_, Buffer args_, GroupId server_)
      : id(id_), op(op_), args(args_), request_args(std::move(args_)), server(server_),
        sem(sched, 0) {}

  CallId id;
  OpId op;
  Buffer args;          ///< result accumulator (Collation overwrites this)
  /// Immutable copy of the marshalled request.  The paper stores only one
  /// `args` field, which Collation overwrites at NEW_RPC_CALL -- Reliable
  /// Communication would then retransmit the accumulator instead of the
  /// request.  Keeping the request separately fixes that (see DESIGN.md).
  Buffer request_args;
  GroupId server;
  sim::Semaphore sem;  ///< client thread blocks here until the call completes
  int nres = 0;        ///< responses still required (Acceptance)
  std::map<ProcessId, PendingServer> pending;  ///< servers yet to respond
  Status status = Status::kWaiting;
  /// Root span of this call's trace (obs layer), opened at issue and closed
  /// at completion; 0 when tracing is off.  Retransmission timers re-enter
  /// the context {id, span} so late sends stay on the original trace.
  std::uint64_t span = 0;
  /// Transport time the call was issued; the live-telemetry introspection
  /// reports pending ages from it and the stall watchdog compares it against
  /// the termination bound.
  sim::Time issued_at = 0;
};

// ---- server-side table (sRPC) ----

struct ServerRecord {
  CallId id;
  OpId op;
  Buffer args;      ///< request args; overwritten with results by the procedure
  GroupId server;
  ProcessId client;
  Incarnation client_inc = 0;
  HoldArray hold{};  ///< which gating properties have been satisfied
  /// Transport time the Call message arrived; entries pending far past the
  /// termination bound are flagged as orphaned by the stall watchdog.
  sim::Time arrived_at = 0;
};

// ---- checkpoint participation (Atomic Execution) ----

/// Micro-protocols with volatile state that must survive a crash for the
/// configured semantics to hold across recovery (e.g. Unique Execution's
/// duplicate tables) register themselves here; Atomic Execution includes
/// them in every checkpoint.
class CheckpointParticipant {
 public:
  virtual ~CheckpointParticipant() = default;
  virtual void encode_state(Writer& w) const = 0;
  virtual void decode_state(Reader& r) = 0;
};

class UserProtocol;  // defined in user_protocol.h

/// The shared data structure hosted by the gRPC framework.
struct GrpcState {
  GrpcState(net::Transport& transport_, net::Endpoint& endpoint_, ProcessId my_id_)
      : transport(transport_), sched(transport_.executor()), endpoint(endpoint_), my_id(my_id_),
        pRPC_mutex(sched), sRPC_mutex(sched), serial(sched, 1) {}

  net::Transport& transport;
  /// The transport's cooperative executor, for synchronization primitives
  /// and fiber control.  Traffic and timers go through `transport`.
  sim::Scheduler& sched;
  net::Endpoint& endpoint;
  ProcessId my_id;
  Incarnation inc_number = 1;   ///< this site's current incarnation
  std::uint64_t next_seq = 1;   ///< per-client call sequence counter

  // Client side.
  std::map<CallId, std::shared_ptr<ClientRecord>> pRPC;
  sim::Mutex pRPC_mutex;

  // Server side.
  std::map<CallId, std::shared_ptr<ServerRecord>> sRPC;
  sim::Mutex sRPC_mutex;
  HoldArray HOLD{};

  /// Live members, maintained by the composite from MEMBERSHIP_CHANGE
  /// events; without a membership service it stays as initialized (the
  /// paper: "the set Members will remain constant").
  std::set<ProcessId> members;

  /// Serial Execution's semaphore, plus the fiber currently holding it (used
  /// by Terminate Orphan to release the token of a killed thread).
  sim::Semaphore serial;
  std::optional<FiberId> serial_holder;

  /// Hooks awaited by RPC Main immediately before executing a call (after
  /// all HOLD gates are satisfied).  See serial_execution.h for why the
  /// serial gate lives here rather than at message arrival.
  std::vector<std::function<sim::Task<>(CallId)>> before_execute;

  /// Checkpoint participants (see above).
  std::vector<CheckpointParticipant*> checkpoint_participants;

  /// RPC Main's exported forward_up procedure (set in RpcMain::start); the
  /// ordering micro-protocols call it to release held calls.
  std::function<sim::Task<>(CallId, HoldIndex)> forward_up;

  /// The user protocol above gRPC (server procedure entry point).
  UserProtocol* user = nullptr;

  /// This site's trace ring (obs layer); nullptr = tracing off.  All
  /// micro-protocols record through note() so every record site stays a
  /// single pointer check.
  obs::SiteTrace* trace = nullptr;

  /// Long-lived operational counters of the live telemetry plane
  /// (obs/live/site_stats.h); nullptr = telemetry off.  Unlike `trace`, this
  /// outlives the stack: crash/recover rebuilds GrpcState but the SiteStats
  /// keeps accumulating.  Same cost model as note(): every record site is a
  /// single pointer check when disabled.
  obs::live::SiteStats* live = nullptr;

  void note(obs::Kind kind, std::uint64_t call = 0, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (trace) trace->record(transport.now(), kind, call, a, b);
  }

  // ---- span helpers (all single-null-check when tracing is off) ----

  [[nodiscard]] std::uint64_t span_open(obs::SpanKind kind, const obs::SpanCtx& ctx,
                                        std::uint64_t a = 0) {
    return trace ? trace->span_open(transport.now(), kind, 0, ctx, a) : 0;
  }
  void span_close(std::uint64_t id) {
    if (trace) trace->span_close(id, transport.now());
  }
  /// The running fiber's current trace context ({0,0} when tracing is off).
  [[nodiscard]] obs::SpanCtx ambient() const {
    return trace ? trace->current(sched.current_fiber().value()) : obs::SpanCtx{};
  }
  void set_ambient(const obs::SpanCtx& ctx) {
    if (trace) trace->set_current(sched.current_fiber().value(), ctx);
  }

  /// Reply acknowledgements queued per destination instead of sent
  /// immediately: Unique Execution's coalesced flush timer drains each
  /// destination's queue into one batched kAck message, and Reliable
  /// Communication piggybacks queued ids onto retransmitted Calls (the
  /// kCall's ackid field is otherwise unused).  Acks are garbage-collection
  /// signals only, so deferring them never affects call semantics.
  std::map<ProcessId, std::vector<std::uint64_t>> pending_acks;

  /// Removes and returns one queued ack for `dest` to piggyback onto an
  /// outgoing Call; 0 when none is pending (call ids are never 0).
  [[nodiscard]] std::uint64_t take_piggyback_ack(ProcessId dest) {
    auto it = pending_acks.find(dest);
    if (it == pending_acks.end() || it->second.empty()) return 0;
    const std::uint64_t id = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) pending_acks.erase(it);
    return id;
  }

  // ---- helpers ----

  [[nodiscard]] std::shared_ptr<ClientRecord> find_client(CallId id) const {
    auto it = pRPC.find(id);
    return it != pRPC.end() ? it->second : nullptr;
  }
  [[nodiscard]] std::shared_ptr<ServerRecord> find_server(CallId id) const {
    auto it = sRPC.find(id);
    return it != sRPC.end() ? it->second : nullptr;
  }

  /// Sends a gRPC message point-to-point (Net.push in the paper).
  void net_push(ProcessId dest, const net::NetMessage& msg) {
    endpoint.send(dest, kGrpcProto, msg.encode());
  }
  /// Multicast to a server group (Net.push with a group destination).
  void net_multicast(GroupId group, const net::NetMessage& msg) {
    endpoint.multicast(group, kGrpcProto, msg.encode());
  }
};

}  // namespace ugrpc::core
