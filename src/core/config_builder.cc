#include "core/config_builder.h"

namespace ugrpc::core {

std::string ConfigError::format_what(const std::vector<ValidationError>& errors) {
  std::string what = "invalid configuration:";
  for (const ValidationError& e : errors) {
    what += "\n  [";
    what += e.rule;
    what += "] ";
    what += e.message;
  }
  return what;
}

ConfigBuilder ConfigBuilder::at_least_once() {
  return ConfigBuilder().reliable_communication();
}

ConfigBuilder ConfigBuilder::exactly_once() {
  return at_least_once().unique_execution();
}

ConfigBuilder ConfigBuilder::at_most_once() {
  // Uniqueness alone does not survive a crash: Atomic Execution checkpoints
  // the duplicate tables (and implies Serial Execution; see Figure 4).
  return exactly_once().execution(ExecutionMode::kSerialAtomic);
}

ConfigBuilder ConfigBuilder::read_optimized() {
  return ConfigBuilder()
      .synchronous()
      .acceptance_limit(1)
      .reliable_communication(sim::msec(25))
      .termination_bound(sim::seconds(1));
}

Config ConfigBuilder::build() const {
  std::vector<ValidationError> errors = validate(config_);
  if (!errors.empty()) throw ConfigError(std::move(errors));
  return config_;
}

}  // namespace ugrpc::core
