// Event ids and event argument types of the gRPC composite protocol
// (paper section 4.3).
#pragma once

#include <string_view>

#include "common/buffer.h"
#include "common/ids.h"
#include "common/status.h"
#include "membership/membership.h"
#include "runtime/event.h"
#include "runtime/framework.h"

namespace ugrpc::core {

// Event identifiers.  All events are blocking and sequential (paper 4.3).
inline constexpr runtime::EventId kCallFromUser{1};     ///< new call from the user protocol (client)
inline constexpr runtime::EventId kNewRpcCall{2};       ///< call about to leave gRPC for the network
inline constexpr runtime::EventId kReplyFromServer{3};  ///< server procedure finished (server)
inline constexpr runtime::EventId kMsgFromNetwork{4};   ///< message arrived from the network
inline constexpr runtime::EventId kRecovery{5};         ///< this site is recovering from a crash
inline constexpr runtime::EventId kMembershipChange{6}; ///< a watched process failed or recovered

/// Registers the human-readable names with a framework (introspection).
void define_grpc_events(runtime::Framework& fw);

/// Message exchanged between the user protocol and gRPC
/// (paper section 4.2, `User_Msgtype`).
enum class UserOp : unsigned char {
  kCall,     ///< issue a new RPC
  kRequest,  ///< fetch the result of an earlier asynchronous RPC
};

struct UserMessage {
  UserOp type = UserOp::kCall;
  CallId id;        ///< assigned by RPC Main on kCall; supplied by user on kRequest
  OpId op;
  Buffer args;      ///< in: marshalled arguments; out: collated results
  GroupId server;
  Status status = Status::kWaiting;
};

/// Argument of kNewRpcCall and kReplyFromServer: the call id.
struct CallEvent {
  CallId id;
};

/// Argument of kRecovery.
struct RecoveryEvent {
  Incarnation inc;
};

/// Argument of kMembershipChange.
struct MembershipEvent {
  ProcessId who;
  membership::Change change;
};

}  // namespace ugrpc::core
