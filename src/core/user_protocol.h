// The user protocol sitting above gRPC.
//
// On the server side it owns the actual remote procedure: gRPC delivers a
// call by invoking pop(op, args) -- the x-kernel upcall -- which runs the
// registered procedure.  The procedure mutates `args` in place: on entry
// they are the marshalled request, on return the marshalled result (the
// paper treats arguments as "one continuous untyped field").  The call is
// blocking: gRPC awaits its completion before sending the Reply.
//
// For Atomic Execution the application may register snapshot/restore hooks
// covering whatever server state must be rolled back on recovery (both
// volatile and stable state, per paper section 4.4.5).
#pragma once

#include <functional>
#include <utility>

#include "common/buffer.h"
#include "common/ids.h"
#include "sim/task.h"

namespace ugrpc::core {

class UserProtocol {
 public:
  using Procedure = std::function<sim::Task<>(OpId op, Buffer& args)>;
  using Snapshot = std::function<Buffer()>;
  using Restore = std::function<void(const Buffer&)>;

  /// Installs the server procedure (dispatch over OpId is the application's
  /// concern; src/stub provides typed helpers).
  void set_procedure(Procedure procedure) { procedure_ = std::move(procedure); }

  /// Installs state capture hooks used by Atomic Execution's checkpoints.
  void set_state_hooks(Snapshot snapshot, Restore restore) {
    snapshot_ = std::move(snapshot);
    restore_ = std::move(restore);
  }

  /// Upcall from gRPC (Server.pop in the paper).  Blocking.
  [[nodiscard]] sim::Task<> pop(OpId op, Buffer& args) {
    ++executions_;
    if (procedure_) co_await procedure_(op, args);
  }

  [[nodiscard]] bool has_state_hooks() const {
    return snapshot_ != nullptr && restore_ != nullptr;
  }
  [[nodiscard]] Buffer snapshot_state() const { return snapshot_ ? snapshot_() : Buffer{}; }
  void restore_state(const Buffer& state) const {
    if (restore_) restore_(state);
  }

  /// Number of procedure invocations at this site since boot -- the
  /// observable that the failure-semantics experiments (Figure 1) measure.
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

 private:
  Procedure procedure_;
  Snapshot snapshot_;
  Restore restore_;
  std::uint64_t executions_ = 0;
};

}  // namespace ugrpc::core
