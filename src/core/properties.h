// Machine-readable form of paper Figure 2: the semantic properties of group
// RPC and the logical dependencies between them ("a property P1 depends on
// P2 if P2 must hold in order for P1 to hold").
//
// This is deliberately separate from the micro-protocol dependency graph in
// config.cc (paper Figure 4): Figure 2 relates *properties* (including the
// negative variants realized by leaving a micro-protocol out), while Figure
// 4 adds implementation-induced edges and drops the negative variants.  The
// fig2_property_graph bench prints both and their differences.
#pragma once

#include <span>
#include <string_view>

namespace ugrpc::core {

enum class Property : unsigned char {
  kRpc,                     // the base abstraction
  kNoOrder,
  kFifoOrder,
  kTotalOrder,
  kIgnoreOrphans,
  kTerminateOrphans,
  kAvoidOrphanInterference,
  kSynchronousCall,
  kAsynchronousCall,
  kReliableCommunication,
  kUnreliableCommunication,
  kBoundedTermination,
  kUnboundedTermination,
  kAcceptance,
  kMembership,
  kCollation,
  kUniqueExecution,
  kNonUniqueExecution,
  kAtomicExecution,
  kNonAtomicExecution,
};

[[nodiscard]] std::string_view to_string(Property p);

/// One edge of Figure 2: `from` depends on `to`.
struct PropertyEdge {
  Property from;
  Property to;
  std::string_view reason;
};

/// All dependency edges of Figure 2.
[[nodiscard]] std::span<const PropertyEdge> property_edges();

/// The choice groups of Figure 2 (bold boxes: pick exactly/at most one).
struct PropertyChoice {
  std::string_view category;
  std::span<const Property> alternatives;
};
[[nodiscard]] std::span<const PropertyChoice> property_choices();

}  // namespace ugrpc::core
