// Bridges core::Config to the observability checker (obs layer knows
// nothing about core).  expectations_from() answers "which invariants does
// this micro-protocol selection promise?" so benches and fault campaigns
// can validate a trace without hand-picking checks.
#pragma once

#include "core/config.h"
#include "obs/checker.h"

namespace ugrpc::core {

/// Derives the checker expectations a configuration commits to:
///   * unique_execution       -> unique-execution invariant;
///   * kSerialAtomic          -> atomic-execution invariant;
///   * termination_bound set  -> bounded-termination with that bound;
///   * ordering kFifo/kTotal  -> the matching order invariant;
///   * kTerminateOrphans      -> orphan-termination invariant.
[[nodiscard]] obs::Expect expectations_from(const Config& config);

}  // namespace ugrpc::core
