#include "core/workload.h"

namespace ugrpc::core {

namespace {

sim::Task<> client_loop(Scenario& scenario, Client& client, int who,
                        const WorkloadParams& params, WorkloadReport& report, int& live_clients) {
  sim::Scheduler& sched = scenario.scheduler();
  for (int i = 0; i < params.calls_per_client; ++i) {
    Buffer args;
    if (params.make_args) args = params.make_args(who, i);
    const sim::Time t0 = sched.now();
    const CallResult result = co_await client.call(scenario.group(), params.op, std::move(args));
    if (result.ok()) {
      report.latency.record(sched.now() - t0);
      ++report.calls_ok;
    } else {
      ++report.calls_failed;
    }
    if (params.think_time > 0) co_await sched.sleep_for(params.think_time);
  }
  --live_clients;
}

}  // namespace

WorkloadReport run_closed_loop(Scenario& scenario, const WorkloadParams& params) {
  WorkloadReport report;
  sim::Scheduler& sched = scenario.scheduler();
  const sim::Time start = sched.now();
  int live_clients = scenario.num_clients();
  std::vector<FiberId> fibers;
  fibers.reserve(static_cast<std::size_t>(scenario.num_clients()));
  for (int i = 0; i < scenario.num_clients(); ++i) {
    fibers.push_back(
        sched.spawn(client_loop(scenario, scenario.client(i), i, params, report, live_clients),
                    scenario.client_site(i).domain()));
  }
  const sim::Time stop_at = start + params.deadline;
  while (live_clients > 0 && sched.now() < stop_at && sched.step()) {
  }
  // The report and counters live on this stack frame: fibers that are still
  // parked when the deadline expires must not outlive it.
  for (FiberId f : fibers) sched.kill(f);
  report.elapsed = sched.now() - start;
  return report;
}

}  // namespace ugrpc::core
