#include "core/scenario.h"

namespace ugrpc::core {

void echo_app(UserProtocol& user, Site&) {
  user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });
}

Scenario::Scenario(ScenarioParams params) : params_(std::move(params)), sched_(params_.seed) {
  net_ = std::make_unique<net::Network>(sched_);
  net_->set_default_faults(params_.faults);
  net_->set_tracer(params_.tracer);
  transport_ = std::make_unique<net::SimTransport>(*net_);

  // client_id() depends on servers_.size(); during construction compute the
  // ids from the params instead.
  const auto planned_client_id = [this](int i) {
    return ProcessId{static_cast<std::uint32_t>(params_.num_servers + i + 1)};
  };
  std::vector<ProcessId> group_members;
  std::set<ProcessId> known;
  for (int i = 0; i < params_.num_servers; ++i) {
    group_members.push_back(server_id(i));
    known.insert(server_id(i));
  }
  std::vector<ProcessId> all_procs = group_members;
  for (int i = 0; i < params_.num_clients; ++i) {
    known.insert(planned_client_id(i));
    all_procs.push_back(planned_client_id(i));
  }
  net_->define_group(kGroup, group_members);

  const Site::AppSetup app = params_.server_app ? params_.server_app : echo_app;
  for (int i = 0; i < params_.num_servers; ++i) {
    auto site = std::make_unique<Site>(*transport_, server_id(i), params_.config, known,
                                       all_procs);
    site->set_app(app);
    site->set_tracer(params_.tracer);
    site->boot();
    servers_.push_back(std::move(site));
  }
  for (int i = 0; i < params_.num_clients; ++i) {
    auto site = std::make_unique<Site>(*transport_, client_id(i), params_.config, known,
                                       all_procs);
    site->set_tracer(params_.tracer);
    site->boot();
    clients_.push_back(std::move(site));
    client_handles_.push_back(std::make_unique<Client>(*clients_.back()));
  }
}

void Scenario::run_client(int i, std::function<sim::Task<>(Client&)> fn, sim::Duration deadline) {
  Client& c = client(i);
  auto wrapper = [](std::function<sim::Task<>(Client&)> f, Client& cl) -> sim::Task<> {
    co_await f(cl);
  };
  const FiberId fiber = sched_.spawn(wrapper(std::move(fn), c), client_site(i).domain());
  const sim::Time stop_at = sched_.now() + deadline;
  while (sched_.fiber_alive(fiber) && sched_.now() < stop_at && sched_.step()) {
  }
}

std::uint64_t Scenario::total_server_executions() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->total_executions();
  return total;
}

}  // namespace ugrpc::core
