// A site: one machine running the gRPC protocol stack.
//
// Owns the durable identity of a process (ProcessId, incarnation counter,
// stable store) and its *volatile* stack (user protocol, gRPC composite,
// membership monitor), which is destroyed by crash() and rebuilt -- with a
// fresh incarnation number and a RECOVERY event -- by recover().  The
// application installs its server procedure (and, for Atomic Execution, its
// state snapshot hooks) through an AppSetup callback that runs at boot and
// after every recovery, mirroring how a real server re-initializes from
// stable storage.
//
// A Site programs exclusively against net::Transport: over SimTransport it
// is one simulated machine in a deterministic experiment; over UdpTransport
// it boots on an actual host and serves group calls from other OS processes.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/composite.h"
#include "core/config.h"
#include "core/user_protocol.h"
#include "membership/membership.h"
#include "net/transport.h"
#include "storage/stable_store.h"

namespace ugrpc::core {

class Site {
 public:
  /// Called at boot and after each recovery to (re)configure the
  /// application: register the server procedure, state hooks, and rebuild
  /// volatile application state from the stable store.
  using AppSetup = std::function<void(UserProtocol&, Site&)>;

  /// `known` seeds the composite's live-member set; `watch` (usually the
  /// server group plus clients of interest) is monitored when
  /// config.use_membership is set.
  Site(net::Transport& transport, ProcessId id, Config config, std::set<ProcessId> known,
       std::vector<ProcessId> watch = {});
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  void set_app(AppSetup setup) { app_setup_ = std::move(setup); }

  /// Attaches a trace collector (before boot()): the site records its
  /// crash/recovery lifecycle and hands its per-site ring to every stack it
  /// builds, so traces span incarnations.  nullptr = tracing off.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the live telemetry plane's long-lived counters: every stack
  /// this site builds -- across crash/recover cycles -- bumps them through
  /// GrpcState::live.  Takes effect immediately on a booted site and is
  /// re-wired into every later stack.  nullptr = telemetry off.
  /// core::SiteTelemetry (core/telemetry.h) calls this; applications usually
  /// go through it rather than wiring a bare SiteStats.
  void set_live_stats(obs::live::SiteStats* stats) {
    live_stats_ = stats;
    if (grpc_ != nullptr) grpc_->state().live = stats;
  }

  /// Builds the stack and brings the site up.  Call once, after set_app.
  void boot();

  /// Crash failure: kills every fiber of this site, destroys the volatile
  /// stack, goes dark on the transport.  The stable store survives.
  void crash();

  /// Recovers with the next incarnation number; rebuilds the stack, re-runs
  /// the app setup and triggers the RECOVERY event.
  void recover();

  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] DomainId domain() const { return DomainId{id_.value()}; }
  [[nodiscard]] Incarnation incarnation() const { return inc_; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] GrpcComposite& grpc();
  [[nodiscard]] UserProtocol& user();
  [[nodiscard]] storage::StableStore& stable() { return stable_; }
  [[nodiscard]] membership::MembershipMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] net::Transport& transport() { return transport_; }
  /// The transport's executor; convenience for tests and experiment drivers.
  [[nodiscard]] sim::Scheduler& scheduler() { return transport_.executor(); }

  /// Cumulative server-procedure executions across all incarnations
  /// (UserProtocol::executions() resets with the volatile stack; this does
  /// not -- it is the Figure 1 observable).
  [[nodiscard]] std::uint64_t total_executions() const;

 private:
  void build_stack();
  void teardown_stack();

  net::Transport& transport_;
  ProcessId id_;
  Config config_;
  std::set<ProcessId> known_;
  std::vector<ProcessId> watch_;
  storage::StableStore stable_;
  AppSetup app_setup_;
  obs::Tracer* tracer_ = nullptr;
  obs::live::SiteStats* live_stats_ = nullptr;

  net::Endpoint* endpoint_ = nullptr;
  std::unique_ptr<UserProtocol> user_;
  std::unique_ptr<GrpcComposite> grpc_;
  std::unique_ptr<membership::MembershipMonitor> monitor_;
  Incarnation inc_ = 0;
  bool up_ = false;
  std::uint64_t executions_before_crashes_ = 0;
};

}  // namespace ugrpc::core
