#include "core/config.h"

#include <array>

namespace ugrpc::core {

std::string_view to_string(CallSemantics v) {
  switch (v) {
    case CallSemantics::kSynchronous: return "sync";
    case CallSemantics::kAsynchronous: return "async";
  }
  return "<invalid>";
}

std::string_view to_string(OrphanHandling v) {
  switch (v) {
    case OrphanHandling::kIgnore: return "ignore-orphans";
    case OrphanHandling::kInterferenceAvoidance: return "interference-avoidance";
    case OrphanHandling::kTerminateOrphans: return "terminate-orphans";
  }
  return "<invalid>";
}

std::string_view to_string(ExecutionMode v) {
  switch (v) {
    case ExecutionMode::kPlain: return "plain";
    case ExecutionMode::kSerial: return "serial";
    case ExecutionMode::kSerialAtomic: return "serial+atomic";
  }
  return "<invalid>";
}

std::string_view to_string(Ordering v) {
  switch (v) {
    case Ordering::kNone: return "no-order";
    case Ordering::kFifo: return "fifo";
    case Ordering::kTotal: return "total";
  }
  return "<invalid>";
}

std::string Config::describe() const {
  std::string s;
  s += to_string(call);
  s += '|';
  s += to_string(orphan);
  s += '|';
  s += to_string(execution);
  s += '|';
  s += unique_execution ? "unique" : "non-unique";
  s += '|';
  s += reliable_communication ? "reliable" : "unreliable";
  s += '|';
  s += to_string(ordering);
  s += '|';
  s += termination_bound.has_value() ? "bounded" : "unbounded";
  return s;
}

std::string_view to_string(Rule r) {
  switch (r) {
    case Rule::kUniqueRequiresReliable: return "UniqueExecution->ReliableCommunication";
    case Rule::kFifoRequiresReliable: return "FifoOrder->ReliableCommunication";
    case Rule::kTotalRequiresReliable: return "TotalOrder->ReliableCommunication";
    case Rule::kTotalRequiresUnique: return "TotalOrder->UniqueExecution";
    case Rule::kTotalExcludesBounded: return "TotalOrder-x-BoundedTermination";
    case Rule::kAcceptanceLimitPositive: return "Acceptance.limit";
    case Rule::kRetransTimeoutPositive: return "ReliableCommunication.timeout";
    case Rule::kTerminationBoundPositive: return "BoundedTermination.bound";
  }
  return "<invalid>";
}

std::vector<ValidationError> validate(const Config& config) {
  std::vector<ValidationError> errors;
  const auto fail = [&errors](Rule code, std::string message) {
    errors.push_back(ValidationError{code, std::string(to_string(code)), std::move(message)});
  };

  // Edges of paper Figure 4 (see DESIGN.md for the derivation of the set).
  if (config.unique_execution && !config.reliable_communication) {
    fail(Rule::kUniqueRequiresReliable,
         "unique execution's acknowledge/retransmit bookkeeping presumes reliable "
         "communication at the RPC layer");
  }
  if (config.ordering == Ordering::kFifo && !config.reliable_communication) {
    fail(Rule::kFifoRequiresReliable,
         "FIFO ordering requires every server to receive the client's messages");
  }
  if (config.ordering == Ordering::kTotal) {
    if (!config.reliable_communication) {
      fail(Rule::kTotalRequiresReliable,
           "total ordering requires every server to receive the same message set");
    }
    if (!config.unique_execution) {
      fail(Rule::kTotalRequiresUnique,
           "the total order implementation assumes any request is received at the "
           "server only once (paper section 5)");
    }
    if (config.termination_bound.has_value()) {
      fail(Rule::kTotalExcludesBounded,
           "total order assumes bounded termination is not present (paper section "
           "4.4.6): a timed-out call would leave a hole in the execution order");
    }
  }
  if (config.acceptance_limit < 1) {
    fail(Rule::kAcceptanceLimitPositive, "the acceptance limit must be at least 1");
  }
  if (config.retrans_timeout <= 0 && config.reliable_communication) {
    fail(Rule::kRetransTimeoutPositive, "the retransmission timeout must be positive");
  }
  if (config.termination_bound.has_value() && *config.termination_bound <= 0) {
    fail(Rule::kTerminationBoundPositive, "the termination bound must be positive");
  }
  return errors;
}

bool is_valid(const Config& config) { return validate(config).empty(); }

std::vector<Config> enumerate_valid_configs() {
  std::vector<Config> out;
  constexpr std::array kCalls{CallSemantics::kSynchronous, CallSemantics::kAsynchronous};
  constexpr std::array kOrphans{OrphanHandling::kIgnore, OrphanHandling::kInterferenceAvoidance,
                                OrphanHandling::kTerminateOrphans};
  constexpr std::array kExecs{ExecutionMode::kPlain, ExecutionMode::kSerial,
                              ExecutionMode::kSerialAtomic};
  constexpr std::array kOrders{Ordering::kNone, Ordering::kFifo, Ordering::kTotal};
  for (CallSemantics call : kCalls) {
    for (OrphanHandling orphan : kOrphans) {
      for (ExecutionMode exec : kExecs) {
        for (bool unique : {false, true}) {
          for (bool reliable : {false, true}) {
            for (bool bounded : {false, true}) {
              for (Ordering ordering : kOrders) {
                Config c;
                c.call = call;
                c.orphan = orphan;
                c.execution = exec;
                c.unique_execution = unique;
                c.reliable_communication = reliable;
                if (bounded) c.termination_bound = sim::seconds(1);
                c.ordering = ordering;
                if (is_valid(c)) out.push_back(std::move(c));
              }
            }
          }
        }
      }
    }
  }
  return out;
}

ConfigSpace config_space() {
  ConfigSpace space;
  space.call_variants = 2;
  space.orphan_variants = 3;
  space.execution_variants = 3;
  space.total = static_cast<int>(enumerate_valid_configs().size());
  space.comm_combinations =
      space.total / (space.call_variants * space.orphan_variants * space.execution_variants);
  return space;
}

}  // namespace ugrpc::core
