// Workload driving and latency statistics for benchmarks and experiments.
//
// LatencyRecorder accumulates virtual-time durations and reports
// mean/percentile summaries; ClosedLoopWorkload drives a Scenario with a
// configurable number of closed-loop client fibers (each issues the next
// call as soon as the previous completes, plus optional think time) and
// reports per-call latency and aggregate throughput.  Used by the bench
// binaries; exported from the library because evaluating a configuration is
// a first-class use case of a *configurable* RPC system.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/scenario.h"
#include "sim/time.h"

namespace ugrpc::core {

class LatencyRecorder {
 public:
  void record(sim::Duration d) { samples_.push_back(d); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean_ms() const {
    if (samples_.empty()) return 0;
    double total = 0;
    for (sim::Duration d : samples_) total += sim::to_msec(d);
    return total / static_cast<double>(samples_.size());
  }

  /// q in [0, 1]; e.g. percentile_ms(0.99).
  [[nodiscard]] double percentile_ms(double q) const {
    if (samples_.empty()) return 0;
    std::vector<sim::Duration> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto last = sorted.size() - 1;
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(last) + 0.5);
    return sim::to_msec(sorted[std::min(idx, last)]);
  }

  [[nodiscard]] double max_ms() const {
    if (samples_.empty()) return 0;
    return sim::to_msec(*std::max_element(samples_.begin(), samples_.end()));
  }

 private:
  std::vector<sim::Duration> samples_;
};

struct WorkloadReport {
  LatencyRecorder latency;
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_failed = 0;
  sim::Duration elapsed = 0;

  [[nodiscard]] double throughput_per_sec() const {
    const double secs = sim::to_seconds(elapsed);
    return secs > 0 ? static_cast<double>(calls_ok) / secs : 0;
  }
};

struct WorkloadParams {
  int calls_per_client = 50;
  sim::Duration think_time = 0;        ///< pause between a reply and the next call
  OpId op{1};
  std::function<Buffer(int client, int call)> make_args;  ///< default: empty
  sim::Duration deadline = sim::seconds(600);  ///< hard stop for the whole run
};

/// Runs the closed-loop workload over every client of `scenario` and
/// returns aggregate statistics.  Synchronous call semantics only.
[[nodiscard]] WorkloadReport run_closed_loop(Scenario& scenario, const WorkloadParams& params);

}  // namespace ugrpc::core
