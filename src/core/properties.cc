#include "core/properties.h"

#include <array>

namespace ugrpc::core {

std::string_view to_string(Property p) {
  switch (p) {
    case Property::kRpc: return "RPC";
    case Property::kNoOrder: return "No Order";
    case Property::kFifoOrder: return "FIFO Order";
    case Property::kTotalOrder: return "Total Order";
    case Property::kIgnoreOrphans: return "Ignore Orphans";
    case Property::kTerminateOrphans: return "Terminate Orphans";
    case Property::kAvoidOrphanInterference: return "Avoid Orphan Interference";
    case Property::kSynchronousCall: return "Synchronous Call";
    case Property::kAsynchronousCall: return "Asynchronous Call";
    case Property::kReliableCommunication: return "Reliable Communication";
    case Property::kUnreliableCommunication: return "Unreliable Communication";
    case Property::kBoundedTermination: return "Bounded Termination";
    case Property::kUnboundedTermination: return "Unbounded Termination";
    case Property::kAcceptance: return "Acceptance";
    case Property::kMembership: return "Membership";
    case Property::kCollation: return "Collation";
    case Property::kUniqueExecution: return "Unique Execution";
    case Property::kNonUniqueExecution: return "Non-Unique Execution";
    case Property::kAtomicExecution: return "Atomic Execution";
    case Property::kNonAtomicExecution: return "Non-Atomic Execution";
  }
  return "<invalid>";
}

namespace {

constexpr std::array kEdges{
    // Ordering requires every server to receive the same set of messages
    // (paper section 2.2: "to implement FIFO or total ordering, every server
    // must receive the same set of messages, i.e., the reliability property
    // must hold").
    PropertyEdge{Property::kFifoOrder, Property::kReliableCommunication,
                 "every server must receive the client's full message stream"},
    PropertyEdge{Property::kTotalOrder, Property::kReliableCommunication,
                 "every server must receive the same set of messages"},
    // Acceptance counts successful executions; it is only meaningful for an
    // RPC with responses, and its "all functioning servers" variant needs
    // failure information.
    PropertyEdge{Property::kAcceptance, Property::kRpc, "counts responses of a group call"},
    PropertyEdge{Property::kMembership, Property::kRpc, "tracks the server group of the RPC"},
    PropertyEdge{Property::kAcceptance, Property::kMembership,
                 "settling for 'all functioning servers' requires failure detection"},
    PropertyEdge{Property::kCollation, Property::kAcceptance,
                 "replies are folded as they are counted toward acceptance"},
    // Atomic execution of at-most-once semantics presumes executions are not
    // duplicated (a rolled-back call must not also have executed elsewhere
    // in the same server's history).
    PropertyEdge{Property::kAtomicExecution, Property::kUniqueExecution,
                 "at-most-once = unique + atomic (paper Figure 1)"},
    // The call-synchrony, orphan and termination properties hang off RPC.
    PropertyEdge{Property::kSynchronousCall, Property::kRpc, "blocks the caller of an RPC"},
    PropertyEdge{Property::kAsynchronousCall, Property::kRpc, "decouples the caller of an RPC"},
    PropertyEdge{Property::kBoundedTermination, Property::kRpc, "bounds the RPC's completion"},
    PropertyEdge{Property::kTerminateOrphans, Property::kRpc, "kills computations of dead callers"},
    PropertyEdge{Property::kAvoidOrphanInterference, Property::kRpc,
                 "orders old-incarnation work before new"},
    PropertyEdge{Property::kUniqueExecution, Property::kReliableCommunication,
                 "duplicate suppression presumes retransmission delivers the call"},
};

constexpr std::array kOrderAlternatives{Property::kNoOrder, Property::kFifoOrder,
                                        Property::kTotalOrder};
constexpr std::array kOrphanAlternatives{Property::kIgnoreOrphans, Property::kTerminateOrphans,
                                         Property::kAvoidOrphanInterference};
constexpr std::array kCallAlternatives{Property::kSynchronousCall, Property::kAsynchronousCall};
constexpr std::array kCommAlternatives{Property::kReliableCommunication,
                                       Property::kUnreliableCommunication};
constexpr std::array kTermAlternatives{Property::kBoundedTermination,
                                       Property::kUnboundedTermination};
constexpr std::array kUniqueAlternatives{Property::kUniqueExecution,
                                         Property::kNonUniqueExecution};
constexpr std::array kAtomicAlternatives{Property::kAtomicExecution,
                                         Property::kNonAtomicExecution};

constexpr std::array kChoices{
    PropertyChoice{"ordering", kOrderAlternatives},
    PropertyChoice{"orphan handling", kOrphanAlternatives},
    PropertyChoice{"call semantics", kCallAlternatives},
    PropertyChoice{"communication", kCommAlternatives},
    PropertyChoice{"termination", kTermAlternatives},
    PropertyChoice{"unique execution", kUniqueAlternatives},
    PropertyChoice{"atomic execution", kAtomicAlternatives},
};

}  // namespace

std::span<const PropertyEdge> property_edges() { return kEdges; }

std::span<const PropertyChoice> property_choices() { return kChoices; }

}  // namespace ugrpc::core
