// Configuration of a group RPC service (paper section 5).
//
// A service is configured by choosing property variants; the Configurator
// validates the choice against the micro-protocol dependency graph of paper
// Figure 4 and can enumerate the entire space of valid configurations.
//
// The paper's count: fixing acceptance and collation policies, one may pick
// 2 call semantics x 3 orphan-handling variants x 3 execution modes x 11
// admissible combinations of {unique execution, reliable communication,
// termination, ordering} = 198 distinct group RPC services.  The 11 comes
// from pruning the raw 2x2x2x3 = 24 combinations with the graph's edges:
// Unique->Reliable, FIFO->Reliable, Total->{Reliable, Unique, not Bounded}.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "core/micro/collation.h"
#include "membership/membership.h"
#include "sim/time.h"

namespace ugrpc::core {

enum class CallSemantics : unsigned char { kSynchronous, kAsynchronous };
enum class OrphanHandling : unsigned char { kIgnore, kInterferenceAvoidance, kTerminateOrphans };
/// kSerialAtomic implies serial (Atomic Execution -> Serial Execution edge).
enum class ExecutionMode : unsigned char { kPlain, kSerial, kSerialAtomic };
enum class Ordering : unsigned char { kNone, kFifo, kTotal };

[[nodiscard]] std::string_view to_string(CallSemantics v);
[[nodiscard]] std::string_view to_string(OrphanHandling v);
[[nodiscard]] std::string_view to_string(ExecutionMode v);
[[nodiscard]] std::string_view to_string(Ordering v);

struct Config {
  CallSemantics call = CallSemantics::kSynchronous;
  OrphanHandling orphan = OrphanHandling::kIgnore;
  ExecutionMode execution = ExecutionMode::kPlain;
  bool unique_execution = false;
  bool reliable_communication = false;
  sim::Duration retrans_timeout = sim::msec(50);
  /// Bounded Termination is configured iff this holds a time bound.
  std::optional<sim::Duration> termination_bound;
  Ordering ordering = Ordering::kNone;

  // Policies the paper fixes when counting configurations:
  /// Responses required for acceptance; kAll (acceptance.h) for "all".
  int acceptance_limit = 1;
  /// Reply collation; defaults to the paper's identity function
  /// ("last reply wins") when left unset.
  CollationFn collation;
  Buffer collation_init;
  /// Configure the membership service (enables Acceptance's reaction to
  /// server failures and Total Order leader failover).
  bool use_membership = false;
  membership::Params membership_params;
  /// The server group this configuration serves (Total Order's leader logic
  /// is anchored to it; Scenario uses group 1).
  GroupId group{1};
  /// Run Total Order's leader-change agreement round (extension; the paper
  /// omits the phase).  Disable to reproduce the paper's divergence window.
  bool total_order_agreement = true;
  sim::Duration total_order_agreement_timeout = sim::msec(100);
  /// EXPERIMENTS ONLY: build the composite even when validate() rejects the
  /// configuration.  Exists so the Figure 2 harness can demonstrate
  /// *empirically* what breaks when a dependency edge is violated; never
  /// set this in real use.
  bool unsafe_skip_validation = false;

  /// One-line summary, e.g. "sync|ignore|serial|unique|reliable|total|unbounded".
  [[nodiscard]] std::string describe() const;
};

/// Stable machine-readable identifiers for the dependency rules of paper
/// Figure 4 (plus parameter sanity checks).  Values are part of the public
/// API: programs switch on them, so existing enumerators never change
/// meaning; new rules are appended.
enum class Rule : unsigned char {
  kUniqueRequiresReliable,   ///< UniqueExecution -> ReliableCommunication
  kFifoRequiresReliable,     ///< FifoOrder -> ReliableCommunication
  kTotalRequiresReliable,    ///< TotalOrder -> ReliableCommunication
  kTotalRequiresUnique,      ///< TotalOrder -> UniqueExecution
  kTotalExcludesBounded,     ///< TotalOrder -x- BoundedTermination
  kAcceptanceLimitPositive,  ///< acceptance_limit >= 1
  kRetransTimeoutPositive,   ///< retrans_timeout > 0 when reliable
  kTerminationBoundPositive, ///< termination_bound > 0 when set
};

/// Canonical edge notation, e.g. "TotalOrder->UniqueExecution".
[[nodiscard]] std::string_view to_string(Rule r);

/// One violated dependency edge of paper Figure 4.
struct ValidationError {
  Rule code;            ///< stable machine-readable rule identifier
  std::string rule;     ///< canonical edge notation, to_string(code)
  std::string message;  ///< human-readable explanation
};

/// Checks `config` against the dependency graph; empty result means valid.
[[nodiscard]] std::vector<ValidationError> validate(const Config& config);
[[nodiscard]] bool is_valid(const Config& config);

/// The breakdown the paper reports in section 5.
struct ConfigSpace {
  int call_variants = 0;       ///< 2
  int orphan_variants = 0;     ///< 3
  int execution_variants = 0;  ///< 3
  int comm_combinations = 0;   ///< 11 (unique x reliable x termination x ordering, pruned)
  int total = 0;               ///< 198
};

/// Enumerates every dependency-valid configuration with acceptance and
/// collation policies fixed (as the paper does when counting).
[[nodiscard]] std::vector<Config> enumerate_valid_configs();
[[nodiscard]] ConfigSpace config_space();

}  // namespace ugrpc::core
