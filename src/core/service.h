// User-facing call API.
//
// Client wraps a Site and exposes the two call styles:
//  * call()        -- synchronous: resolves when the call completes or
//                     times out (requires CallSemantics::kSynchronous).
//  * call_async()  -- asynchronous: returns a CallHandle as soon as the call
//                     is sent; CallHandle::get() blocks until the result is
//                     available (requires CallSemantics::kAsynchronous).
//
// Both are thin wrappers over GrpcComposite::submit with the paper's
// User_Msgtype messages.  The older begin()/result() pair survives as
// deprecated shims over call_async(); new code should not use it.
#pragma once

#include <utility>

#include "common/buffer.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/site.h"

namespace ugrpc::core {

struct CallResult {
  Status status = Status::kWaiting;
  Buffer result;
  CallId id;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// Future-like handle to an in-flight asynchronous call (paper section 4.4.1:
/// the user "later issues a Request to retrieve the result").
///
/// Lifecycle: exactly one successful get() per call.  The first co_await'ed
/// get() blocks until the call completes (or times out under Bounded
/// Termination, yielding Status::kTimeout) and consumes the result record;
/// any further get() resolves immediately with Status::kWaiting, mirroring
/// the underlying Request semantics for an unknown id.  Dropping the handle
/// without get() is safe: nothing blocks, and the unread result is discarded
/// with the site.  Handles are movable but not copyable, so "the result was
/// already consumed through another copy" cannot happen by accident.
class CallHandle {
 public:
  CallHandle() = default;
  CallHandle(CallHandle&& other) noexcept
      : site_(std::exchange(other.site_, nullptr)), server_(other.server_), id_(other.id_) {}
  CallHandle& operator=(CallHandle&& other) noexcept {
    site_ = std::exchange(other.site_, nullptr);
    server_ = other.server_;
    id_ = other.id_;
    return *this;
  }
  CallHandle(const CallHandle&) = delete;
  CallHandle& operator=(const CallHandle&) = delete;

  /// Id of the underlying call (stable across get()).
  [[nodiscard]] CallId id() const { return id_; }
  /// True until get() consumes the result (or the handle is moved from).
  [[nodiscard]] bool pending() const { return site_ != nullptr; }

  /// Retrieves the call's result; see the class comment for semantics.
  [[nodiscard]] sim::Task<CallResult> get() {
    if (site_ == nullptr) {
      co_return CallResult{Status::kWaiting, Buffer{}, id_};
    }
    Site* site = std::exchange(site_, nullptr);
    UserMessage umsg;
    umsg.type = UserOp::kRequest;
    umsg.id = id_;
    umsg.server = server_;
    co_await site->grpc().submit(umsg);
    co_return CallResult{umsg.status, std::move(umsg.args), umsg.id};
  }

 private:
  friend class Client;
  CallHandle(Site& site, GroupId server, CallId id)
      : site_(&site), server_(server), id_(id) {}

  Site* site_ = nullptr;
  GroupId server_;
  CallId id_;
};

class Client {
 public:
  explicit Client(Site& site) : site_(site) {}

  /// Synchronous group RPC: invoke `op` with `args` on group `server`.
  [[nodiscard]] sim::Task<CallResult> call(GroupId server, OpId op, Buffer args) {
    UserMessage umsg;
    umsg.type = UserOp::kCall;
    umsg.op = op;
    umsg.args = std::move(args);
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return CallResult{umsg.status, std::move(umsg.args), umsg.id};
  }

  /// Asynchronous group RPC: resolves with a CallHandle as soon as the call
  /// is sent; handle.get() retrieves the result (in any order across calls).
  [[nodiscard]] sim::Task<CallHandle> call_async(GroupId server, OpId op, Buffer args) {
    UserMessage umsg;
    umsg.type = UserOp::kCall;
    umsg.op = op;
    umsg.args = std::move(args);
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return CallHandle{site_, server, umsg.id};
  }

  /// Asynchronous issue: returns the call id as soon as the call is sent.
  [[deprecated("use call_async(), which returns a CallHandle")]]
  [[nodiscard]] sim::Task<CallId> begin(GroupId server, OpId op, Buffer args) {
    UserMessage umsg;
    umsg.type = UserOp::kCall;
    umsg.op = op;
    umsg.args = std::move(args);
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return umsg.id;
  }

  /// Asynchronous retrieve: blocks until the result of `id` is available.
  [[deprecated("use CallHandle::get() from call_async()")]]
  [[nodiscard]] sim::Task<CallResult> result(GroupId server, CallId id) {
    UserMessage umsg;
    umsg.type = UserOp::kRequest;
    umsg.id = id;
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return CallResult{umsg.status, std::move(umsg.args), umsg.id};
  }

  [[nodiscard]] Site& site() { return site_; }

 private:
  Site& site_;
};

}  // namespace ugrpc::core
