// User-facing call API.
//
// Client wraps a Site and exposes the two call styles:
//  * call()            -- synchronous: resolves when the call completes or
//                         times out (requires CallSemantics::kSynchronous).
//  * begin()/result()  -- asynchronous: begin() returns the call id
//                         immediately; result() blocks until the result is
//                         available (requires CallSemantics::kAsynchronous).
//
// Both are thin wrappers over GrpcComposite::submit with the paper's
// User_Msgtype messages.
#pragma once

#include "common/buffer.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/site.h"

namespace ugrpc::core {

struct CallResult {
  Status status = Status::kWaiting;
  Buffer result;
  CallId id;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

class Client {
 public:
  explicit Client(Site& site) : site_(site) {}

  /// Synchronous group RPC: invoke `op` with `args` on group `server`.
  [[nodiscard]] sim::Task<CallResult> call(GroupId server, OpId op, Buffer args) {
    UserMessage umsg;
    umsg.type = UserOp::kCall;
    umsg.op = op;
    umsg.args = std::move(args);
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return CallResult{umsg.status, std::move(umsg.args), umsg.id};
  }

  /// Asynchronous issue: returns the call id as soon as the call is sent.
  [[nodiscard]] sim::Task<CallId> begin(GroupId server, OpId op, Buffer args) {
    UserMessage umsg;
    umsg.type = UserOp::kCall;
    umsg.op = op;
    umsg.args = std::move(args);
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return umsg.id;
  }

  /// Asynchronous retrieve: blocks until the result of `id` is available.
  [[nodiscard]] sim::Task<CallResult> result(GroupId server, CallId id) {
    UserMessage umsg;
    umsg.type = UserOp::kRequest;
    umsg.id = id;
    umsg.server = server;
    co_await site_.grpc().submit(umsg);
    co_return CallResult{umsg.status, std::move(umsg.args), umsg.id};
  }

  [[nodiscard]] Site& site() { return site_; }

 private:
  Site& site_;
};

}  // namespace ugrpc::core
