#include "core/telemetry.h"

#include <algorithm>

#include "common/log.h"
#include "core/observe.h"
#include "obs/json.h"

namespace ugrpc::core {

namespace {

/// Rate-limiter keys: one line budget per finding category.
constexpr std::uint64_t kWarnStalled = 0;
constexpr std::uint64_t kWarnOrphaned = 1;

void append_hold(std::string& out, const HoldArray& hold) {
  out += "{\"main\":";
  out += hold[kHoldMain] ? "true" : "false";
  out += ",\"fifo\":";
  out += hold[kHoldFifo] ? "true" : "false";
  out += ",\"total\":";
  out += hold[kHoldTotal] ? "true" : "false";
  out += "}";
}

}  // namespace

SiteTelemetry::SiteTelemetry(obs::live::TelemetryHub& hub, Site& site)
    : SiteTelemetry(hub, site, Options{}) {}

SiteTelemetry::SiteTelemetry(obs::live::TelemetryHub& hub, Site& site, Options options)
    : hub_(hub), site_(site), options_(options), warn_log_(options.warn_period) {
  site_.set_live_stats(&hub_.stats());
  hub_.set_introspection([this] { return introspection_json(); });
  hub_.set_manifest_extra([this] { return manifest_extra_json(); });
  // Transport byte/drop counters as gauges (obs cannot name net::Stats).
  // Re-binding on a shared registry just overwrites with an equivalent read.
  net::Transport& transport = site_.transport();
  hub_.stats().gauge("net.sent", [&transport] { return transport.stats().sent; });
  hub_.stats().gauge("net.delivered", [&transport] { return transport.stats().delivered; });
  hub_.stats().gauge("net.dropped", [&transport] { return transport.stats().dropped; });
  hub_.stats().gauge("net.duplicated", [&transport] { return transport.stats().duplicated; });
  hub_.stats().gauge("net.unroutable", [&transport] { return transport.stats().unroutable; });
  hub_.stats().gauge("net.bytes_sent", [&transport] { return transport.stats().bytes_sent; });
  hub_.stats().gauge("net.bytes_delivered",
                     [&transport] { return transport.stats().bytes_delivered; });
}

SiteTelemetry::~SiteTelemetry() { stop_watchdog(); }

// ---- stall watchdog ----

void SiteTelemetry::start_watchdog() {
  if (!timer_.has_value()) arm_timer();
}

void SiteTelemetry::stop_watchdog() {
  if (timer_.has_value()) {
    site_.transport().cancel_timer(*timer_);
    timer_.reset();
  }
}

void SiteTelemetry::arm_timer() {
  // Global domain: the sweep must outlive site crashes (a crashed site's
  // domain timers are cancelled wholesale by kill_domain).
  timer_ = site_.transport().schedule_after(
      options_.scan_period,
      [this] {
        scan_now();
        if (timer_.has_value()) arm_timer();  // cleared by stop_watchdog
      },
      sim::kGlobalDomain);
}

SiteTelemetry::Sweep SiteTelemetry::scan_now() {
  Sweep sweep;
  ++hub_.stats().watchdog_scans;
  if (!site_.up()) return sweep;  // nothing pending on a crashed site

  const sim::Time now = site_.transport().now();
  const sim::Duration bound = options_.bound_override.value_or(
      site_.config().termination_bound.value_or(options_.fallback_bound));
  const auto threshold =
      static_cast<sim::Duration>(static_cast<double>(bound) * options_.stall_multiplier);
  GrpcState& state = site_.grpc().state();

  // Prune flags of records that have since completed/retired, so a reused
  // table slot can be flagged again and the sets stay bounded by table size.
  std::erase_if(flagged_calls_,
                [&](std::uint64_t id) { return !state.pRPC.contains(CallId{id}); });
  std::erase_if(flagged_entries_,
                [&](std::uint64_t id) { return !state.sRPC.contains(CallId{id}); });

  for (const auto& [id, rec] : state.pRPC) {
    if (rec->status != Status::kWaiting || now - rec->issued_at <= threshold) continue;
    if (!flagged_calls_.insert(id.value()).second) continue;
    ++sweep.stalled;
    ++hub_.stats().watchdog_stalled;
    if (const std::uint64_t n = warn_log_.occurrences_to_log(kWarnStalled, now); n == 1) {
      UGRPC_LOG(kWarn, "telemetry: site %u call %llu stalled (age %lld us > %lld us)",
                site_.id().value(), static_cast<unsigned long long>(id.value()),
                static_cast<long long>(now - rec->issued_at), static_cast<long long>(threshold));
    } else if (n > 1) {
      UGRPC_LOG(kWarn, "telemetry: site %u stalled calls: %llu more since last report",
                site_.id().value(), static_cast<unsigned long long>(n));
    }
  }

  for (const auto& [id, rec] : state.sRPC) {
    if (now - rec->arrived_at <= threshold) continue;
    if (!flagged_entries_.insert(id.value()).second) continue;
    ++sweep.orphaned;
    ++hub_.stats().watchdog_orphaned;
    if (const std::uint64_t n = warn_log_.occurrences_to_log(kWarnOrphaned, now); n == 1) {
      UGRPC_LOG(kWarn,
                "telemetry: site %u sRPC entry %llu orphaned (client %u, age %lld us > %lld us)",
                site_.id().value(), static_cast<unsigned long long>(id.value()),
                rec->client.value(), static_cast<long long>(now - rec->arrived_at),
                static_cast<long long>(threshold));
    } else if (n > 1) {
      UGRPC_LOG(kWarn, "telemetry: site %u orphaned sRPC entries: %llu more since last report",
                site_.id().value(), static_cast<unsigned long long>(n));
    }
  }

  if (sweep.stalled + sweep.orphaned > 0) {
    ++hub_.stats().watchdog_trips;
    if (options_.trip_on_stall) {
      std::string reason = "watchdog: " + std::to_string(sweep.stalled) + " stalled call(s), " +
                           std::to_string(sweep.orphaned) + " orphaned entr(ies)";
      sweep.flight_dir = hub_.trip(reason);
    }
  }
  return sweep;
}

// ---- snapshot producers ----

std::string SiteTelemetry::introspection_json() const {
  const sim::Time now = site_.transport().now();
  std::string out = "{\"site\":" + std::to_string(site_.id().value()) +
                    ",\"up\":" + (site_.up() ? "true" : "false") +
                    ",\"incarnation\":" + std::to_string(site_.incarnation()) +
                    ",\"now_us\":" + std::to_string(now);
  if (!site_.up()) {
    out += "}";
    return out;
  }

  GrpcComposite& grpc = site_.grpc();
  out += ",\"config\":" + obs::json_str(site_.config().describe());

  out += ",\"micro_protocols\":[";
  bool first = true;
  for (const std::string& name : grpc.micro_protocol_names()) {
    if (!first) out += ",";
    first = false;
    out += obs::json_str(name);
  }
  out += "]";

  out += ",\"handlers\":[";
  first = true;
  for (const auto& reg : grpc.framework().registrations()) {
    if (!first) out += ",";
    first = false;
    out += "{\"event\":" + obs::json_str(reg.event) + ",\"handler\":" + obs::json_str(reg.handler) +
           ",\"priority\":" + std::to_string(reg.priority) + "}";
  }
  out += "]";

  const GrpcState& state = grpc.state();
  out += ",\"members\":[";
  first = true;
  for (const ProcessId p : state.members) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(p.value());
  }
  out += "]";

  out += ",\"hold\":";
  append_hold(out, state.HOLD);

  out += ",\"pRPC\":[";
  first = true;
  for (const auto& [id, rec] : state.pRPC) {
    if (!first) out += ",";
    first = false;
    int outstanding = 0;
    for (const auto& [p, ps] : rec->pending) outstanding += ps.done ? 0 : 1;
    out += "{\"id\":" + std::to_string(id.value()) +
           ",\"seq\":" + std::to_string(call_seq(id)) +
           ",\"op\":" + std::to_string(rec->op.value()) +
           ",\"server\":" + std::to_string(rec->server.value()) + ",\"status\":" +
           obs::json_str(to_string(rec->status)) + ",\"nres\":" + std::to_string(rec->nres) +
           ",\"outstanding\":" + std::to_string(outstanding) +
           ",\"age_us\":" + std::to_string(now - rec->issued_at) + "}";
  }
  out += "]";

  out += ",\"sRPC\":[";
  first = true;
  for (const auto& [id, rec] : state.sRPC) {
    if (!first) out += ",";
    first = false;
    bool ready = true;
    for (std::size_t i = 0; i < kHoldCount; ++i) {
      if (state.HOLD[i] && !rec->hold[i]) ready = false;
    }
    out += "{\"id\":" + std::to_string(id.value()) +
           ",\"client\":" + std::to_string(rec->client.value()) +
           ",\"client_inc\":" + std::to_string(rec->client_inc) +
           ",\"op\":" + std::to_string(rec->op.value()) +
           ",\"age_us\":" + std::to_string(now - rec->arrived_at) + ",\"hold\":";
    append_hold(out, rec->hold);
    out += ",\"ready\":";
    out += ready ? "true" : "false";
    out += "}";
  }
  out += "]";

  out += ",\"watchdog\":{\"running\":";
  out += timer_.has_value() ? "true" : "false";
  out += ",\"flagged_calls\":" + std::to_string(flagged_calls_.size()) +
         ",\"flagged_entries\":" + std::to_string(flagged_entries_.size()) + "}";

  out += "}";
  return out;
}

std::string SiteTelemetry::manifest_extra_json() const {
  const obs::Expect expect = expectations_from(site_.config());
  std::string out = "\"config\": " + obs::json_str(site_.config().describe()) + ",\n  ";
  out += "\"expect\": {\"unique_execution\":";
  out += expect.unique_execution ? "true" : "false";
  out += ",\"atomic_execution\":";
  out += expect.atomic_execution ? "true" : "false";
  out += ",\"termination_bound_us\":";
  out += expect.termination_bound.has_value() ? std::to_string(*expect.termination_bound)
                                              : std::string("null");
  out += ",\"termination_slack_us\":" + std::to_string(expect.termination_slack);
  out += ",\"fifo_order\":";
  out += expect.fifo_order ? "true" : "false";
  out += ",\"total_order\":";
  out += expect.total_order ? "true" : "false";
  out += ",\"terminate_orphans\":";
  out += expect.terminate_orphans ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace ugrpc::core
