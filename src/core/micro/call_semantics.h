// Synchronous Call and Asynchronous Call micro-protocols
// (paper section 4.4.2, "User thread management").
//
// Synchronous Call blocks the calling user thread on the call's semaphore
// until Acceptance (success) or Bounded Termination (timeout) releases it,
// then copies the collated results and status back into the user message and
// removes the pRPC record.
//
// Asynchronous Call lets the issuing thread return immediately (RPC Main
// already sent the call; nothing blocks).  The user later issues a kRequest
// message with the call id; the request blocks until the result is available
// -- "if the result is pending, the request message returns immediately".
#pragma once

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class SynchronousCall : public runtime::MicroProtocol {
 public:
  explicit SynchronousCall(GrpcState& state)
      : MicroProtocol("Synchronous Call"), state_(state) {}

  void start(runtime::Framework& fw) override;

 private:
  GrpcState& state_;
};

class AsynchronousCall : public runtime::MicroProtocol {
 public:
  explicit AsynchronousCall(GrpcState& state)
      : MicroProtocol("Asynchronous Call"), state_(state) {}

  void start(runtime::Framework& fw) override;

 private:
  GrpcState& state_;
};

}  // namespace ugrpc::core
