#include "core/micro/total_order.h"

#include "common/log.h"
#include "core/priorities.h"

namespace ugrpc::core {

void TotalOrder::start(runtime::Framework& fw) {
  fw_ = &fw;
  state_.HOLD[kHoldTotal] = true;
  state_.checkpoint_participants.push_back(this);
  fw.register_handler(kMsgFromNetwork, "TotalOrder.assign_order", kPrioNetAssignOrder,
                      [this](runtime::EventContext& ctx) { return assign_order(ctx); });
  fw.register_handler(kMsgFromNetwork, "TotalOrder.msg_from_net", kPrioNetOrderDeliver,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kReplyFromServer, "TotalOrder.mark_executed", kPrioReplyOrderMark,
                      [this](runtime::EventContext&) -> sim::Task<> {
                        ++next_entry_;  // before the checkpoint; see priorities.h
                        co_return;
                      });
  fw.register_handler(kReplyFromServer, "TotalOrder.handle_reply", kPrioReplyOrder,
                      [this](runtime::EventContext& ctx) { return handle_reply(ctx); });
  fw.register_handler(kMembershipChange, "TotalOrder.membership_change",
                      [this](runtime::EventContext& ctx) { return membership_change(ctx); });
  // A member that boots (or recovers) into the leader role must not assign
  // orders from a fresh counter: reconcile with the group first.
  if (options_.agreement && state_.my_id == leader(group_)) {
    bool has_peers = false;
    for (ProcessId p : state_.transport.group_members(group_)) {
      if (p != state_.my_id && state_.members.contains(p)) has_peers = true;
    }
    if (has_peers) begin_reconciliation();
  }
}

ProcessId TotalOrder::leader(GroupId group) const {
  ProcessId best{0};
  for (ProcessId p : state_.transport.group_members(group)) {
    if (state_.members.contains(p) && p.value() > best.value()) best = p;
  }
  return best;
}

sim::Task<> TotalOrder::assign_order(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  if (msg.type != net::MsgType::kCall) co_return;
  const ProcessId who_leads = leader(msg.server);
  if (state_.my_id == who_leads) {
    std::uint64_t order = 0;
    if (auto it = old_orders_.find(msg.id); it != old_orders_.end()) {
      order = it->second;  // re-announce an existing assignment
    } else if (!reconciling_) {
      order = next_order_++;
      old_orders_.emplace(msg.id, order);
    } else {
      // Mid-reconciliation: do not assign.  The call parks in waiting_set
      // (msg_from_net) and the client's retransmission re-triggers
      // assignment once the round closes.
      co_return;
    }
    net::NetMessage order_msg;
    order_msg.type = net::MsgType::kOrder;
    order_msg.id = msg.id;
    order_msg.server = msg.server;
    order_msg.sender = state_.my_id;
    order_msg.inc = state_.inc_number;
    order_msg.ackid = order;
    state_.net_multicast(msg.server, order_msg);
  } else if (waiting_set_.contains(msg.id)) {
    // A retransmission of a call we still cannot order: nudge the (possibly
    // new) leader, which may never have received the original.
    state_.net_push(who_leads, msg);
  }
  // Note: the paper cancels the event here when the call's order is already
  // below next_entry (an executed duplicate).  That cancel runs before
  // Unique Execution's handler and therefore suppresses its resend of the
  // stored result -- a client whose Reply was lost would retransmit forever.
  // Since Total Order requires Unique Execution (Figure 4), which both
  // cancels duplicates and re-answers completed calls, the early cancel is
  // redundant and we omit it (see DESIGN.md).
}

sim::Task<> TotalOrder::note_order(CallId id, std::uint64_t order) {
  // Followers track the leader's counter so a successor continues the
  // numbering after a failover.
  if (next_order_ < order + 1) next_order_ = order + 1;
  auto [it, inserted] = old_orders_.emplace(id, order);
  const std::uint64_t my_order = it->second;  // first assignment wins
  if (waiting_set_.erase(id) > 0) {
    if (my_order == next_entry_) {
      co_await state_.forward_up(id, kHoldTotal);
    } else if (my_order > next_entry_) {
      ready_list_[my_order] = id;
    }
  }
}

sim::Task<> TotalOrder::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  switch (msg.type) {
    case net::MsgType::kCall: {
      auto it = old_orders_.find(msg.id);
      if (it == old_orders_.end()) {
        waiting_set_.insert(msg.id);  // unordered: hold until an Order arrives
        state_.note(obs::Kind::kCallHeld, msg.id.value(), kHoldTotal);
        co_return;
      }
      const std::uint64_t my_order = it->second;
      if (my_order < next_entry_) {
        // Already executed here; discard the freshly re-created record.
        state_.note(obs::Kind::kStaleDropped, msg.id.value());
        ctx.cancel();
        state_.sRPC.erase(msg.id);
      } else if (my_order == next_entry_) {
        co_await state_.forward_up(msg.id, kHoldTotal);
      } else {
        ready_list_[my_order] = msg.id;
        state_.note(obs::Kind::kCallHeld, msg.id.value(), kHoldTotal);
      }
      break;
    }
    case net::MsgType::kOrder:
      co_await note_order(msg.id, msg.ackid);
      break;
    case net::MsgType::kOrderQuery: {
      if (msg.sender == state_.my_id) co_return;
      net::NetMessage info;
      info.type = net::MsgType::kOrderInfo;
      info.server = msg.server;
      info.sender = state_.my_id;
      info.inc = state_.inc_number;
      info.ackid = msg.ackid;  // echo the floor
      info.args = encode_order_info(msg.ackid);
      state_.net_push(msg.sender, info);
      break;
    }
    case net::MsgType::kOrderInfo: {
      if (!reconciling_) co_return;  // stale answer from an earlier round
      Reader r(msg.args);
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const CallId id{r.u64()};
        const std::uint64_t order = r.u64();
        co_await note_order(id, order);
      }
      awaiting_info_.erase(msg.sender);
      if (awaiting_info_.empty()) finish_reconciliation();
      break;
    }
    case net::MsgType::kReply:
    case net::MsgType::kAck:
      break;
  }
}

sim::Task<> TotalOrder::handle_reply(runtime::EventContext&) {
  // next_entry_ was advanced by mark_executed (kPrioReplyOrderMark).
  auto it = ready_list_.find(next_entry_);
  if (it != ready_list_.end()) {
    const CallId next_id = it->second;
    ready_list_.erase(it);
    state_.note(obs::Kind::kCallReleased, next_id.value(), kHoldTotal);
    co_await state_.forward_up(next_id, kHoldTotal);
  }
}

sim::Task<> TotalOrder::membership_change(runtime::EventContext& ctx) {
  if (!options_.agreement) co_return;
  const auto& ev = ctx.arg_as<MembershipEvent>();
  // Leadership falls to this member when a higher-id member fails while we
  // are (now) the maximum live id.
  if (ev.change == membership::Change::kFailure && ev.who.value() > state_.my_id.value() &&
      state_.my_id == leader(group_) && !reconciling_) {
    begin_reconciliation();
  }
  co_return;
}

Buffer TotalOrder::encode_order_info(std::uint64_t floor) const {
  Buffer out;
  Writer w(out);
  std::uint32_t count = 0;
  for (const auto& [id, order] : old_orders_) {
    if (order >= floor) ++count;
  }
  w.u32(count);
  for (const auto& [id, order] : old_orders_) {
    if (order < floor) continue;
    w.u64(id.value());
    w.u64(order);
  }
  return out;
}

void TotalOrder::begin_reconciliation() {
  reconciling_ = true;
  ++reconciliations_;
  awaiting_info_.clear();
  for (ProcessId p : state_.transport.group_members(group_)) {
    if (p != state_.my_id && state_.members.contains(p)) awaiting_info_.insert(p);
  }
  UGRPC_LOG(kDebug, "total@%u: reconciling with %zu members", state_.my_id.value(),
            awaiting_info_.size());
  if (awaiting_info_.empty()) {
    finish_reconciliation();
    return;
  }
  net::NetMessage query;
  query.type = net::MsgType::kOrderQuery;
  query.server = group_;
  query.sender = state_.my_id;
  query.inc = state_.inc_number;
  query.ackid = next_entry_;  // members answer with assignments >= this floor
  state_.net_multicast(group_, query);
  // Lost answers must not wedge the group: close the round after a timeout
  // with whatever arrived.
  reconcile_timer_ = fw_->register_timeout("TotalOrder.reconcile_timeout",
                                           options_.agreement_timeout, [this]() -> sim::Task<> {
                                             if (reconciling_) finish_reconciliation();
                                             co_return;
                                           });
}

void TotalOrder::encode_state(Writer& w) const {
  w.u64(next_order_);
  w.u64(next_entry_);
  w.u32(static_cast<std::uint32_t>(old_orders_.size()));
  for (const auto& [id, order] : old_orders_) {
    w.u64(id.value());
    w.u64(order);
  }
  // waiting_set_ and ready_list_ reference sRPC records that do not survive
  // the crash; the calls they hold are re-delivered by client
  // retransmissions, so only the assignments need to persist.
}

void TotalOrder::decode_state(Reader& r) {
  next_order_ = r.u64();
  next_entry_ = r.u64();
  old_orders_.clear();
  waiting_set_.clear();
  ready_list_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const CallId id{r.u64()};
    old_orders_[id] = r.u64();
  }
}

void TotalOrder::finish_reconciliation() {
  reconciling_ = false;
  awaiting_info_.clear();
  fw_->cancel_timeout(reconcile_timer_);
  UGRPC_LOG(kDebug, "total@%u: reconciliation closed, next_order=%llu", state_.my_id.value(),
            static_cast<unsigned long long>(next_order_));
  // Calls that arrived during the round were parked unassigned; give them
  // their numbers now rather than waiting for client retransmissions.
  std::vector<std::pair<CallId, std::uint64_t>> fresh;
  for (CallId id : waiting_set_) {
    if (old_orders_.contains(id)) continue;
    const std::uint64_t order = next_order_++;
    old_orders_.emplace(id, order);
    fresh.emplace_back(id, order);
  }
  // Re-announce the merged tail (plus the fresh assignments) so every
  // member converges on one assignment even if the old leader's Orders
  // reached only a subset.
  for (const auto& [id, order] : old_orders_) {
    if (order < next_entry_) continue;
    net::NetMessage order_msg;
    order_msg.type = net::MsgType::kOrder;
    order_msg.id = id;
    order_msg.server = group_;
    order_msg.sender = state_.my_id;
    order_msg.inc = state_.inc_number;
    order_msg.ackid = order;
    state_.net_multicast(group_, order_msg);
  }
  // Deliver the fresh assignments locally without relying on the multicast
  // self-loop (which is subject to faults): note_order may execute calls,
  // so it runs in its own fiber.
  if (!fresh.empty()) {
    state_.sched.spawn(
        [](TotalOrder& self, std::vector<std::pair<CallId, std::uint64_t>> pairs) -> sim::Task<> {
          for (const auto& [id, order] : pairs) co_await self.note_order(id, order);
        }(*this, std::move(fresh)),
        fw_->domain());
  }
}

}  // namespace ugrpc::core
