#include "core/micro/fifo_order.h"

#include "core/priorities.h"

namespace ugrpc::core {

void FifoOrder::encode_state(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(in_progress_.size()));
  for (const auto& [client, info] : in_progress_) {
    w.u32(client.value());
    w.u32(info.inc);
    w.u64(info.next.value());
  }
}

void FifoOrder::decode_state(Reader& r) {
  in_progress_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId client{r.u32()};
    InProgress info;
    info.inc = r.u32();
    info.next = CallId{r.u64()};
    in_progress_.emplace(client, info);
  }
}

void FifoOrder::start(runtime::Framework& fw) {
  state_.HOLD[kHoldFifo] = true;
  state_.checkpoint_participants.push_back(this);
  fw.register_handler(kMsgFromNetwork, "FifoOrder.msg_from_net", kPrioNetOrderDeliver,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kReplyFromServer, "FifoOrder.mark_executed", kPrioReplyOrderMark,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        // Advance the client's stream position before the
                        // Atomic checkpoint runs; see priorities.h.
                        const CallId id = ctx.arg_as<CallEvent>().id;
                        if (auto rec = state_.find_server(id)) {
                          auto it = in_progress_.find(rec->client);
                          if (it != in_progress_.end()) {
                            const CallId next = next_call_id(id);
                            if (next.value() > it->second.next.value()) it->second.next = next;
                          }
                        }
                        co_return;
                      });
  fw.register_handler(kReplyFromServer, "FifoOrder.handle_reply", kPrioReplyOrder,
                      [this](runtime::EventContext& ctx) { return handle_reply(ctx); });
}

sim::Task<> FifoOrder::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  if (msg.type != net::MsgType::kCall) co_return;
  auto [it, inserted] = in_progress_.try_emplace(msg.sender, InProgress{msg.inc, msg.id});
  InProgress& info = it->second;
  if (!inserted) {
    if (info.inc > msg.inc || (info.inc == msg.inc && msg.id < info.next)) {
      // Stale: an orphaned incarnation or an id already executed here.
      ++stale_dropped_;
      state_.note(obs::Kind::kStaleDropped, msg.id.value());
      ctx.cancel();
      auto srec = state_.sRPC.find(msg.id);
      if (srec != state_.sRPC.end()) state_.sRPC.erase(srec);
      co_return;
    }
    if (info.inc < msg.inc) {
      // New client incarnation: restart the stream at its first-seen id.
      info = InProgress{msg.inc, msg.id};
    }
  }
  if (msg.id == info.next) {
    co_await state_.forward_up(msg.id, kHoldFifo);
  } else {
    state_.note(obs::Kind::kCallHeld, msg.id.value(), kHoldFifo);
  }
}

sim::Task<> FifoOrder::handle_reply(runtime::EventContext& ctx) {
  // The stream position was advanced by mark_executed; release the
  // successor if it has already arrived.
  const CallId next = next_call_id(ctx.arg_as<CallEvent>().id);
  if (state_.sRPC.contains(next)) {
    state_.note(obs::Kind::kCallReleased, next.value(), kHoldFifo);
    co_await state_.forward_up(next, kHoldFifo);
  }
}

}  // namespace ugrpc::core
