// Acceptance micro-protocol (paper section 4.4.5).
//
// Implements the acceptance semantics of group RPC: a call is accepted once
// `acceptance_limit` members of the server group have executed it
// successfully.  At call creation, the number of required responses is
// min(limit, live members of the group); if a membership service is
// configured, the failure of a pending server also counts it out, so "the
// client might not want to wait for recovery, but is willing to settle for
// the responses from all servers that are still functioning".  Without a
// membership service the member set stays constant (paper behaviour).
//
// Use kAll as the limit to require a response from every group member.
#pragma once

#include <limits>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

/// Sentinel acceptance limit: every (live) member must respond.
inline constexpr int kAll = std::numeric_limits<int>::max();

class Acceptance : public runtime::MicroProtocol {
 public:
  Acceptance(GrpcState& state, int acceptance_limit)
      : MicroProtocol("Acceptance"), state_(state), limit_(acceptance_limit) {}

  void start(runtime::Framework& fw) override;

 private:
  [[nodiscard]] sim::Task<> handle_new_call(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> server_failure(runtime::EventContext& ctx);

  void complete(ClientRecord& rec);

  GrpcState& state_;
  int limit_;
};

}  // namespace ugrpc::core
