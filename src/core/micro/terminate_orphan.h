// Terminate Orphan micro-protocol (paper section 4.4.7).
//
// Kills orphan computations as soon as they are detected.  Detection is the
// paper's first option: receiving a call from a newer incarnation of a
// client proves the previous incarnation died, so every thread still
// executing that client's older calls is an orphan and is killed
// (my_thread()/kill(thread) map to Scheduler::current_fiber()/kill()).
//
// Thread tracking deviation: the paper records my_thread() at message
// arrival, but with ordering micro-protocols the executing thread can be a
// different fiber (a held call is executed from the predecessor's reply
// chain).  We record the executing fiber in an execution guard immediately
// before the procedure runs, which is the handle the kill must target.
// Likewise, the paper V's the serial semaphore once per killed thread,
// over-releasing when the victim never held the token; we release it only
// when the victim is the current holder (see serial_execution.h).
//
// The paper also names a second detection approach -- "by periodically
// probing the client" -- but implements only the first.  We provide both:
// when a membership service is configured (it heartbeats clients too, which
// is the probing), a MEMBERSHIP_CHANGE failure of a client kills its
// threads immediately, covering clients that crash and never come back.
#pragma once

#include <set>
#include <unordered_map>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class TerminateOrphan : public runtime::MicroProtocol {
 public:
  explicit TerminateOrphan(GrpcState& state)
      : MicroProtocol("Terminate Orphan"), state_(state) {}

  void start(runtime::Framework& fw) override;

  [[nodiscard]] std::uint64_t orphans_killed() const { return orphans_killed_; }

 private:
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> handle_reply(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> client_failure(runtime::EventContext& ctx);

  struct ClientInfo {
    Incarnation inc = 0;
    std::set<FiberId> threads;  ///< fibers executing this client's calls
  };

  void kill_threads(ProcessId client, ClientInfo& info);

  GrpcState& state_;
  std::unordered_map<ProcessId, ClientInfo> cinfo_;
  std::uint64_t orphans_killed_ = 0;
};

}  // namespace ugrpc::core
