// Collation micro-protocol (paper section 4.4.4).
//
// Folds the replies of the group members into one result with a
// user-supplied accumulation function: "any of these alternatives can be
// described as a function, so we take the general approach of having the
// user provide the desired collation function at initialization time."
//
// Deviation (see priorities.h note 1): collation runs *before* Acceptance on
// each Reply and folds only replies that Acceptance has not yet counted, so
// (a) the client never wakes before its final reply is folded, and (b) a
// duplicated Reply is folded at most once.
#pragma once

#include <functional>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

/// Folds an accumulated value and one server's reply into a new accumulated
/// value.  `acc` starts as the configured initial value.
using CollationFn = std::function<Buffer(const Buffer& acc, const Buffer& reply)>;

/// The paper's example collation: the identity on the second argument, i.e.
/// "last reply wins".
[[nodiscard]] inline CollationFn last_reply_collation() {
  return [](const Buffer&, const Buffer& reply) { return reply; };
}

class Collation : public runtime::MicroProtocol {
 public:
  Collation(GrpcState& state, CollationFn fn, Buffer init)
      : MicroProtocol("Collation"), state_(state), fn_(std::move(fn)), init_(std::move(init)) {}

  void start(runtime::Framework& fw) override;

 private:
  GrpcState& state_;
  CollationFn fn_;
  Buffer init_;
};

}  // namespace ugrpc::core
