#include "core/micro/bounded_termination.h"

#include "core/priorities.h"

namespace ugrpc::core {

void BoundedTermination::start(runtime::Framework& fw) {
  fw_ = &fw;
  fw.register_handler(kNewRpcCall, "BoundedTerm.handle_new_call", kPrioNewBounded,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        const CallId id = ctx.arg_as<CallEvent>().id;
                        deadlines_.emplace_back(state_.sched.now() + timebound_, id);
                        arm_timer();
                        co_return;
                      });
}

void BoundedTermination::arm_timer() {
  // One timer for the whole queue, armed for the front deadline.  New calls
  // always append strictly-later deadlines, so the armed timer never needs
  // to be shortened.
  if (armed_ || deadlines_.empty()) return;
  armed_ = true;
  const sim::Duration delay = deadlines_.front().first - state_.sched.now();
  fw_->register_timeout("BoundedTerm.handle_timeout", delay > 0 ? delay : 0,
                        [this]() -> sim::Task<> {
                          armed_ = false;
                          co_await drain_expired();
                          arm_timer();
                        });
}

sim::Task<> BoundedTermination::drain_expired() {
  auto guard = co_await state_.pRPC_mutex.lock();
  const sim::Time now = state_.sched.now();
  while (!deadlines_.empty() && deadlines_.front().first <= now) {
    const CallId id = deadlines_.front().second;
    deadlines_.pop_front();
    auto rec = state_.find_client(id);
    if (rec != nullptr && rec->status == Status::kWaiting) {
      rec->status = Status::kTimeout;
      ++timeouts_fired_;
      if (state_.live) ++state_.live->calls_failed;
      state_.note(obs::Kind::kDeadlineExpired, id.value());
      state_.note(obs::Kind::kCallCompleted, id.value(),
                  static_cast<std::uint64_t>(Status::kTimeout));
      state_.span_close(rec->span);  // root span closes on timeout, too
      rec->sem.release();
    }
  }
}

}  // namespace ugrpc::core
