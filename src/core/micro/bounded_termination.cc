#include "core/micro/bounded_termination.h"

#include "core/priorities.h"

namespace ugrpc::core {

void BoundedTermination::start(runtime::Framework& fw) {
  fw.register_handler(kNewRpcCall, "BoundedTerm.handle_new_call", kPrioNewBounded,
                      [this, &fw](runtime::EventContext& ctx) -> sim::Task<> {
                        // One one-shot deadline per call.  The paper keeps a
                        // FIFO queue drained by a single handler; arming a
                        // timer that captures the id is equivalent (timeouts
                        // fire in registration order for equal deadlines).
                        const CallId id = ctx.arg_as<CallEvent>().id;
                        fw.register_timeout("BoundedTerm.handle_timeout", timebound_,
                                            [this, id]() { return handle_timeout(id); });
                        co_return;
                      });
}

sim::Task<> BoundedTermination::handle_timeout(CallId id) {
  auto guard = co_await state_.pRPC_mutex.lock();
  auto rec = state_.find_client(id);
  if (rec != nullptr && rec->status == Status::kWaiting) {
    rec->status = Status::kTimeout;
    ++timeouts_fired_;
    rec->sem.release();
  }
}

}  // namespace ugrpc::core
