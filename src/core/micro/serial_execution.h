// Serial Execution micro-protocol (paper section 4.4.5).
//
// Ensures the server processes calls one at a time, which Atomic Execution's
// checkpoint-per-call technique requires.
//
// Placement of the P(serial) (deviation, see priorities.h note 2): the paper
// acquires the token in a MSG_FROM_NETWORK handler, i.e. at *arrival* time.
// When an ordering micro-protocol holds a call back, arrival-time
// acquisition deadlocks: the held call owns the token while the call that
// must execute first blocks on it.  We therefore acquire the token in an
// execution guard that RPC Main awaits immediately before invoking the
// procedure -- equivalent when execution is immediate, correct when it is
// deferred.  The token is released on REPLY_FROM_SERVER *before* the
// ordering protocols' reply handlers run, since those forward (and execute)
// the next held call.
//
// The current holder's fiber is tracked so Terminate Orphan can release the
// token when it kills a thread that is mid-execution (the paper V's
// unconditionally per killed thread, which can over-release when the victim
// was still blocked waiting for the token).
#pragma once

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class SerialExecution : public runtime::MicroProtocol {
 public:
  explicit SerialExecution(GrpcState& state)
      : MicroProtocol("Serial Execution"), state_(state) {}

  void start(runtime::Framework& fw) override;

 private:
  GrpcState& state_;
};

}  // namespace ugrpc::core
