// Interference Avoidance micro-protocol (paper section 4.4.7).
//
// Prevents orphan computations (calls from a crashed client incarnation)
// from interfering with the recovered client's new calls, without killing
// them: calls are partitioned into generations by the client's incarnation
// number, and a call of a new incarnation is admitted only after every
// pending call of the old incarnation has finished.  Arrivals from the new
// incarnation are dropped while old calls drain -- Reliable Communication's
// retransmissions deliver them again later.  Once a new incarnation has
// been seen, no further old-incarnation calls are started (starvation
// avoidance: the generation gate is latched to "blocked" via kBlocked).
#pragma once

#include <limits>
#include <unordered_map>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class InterferenceAvoidance : public runtime::MicroProtocol {
 public:
  explicit InterferenceAvoidance(GrpcState& state)
      : MicroProtocol("Interference Avoidance"), state_(state) {}

  void start(runtime::Framework& fw) override;

  [[nodiscard]] std::uint64_t deferred() const { return deferred_; }

 private:
  /// Gate value meaning "draining the old generation; admit nothing".
  static constexpr Incarnation kBlocked = std::numeric_limits<Incarnation>::max();

  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> handle_reply(runtime::EventContext& ctx);

  struct ClientInfo {
    Incarnation inc = 0;       ///< incarnation currently admitted (or kBlocked)
    int count = 0;             ///< calls of the admitted incarnation in progress
    Incarnation next_inc = 0;  ///< incarnation to admit once drained
  };

  GrpcState& state_;
  std::unordered_map<ProcessId, ClientInfo> cinfo_;
  sim::Mutex cmutex_{state_.sched};
  std::uint64_t deferred_ = 0;
};

}  // namespace ugrpc::core
