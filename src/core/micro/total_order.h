// Total Order micro-protocol (paper section 4.4.6).
//
// Guarantees that calls from all clients are processed in the same total
// order by all servers.  One group member -- the leader, defined as "the
// server with the largest unique identifier of all non-failed servers" --
// assigns consecutive order numbers to calls and disseminates them to the
// group with Order messages.  Each member executes calls strictly in
// assigned order (a HOLD gate holds calls whose turn has not come).
//
// Leader change: followers track the leader's counter via the Order
// messages ("if next_order < msg.ackid+1 ..."), so when the leader fails the
// next-largest live member continues numbering where it left off;
// retransmitted calls (Reliable Communication is required) reach the new
// leader, and followers forward calls stuck in their waiting set.
//
// Agreement phase (EXTENSION -- the paper omits it "for brevity"): tracking
// the counter is not enough.  If the failed leader's last Order messages
// reached only a subset of the group -- in particular, not the successor --
// the new leader would reassign those order numbers to different calls and
// the members would execute divergent sequences.  When enabled
// (Config::total_order_agreement, the default), a member that observes the
// leadership falling to it runs a reconciliation round before assigning any
// further orders: it multicasts an OrderQuery carrying its next_entry;
// every member answers with an OrderInfo listing its (call, order) pairs at
// or above that floor; the new leader merges the union (assignments are
// consistent by construction -- they all came from one old leader),
// advances next_order past the maximum, re-announces the merged tail with
// ordinary Order messages, and only then resumes assignment.  If some
// members' answers are lost, a timeout closes the round with the answers at
// hand; reconciliation is idempotent and re-runs on later failures.
// Disabling the knob reproduces the paper's omission (the ablation bench
// and tests show the resulting divergence window).
//
// Dependencies (paper Figure 4): Reliable Communication and Unique Execution
// (a server must see each request effectively once past the dedup stage);
// incompatible with Bounded Termination.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

struct TotalOrderOptions {
  /// Run the leader-change agreement round (see file comment).
  bool agreement = true;
  /// How long the new leader waits for OrderInfo answers before closing the
  /// reconciliation round with whatever arrived.
  sim::Duration agreement_timeout = sim::msec(100);
};

class TotalOrder : public runtime::MicroProtocol, public CheckpointParticipant {
 public:
  TotalOrder(GrpcState& state, GroupId group, TotalOrderOptions options)
      : MicroProtocol("Total Order"), state_(state), group_(group), options_(options) {}

  void start(runtime::Framework& fw) override;

  // CheckpointParticipant: with Atomic Execution configured, the ordering
  // position (next_entry, known assignments, held calls) survives a crash,
  // so a recovered member resumes the total order where its last completed
  // call left it instead of restarting from order 1.
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

  /// The group leader from this member's viewpoint: the largest-id live
  /// member of `group`.
  [[nodiscard]] ProcessId leader(GroupId group) const;

  [[nodiscard]] std::uint64_t orders_assigned() const { return next_order_ - 1; }
  [[nodiscard]] std::uint64_t next_entry() const { return next_entry_; }
  [[nodiscard]] bool reconciling() const { return reconciling_; }
  [[nodiscard]] std::uint64_t reconciliations() const { return reconciliations_; }

 private:
  [[nodiscard]] sim::Task<> assign_order(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> handle_reply(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> membership_change(runtime::EventContext& ctx);

  /// Records an assignment learned from an Order/OrderInfo message and, if
  /// the call is waiting, moves it toward execution.
  [[nodiscard]] sim::Task<> note_order(CallId id, std::uint64_t order);

  void begin_reconciliation();
  void finish_reconciliation();
  [[nodiscard]] Buffer encode_order_info(std::uint64_t floor) const;

  GrpcState& state_;
  GroupId group_;
  TotalOrderOptions options_;
  runtime::Framework* fw_ = nullptr;
  std::map<std::uint64_t, CallId> ready_list_;       ///< order -> call, not yet executable
  std::set<CallId> waiting_set_;                     ///< calls seen but unordered
  std::unordered_map<CallId, std::uint64_t> old_orders_;  ///< call -> assigned order
  std::uint64_t next_order_ = 1;  ///< leader: next order number to assign
  std::uint64_t next_entry_ = 1;  ///< next order number allowed to execute

  // Reconciliation round state (only meaningful on the new leader).
  bool reconciling_ = false;
  std::set<ProcessId> awaiting_info_;
  TimerId reconcile_timer_{};
  std::uint64_t reconciliations_ = 0;
};

}  // namespace ugrpc::core
