#include "core/micro/rpc_main.h"

#include "common/log.h"
#include "core/priorities.h"
#include "core/user_protocol.h"

namespace ugrpc::core {

void RpcMain::start(runtime::Framework& fw) {
  fw_ = &fw;
  state_.HOLD[kHoldMain] = true;
  // Other micro-protocols reach forward_up through the shared state, keeping
  // them decoupled from this class.
  state_.forward_up = [this](CallId id, HoldIndex index) { return forward_up(id, index); };
  fw.register_handler(kMsgFromNetwork, "RPCMain.msg_from_net", kPrioNetMain,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kCallFromUser, "RPCMain.msg_from_user", kPrioUserMain,
                      [this](runtime::EventContext& ctx) { return msg_from_user(ctx); });
  fw.register_handler(kRecovery, "RPCMain.handle_recovery",
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        state_.inc_number = ctx.arg_as<RecoveryEvent>().inc;
                        co_return;
                      });
}

sim::Task<> RpcMain::msg_from_net(runtime::EventContext& ctx) {
  auto& msg = ctx.arg_as<net::NetMessage>();
  if (msg.type != net::MsgType::kCall) co_return;
  auto rec = std::make_shared<ServerRecord>();
  rec->id = msg.id;
  rec->op = msg.op;
  rec->args = msg.args;
  rec->server = msg.server;
  rec->client = msg.sender;
  rec->client_inc = msg.inc;
  rec->arrived_at = state_.transport.now();
  // Overwriting any previous record for this id implements the default
  // at-least-once behaviour: without Unique Execution a retransmitted call
  // is simply executed again.
  state_.sRPC[msg.id] = rec;
  co_await forward_up(msg.id, kHoldMain);
}

sim::Task<> RpcMain::forward_up(CallId id, HoldIndex index) {
  auto rec = state_.find_server(id);
  if (rec == nullptr) co_return;  // removed by an ordering micro-protocol
  rec->hold[index] = true;
  for (std::size_t i = 0; i < kHoldCount; ++i) {
    if (state_.HOLD[i] && !rec->hold[i]) co_return;  // still gated
  }
  // All gates satisfied: run execution guards (Serial Execution's token
  // acquisition lives here; see priorities.h note 2), then execute.
  for (const auto& guard : state_.before_execute) co_await guard(id);
  UGRPC_ASSERT(state_.user != nullptr && "server site has no user protocol");
  state_.note(obs::Kind::kExecStarted, id.value(), rec->client.value(), rec->client_inc);
  // The kExec span covers user-procedure execution through sending the
  // reply, so the reply's send span hangs beneath it on the call's trace.
  const obs::SpanCtx saved_ctx = state_.ambient();
  const std::uint64_t exec_span = state_.span_open(obs::SpanKind::kExec, saved_ctx, id.value());
  if (exec_span != 0) state_.set_ambient(state_.trace->ctx_of(exec_span));
  co_await state_.user->pop(rec->op, rec->args);

  CallEvent done{id};
  co_await fw_->trigger(kReplyFromServer, runtime::EventArg::ref(done));

  net::NetMessage reply;
  reply.type = net::MsgType::kReply;
  reply.id = rec->id;
  reply.op = rec->op;
  reply.args = rec->args;  // the procedure wrote results in place
  reply.server = rec->server;
  reply.sender = state_.my_id;
  reply.inc = state_.inc_number;
  const ProcessId client = rec->client;
  // Erase only if the table still maps the id to *this* record; a concurrent
  // retransmission may have installed a fresh one.
  auto it = state_.sRPC.find(id);
  if (it != state_.sRPC.end() && it->second == rec) state_.sRPC.erase(it);
  state_.net_push(client, reply);
  state_.note(obs::Kind::kExecCommitted, id.value(), client.value(), rec->client_inc);
  if (exec_span != 0) {
    state_.span_close(exec_span);
    state_.set_ambient(saved_ctx);
  }
}

sim::Task<> RpcMain::msg_from_user(runtime::EventContext& ctx) {
  auto& umsg = ctx.arg_as<UserMessage>();
  if (umsg.type != UserOp::kCall) co_return;
  std::shared_ptr<ClientRecord> rec;
  {
    auto guard = co_await state_.pRPC_mutex.lock();
    const CallId id = make_call_id(state_.my_id, state_.next_seq++);
    rec = std::make_shared<ClientRecord>(state_.sched, id, umsg.op, umsg.args, umsg.server);
    rec->issued_at = state_.transport.now();
    for (ProcessId p : state_.transport.group_members(umsg.server)) {
      rec->pending.emplace(p, PendingServer{});
    }
    state_.pRPC[id] = rec;
  }
  if (state_.live) ++state_.live->calls_started;
  state_.note(obs::Kind::kCallIssued, rec->id.value(), umsg.server.value(), state_.inc_number);
  // Root of the call's distributed trace: the trace id IS the call id
  // (globally unique), so spans recorded by other processes join without any
  // id-allocation protocol.  The span parents to whatever the submitting
  // fiber was doing and becomes its ambient context, so the multicast below
  // and everything downstream of it hang beneath the call.
  if (state_.trace) {
    const obs::SpanCtx amb = state_.ambient();
    rec->span = state_.trace->span_open(state_.transport.now(), obs::SpanKind::kCall,
                                        state_.trace->intern("call"),
                                        obs::SpanCtx{rec->id.value(), amb.parent},
                                        rec->id.value());
    if (rec->span != 0) state_.set_ambient(state_.trace->ctx_of(rec->span));
  }
  CallEvent created{rec->id};
  co_await fw_->trigger(kNewRpcCall, runtime::EventArg::ref(created));
  umsg.id = rec->id;

  net::NetMessage msg;
  msg.type = net::MsgType::kCall;
  msg.id = rec->id;
  msg.op = rec->op;
  msg.args = rec->request_args;
  msg.server = rec->server;
  msg.sender = state_.my_id;
  msg.inc = state_.inc_number;
  state_.net_multicast(rec->server, msg);
}

}  // namespace ugrpc::core
