#include "core/micro/unique_execution.h"

#include "core/priorities.h"

namespace ugrpc::core {

void UniqueExecution::start(runtime::Framework& fw) {
  fw_ = &fw;
  state_.checkpoint_participants.push_back(this);
  fw.register_handler(kMsgFromNetwork, "UniqueExec.msg_from_net", kPrioNetUnique,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kReplyFromServer, "UniqueExec.handle_reply", kPrioReplyUnique,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        const CallId id = ctx.arg_as<CallEvent>().id;
                        if (auto rec = state_.find_server(id)) {
                          old_results_[id] = rec->args;
                        }
                        co_return;
                      });
}

void UniqueExecution::queue_ack(ProcessId dest, std::uint64_t id) {
  state_.pending_acks[dest].push_back(id);
  ++acks_queued_;
  if (flush_armed_) return;
  flush_armed_ = true;
  // One coalesced timer for every destination: all acknowledgements that
  // accumulate within the window leave in one message per server.  The
  // default window of 0 still batches -- timers fire only after the ready
  // fibers of the current instant have drained, so a burst of same-time
  // Replies is acknowledged as one batch.
  fw_->register_timeout("UniqueExec.flush_acks", ack_delay_, [this]() -> sim::Task<> {
    flush_armed_ = false;
    flush_acks();
    co_return;
  });
}

void UniqueExecution::flush_acks() {
  // Take the queue wholesale: retransmission piggybacking may have already
  // consumed some ids (take_piggyback_ack), which is why the queue lives in
  // the shared state rather than here.
  auto pending = std::move(state_.pending_acks);
  state_.pending_acks.clear();
  for (auto& [dest, ids] : pending) {
    if (ids.empty()) continue;
    net::NetMessage ack;
    ack.type = net::MsgType::kAck;
    ack.sender = state_.my_id;
    ack.inc = state_.inc_number;
    ack.ackid = ids.front();
    ack.args = net::encode_ack_batch(std::span(ids).subspan(1));
    state_.net_push(dest, ack);
    ++ack_messages_sent_;
  }
}

sim::Task<> UniqueExecution::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  switch (msg.type) {
    case net::MsgType::kCall: {
      // A retransmitted Call may piggyback one acknowledgement in its
      // otherwise-unused ackid field (see Reliable Communication).
      if (msg.ackid != 0) old_results_.erase(CallId{msg.ackid});
      if (auto it = old_results_.find(msg.id); it != old_results_.end()) {
        // Completed before: answer from the stored result, do not re-execute.
        ++duplicates_suppressed_;
        state_.note(obs::Kind::kDupSuppressed, msg.id.value());
        net::NetMessage reply;
        reply.type = net::MsgType::kReply;
        reply.id = msg.id;
        reply.op = msg.op;
        reply.args = it->second;
        reply.server = msg.server;
        reply.sender = state_.my_id;
        reply.inc = state_.inc_number;
        state_.net_push(msg.sender, reply);
        ctx.cancel();
      } else if (old_calls_.contains(msg.id)) {
        // In progress (or executed and already acknowledged): drop.
        ++duplicates_suppressed_;
        state_.note(obs::Kind::kDupSuppressed, msg.id.value());
        ctx.cancel();
      } else {
        old_calls_.insert(msg.id);
      }
      break;
    }
    case net::MsgType::kReply: {
      // Client side: queue the acknowledgement so the server can free the
      // stored result; the coalesced flush timer batches per destination.
      queue_ack(msg.sender, msg.id.value());
      break;
    }
    case net::MsgType::kAck:
      old_results_.erase(CallId{msg.ackid});
      for (std::uint64_t id : net::decode_ack_batch(msg.args)) {
        old_results_.erase(CallId{id});
      }
      break;
    case net::MsgType::kOrder:
    case net::MsgType::kOrderQuery:
    case net::MsgType::kOrderInfo:
      break;
  }
  co_return;
}

void UniqueExecution::encode_state(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(old_calls_.size()));
  for (CallId id : old_calls_) w.u64(id.value());
  w.u32(static_cast<std::uint32_t>(old_results_.size()));
  for (const auto& [id, args] : old_results_) {
    w.u64(id.value());
    w.raw(args.bytes());
  }
}

void UniqueExecution::decode_state(Reader& r) {
  old_calls_.clear();
  old_results_.clear();
  const std::uint32_t n_calls = r.u32();
  for (std::uint32_t i = 0; i < n_calls; ++i) old_calls_.insert(CallId{r.u64()});
  const std::uint32_t n_results = r.u32();
  for (std::uint32_t i = 0; i < n_results; ++i) {
    const CallId id{r.u64()};
    old_results_[id] = r.raw();
  }
}

}  // namespace ugrpc::core
