#include "core/micro/unique_execution.h"

#include "core/priorities.h"

namespace ugrpc::core {

void UniqueExecution::start(runtime::Framework& fw) {
  state_.checkpoint_participants.push_back(this);
  fw.register_handler(kMsgFromNetwork, "UniqueExec.msg_from_net", kPrioNetUnique,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kReplyFromServer, "UniqueExec.handle_reply", kPrioReplyUnique,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        const CallId id = ctx.arg_as<CallEvent>().id;
                        if (auto rec = state_.find_server(id)) {
                          old_results_[id] = rec->args;
                        }
                        co_return;
                      });
}

sim::Task<> UniqueExecution::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  switch (msg.type) {
    case net::MsgType::kCall: {
      if (auto it = old_results_.find(msg.id); it != old_results_.end()) {
        // Completed before: answer from the stored result, do not re-execute.
        ++duplicates_suppressed_;
        net::NetMessage reply;
        reply.type = net::MsgType::kReply;
        reply.id = msg.id;
        reply.op = msg.op;
        reply.args = it->second;
        reply.server = msg.server;
        reply.sender = state_.my_id;
        reply.inc = state_.inc_number;
        state_.net_push(msg.sender, reply);
        ctx.cancel();
      } else if (old_calls_.contains(msg.id)) {
        // In progress (or executed and already acknowledged): drop.
        ++duplicates_suppressed_;
        ctx.cancel();
      } else {
        old_calls_.insert(msg.id);
      }
      break;
    }
    case net::MsgType::kReply: {
      // Client side: acknowledge so the server can free the stored result.
      net::NetMessage ack;
      ack.type = net::MsgType::kAck;
      ack.server = msg.server;
      ack.sender = state_.my_id;
      ack.inc = state_.inc_number;
      ack.ackid = msg.id.value();
      state_.net_push(msg.sender, ack);
      break;
    }
    case net::MsgType::kAck:
      old_results_.erase(CallId{msg.ackid});
      break;
    case net::MsgType::kOrder:
    case net::MsgType::kOrderQuery:
    case net::MsgType::kOrderInfo:
      break;
  }
  co_return;
}

void UniqueExecution::encode_state(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(old_calls_.size()));
  for (CallId id : old_calls_) w.u64(id.value());
  w.u32(static_cast<std::uint32_t>(old_results_.size()));
  for (const auto& [id, args] : old_results_) {
    w.u64(id.value());
    w.raw(args.bytes());
  }
}

void UniqueExecution::decode_state(Reader& r) {
  old_calls_.clear();
  old_results_.clear();
  const std::uint32_t n_calls = r.u32();
  for (std::uint32_t i = 0; i < n_calls; ++i) old_calls_.insert(CallId{r.u64()});
  const std::uint32_t n_results = r.u32();
  for (std::uint32_t i = 0; i < n_results; ++i) {
    const CallId id{r.u64()};
    old_results_[id] = r.raw();
  }
}

}  // namespace ugrpc::core
