// FIFO Order micro-protocol (paper section 4.4.6).
//
// Guarantees that the calls of any one client are executed in the same
// (issue) order at every server.  Implementation: a HOLD gate; a call is
// released only when its id is the next expected id of its client, and the
// reply handler releases the successor if it has already arrived.  The next
// expected id is initialized to the first id seen from a client (or
// incarnation), so a server that joins mid-stream (e.g. after recovery)
// starts from the stream position it can observe -- later calls are ordered,
// earlier ones are dropped as stale, which preserves the relative-order
// guarantee (execution sequences are subsequences of the issue order).
//
// Per the paper, FIFO Order deliberately allows duplicate and concurrent
// execution -- combine with Unique/Serial Execution to remove those.
// Depends on Reliable Communication (every server must receive the set of
// messages; paper Figure 2/4).
#pragma once

#include <unordered_map>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class FifoOrder : public runtime::MicroProtocol, public CheckpointParticipant {
 public:
  explicit FifoOrder(GrpcState& state) : MicroProtocol("FIFO Order"), state_(state) {}

  void start(runtime::Framework& fw) override;

  // CheckpointParticipant: with Atomic Execution configured, the per-client
  // stream positions survive a crash, so a recovered member continues each
  // client's stream instead of restarting at its first re-seen id.
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

  [[nodiscard]] std::uint64_t stale_dropped() const { return stale_dropped_; }

 private:
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> handle_reply(runtime::EventContext& ctx);

  struct InProgress {
    Incarnation inc = 0;
    CallId next;  ///< next call id allowed to execute for this client
  };

  GrpcState& state_;
  std::unordered_map<ProcessId, InProgress> in_progress_;
  std::uint64_t stale_dropped_ = 0;
};

}  // namespace ugrpc::core
