#include "core/micro/atomic_execution.h"

#include "common/log.h"
#include "core/priorities.h"
#include "core/user_protocol.h"

namespace ugrpc::core {

void AtomicExecution::start(runtime::Framework& fw) {
  fw.register_handler(kReplyFromServer, "AtomicExec.handle_reply", kPrioReplyAtomic,
                      [this](runtime::EventContext& ctx) { return handle_reply(ctx); });
  fw.register_handler(kRecovery, "AtomicExec.handle_recovery",
                      [this](runtime::EventContext& ctx) { return handle_recovery(ctx); });
}

void AtomicExecution::ensure_baseline() {
  // Baseline checkpoint at first boot: a crash during the very first call
  // must be able to roll back to the initial state.  (The paper's
  // pseudocode only checkpoints after replies, leaving the first call
  // non-atomic; see DESIGN.md.)  On recovery the variable already exists
  // and the stored checkpoint remains authoritative.
  if (!store_.var(kCurrentVar).has_value()) {
    const storage::StableAddress addr = store_.store_checkpoint(build_snapshot());
    store_.set_var(kCurrentVar, addr.value());
  }
}

Buffer AtomicExecution::build_snapshot() const {
  Buffer snapshot;
  Writer w(snapshot);
  const Buffer user_state = state_.user != nullptr ? state_.user->snapshot_state() : Buffer{};
  w.raw(user_state.bytes());
  w.u32(static_cast<std::uint32_t>(state_.checkpoint_participants.size()));
  for (const CheckpointParticipant* p : state_.checkpoint_participants) {
    Buffer part;
    Writer pw(part);
    p->encode_state(pw);
    w.raw(part.bytes());
  }
  return snapshot;
}

void AtomicExecution::restore_snapshot(const Buffer& snapshot) {
  Reader r(snapshot);
  const Buffer user_state = r.raw();
  if (state_.user != nullptr) state_.user->restore_state(user_state);
  const std::uint32_t n = r.u32();
  // Participant order is the configuration order, which is identical across
  // a crash (the stack factory rebuilds the same configuration).
  UGRPC_ASSERT(n == state_.checkpoint_participants.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const Buffer part = r.raw();
    Reader pr(part);
    state_.checkpoint_participants[i]->decode_state(pr);
  }
}

sim::Task<> AtomicExecution::handle_reply(runtime::EventContext&) {
  const storage::StableAddress addr = co_await store_.store_checkpoint_async(build_snapshot());
  // Atomic switch-over: the stable variable either points at the old
  // checkpoint or the new one, never at a torn state.
  const auto previous = store_.var(kCurrentVar);
  store_.set_var(kCurrentVar, addr.value());
  if (previous.has_value()) store_.release_checkpoint(storage::StableAddress{*previous});
  ++checkpoints_taken_;
  state_.note(obs::Kind::kCheckpoint, 0, addr.value());
}

sim::Task<> AtomicExecution::handle_recovery(runtime::EventContext&) {
  const auto current = store_.var(kCurrentVar);
  if (!current.has_value()) co_return;  // never checkpointed: initial state is correct
  const auto snapshot = store_.load_checkpoint(storage::StableAddress{*current});
  UGRPC_ASSERT(snapshot.has_value() && "stable variable points at a missing checkpoint");
  restore_snapshot(*snapshot);
  state_.note(obs::Kind::kStateRestored, 0, *current);
  UGRPC_LOG(kDebug, "atomic@%u: restored checkpoint %llu", state_.my_id.value(),
            static_cast<unsigned long long>(*current));
}

}  // namespace ugrpc::core
