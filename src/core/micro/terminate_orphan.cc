#include "core/micro/terminate_orphan.h"

#include "common/log.h"
#include "core/priorities.h"

namespace ugrpc::core {

void TerminateOrphan::start(runtime::Framework& fw) {
  // Execution-guard: remember which fiber executes which client's call.
  // Must be registered before Serial Execution's guard (the composite
  // assembles orphan handling first) so that fibers blocked waiting for the
  // serial token are already tracked and killable.
  state_.before_execute.push_back([this](CallId id) -> sim::Task<> {
    if (auto rec = state_.find_server(id)) {
      cinfo_[rec->client].threads.insert(state_.sched.current_fiber());
    }
    co_return;
  });
  fw.register_handler(kMsgFromNetwork, "TermOrphan.msg_from_net", kPrioNetOrphan,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kReplyFromServer, "TermOrphan.handle_reply", kPrioReplyOrphan,
                      [this](runtime::EventContext& ctx) { return handle_reply(ctx); });
  // Probing-based detection (paper's second approach): the membership
  // service heartbeats clients; a client declared failed has only orphans.
  fw.register_handler(kMembershipChange, "TermOrphan.client_failure",
                      [this](runtime::EventContext& ctx) { return client_failure(ctx); });
}

void TerminateOrphan::kill_threads(ProcessId client, ClientInfo& info) {
  for (FiberId th : info.threads) {
    UGRPC_ASSERT(th != state_.sched.current_fiber());
    if (state_.serial_holder == th) {
      // The victim holds the serial token; free it or the server wedges.
      state_.serial_holder.reset();
      state_.serial.release();
    }
    state_.sched.kill(th);
    ++orphans_killed_;
    state_.note(obs::Kind::kOrphanKilled, 0, client.value(), th.value());
  }
  info.threads.clear();
}

sim::Task<> TerminateOrphan::client_failure(runtime::EventContext& ctx) {
  const auto& ev = ctx.arg_as<MembershipEvent>();
  if (ev.change != membership::Change::kFailure) co_return;
  auto it = cinfo_.find(ev.who);
  if (it == cinfo_.end()) co_return;
  if (!it->second.threads.empty()) {
    UGRPC_LOG(kDebug, "orphan@%u: probing detected death of client %u, killing %zu thread(s)",
              state_.my_id.value(), ev.who.value(), it->second.threads.size());
    kill_threads(ev.who, it->second);
  }
}

sim::Task<> TerminateOrphan::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  if (msg.type != net::MsgType::kCall) co_return;
  auto [it, inserted] = cinfo_.try_emplace(msg.sender, ClientInfo{msg.inc, {}});
  ClientInfo& info = it->second;
  if (info.inc > msg.inc) {
    ctx.cancel();  // request from a dead incarnation
    co_return;
  }
  if (info.inc < msg.inc) {
    // Newer incarnation: the previous one is dead, its threads are orphans.
    UGRPC_LOG(kDebug, "orphan@%u: new incarnation of client %u, killing %zu thread(s)",
              state_.my_id.value(), msg.sender.value(), info.threads.size());
    kill_threads(msg.sender, info);
    info.inc = msg.inc;
  }
}

sim::Task<> TerminateOrphan::handle_reply(runtime::EventContext& ctx) {
  const CallId id = ctx.arg_as<CallEvent>().id;
  auto rec = state_.find_server(id);
  if (rec == nullptr) co_return;
  auto it = cinfo_.find(rec->client);
  if (it != cinfo_.end()) it->second.threads.erase(state_.sched.current_fiber());
  co_return;
}

}  // namespace ugrpc::core
