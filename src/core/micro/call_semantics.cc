#include "core/micro/call_semantics.h"

namespace ugrpc::core {

namespace {

/// Shared wait-and-collect path: P on the call's semaphore, copy results and
/// status into the user message, drop the record.
sim::Task<> await_completion(GrpcState& state, UserMessage& umsg) {
  auto rec = state.find_client(umsg.id);
  if (rec == nullptr) co_return;  // unknown or already collected
  co_await rec->sem.acquire();
  umsg.args = rec->args;
  umsg.status = rec->status;
  auto guard = co_await state.pRPC_mutex.lock();
  auto it = state.pRPC.find(umsg.id);
  if (it != state.pRPC.end() && it->second == rec) state.pRPC.erase(it);
}

}  // namespace

void SynchronousCall::start(runtime::Framework& fw) {
  // Default (lowest) priority: runs after RPC Main has created the record
  // and sent the call, exactly as in the paper.
  fw.register_handler(kCallFromUser, "SynchronousCall.msg_from_user",
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        auto& umsg = ctx.arg_as<UserMessage>();
                        if (umsg.type == UserOp::kCall) co_await await_completion(state_, umsg);
                      });
}

void AsynchronousCall::start(runtime::Framework& fw) {
  fw.register_handler(kCallFromUser, "AsynchronousCall.msg_from_user",
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        auto& umsg = ctx.arg_as<UserMessage>();
                        if (umsg.type == UserOp::kRequest) co_await await_completion(state_, umsg);
                      });
}

}  // namespace ugrpc::core
