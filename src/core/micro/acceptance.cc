#include "core/micro/acceptance.h"

#include <algorithm>

#include "core/priorities.h"

namespace ugrpc::core {

void Acceptance::start(runtime::Framework& fw) {
  fw.register_handler(kNewRpcCall, "Acceptance.handle_new_call", kPrioNewAcceptance,
                      [this](runtime::EventContext& ctx) { return handle_new_call(ctx); });
  fw.register_handler(kMsgFromNetwork, "Acceptance.msg_from_net", kPrioNetAcceptance,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kMembershipChange, "Acceptance.server_failure",
                      [this](runtime::EventContext& ctx) { return server_failure(ctx); });
}

sim::Task<> Acceptance::handle_new_call(runtime::EventContext& ctx) {
  auto rec = state_.find_client(ctx.arg_as<CallEvent>().id);
  if (rec == nullptr) co_return;
  int alive = 0;
  for (auto& [p, ps] : rec->pending) {
    if (state_.members.contains(p)) {
      ps.done = false;
      ++alive;
    } else {
      ps.done = true;  // known-failed members are not waited for
    }
  }
  rec->nres = std::min(limit_, alive);
  co_return;
}

void Acceptance::complete(ClientRecord& rec) {
  // Guarded on WAITING so late extra replies cannot V the semaphore twice
  // (deviation from the paper's unconditional V; see DESIGN.md).
  if (rec.status == Status::kWaiting) {
    rec.status = Status::kOk;
    if (state_.live) ++state_.live->calls_completed;
    state_.note(obs::Kind::kCallCompleted, rec.id.value(),
                static_cast<std::uint64_t>(Status::kOk));
    state_.span_close(rec.span);  // root span of the call's trace
    rec.sem.release();
  }
}

sim::Task<> Acceptance::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  if (msg.type != net::MsgType::kReply) co_return;
  auto rec = state_.find_client(msg.id);
  if (rec == nullptr) co_return;
  auto it = rec->pending.find(msg.sender);
  if (it == rec->pending.end()) co_return;  // reply from a non-member: ignore
  if (!it->second.done) {
    it->second.done = true;
    if (--rec->nres <= 0) complete(*rec);
  } else {
    ctx.cancel();  // duplicate reply: nothing further should process it
  }
  co_return;
}

sim::Task<> Acceptance::server_failure(runtime::EventContext& ctx) {
  const auto& ev = ctx.arg_as<MembershipEvent>();
  if (ev.change != membership::Change::kFailure) co_return;
  // A failed server will not respond: stop waiting for it on every pending
  // call.  Deviation from the paper, which decrements nres as if the failure
  // were a response -- under that reading a k=1 call "succeeds" with zero
  // replies as soon as any server fails.  Instead we clamp nres to the
  // number of responses still possible, which matches the paper's intent
  // for acceptance=ALL ("settle for the responses from all servers that are
  // still functioning") and keeps k-of-n waiting for k real replies while
  // k are still possible.
  for (auto& [id, rec] : state_.pRPC) {
    auto it = rec->pending.find(ev.who);
    if (it == rec->pending.end() || it->second.done) continue;
    it->second.done = true;
    int remaining = 0;
    for (const auto& [p, ps] : rec->pending) {
      if (!ps.done) ++remaining;
    }
    rec->nres = std::min(rec->nres, remaining);
    if (rec->nres <= 0) complete(*rec);
  }
  co_return;
}

}  // namespace ugrpc::core
