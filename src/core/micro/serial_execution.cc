#include "core/micro/serial_execution.h"

#include "core/priorities.h"

namespace ugrpc::core {

void SerialExecution::start(runtime::Framework& fw) {
  state_.before_execute.push_back([this](CallId id) -> sim::Task<> {
    co_await state_.serial.acquire();
    state_.serial_holder = state_.sched.current_fiber();
    state_.note(obs::Kind::kSerialAcquired, id.value());
  });
  fw.register_handler(kReplyFromServer, "SerialExec.handle_reply", kPrioReplySerial,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        state_.serial_holder.reset();
                        state_.serial.release();
                        state_.note(obs::Kind::kSerialReleased,
                                    ctx.arg_as<CallEvent>().id.value());
                        co_return;
                      });
}

}  // namespace ugrpc::core
