#include "core/micro/reliable_communication.h"

#include "core/priorities.h"

namespace ugrpc::core {

void ReliableCommunication::start(runtime::Framework& fw) {
  fw_ = &fw;
  fw.register_handler(kNewRpcCall, "ReliableComm.handle_new_call", kPrioNewReliable,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        auto rec = state_.find_client(ctx.arg_as<CallEvent>().id);
                        if (rec != nullptr) {
                          for (auto& [p, ps] : rec->pending) ps.acked = false;
                        }
                        arm_timer(*fw_);
                        co_return;
                      });
  fw.register_handler(kMsgFromNetwork, "ReliableComm.msg_from_net", kPrioNetReliable,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        const auto& msg = ctx.arg_as<net::NetMessage>();
                        if (msg.type == net::MsgType::kReply) {
                          if (auto rec = state_.find_client(msg.id)) {
                            auto it = rec->pending.find(msg.sender);
                            if (it != rec->pending.end()) it->second.acked = true;
                          }
                        } else if (msg.type == net::MsgType::kAck) {
                          if (auto rec = state_.find_client(CallId{msg.ackid})) {
                            auto it = rec->pending.find(msg.sender);
                            if (it != rec->pending.end()) it->second.acked = true;
                          }
                          // A batched ACK may acknowledge receipt of several
                          // calls at once (see net/message.h).
                          for (std::uint64_t extra : net::decode_ack_batch(msg.args)) {
                            if (auto rec = state_.find_client(CallId{extra})) {
                              auto it = rec->pending.find(msg.sender);
                              if (it != rec->pending.end()) it->second.acked = true;
                            }
                          }
                        }
                        co_return;
                      });
}

void ReliableCommunication::arm_timer(runtime::Framework& fw) {
  // The paper's handler re-registers itself for TIMEOUT at the end of each
  // run, making it periodic.  Optimization over the paper: the timer is
  // armed only while calls are pending, so an idle client (and hence the
  // whole simulation) can quiesce.
  if (armed_) return;
  armed_ = true;
  fw.register_timeout("ReliableComm.handle_timeout", retrans_timeout_,
                      [this, &fw]() -> sim::Task<> {
                        armed_ = false;
                        co_await handle_timeout();
                        if (!state_.pRPC.empty()) arm_timer(fw);
                      });
}

sim::Task<> ReliableCommunication::handle_timeout() {
  // Snapshot the record set into reused scratch storage: retransmission
  // sends may interleave with table mutations from other fibers, but the
  // snapshot itself costs no allocation in steady state.
  scratch_.clear();
  scratch_.reserve(state_.pRPC.size());
  for (const auto& [id, rec] : state_.pRPC) {
    for (const auto& [p, ps] : rec->pending) {
      if (!ps.acked) {
        scratch_.push_back(rec);
        break;
      }
    }
  }
  const obs::SpanCtx saved_ctx = state_.ambient();
  for (const auto& rec : scratch_) {
    net::NetMessage msg;
    msg.type = net::MsgType::kCall;
    msg.id = rec->id;
    msg.op = rec->op;
    msg.args = rec->request_args;  // shared, not deep-copied (COW Buffer)
    msg.server = rec->server;
    msg.sender = state_.my_id;
    msg.inc = state_.inc_number;
    // Re-enter the call's own trace context: the timer fiber's ambient is
    // the timer span, but each retransmitted datagram belongs to the call it
    // retries, so the span tree shows the retry under the original call.
    state_.set_ambient(obs::SpanCtx{rec->id.value(), rec->span});
    for (auto& [p, ps] : rec->pending) {
      if (ps.acked) continue;
      // Piggyback one queued reply acknowledgement on the retransmission
      // (the kCall ackid field is otherwise unused) so the server can free
      // a stored result without waiting for the explicit batched ACK.
      msg.ackid = state_.take_piggyback_ack(p);
      if (msg.ackid != 0) ++piggybacked_acks_;
      state_.net_push(p, msg);
      ++retransmissions_;
      if (state_.live) ++state_.live->retransmissions;
      state_.note(obs::Kind::kRetransmit, rec->id.value(), p.value());
    }
  }
  state_.set_ambient(saved_ctx);
  scratch_.clear();
  co_return;
}

}  // namespace ugrpc::core
