// Unique Execution micro-protocol (paper section 4.4.5).
//
// Guarantees a call is not executed more than once at each server: the
// server remembers which calls it has seen (OldCalls) and keeps each call's
// result (OldResults) until the client acknowledges the Reply.  A duplicate
// of a completed call is answered from OldResults; a duplicate of an
// in-progress call is discarded.  On the client side, every received Reply
// is acknowledged with an ACK message so the server can garbage-collect.
//
// Combined with RPC Main + Reliable Communication this upgrades
// "at least once" to "exactly once" (paper Figure 1).  The duplicate tables
// are volatile; to preserve uniqueness across a server crash, configure
// Atomic Execution, which includes this micro-protocol's tables in its
// checkpoints (CheckpointParticipant).
#pragma once

#include <map>
#include <set>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class UniqueExecution : public runtime::MicroProtocol, public CheckpointParticipant {
 public:
  explicit UniqueExecution(GrpcState& state)
      : MicroProtocol("Unique Execution"), state_(state) {}

  void start(runtime::Framework& fw) override;

  // CheckpointParticipant: the duplicate-suppression tables are part of the
  // server state that Atomic Execution rolls back on recovery.
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

  [[nodiscard]] std::size_t old_calls() const { return old_calls_.size(); }
  [[nodiscard]] std::size_t stored_results() const { return old_results_.size(); }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }

 private:
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);

  GrpcState& state_;
  std::set<CallId> old_calls_;
  std::map<CallId, Buffer> old_results_;
  std::uint64_t duplicates_suppressed_ = 0;
};

}  // namespace ugrpc::core
