// Unique Execution micro-protocol (paper section 4.4.5).
//
// Guarantees a call is not executed more than once at each server: the
// server remembers which calls it has seen (OldCalls) and keeps each call's
// result (OldResults) until the client acknowledges the Reply.  A duplicate
// of a completed call is answered from OldResults; a duplicate of an
// in-progress call is discarded.  On the client side, received Replies are
// acknowledged so the server can garbage-collect -- but not one message per
// Reply: acknowledgements are queued per destination and flushed by a single
// coalesced timer as one batched ACK (extra ids ride in the args field; see
// net/message.h), or piggybacked onto retransmitted Calls by Reliable
// Communication.  The Reply itself already serves as the receipt
// acknowledgement for Reliable Communication, so deferring the explicit ACK
// only delays server-side GC, never retransmission suppression.
//
// Combined with RPC Main + Reliable Communication this upgrades
// "at least once" to "exactly once" (paper Figure 1).  The duplicate tables
// are volatile; to preserve uniqueness across a server crash, configure
// Atomic Execution, which includes this micro-protocol's tables in its
// checkpoints (CheckpointParticipant).
#pragma once

#include <map>
#include <set>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class UniqueExecution : public runtime::MicroProtocol, public CheckpointParticipant {
 public:
  explicit UniqueExecution(GrpcState& state, sim::Duration ack_delay = {})
      : MicroProtocol("Unique Execution"), state_(state), ack_delay_(ack_delay) {}

  void start(runtime::Framework& fw) override;

  // CheckpointParticipant: the duplicate-suppression tables are part of the
  // server state that Atomic Execution rolls back on recovery.
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

  [[nodiscard]] std::size_t old_calls() const { return old_calls_.size(); }
  [[nodiscard]] std::size_t stored_results() const { return old_results_.size(); }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  /// ACK messages actually sent vs. acknowledgements delivered: the gap is
  /// what batching and piggybacking saved (observability for tests/benches).
  [[nodiscard]] std::uint64_t ack_messages_sent() const { return ack_messages_sent_; }
  [[nodiscard]] std::uint64_t acks_queued() const { return acks_queued_; }

 private:
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  void queue_ack(ProcessId dest, std::uint64_t id);
  void flush_acks();

  GrpcState& state_;
  runtime::Framework* fw_ = nullptr;
  sim::Duration ack_delay_;
  bool flush_armed_ = false;
  std::set<CallId> old_calls_;
  std::map<CallId, Buffer> old_results_;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t ack_messages_sent_ = 0;
  std::uint64_t acks_queued_ = 0;
};

}  // namespace ugrpc::core
