// Reliable Communication micro-protocol (paper section 4.4.3).
//
// Implements the standard retransmit-until-acknowledged scheme on the client
// side: every `retrans_timeout` the call is retransmitted to each group
// member that has neither replied nor acknowledged it.  A Reply counts as an
// acknowledgement; explicit ACK messages (possibly batched, see
// net/message.h) also count.  Combined with RPC Main this gives unbounded
// termination: "the client side keeps on trying until it gets a response".
//
// Timer coalescing: one periodic timer covers every in-flight call (armed
// only while calls are pending, so an idle client quiesces).  Each
// retransmitted Call additionally piggybacks one queued reply
// acknowledgement in its unused ackid field, saving explicit ACK messages.
#pragma once

#include <vector>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"
#include "sim/time.h"

namespace ugrpc::core {

class ReliableCommunication : public runtime::MicroProtocol {
 public:
  ReliableCommunication(GrpcState& state, sim::Duration retrans_timeout)
      : MicroProtocol("Reliable Communication"), state_(state),
        retrans_timeout_(retrans_timeout) {}

  void start(runtime::Framework& fw) override;

  /// Total retransmissions performed (observability for tests/benches).
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  /// Acks piggybacked onto retransmitted Calls (observability).
  [[nodiscard]] std::uint64_t piggybacked_acks() const { return piggybacked_acks_; }

 private:
  [[nodiscard]] sim::Task<> handle_timeout();
  void arm_timer(runtime::Framework& fw);

  GrpcState& state_;
  runtime::Framework* fw_ = nullptr;
  sim::Duration retrans_timeout_;
  bool armed_ = false;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t piggybacked_acks_ = 0;
  /// Reused snapshot storage for handle_timeout (no per-tick allocation).
  std::vector<std::shared_ptr<ClientRecord>> scratch_;
};

}  // namespace ugrpc::core
