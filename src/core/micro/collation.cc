#include "core/micro/collation.h"

#include "core/priorities.h"

namespace ugrpc::core {

void Collation::start(runtime::Framework& fw) {
  fw.register_handler(kNewRpcCall, "Collation.handle_new_call", kPrioNewCollation,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        if (auto rec = state_.find_client(ctx.arg_as<CallEvent>().id)) {
                          rec->args = init_;
                        }
                        co_return;
                      });
  fw.register_handler(kMsgFromNetwork, "Collation.msg_from_net", kPrioNetCollation,
                      [this](runtime::EventContext& ctx) -> sim::Task<> {
                        const auto& msg = ctx.arg_as<net::NetMessage>();
                        if (msg.type != net::MsgType::kReply) co_return;
                        auto rec = state_.find_client(msg.id);
                        if (rec == nullptr) co_return;
                        auto it = rec->pending.find(msg.sender);
                        // Fold only first responses from known group members
                        // (Acceptance marks them `done` right after us).
                        if (it == rec->pending.end() || it->second.done) co_return;
                        auto guard = co_await state_.pRPC_mutex.lock();
                        rec->args = fn_(rec->args, msg.args);
                      });
}

}  // namespace ugrpc::core
