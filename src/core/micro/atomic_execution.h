// Atomic Execution micro-protocol (paper section 4.4.5).
//
// Makes server-procedure execution atomic across crashes by checkpointing
// the server state to stable storage after every completed call and
// reloading the last checkpoint on recovery.  A crash mid-call therefore
// rolls the server back to the state before that call began -- "either
// executed completely or not at all".
//
// The checkpoint contains (a) the user protocol's state via its
// snapshot/restore hooks and (b) the state of every registered
// CheckpointParticipant (notably Unique Execution's duplicate tables, so the
// unique-execution guarantee also survives the crash).  Checkpoints are
// switched over with an atomically-assigned stable variable, mirroring the
// paper's `old`/`new` stable addresses: a crash during checkpoint write
// leaves the previous checkpoint in effect.
//
// Requires Serial Execution (calls processed one at a time); the
// configurator enforces this dependency (paper Figure 4).
#pragma once

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"
#include "storage/stable_store.h"

namespace ugrpc::core {

class AtomicExecution : public runtime::MicroProtocol {
 public:
  AtomicExecution(GrpcState& state, storage::StableStore& store)
      : MicroProtocol("Atomic Execution"), state_(state), store_(store) {}

  void start(runtime::Framework& fw) override;

  /// Writes the first-boot baseline checkpoint (no-op on recovery, when the
  /// stable variable already points at one).  Must run after EVERY
  /// micro-protocol's start(): ordering protocols assembled after Atomic
  /// Execution register as checkpoint participants in their start(), and a
  /// baseline taken before they did would restore with a participant-count
  /// mismatch after an early crash.  GrpcComposite calls this once the whole
  /// stack is up.
  void ensure_baseline();

  [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }

 private:
  [[nodiscard]] sim::Task<> handle_reply(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> handle_recovery(runtime::EventContext& ctx);
  [[nodiscard]] Buffer build_snapshot() const;
  void restore_snapshot(const Buffer& snapshot);

  static constexpr const char* kCurrentVar = "atomic.current";

  GrpcState& state_;
  storage::StableStore& store_;
  std::uint64_t checkpoints_taken_ = 0;
};

}  // namespace ugrpc::core
