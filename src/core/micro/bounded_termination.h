// Bounded Termination micro-protocol (paper section 4.4.3).
//
// Guarantees that every call returns to the client within `timebound`: when
// the deadline fires and the call is still WAITING, its status becomes
// TIMEOUT and the blocked client thread is released.  (Deviation from the
// paper's pseudocode, which V's unconditionally: we only time out calls
// still WAITING, so a call that completed but whose thread has not yet run
// does not get a spurious second V.)
//
// Timer coalescing: the paper's pseudocode effectively keeps one timer per
// outstanding call.  Because the bound is uniform, deadlines expire in call
// order, so a FIFO queue of (deadline, id) drained by a single armed timer is
// equivalent and keeps the timer population O(1) instead of O(calls).
#pragma once

#include <deque>
#include <utility>

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"
#include "sim/time.h"

namespace ugrpc::core {

class BoundedTermination : public runtime::MicroProtocol {
 public:
  BoundedTermination(GrpcState& state, sim::Duration timebound)
      : MicroProtocol("Bounded Termination"), state_(state), timebound_(timebound) {}

  void start(runtime::Framework& fw) override;

  [[nodiscard]] std::uint64_t timeouts_fired() const { return timeouts_fired_; }

 private:
  [[nodiscard]] sim::Task<> drain_expired();
  void arm_timer();

  GrpcState& state_;
  runtime::Framework* fw_ = nullptr;
  sim::Duration timebound_;
  /// FIFO of (deadline, call) pairs; front expires first (uniform bound).
  std::deque<std::pair<sim::Time, CallId>> deadlines_;
  bool armed_ = false;
  std::uint64_t timeouts_fired_ = 0;
};

}  // namespace ugrpc::core
