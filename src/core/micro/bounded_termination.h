// Bounded Termination micro-protocol (paper section 4.4.3).
//
// Guarantees that every call returns to the client within `timebound`: when
// the deadline fires and the call is still WAITING, its status becomes
// TIMEOUT and the blocked client thread is released.  (Deviation from the
// paper's pseudocode, which V's unconditionally: we only time out calls
// still WAITING, so a call that completed but whose thread has not yet run
// does not get a spurious second V.)
#pragma once

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"
#include "sim/time.h"

namespace ugrpc::core {

class BoundedTermination : public runtime::MicroProtocol {
 public:
  BoundedTermination(GrpcState& state, sim::Duration timebound)
      : MicroProtocol("Bounded Termination"), state_(state), timebound_(timebound) {}

  void start(runtime::Framework& fw) override;

  [[nodiscard]] std::uint64_t timeouts_fired() const { return timeouts_fired_; }

 private:
  [[nodiscard]] sim::Task<> handle_timeout(CallId id);

  GrpcState& state_;
  sim::Duration timebound_;
  std::uint64_t timeouts_fired_ = 0;
};

}  // namespace ugrpc::core
