// RPC Main micro-protocol (paper section 4.4.1).
//
// Handles the main control flow on both sides: stores client calls in pRPC
// and sends them to the server group; stores incoming calls in sRPC and,
// once every configured HOLD gate is satisfied, executes the server
// procedure via forward_up() and returns the Reply.  It does not block user
// threads (that is Synchronous/Asynchronous Call's job).
#pragma once

#include "core/events.h"
#include "core/grpc_state.h"
#include "runtime/micro_protocol.h"

namespace ugrpc::core {

class RpcMain : public runtime::MicroProtocol {
 public:
  explicit RpcMain(GrpcState& state) : MicroProtocol("RPC Main"), state_(state) {}

  void start(runtime::Framework& fw) override;

  /// Marks gate `index` satisfied for call `id`; if the call's hold array
  /// now matches the composite's HOLD array, runs the execution guards,
  /// invokes the server procedure, triggers REPLY_FROM_SERVER and sends the
  /// Reply.  Exported: the ordering micro-protocols call it when they
  /// release a held call (paper: "exported procedure forward_up").
  [[nodiscard]] sim::Task<> forward_up(CallId id, HoldIndex index);

 private:
  [[nodiscard]] sim::Task<> msg_from_net(runtime::EventContext& ctx);
  [[nodiscard]] sim::Task<> msg_from_user(runtime::EventContext& ctx);

  GrpcState& state_;
  runtime::Framework* fw_ = nullptr;
};

}  // namespace ugrpc::core
