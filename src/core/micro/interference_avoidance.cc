#include "core/micro/interference_avoidance.h"

#include "core/priorities.h"

namespace ugrpc::core {

void InterferenceAvoidance::start(runtime::Framework& fw) {
  fw.register_handler(kMsgFromNetwork, "InterfAvoid.msg_from_net", kPrioNetOrphan,
                      [this](runtime::EventContext& ctx) { return msg_from_net(ctx); });
  fw.register_handler(kReplyFromServer, "InterfAvoid.handle_reply", kPrioReplyOrphan,
                      [this](runtime::EventContext& ctx) { return handle_reply(ctx); });
}

sim::Task<> InterferenceAvoidance::msg_from_net(runtime::EventContext& ctx) {
  const auto& msg = ctx.arg_as<net::NetMessage>();
  if (msg.type != net::MsgType::kCall) co_return;
  auto guard = co_await cmutex_.lock();
  auto [it, inserted] = cinfo_.try_emplace(msg.sender, ClientInfo{msg.inc, 0, msg.inc});
  ClientInfo& info = it->second;
  if (info.inc != kBlocked && info.inc > msg.inc) {
    // An orphaned request from a dead incarnation: drop permanently.
    ctx.cancel();
    co_return;
  }
  if (info.inc != kBlocked && info.inc < msg.inc) {
    // First sight of a new incarnation: latch the gate shut so no more old
    // calls start, and open for the new generation once drained.
    info.next_inc = msg.inc;
    info.inc = (info.count == 0) ? msg.inc : kBlocked;
  }
  if (info.inc == msg.inc) {
    ++info.count;  // admitted
  } else {
    // Draining: defer this call; the client's retransmissions will deliver
    // it again once the old generation has finished.  (The paper's
    // pseudocode omits this cancel and would let the first new-incarnation
    // arrival through; see DESIGN.md.)
    ++deferred_;
    state_.note(obs::Kind::kCallDeferred, msg.id.value(), msg.sender.value());
    ctx.cancel();
  }
}

sim::Task<> InterferenceAvoidance::handle_reply(runtime::EventContext& ctx) {
  const CallId id = ctx.arg_as<CallEvent>().id;
  auto rec = state_.find_server(id);
  if (rec == nullptr) co_return;
  auto guard = co_await cmutex_.lock();
  auto it = cinfo_.find(rec->client);
  if (it == cinfo_.end()) co_return;
  ClientInfo& info = it->second;
  if (info.count > 0) --info.count;
  if (info.count == 0 && info.inc == kBlocked) {
    info.inc = info.next_inc;  // old generation drained: admit the new one
  }
}

}  // namespace ugrpc::core
