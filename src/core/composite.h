// The gRPC composite protocol: framework + shared state + configured
// micro-protocols, exporting the x-kernel-style interface
// (push from the user above, pop from the network below).
#pragma once

#include <memory>
#include <set>

#include "core/config.h"
#include "core/events.h"
#include "core/grpc_state.h"
#include "core/user_protocol.h"
#include "net/transport.h"
#include "runtime/composite.h"
#include "storage/stable_store.h"

namespace ugrpc::core {

class RpcMain;
class ReliableCommunication;
class BoundedTermination;
class UniqueExecution;
class AtomicExecution;
class FifoOrder;
class TotalOrder;
class InterferenceAvoidance;
class TerminateOrphan;

class GrpcComposite : public runtime::CompositeProtocol {
 public:
  /// Builds, wires and starts a composite realizing `config` on `transport`
  /// (traffic through `endpoint`, timers and fibers through the transport's
  /// hooks).  `known` initializes the live-member set (without a membership
  /// service it stays constant, per the paper).  The caller must have
  /// validated the config (asserted here).
  /// `trace` (optional) is this site's obs ring: the framework and every
  /// micro-protocol record into it; nullptr leaves tracing off.
  GrpcComposite(net::Transport& transport, net::Endpoint& endpoint, ProcessId my_id,
                storage::StableStore& stable, UserProtocol& user, const Config& config,
                std::set<ProcessId> known, obs::SiteTrace* trace = nullptr);

  /// Entry point from the user protocol (UPI push): runs the
  /// CALL_FROM_USER event chain in the calling fiber.  With Synchronous Call
  /// configured this blocks until the call completes or times out.
  [[nodiscard]] sim::Task<> submit(UserMessage& umsg);

  /// To be called after recovery: runs the RECOVERY event chain.
  [[nodiscard]] sim::Task<> signal_recovery(Incarnation inc);

  /// Membership change notification: updates the shared member set and runs
  /// the MEMBERSHIP_CHANGE event chain.
  [[nodiscard]] sim::Task<> notify_membership(ProcessId who, membership::Change change);

  [[nodiscard]] GrpcState& state() { return state_; }
  [[nodiscard]] const Config& config() const { return config_; }

  // Typed access to optional micro-protocols (nullptr when not configured);
  // used by tests and benchmarks for observability.
  [[nodiscard]] ReliableCommunication* reliable() { return reliable_; }
  [[nodiscard]] BoundedTermination* bounded() { return bounded_; }
  [[nodiscard]] UniqueExecution* unique() { return unique_; }
  [[nodiscard]] AtomicExecution* atomic() { return atomic_; }
  [[nodiscard]] FifoOrder* fifo() { return fifo_; }
  [[nodiscard]] TotalOrder* total() { return total_; }
  [[nodiscard]] InterferenceAvoidance* interference() { return interference_; }
  [[nodiscard]] TerminateOrphan* terminator() { return terminator_; }

 private:
  void assemble();

  Config config_;
  GrpcState state_;
  net::Endpoint& endpoint_;
  storage::StableStore& stable_;

  ReliableCommunication* reliable_ = nullptr;
  BoundedTermination* bounded_ = nullptr;
  UniqueExecution* unique_ = nullptr;
  AtomicExecution* atomic_ = nullptr;
  FifoOrder* fifo_ = nullptr;
  TotalOrder* total_ = nullptr;
  InterferenceAvoidance* interference_ = nullptr;
  TerminateOrphan* terminator_ = nullptr;
};

}  // namespace ugrpc::core
