#include "core/site.h"

#include "common/assert.h"
#include "common/log.h"

namespace ugrpc::core {

Site::Site(net::Transport& transport, ProcessId id, Config config, std::set<ProcessId> known,
           std::vector<ProcessId> watch)
    : transport_(transport), id_(id), config_(std::move(config)), known_(std::move(known)),
      watch_(std::move(watch)), stable_(transport.executor()) {
  endpoint_ = &transport_.attach(id_, domain());
}

Site::~Site() {
  if (up_) teardown_stack();
}

void Site::boot() {
  UGRPC_ASSERT(!up_ && inc_ == 0 && "boot() is called exactly once");
  inc_ = 1;
  build_stack();
}

void Site::build_stack() {
  transport_.set_process_up(id_, true);
  up_ = true;
  user_ = std::make_unique<UserProtocol>();
  if (app_setup_) app_setup_(*user_, *this);
  obs::SiteTrace* trace = tracer_ != nullptr ? &tracer_->site(id_) : nullptr;
  grpc_ = std::make_unique<GrpcComposite>(transport_, *endpoint_, id_, stable_, *user_, config_,
                                          known_, trace);
  grpc_->state().inc_number = inc_;
  grpc_->state().next_seq = first_seq_of_incarnation(inc_);
  grpc_->state().live = live_stats_;  // survives the stack; re-wired each build
  if (config_.use_membership && !watch_.empty()) {
    monitor_ = std::make_unique<membership::MembershipMonitor>(
        transport_, *endpoint_, watch_, config_.membership_params, /*beat=*/true);
    monitor_->set_listener([this](ProcessId who, membership::Change change) {
      // Run the MEMBERSHIP_CHANGE chain in its own fiber: handlers may block.
      transport_.spawn(grpc_->notify_membership(who, change), domain());
    });
    monitor_->start();
  }
}

void Site::teardown_stack() {
  executions_before_crashes_ += user_ != nullptr ? user_->executions() : 0;
  transport_.set_process_up(id_, false);  // first: drop all in-flight deliveries
  up_ = false;
  transport_.kill_domain(domain());       // kill every thread of control
  monitor_.reset();
  grpc_.reset();                          // framework destructor cancels timers
  user_.reset();
  endpoint_->clear_all_handlers();
}

void Site::crash() {
  UGRPC_ASSERT(up_ && "only a running site can crash");
  UGRPC_LOG(kDebug, "site %u: crash (incarnation %u)", id_.value(), inc_);
  if (tracer_ != nullptr) {
    tracer_->site(id_).record(transport_.now(), obs::Kind::kSiteCrashed, 0, inc_);
  }
  teardown_stack();
}

void Site::recover() {
  UGRPC_ASSERT(!up_ && inc_ > 0 && "recover() follows crash()");
  ++inc_;
  UGRPC_LOG(kDebug, "site %u: recovering as incarnation %u", id_.value(), inc_);
  if (tracer_ != nullptr) {
    tracer_->site(id_).record(transport_.now(), obs::Kind::kSiteRecovered, 0, inc_);
  }
  build_stack();
  transport_.spawn(grpc_->signal_recovery(inc_), domain());
}

GrpcComposite& Site::grpc() {
  UGRPC_ASSERT(grpc_ != nullptr);
  return *grpc_;
}

UserProtocol& Site::user() {
  UGRPC_ASSERT(user_ != nullptr);
  return *user_;
}

std::uint64_t Site::total_executions() const {
  return executions_before_crashes_ + (user_ != nullptr ? user_->executions() : 0);
}

}  // namespace ugrpc::core
