#include "core/observe.h"

namespace ugrpc::core {

obs::Expect expectations_from(const Config& config) {
  obs::Expect expect;
  expect.unique_execution = config.unique_execution;
  expect.atomic_execution = config.execution == ExecutionMode::kSerialAtomic;
  expect.termination_bound = config.termination_bound;
  expect.fifo_order = config.ordering == Ordering::kFifo;
  expect.total_order = config.ordering == Ordering::kTotal;
  expect.terminate_orphans = config.orphan == OrphanHandling::kTerminateOrphans;
  return expect;
}

}  // namespace ugrpc::core
