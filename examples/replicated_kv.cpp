// Replicated key-value store: group RPC as a fault-tolerance tool.
//
// A 3-way replicated KV store configured for strong guarantees: total order
// (all replicas apply writes in the same sequence), unique execution (no
// write applied twice), acceptance ALL (with membership, "all functioning
// servers"), reliable communication.  Two clients issue interleaved
// read-modify-write increments over a reordering, lossy network; one replica
// crashes mid-stream.  The demonstration: the surviving replicas end with
// identical state, and the crashed replica holds a consistent *prefix* of
// the write sequence.
//
// What this configuration does NOT give -- by design, matching the paper --
// is re-integration of a recovered replica into a total-order group: that
// requires a state-transfer/agreement protocol the paper explicitly omits
// ("for brevity this agreement phase has been omitted").  See DESIGN.md.
//
// Run:  build/examples/replicated_kv
#include <cstdio>
#include <map>
#include <string>

#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "stub/stub.h"

using namespace ugrpc;

constexpr stub::Operation<std::pair<std::string, std::uint64_t>, std::uint64_t> kAdd{OpId{1},
                                                                                     "add"};
constexpr stub::Operation<std::string, std::uint64_t> kGet{OpId{2}, "get"};

namespace {

// One store per replica site, keyed by site id so recovery rebuilds against
// the same (volatile) map -- lost state is re-derived from the write stream
// the replica observes after recovery, which is fine for this demo because
// the crashed replica misses writes and would diverge... except Unique
// Execution + retransmission re-delivers everything it missed while down.
std::map<std::uint32_t, std::map<std::string, std::uint64_t>> g_stores;

void kv_app(core::UserProtocol& user, core::Site& site) {
  auto dispatcher = std::make_shared<stub::Dispatcher>();
  auto& store = g_stores[site.id().value()];
  dispatcher->handle<std::pair<std::string, std::uint64_t>, std::uint64_t>(
      kAdd, [&store](std::pair<std::string, std::uint64_t> kv) -> sim::Task<std::uint64_t> {
        store[kv.first] += kv.second;
        co_return store[kv.first];
      });
  dispatcher->handle<std::string, std::uint64_t>(
      kGet, [&store](std::string key) -> sim::Task<std::uint64_t> {
        auto it = store.find(key);
        co_return it != store.end() ? it->second : 0;
      });
  stub::Dispatcher::install_owned(std::move(dispatcher), user);
}

}  // namespace

int main() {
  // Total order builds on exactly-once delivery (Figure 4: Total -> Unique
  // -> Reliable); membership drives leader failover after the crash below.
  const core::Config config = core::ConfigBuilder::exactly_once()
                                  .reliable_communication(sim::msec(40))
                                  .acceptance_limit(core::kAll)
                                  .total_order()
                                  .membership({sim::msec(15), sim::msec(120)})
                                  .build();

  core::ScenarioParams params;
  params.num_servers = 3;
  params.num_clients = 2;
  params.config = config;
  params.faults.min_delay = sim::usec(100);
  params.faults.max_delay = sim::msec(10);
  params.faults.drop_prob = 0.05;
  params.seed = 7;
  params.server_app = kv_app;
  core::Scenario scenario(std::move(params));

  std::printf("configuration: %s\n", scenario.server(0).grpc().config().describe().c_str());

  const char* keys[] = {"apples", "pears"};
  auto writer = [&](core::Client& client, int rounds) -> sim::Task<> {
    for (int i = 0; i < rounds; ++i) {
      std::pair<std::string, std::uint64_t> update{keys[i % 2], 1};
      (void)co_await stub::invoke(client, scenario.group(), kAdd, std::move(update));
      co_await scenario.scheduler().sleep_for(sim::msec(20));
    }
  };

  // Crash replica 2 (a follower) mid-workload; it stays down.
  scenario.scheduler().schedule_after(sim::msec(250), [&] {
    std::printf("[%6.1f ms] crashing replica 2\n", sim::to_msec(scenario.scheduler().now()));
    scenario.server(1).crash();
  });

  scenario.scheduler().spawn(writer(scenario.client(0), 25), scenario.client_site(0).domain());
  scenario.scheduler().spawn(writer(scenario.client(1), 25), scenario.client_site(1).domain());
  scenario.run_for(sim::seconds(60));

  std::printf("\nreplica states after 50 increments from 2 clients + 1 crash:\n");
  for (int i = 0; i < 3; ++i) {
    const auto& store = g_stores[core::Scenario::server_id(i).value()];
    std::printf("  replica %d:", i + 1);
    for (const auto& [k, v] : store) {
      std::printf(" %s=%llu", k.c_str(), static_cast<unsigned long long>(v));
    }
    std::printf("%s\n", i == 1 ? "   (crashed mid-stream: consistent prefix)" : "");
  }
  const auto& a = g_stores[core::Scenario::server_id(0).value()];
  const auto& b = g_stores[core::Scenario::server_id(2).value()];
  const auto& crashed = g_stores[core::Scenario::server_id(1).value()];
  const auto sum = [](const std::map<std::string, std::uint64_t>& m) {
    std::uint64_t s = 0;
    for (const auto& [k, v] : m) s += v;
    return s;
  };
  const bool survivors_consistent = (a == b) && sum(a) == 50;
  const bool prefix_ok = sum(crashed) <= sum(a);
  std::printf("survivors %s (all 50 writes applied in one total order)\n",
              survivors_consistent ? "CONSISTENT" : "DIVERGED");
  std::printf("crashed replica holds %llu/%llu writes (prefix %s)\n",
              static_cast<unsigned long long>(sum(crashed)),
              static_cast<unsigned long long>(sum(a)), prefix_ok ? "ok" : "VIOLATED");
  return survivors_consistent && prefix_ok ? 0 : 1;
}
