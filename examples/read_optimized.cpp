// The paper's section 5 example, driven under load.
//
// "A simple group RPC designed to provide quick response time to read-only
// requests": at-least-once semantics, acceptance one, synchronous calls,
// bounded termination, reliability in the RPC layer.  We replicate a
// read-only catalogue across 4 servers with very different response speeds
// and show that the client always gets the *fastest* server's latency --
// then, for contrast, run the same workload with acceptance=ALL and show the
// latency jump to the slowest member.
//
// Run:  build/examples/read_optimized
#include <cstdio>
#include <map>
#include <string>

#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "stub/stub.h"

using namespace ugrpc;

constexpr stub::Operation<std::string, std::string> kLookup{OpId{1}, "lookup"};

namespace {

core::ScenarioParams make_params(int acceptance_limit) {
  // Start from the read-optimized preset and relax the timing for the
  // deliberately slow replicas in this example.
  const core::Config config = core::ConfigBuilder::read_optimized()
                                  .acceptance_limit(acceptance_limit)
                                  .reliable_communication(sim::msec(50))
                                  .termination_bound(sim::seconds(2))
                                  .build();

  core::ScenarioParams params;
  params.num_servers = 4;
  params.config = config;
  params.seed = 99;
  params.server_app = [](core::UserProtocol& user, core::Site& site) {
    auto dispatcher = std::make_shared<stub::Dispatcher>();
    // Server i responds in i*3 ms: member 1 is fast, member 4 is slow.
    const sim::Duration think_time = sim::msec(3) * (site.id().value() - 1);
    dispatcher->handle<std::string, std::string>(
        kLookup, [&site, think_time](std::string key) -> sim::Task<std::string> {
          static const std::map<std::string, std::string> catalogue{
              {"larch", "Larix decidua"},
              {"oak", "Quercus robur"},
              {"pine", "Pinus sylvestris"},
          };
          co_await site.scheduler().sleep_for(think_time);
          auto it = catalogue.find(key);
          co_return it != catalogue.end() ? it->second : "(unknown)";
        });
    stub::Dispatcher::install_owned(std::move(dispatcher), user);
  };
  return params;
}

double run_workload(int acceptance_limit, const char* label) {
  core::Scenario scenario(make_params(acceptance_limit));
  const char* keys[] = {"larch", "oak", "pine"};
  double total_ms = 0;
  int completed = 0;
  scenario.run_client(0, [&](core::Client& client) -> sim::Task<> {
    for (int i = 0; i < 30; ++i) {
      const sim::Time t0 = scenario.scheduler().now();
      const auto result =
          co_await stub::invoke(client, scenario.group(), kLookup, std::string(keys[i % 3]));
      if (result.ok()) {
        total_ms += sim::to_msec(scenario.scheduler().now() - t0);
        ++completed;
      }
    }
  });
  const double mean = completed > 0 ? total_ms / completed : 0.0;
  std::printf("%-18s mean latency %6.2f ms over %d calls\n", label, mean, completed);
  return mean;
}

}  // namespace

int main() {
  std::printf("paper section 5: read-optimized group RPC (4 replicas, speeds 0/3/6/9 ms)\n");
  const double fast = run_workload(1, "acceptance=1");
  const double slow = run_workload(core::kAll, "acceptance=ALL");
  std::printf("first-reply acceptance is %.1fx faster for read-only requests\n", slow / fast);
  return 0;
}
