// config_explorer: command-line explorer of the configuration space.
//
//   config_explorer                  summary: space size and usage
//   config_explorer list             all 198 valid configurations
//   config_explorer graph            the Figure 2 property graph
//   config_explorer check <flags>    validate a configuration and, if valid,
//                                    build it and show its composite
//
// Flags for `check`: --async --orphan=avoid|terminate --exec=serial|atomic
//                    --unique --reliable --bounded --ordering=fifo|total
//
// Example:
//   config_explorer check --ordering=total --reliable --unique
#include <cstdio>
#include <cstring>
#include <string>

#include "core/micro/acceptance.h"
#include "core/properties.h"
#include "core/scenario.h"

using namespace ugrpc;
using namespace ugrpc::core;

namespace {

void print_summary() {
  const ConfigSpace space = config_space();
  std::printf("configurable group RPC services: %d (= %d call x %d orphan x %d execution x %d "
              "comm/order combos)\n",
              space.total, space.call_variants, space.orphan_variants, space.execution_variants,
              space.comm_combinations);
  std::printf("\nusage: config_explorer [list | graph | check <flags>]\n");
  std::printf("check flags: --async --orphan=avoid|terminate --exec=serial|atomic\n");
  std::printf("             --unique --reliable --bounded --ordering=fifo|total\n");
}

void print_list() {
  int i = 0;
  for (const Config& c : enumerate_valid_configs()) {
    std::printf("%3d  %s\n", ++i, c.describe().c_str());
  }
}

void print_graph() {
  std::printf("property dependency graph (paper Figure 2):\n");
  for (const PropertyEdge& e : property_edges()) {
    std::printf("  %-26s -> %s\n", std::string(to_string(e.from)).c_str(),
                std::string(to_string(e.to)).c_str());
  }
}

int check(int argc, char** argv) {
  ConfigBuilder builder;
  builder.acceptance_limit(1);
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--async") {
      builder.asynchronous();
    } else if (arg == "--orphan=avoid") {
      builder.orphan_handling(OrphanHandling::kInterferenceAvoidance);
    } else if (arg == "--orphan=terminate") {
      builder.orphan_handling(OrphanHandling::kTerminateOrphans);
    } else if (arg == "--exec=serial") {
      builder.execution(ExecutionMode::kSerial);
    } else if (arg == "--exec=atomic") {
      builder.execution(ExecutionMode::kSerialAtomic);
    } else if (arg == "--unique") {
      builder.unique_execution();
    } else if (arg == "--reliable") {
      builder.reliable_communication();
    } else if (arg == "--bounded") {
      builder.termination_bound(sim::seconds(1));
    } else if (arg == "--ordering=fifo") {
      builder.fifo_order();
    } else if (arg == "--ordering=total") {
      builder.total_order();
    } else {
      std::printf("unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  std::printf("configuration: %s\n", builder.build_unchecked().describe().c_str());
  Config config;
  try {
    config = builder.build();
  } catch (const ConfigError& err) {
    std::printf("INVALID -- violated dependencies (paper Figure 4):\n");
    for (const ValidationError& e : err.errors()) {
      std::printf("  %-42s %s\n", e.rule.c_str(), e.message.c_str());
    }
    return 1;
  }
  std::printf("valid.  building a live composite...\n\n");
  ScenarioParams p;
  p.num_servers = 3;
  p.config = config;
  Scenario s(std::move(p));
  GrpcComposite& composite = s.server(0).grpc();
  std::printf("micro-protocols:\n");
  for (const std::string& name : composite.micro_protocol_names()) {
    std::printf("  - %s\n", name.c_str());
  }
  std::printf("\nevent handler chains:\n");
  std::string last_event;
  for (const auto& reg : composite.framework().registrations()) {
    if (reg.event != last_event) {
      std::printf("  %s:\n", reg.event.c_str());
      last_event = reg.event;
    }
    std::printf("      %s\n", reg.handler.c_str());
  }
  // Prove it works: one call end to end.
  CallResult result;
  if (config.call == CallSemantics::kSynchronous) {
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      result = co_await c.call(s.group(), OpId{1}, Buffer{});
    }, sim::seconds(30));
  } else {
    s.run_client(0, [&](Client& c) -> sim::Task<> {
      CallHandle handle = co_await c.call_async(s.group(), OpId{1}, Buffer{});
      result = co_await handle.get();
    }, sim::seconds(30));
  }
  std::printf("\nsmoke call: %s\n", std::string(to_string(result.status)).c_str());
  return result.status == Status::kOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_summary();
    return 0;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") {
    print_list();
    return 0;
  }
  if (cmd == "graph") {
    print_graph();
    return 0;
  }
  if (cmd == "check") return check(argc, argv);
  print_summary();
  return 2;
}
