// Quickstart: the smallest useful group RPC service.
//
// Builds the paper's section 5 style configuration -- synchronous calls,
// acceptance 1 (first reply wins), reliability in the RPC layer, bounded
// termination -- against a group of 3 replicated "greeting" servers, and
// makes a handful of calls over a mildly lossy network.
//
// Run:  build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "stub/stub.h"

using namespace ugrpc;

constexpr stub::Operation<std::string, std::string> kGreet{OpId{1}, "greet"};

int main() {
  // 1. Choose the semantic properties of the service (paper section 5).
  //    read_optimized = synchronous, first reply wins, 25ms retransmission,
  //    1s termination bound.
  const core::Config config = core::ConfigBuilder::read_optimized().build();

  // 2. Describe the deployment: 3 servers, 1 client, 5% message loss.
  core::ScenarioParams params;
  params.num_servers = 3;
  params.config = config;
  params.faults.drop_prob = 0.05;
  params.server_app = [](core::UserProtocol& user, core::Site& site) {
    auto dispatcher = std::make_shared<stub::Dispatcher>();
    dispatcher->handle<std::string, std::string>(
        kGreet, [&site](std::string who) -> sim::Task<std::string> {
          co_return "hello " + who + " from server " + std::to_string(site.id().value());
        });
    stub::Dispatcher::install_owned(std::move(dispatcher), user);
  };
  core::Scenario scenario(std::move(params));

  std::printf("configuration: %s\n", scenario.client_site(0).grpc().config().describe().c_str());

  // 3. Call the service.
  scenario.run_client(0, [&](core::Client& client) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      const auto result =
          co_await stub::invoke(client, scenario.group(), kGreet, "caller#" + std::to_string(i));
      std::printf("call %d -> [%s] %s\n", i, std::string(to_string(result.status)).c_str(),
                  result.ok() ? result.value.c_str() : "(no result)");
    }
  });

  std::printf("total server executions: %llu\n",
              static_cast<unsigned long long>(scenario.total_server_executions()));
  return 0;
}
